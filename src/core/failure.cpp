#include "core/failure.hpp"

#include <algorithm>
#include <stdexcept>

namespace rlb::core {

ScriptedFailureSchedule::ScriptedFailureSchedule(std::vector<Event> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.step < b.step; });
}

void ScriptedFailureSchedule::transitions(Time t,
                                          const std::vector<std::uint8_t>& up,
                                          std::vector<FailureTransition>& out) {
  const auto [begin, end] = std::equal_range(
      events_.begin(), events_.end(), Event{t, 0, false},
      [](const Event& a, const Event& b) { return a.step < b.step; });
  for (auto it = begin; it != end; ++it) {
    if (it->server >= up.size()) continue;  // script written for a larger m
    out.push_back(FailureTransition{it->server, it->up});
  }
}

BernoulliFailureSchedule::BernoulliFailureSchedule(double fail_rate,
                                                   double mttr,
                                                   std::uint64_t seed)
    : fail_rate_(fail_rate),
      mttr_(mttr),
      rng_(stats::derive_seed(seed, 0xFA11)) {
  if (fail_rate < 0.0 || fail_rate > 1.0) {
    throw std::invalid_argument(
        "BernoulliFailureSchedule: fail_rate in [0, 1]");
  }
  if (mttr < 0.0) {
    throw std::invalid_argument("BernoulliFailureSchedule: mttr >= 0");
  }
}

void BernoulliFailureSchedule::transitions(Time /*t*/,
                                           const std::vector<std::uint8_t>& up,
                                           std::vector<FailureTransition>& out) {
  // One draw per server per step, in server order, regardless of state —
  // the draw count is then independent of the trajectory, which keeps
  // scripted comparisons (same seed, different policies) aligned.
  const double recover_p = mttr_ > 0.0 ? std::min(1.0, 1.0 / mttr_) : 0.0;
  for (std::size_t s = 0; s < up.size(); ++s) {
    const bool flip = rng_.next_bernoulli(up[s] ? fail_rate_ : recover_p);
    if (!flip) continue;
    out.push_back(
        FailureTransition{static_cast<ServerId>(s), up[s] == 0});
  }
}

RackFailureSchedule::RackFailureSchedule(std::size_t racks,
                                         double rack_fail_rate, double mttr,
                                         std::uint64_t seed)
    : racks_(racks),
      rack_fail_rate_(rack_fail_rate),
      mttr_(mttr),
      rng_(stats::derive_seed(seed, 0xACC)) {
  if (racks == 0) {
    throw std::invalid_argument("RackFailureSchedule: racks >= 1");
  }
  if (rack_fail_rate < 0.0 || rack_fail_rate > 1.0) {
    throw std::invalid_argument(
        "RackFailureSchedule: rack_fail_rate in [0, 1]");
  }
  if (mttr < 0.0) {
    throw std::invalid_argument("RackFailureSchedule: mttr >= 0");
  }
}

void RackFailureSchedule::transitions(Time /*t*/,
                                      const std::vector<std::uint8_t>& up,
                                      std::vector<FailureTransition>& out) {
  const std::size_t m = up.size();
  const std::size_t racks = std::min(racks_, std::max<std::size_t>(1, m));
  const double recover_p = mttr_ > 0.0 ? std::min(1.0, 1.0 / mttr_) : 0.0;
  for (std::size_t r = 0; r < racks; ++r) {
    // Rack r owns the contiguous block [r*m/racks, (r+1)*m/racks).
    const std::size_t begin = r * m / racks;
    const std::size_t end = (r + 1) * m / racks;
    if (begin >= end) continue;
    const bool rack_up = up[begin] != 0;
    const bool flip = rng_.next_bernoulli(rack_up ? rack_fail_rate_ : recover_p);
    if (!flip) continue;
    for (std::size_t s = begin; s < end; ++s) {
      out.push_back(FailureTransition{static_cast<ServerId>(s), !rack_up});
    }
  }
}

}  // namespace rlb::core
