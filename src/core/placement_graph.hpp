// Structural analysis of a d = 2 placement: the cuckoo/placement graph.
//
// Vertices are servers, edges are chunks (endpoints = the chunk's two
// replicas).  This one object underlies three different results in the
// paper:
//   * cuckoo feasibility (Theorem 4.1 / Lemma 4.2): a chunk set is
//     1-per-server placeable iff every component has edges <= vertices;
//   * the rejection-rate lower bound (Theorem 5.2): a component with more
//     chunk-edges than g x vertices is over-subscribed on every step;
//   * the d = 1 collapse intuition (Section 1): overload is structural,
//     fixed by the placement, and no routing can undo it.
// The analyzer computes component statistics in near-linear time with a
// union-find.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/placement.hpp"

namespace rlb::core {

/// Aggregate structure of one placement graph.
struct PlacementGraphStats {
  std::size_t servers = 0;
  std::size_t chunks = 0;
  std::size_t components = 0;       // counting isolated servers too
  std::size_t largest_component = 0;  // in servers
  /// Components by cyclomatic type: trees (edges = vertices - 1),
  /// unicyclic (=), complex (>).  Isolated vertices count as trees.
  std::size_t tree_components = 0;
  std::size_t unicyclic_components = 0;
  std::size_t complex_components = 0;
  /// max over components of (edges - g*vertices); > 0 means some server
  /// set is over-subscribed at processing rate g (Theorem 5.2's event).
  /// Negative values report the worst component's remaining slack.
  std::int64_t max_overload_excess = std::numeric_limits<std::int64_t>::min();

  bool cuckoo_feasible() const { return complex_components == 0; }
};

/// Analyze the graph formed by chunks [0, chunk_count) under `placement`
/// (replication must be 2); `g` sets the overload excess reference.
[[nodiscard]] PlacementGraphStats analyze_placement_graph(
    const Placement& placement, std::size_t chunk_count, unsigned g = 1);

/// Same, for an explicit edge list over `servers` vertices.
[[nodiscard]] PlacementGraphStats analyze_edge_list(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    std::size_t servers, unsigned g = 1);

}  // namespace rlb::core
