// Per-step time series of system observables.
//
// The aggregate Metrics answer "what happened overall"; the series answers
// "when" — convergence of migration (E16), the d = 1 collapse trajectory,
// burst absorption, warm-up lengths.  The simulator fills a recorder when
// one is attached to SimConfig; output is CSV-ready for external plotting.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

namespace rlb::core {

/// One step's snapshot.
struct StepSample {
  std::int64_t step = 0;
  /// Cumulative counters as of the END of the step.
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  /// Instantaneous backlog state at the step boundary.
  std::uint64_t total_backlog = 0;
  std::uint32_t max_backlog = 0;
  /// Rejections during this step alone.
  std::uint64_t step_rejected = 0;
};

/// Collects StepSamples; attach via SimConfig::recorder.
class SeriesRecorder {
 public:
  void add(const StepSample& sample) { samples_.push_back(sample); }

  const std::vector<StepSample>& samples() const noexcept { return samples_; }
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// Rejection rate over a trailing window ending at sample `index`
  /// (window truncated at the series start).  0 when nothing submitted.
  double windowed_rejection_rate(std::size_t index,
                                 std::size_t window) const;

  /// CSV with header: step,submitted,rejected,completed,total_backlog,
  /// max_backlog,step_rejected.
  void to_csv(std::ostream& os) const;

  void clear() { samples_.clear(); }

 private:
  std::vector<StepSample> samples_;
};

}  // namespace rlb::core
