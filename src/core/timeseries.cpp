#include "core/timeseries.hpp"

namespace rlb::core {

double SeriesRecorder::windowed_rejection_rate(std::size_t index,
                                               std::size_t window) const {
  if (index >= samples_.size() || window == 0) return 0.0;
  const StepSample& end = samples_[index];
  const std::size_t start_index = index + 1 >= window ? index + 1 - window : 0;
  std::uint64_t base_submitted = 0;
  std::uint64_t base_rejected = 0;
  if (start_index > 0) {
    base_submitted = samples_[start_index - 1].submitted;
    base_rejected = samples_[start_index - 1].rejected;
  }
  const std::uint64_t submitted = end.submitted - base_submitted;
  const std::uint64_t rejected = end.rejected - base_rejected;
  return submitted ? static_cast<double>(rejected) /
                         static_cast<double>(submitted)
                   : 0.0;
}

void SeriesRecorder::to_csv(std::ostream& os) const {
  os << "step,submitted,rejected,completed,total_backlog,max_backlog,"
        "step_rejected\n";
  for (const StepSample& s : samples_) {
    os << s.step << ',' << s.submitted << ',' << s.rejected << ','
       << s.completed << ',' << s.total_backlog << ',' << s.max_backlog
       << ',' << s.step_rejected << '\n';
  }
}

}  // namespace rlb::core
