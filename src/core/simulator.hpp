// The synchronous simulation loop: workload × balancer → metrics.
//
// Drives `steps` time steps.  Per step it asks the workload for the batch,
// hands it to the balancer, optionally samples backlogs and checks the
// safe-distribution invariant, and applies the periodic flush (the greedy
// algorithm's every-m^c-steps reset from Section 3).
#pragma once

#include <cstdint>

#include "core/balancer.hpp"
#include "core/failure.hpp"
#include "core/metrics.hpp"
#include "core/safe_distribution.hpp"
#include "core/timeseries.hpp"
#include "core/workload.hpp"

namespace rlb::core {

/// Knobs for one simulation run.
struct SimConfig {
  /// Number of synchronous time steps to simulate.
  std::size_t steps = 100;
  /// Flush (reject) all queues every `flush_every` steps; 0 disables.
  /// Section 3's greedy uses m^c; experiments use small explicit values.
  std::size_t flush_every = 0;
  /// Check Definition 3.2 after every step and record violations.
  bool check_safety = false;
  /// Sample per-server backlogs into metrics after every step.
  bool sample_backlogs = true;
  /// Largest latency tracked exactly by the histogram.
  std::size_t latency_hist_max = 1024;
  /// Optional per-step series sink (not owned; may be null).
  SeriesRecorder* recorder = nullptr;
  /// Optional fault injector (not owned; may be null).  Consulted at the
  /// start of every step; transitions are applied through
  /// LoadBalancer::set_server_up before the step's batch is generated.
  FailureSchedule* failure_schedule = nullptr;
  /// Crash semantics: dump (reject) a failed server's queue at crash time.
  /// When false the queue is preserved and resumes draining on recovery.
  bool dump_queue_on_crash = true;
};

/// Aggregate outcome of one run.
struct SimResult {
  Metrics metrics;
  /// Largest single-server backlog observed at any step boundary.
  std::uint64_t max_backlog = 0;
  /// Worst Definition-3.2 ratio observed (only when check_safety).
  double worst_safety_ratio = 0.0;
  std::size_t steps_run = 0;
  /// Fault-injection outcome (only when failure_schedule is set).
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  /// Servers still down when the run ended.
  std::size_t down_at_end = 0;
};

/// Run the synchronous loop.  Deterministic given the balancer's and
/// workload's internal seeds.
SimResult simulate(LoadBalancer& balancer, Workload& workload,
                   const SimConfig& config);

}  // namespace rlb::core
