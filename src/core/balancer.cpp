#include "core/balancer.hpp"

namespace rlb::core {

const char* to_string(RejectCause cause) noexcept {
  switch (cause) {
    case RejectCause::kQueueFull:
      return "queue_full";
    case RejectCause::kAllReplicasDown:
      return "all_replicas_down";
    case RejectCause::kQueueDrop:
      return "queue_drop";
  }
  return "unknown";
}

void LoadBalancer::backlogs(std::vector<std::uint32_t>& out) const {
  out.resize(server_count());
  for (std::size_t s = 0; s < out.size(); ++s) {
    out[s] = backlog(static_cast<ServerId>(s));
  }
}

std::uint64_t LoadBalancer::total_backlog() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < server_count(); ++s) {
    total += backlog(static_cast<ServerId>(s));
  }
  return total;
}

void LoadBalancer::set_server_up(ServerId /*s*/, bool /*up*/,
                                 bool /*dump_queue*/, Metrics& /*metrics*/) {}

bool LoadBalancer::server_up(ServerId /*s*/) const { return true; }

bool LoadBalancer::set_request_sink(RequestSink* /*sink*/) { return false; }

}  // namespace rlb::core
