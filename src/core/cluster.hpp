// A cluster of m servers, each with one bounded FIFO queue.
//
// This is the shared substrate for the single-queue-per-server policies
// (greedy, single-choice, time-step-isolated, round-robin).  Delayed cuckoo
// routing maintains four queues per server and therefore owns its own
// structure (see policies/delayed_cuckoo.hpp); both report backlogs through
// the same interface so the safety checker and metrics are policy-agnostic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/server_queue.hpp"
#include "core/types.hpp"

namespace rlb::core {

/// m bounded FIFO queues plus cached backlog counts for O(1) least-loaded
/// comparisons on the routing hot path.
class Cluster {
 public:
  Cluster(std::size_t servers, std::size_t queue_capacity);

  std::size_t size() const noexcept { return queues_.size(); }
  std::size_t queue_capacity() const noexcept { return capacity_; }

  std::uint32_t backlog(ServerId s) const noexcept { return backlog_[s]; }
  const std::vector<std::uint32_t>& backlogs() const noexcept {
    return backlog_;
  }
  std::uint64_t total_backlog() const noexcept { return total_backlog_; }

  /// Enqueue on server s; false when the queue is full (nothing changes).
  bool push(ServerId s, const Request& request) noexcept;

  /// Dequeue the oldest request on server s.  Precondition: backlog(s) > 0.
  Request pop(ServerId s) noexcept;

  bool empty(ServerId s) const noexcept { return backlog_[s] == 0; }
  bool full(ServerId s) const noexcept { return backlog_[s] == capacity_; }

  /// Drop all requests queued on server s, returning the count dropped.
  std::size_t clear_server(ServerId s) noexcept;

  /// Drop all requests everywhere, returning the total dropped (the §3
  /// periodic flush and the overflow queue-dump both land here).
  std::size_t clear_all() noexcept;

  // -- Fault state -------------------------------------------------------
  // Per-server up/down flags for the failure/recovery extension.  The
  // cluster only *records* the state; the routing policy decides what a
  // down server means (skip it among the d choices, stop draining its
  // queue, optionally dump it).  All servers start up.
  bool is_up(ServerId s) const noexcept { return up_[s] != 0; }
  void set_up(ServerId s, bool up) noexcept;
  /// Number of servers currently down (O(1): maintained on transitions).
  std::size_t down_count() const noexcept { return down_count_; }
  bool all_up() const noexcept { return down_count_ == 0; }

 private:
  std::vector<ServerQueue> queues_;
  std::vector<std::uint32_t> backlog_;
  std::vector<std::uint8_t> up_;
  std::size_t down_count_ = 0;
  std::uint64_t total_backlog_ = 0;
  std::size_t capacity_;
};

}  // namespace rlb::core
