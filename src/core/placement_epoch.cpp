#include "core/placement_epoch.hpp"

namespace rlb::core {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

constexpr std::size_t kDeltaHeaderSize = 12;  // u64 epoch + u32 count
constexpr std::size_t kRemapSize = 16;        // u64 chunk + u32 from + u32 to

}  // namespace

void encode_placement_delta(const PlacementDelta& delta,
                            std::vector<std::uint8_t>& out) {
  put_u64(out, delta.epoch);
  put_u32(out, static_cast<std::uint32_t>(delta.remaps.size()));
  for (const ChunkRemap& remap : delta.remaps) {
    put_u64(out, remap.chunk);
    put_u32(out, remap.from);
    put_u32(out, remap.to);
  }
}

bool decode_placement_delta(const std::uint8_t* data, std::size_t size,
                            PlacementDelta& out) {
  if (size < kDeltaHeaderSize) return false;
  const std::uint64_t epoch = get_u64(data);
  const std::uint32_t count = get_u32(data + 8);
  if (size != kDeltaHeaderSize + static_cast<std::size_t>(count) * kRemapSize) {
    return false;
  }
  out.epoch = epoch;
  out.remaps.clear();
  out.remaps.reserve(count);
  const std::uint8_t* p = data + kDeltaHeaderSize;
  for (std::uint32_t i = 0; i < count; ++i, p += kRemapSize) {
    ChunkRemap remap;
    remap.chunk = get_u64(p);
    remap.from = get_u32(p + 8);
    remap.to = get_u32(p + 12);
    out.remaps.push_back(remap);
  }
  return true;
}

EpochedPlacement::EpochedPlacement(std::size_t servers, unsigned replication,
                                   std::uint64_t seed, PlacementMode mode)
    : base_(servers, replication, seed, mode),
      overlay_(std::make_shared<const Overlay>()) {}

ChoiceList EpochedPlacement::choices(ChunkId chunk) const {
  const std::shared_ptr<const Overlay> overlay =
      overlay_.load(std::memory_order_acquire);
  const auto it = overlay->choices.find(chunk);
  if (it != overlay->choices.end()) return it->second;
  return base_.choices(chunk);
}

std::uint64_t EpochedPlacement::epoch() const {
  return overlay_.load(std::memory_order_acquire)->epoch;
}

bool EpochedPlacement::apply(const PlacementDelta& delta) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  const std::shared_ptr<const Overlay> current =
      overlay_.load(std::memory_order_acquire);
  if (delta.epoch != current->epoch + 1) return false;

  // Build the successor off to the side; readers keep seeing `current`
  // until the single publishing store below.
  auto next = std::make_shared<Overlay>(*current);
  for (const ChunkRemap& remap : delta.remaps) {
    if (remap.from == remap.to) return false;
    auto it = next->choices.find(remap.chunk);
    ChoiceList old = it != next->choices.end() ? it->second
                                               : base_.choices(remap.chunk);
    if (old.contains(remap.to)) return false;
    ChoiceList updated;
    bool replaced = false;
    for (const ServerId server : old) {
      if (server == remap.from) {
        updated.push_back(remap.to);
        replaced = true;
      } else {
        updated.push_back(server);
      }
    }
    if (!replaced) return false;
    next->choices[remap.chunk] = updated;
  }
  next->epoch = delta.epoch;
  next->history.push_back(delta);
  overlay_.store(std::shared_ptr<const Overlay>(std::move(next)),
                 std::memory_order_release);
  return true;
}

std::vector<PlacementDelta> EpochedPlacement::history() const {
  return overlay_.load(std::memory_order_acquire)->history;
}

std::vector<PlacementDelta> EpochedPlacement::deltas_since(
    std::uint64_t epoch) const {
  const std::shared_ptr<const Overlay> overlay =
      overlay_.load(std::memory_order_acquire);
  std::vector<PlacementDelta> out;
  for (const PlacementDelta& delta : overlay->history) {
    if (delta.epoch > epoch) out.push_back(delta);
  }
  return out;
}

std::size_t EpochedPlacement::remapped_chunks() const {
  return overlay_.load(std::memory_order_acquire)->choices.size();
}

}  // namespace rlb::core
