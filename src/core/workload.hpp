// The request-sequence abstraction (the model's oblivious adversary).
//
// A workload emits, for each time step, a batch of up to m DISTINCT chunk
// ids (the model requires distinctness within a step — see the "basic
// observations" of Section 2).  Workloads are oblivious: they may not
// inspect the balancer, the placement seed, or any routing outcome —
// exactly the paper's adversary model.  Concrete generators live in
// src/workloads/.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace rlb::core {

/// Oblivious request-sequence generator.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Fill `out` with the chunk ids requested on time step `t` (cleared
  /// first).  Chunks within one batch must be distinct.
  virtual void fill_step(Time t, std::vector<ChunkId>& out) = 0;

  /// Upper bound on batch size (used for buffer reservation).
  virtual std::size_t max_requests_per_step() const = 0;
};

}  // namespace rlb::core
