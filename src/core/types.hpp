// Fundamental model types shared across the library.
//
// Terminology follows the paper (Section 2): data is split into chunks, each
// replicated on d servers; on every time step up to m requests arrive to
// distinct chunks; each server has a FIFO queue of length q and processes
// g requests per step.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace rlb::core {

/// Identifier of a data chunk (the paper's "ball" identity).
using ChunkId = std::uint64_t;

/// Index of a server (the paper's "bin"), in [0, m).
using ServerId = std::uint32_t;

/// A synchronous time step index.
using Time = std::int64_t;

/// Upper bound on the replication factor d supported by the inline choice
/// list.  The paper's algorithms use d = O(1); 8 comfortably covers every
/// experiment.
inline constexpr unsigned kMaxReplication = 8;

/// The d candidate servers h_1(x), ..., h_d(x) for one chunk.  Fixed-capacity
/// inline storage: routing is on the hot path and must not allocate.
class ChoiceList {
 public:
  ChoiceList() = default;

  void push_back(ServerId s) noexcept {
    assert(size_ < kMaxReplication);
    servers_[size_++] = s;
  }

  ServerId operator[](unsigned i) const noexcept {
    assert(i < size_);
    return servers_[i];
  }

  unsigned size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const ServerId* begin() const noexcept { return servers_.data(); }
  const ServerId* end() const noexcept { return servers_.data() + size_; }

  bool contains(ServerId s) const noexcept {
    for (unsigned i = 0; i < size_; ++i) {
      if (servers_[i] == s) return true;
    }
    return false;
  }

 private:
  std::array<ServerId, kMaxReplication> servers_{};
  unsigned size_ = 0;
};

/// One queued client request: which chunk it asks for and when it arrived
/// (used for latency accounting; latency = completion step − arrival step).
struct Request {
  ChunkId chunk = 0;
  Time arrival = 0;
};

}  // namespace rlb::core
