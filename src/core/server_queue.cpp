#include "core/server_queue.hpp"

#include <cassert>
#include <stdexcept>

namespace rlb::core {

ServerQueue::ServerQueue(std::size_t capacity)
    : buffer_(capacity), capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("ServerQueue: capacity must be >= 1");
  }
}

bool ServerQueue::push(const Request& request) noexcept {
  if (size_ == capacity_) return false;
  buffer_[(head_ + size_) % capacity_] = request;
  ++size_;
  return true;
}

const Request& ServerQueue::front() const noexcept {
  assert(size_ > 0);
  return buffer_[head_];
}

Request ServerQueue::pop() noexcept {
  assert(size_ > 0);
  Request out = buffer_[head_];
  head_ = (head_ + 1) % capacity_;
  --size_;
  return out;
}

std::size_t ServerQueue::clear() noexcept {
  const std::size_t dropped = size_;
  head_ = 0;
  size_ = 0;
  return dropped;
}

}  // namespace rlb::core
