#include "core/simulator.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace rlb::core {

SimResult simulate(LoadBalancer& balancer, Workload& workload,
                   const SimConfig& config) {
  static obs::Histogram sim_time_hist("time.simulate_ns");
  static obs::Histogram step_time_hist("time.step_ns");
  static obs::Gauge safety_gauge("safety.worst_ratio");
  static obs::Counter flush_counter("sim.flushes");
  static obs::Counter crash_counter("fault.crashes");
  static obs::Counter recovery_counter("fault.recoveries");
  static obs::Gauge down_gauge("fault.servers_down");
  obs::ObsTimer sim_timer("simulate", &sim_time_hist,
                          static_cast<std::uint64_t>(config.steps));

  SimResult result;
  result.metrics = Metrics(config.latency_hist_max);

  std::vector<ChunkId> batch;
  batch.reserve(workload.max_requests_per_step());
  std::vector<std::uint32_t> backlog_snapshot;

  // Fault state lives with the run, not the schedule: the schedule only
  // proposes transitions, the simulator is the single writer of `up`.
  std::vector<std::uint8_t> up;
  std::vector<FailureTransition> transitions;
  std::size_t servers_down = 0;
  if (config.failure_schedule != nullptr) {
    up.assign(balancer.server_count(), 1);
  }

  std::uint64_t rejected_before_step = 0;
  for (std::size_t step = 0; step < config.steps; ++step) {
    const Time t = static_cast<Time>(step);
    rejected_before_step = result.metrics.rejected();

    if (config.failure_schedule != nullptr) {
      transitions.clear();
      config.failure_schedule->transitions(t, up, transitions);
      for (const FailureTransition& tr : transitions) {
        if (tr.server >= up.size()) continue;
        if (up[tr.server] == static_cast<std::uint8_t>(tr.up ? 1 : 0)) {
          continue;  // no-op transition (already in the requested state)
        }
        up[tr.server] = tr.up ? 1 : 0;
        balancer.set_server_up(tr.server, tr.up, config.dump_queue_on_crash,
                               result.metrics);
        if (tr.up) {
          --servers_down;
          ++result.recoveries;
          recovery_counter.add();
          RLB_TRACE_EVENT(obs::EventKind::kFault, "fault.up", tr.server,
                          static_cast<std::uint64_t>(step));
        } else {
          ++servers_down;
          ++result.crashes;
          crash_counter.add();
          RLB_TRACE_EVENT(obs::EventKind::kFault, "fault.down", tr.server,
                          static_cast<std::uint64_t>(step));
        }
      }
      if (!transitions.empty()) {
        down_gauge.set(static_cast<double>(servers_down));
      }
    }

    workload.fill_step(t, batch);
    // Time the step only when obs is live — the timer's two clock reads
    // per step are the one per-step cost tracing-off would otherwise pay.
    if (obs::enabled()) {
      obs::ObsTimer step_timer("sim.step", &step_time_hist,
                               static_cast<std::uint64_t>(step));
      balancer.step(t, batch, result.metrics);
    } else {
      balancer.step(t, batch, result.metrics);
    }

    if (config.sample_backlogs || config.check_safety) {
      balancer.backlogs(backlog_snapshot);
      if (config.sample_backlogs) {
        std::uint64_t step_max = 0;
        for (std::uint32_t b : backlog_snapshot) {
          result.metrics.on_backlog_sample(b);
          step_max = std::max<std::uint64_t>(step_max, b);
        }
        result.max_backlog = std::max(result.max_backlog, step_max);
      }
      if (config.check_safety) {
        const SafetyReport report = check_safe_distribution(backlog_snapshot);
        result.metrics.on_safety_check(report.safe);
        result.worst_safety_ratio =
            std::max(result.worst_safety_ratio, report.worst_ratio);
        safety_gauge.set(report.worst_ratio);
        if (!report.safe) {
          RLB_TRACE_EVENT(obs::EventKind::kCounter, "safety.violation",
                          static_cast<std::uint64_t>(step),
                          static_cast<std::uint64_t>(report.worst_ratio *
                                                     1000.0));
        }
      }
    }

    if (config.recorder != nullptr) {
      StepSample sample;
      sample.step = t;
      sample.submitted = result.metrics.submitted();
      sample.rejected = result.metrics.rejected();
      sample.completed = result.metrics.completed();
      sample.total_backlog = balancer.total_backlog();
      sample.step_rejected = result.metrics.rejected() - rejected_before_step;
      std::uint32_t step_max = 0;
      balancer.backlogs(backlog_snapshot);
      for (const std::uint32_t b : backlog_snapshot) {
        step_max = std::max(step_max, b);
      }
      sample.max_backlog = step_max;
      config.recorder->add(sample);
    }

    if (config.flush_every != 0 && (step + 1) % config.flush_every == 0) {
      flush_counter.add();
      RLB_TRACE_EVENT(obs::EventKind::kFlush, "sim.flush",
                      static_cast<std::uint64_t>(step),
                      balancer.total_backlog());
      balancer.flush(result.metrics);
    }
    ++result.steps_run;
  }
  result.down_at_end = servers_down;
  return result;
}

}  // namespace rlb::core
