#include "core/safe_distribution.hpp"

#include <algorithm>

namespace rlb::core {

std::vector<std::uint64_t> backlog_tail_counts(
    const std::vector<std::uint32_t>& backlogs) {
  std::uint32_t max_backlog = 0;
  for (std::uint32_t b : backlogs) max_backlog = std::max(max_backlog, b);

  // histogram[v] = #servers with backlog exactly v
  std::vector<std::uint64_t> histogram(max_backlog + 1, 0);
  for (std::uint32_t b : backlogs) ++histogram[b];

  // Suffix-sum into tail[j] = #servers with backlog > j.
  std::vector<std::uint64_t> tail(max_backlog + 1, 0);
  std::uint64_t acc = 0;
  for (std::uint32_t j = max_backlog; j + 1 > 0; --j) {
    // tail[j] counts backlogs strictly greater than j.
    tail[j] = acc;
    acc += histogram[j];
    if (j == 0) break;
  }
  return tail;
}

SafetyReport check_safe_distribution(
    const std::vector<std::uint32_t>& backlogs) {
  SafetyReport report;
  const auto m = static_cast<double>(backlogs.size());
  if (backlogs.empty()) return report;

  const std::vector<std::uint64_t> tail = backlog_tail_counts(backlogs);
  double bound = m;  // m / 2^j, starting at j = 0 → m (trivially satisfied)
  for (std::uint32_t j = 1; j < tail.size(); ++j) {
    bound = m / static_cast<double>(1ULL << std::min<std::uint32_t>(j, 62));
    const auto count = static_cast<double>(tail[j]);
    const double ratio = bound > 0.0 ? count / bound : (count > 0 ? 1e18 : 0.0);
    if (ratio > report.worst_ratio) report.worst_ratio = ratio;
    if (count > bound && report.safe) {
      report.safe = false;
      report.violated_level = j;
    }
  }
  return report;
}

std::vector<SafeSetLevel> safe_set_levels(
    const std::vector<std::uint32_t>& backlogs) {
  std::vector<SafeSetLevel> levels;
  if (backlogs.empty()) return levels;
  const auto m = static_cast<double>(backlogs.size());

  const std::vector<std::uint64_t> tail = backlog_tail_counts(backlogs);
  levels.reserve(tail.size() > 0 ? tail.size() - 1 : 0);
  for (std::uint32_t j = 1; j < tail.size(); ++j) {
    SafeSetLevel level;
    level.level = j;
    level.observed = tail[j];
    level.bound = m / static_cast<double>(1ULL << std::min<std::uint32_t>(j, 62));
    const auto count = static_cast<double>(tail[j]);
    level.ratio =
        level.bound > 0.0 ? count / level.bound : (count > 0 ? 1e18 : 0.0);
    levels.push_back(level);
  }
  return levels;
}

}  // namespace rlb::core
