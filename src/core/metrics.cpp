#include "core/metrics.hpp"

namespace rlb::core {

void Metrics::merge(const Metrics& other) {
  submitted_ += other.submitted_;
  rejected_ += other.rejected_;
  dropped_ += other.dropped_;
  completed_ += other.completed_;
  latency_hist_.merge(other.latency_hist_);
  backlog_stats_.merge(other.backlog_stats_);
  safety_checks_ += other.safety_checks_;
  safety_violations_ += other.safety_violations_;
}

}  // namespace rlb::core
