// Request-level and system-level measurement.
//
// Tracks exactly the paper's optimization criteria (Definitions 2.1, 2.2):
//   * rejection rate   = rejected / submitted
//   * average latency  = mean over completed requests of
//                        (completion step − arrival step)
//   * maximum latency  = max of the same
// plus the backlog observables used by the safety experiments.
//
// A request rejected *after* being queued (queue dump / periodic flush)
// counts as rejected, not accepted — matching Definition 2.1 where T_A(σ)
// counts requests ultimately accepted.
#pragma once

#include <cstdint>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace rlb::core {

/// Mutable measurement sink threaded through a simulation run.
class Metrics {
 public:
  explicit Metrics(std::size_t latency_hist_max = 1024)
      : latency_hist_(latency_hist_max) {}

  // -- Request lifecycle -----------------------------------------------
  void on_submitted(std::uint64_t count = 1) noexcept { submitted_ += count; }
  /// Rejected at arrival (queue full / routing failure).
  void on_rejected(std::uint64_t count = 1) noexcept { rejected_ += count; }
  /// Rejected after having been queued (dump / flush).
  void on_dropped_from_queue(std::uint64_t count = 1) noexcept {
    rejected_ += count;
    dropped_ += count;
  }
  /// Served; `latency` in whole time steps (completion − arrival).
  void on_completed(std::uint64_t latency) noexcept {
    ++completed_;
    latency_hist_.add(latency);
  }

  // -- System observables ----------------------------------------------
  /// Record one backlog observation (a single server at a single instant).
  void on_backlog_sample(std::uint64_t backlog) noexcept {
    backlog_stats_.add(static_cast<double>(backlog));
  }
  void on_safety_check(bool safe) noexcept {
    ++safety_checks_;
    if (!safe) ++safety_violations_;
  }

  // -- Read-out ----------------------------------------------------------
  std::uint64_t submitted() const noexcept { return submitted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint64_t dropped_from_queue() const noexcept { return dropped_; }
  std::uint64_t completed() const noexcept { return completed_; }
  /// Accepted per Definition 2.1: submitted minus rejected (includes the
  /// still-queued tail at the end of a run).
  std::uint64_t accepted() const noexcept { return submitted_ - rejected_; }

  double rejection_rate() const noexcept {
    return submitted_ ? static_cast<double>(rejected_) /
                            static_cast<double>(submitted_)
                      : 0.0;
  }
  double average_latency() const noexcept { return latency_hist_.mean(); }
  std::uint64_t max_latency() const noexcept {
    return latency_hist_.max_observed();
  }
  std::uint64_t latency_quantile(double q) const noexcept {
    return latency_hist_.quantile(q);
  }
  const stats::CountingHistogram& latency_histogram() const noexcept {
    return latency_hist_;
  }

  const stats::OnlineStats& backlog_stats() const noexcept {
    return backlog_stats_;
  }
  std::uint64_t safety_checks() const noexcept { return safety_checks_; }
  std::uint64_t safety_violations() const noexcept {
    return safety_violations_;
  }

  void merge(const Metrics& other);

 private:
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t completed_ = 0;
  stats::CountingHistogram latency_hist_;
  stats::OnlineStats backlog_stats_;
  std::uint64_t safety_checks_ = 0;
  std::uint64_t safety_violations_ = 0;
};

}  // namespace rlb::core
