// A bounded FIFO request queue — one server's backlog.
//
// Ring-buffer implementation: push/pop are O(1) and allocation-free after
// construction.  The queue enforces the model's hard length bound q; the
// *caller* (the routing policy) decides what overflow means — reject just
// the new request, or dump the whole queue (the §3 greedy variant).
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace rlb::core {

/// Bounded FIFO of Requests with O(1) push/pop and stable capacity.
class ServerQueue {
 public:
  /// `capacity` = the model's queue length q (>= 1).
  explicit ServerQueue(std::size_t capacity);

  /// Append if there is room.  Returns false (and changes nothing) when the
  /// queue already holds `capacity` requests.
  bool push(const Request& request) noexcept;

  /// True when no request can be accepted.
  bool full() const noexcept { return size_ == capacity_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Oldest request.  Precondition: !empty().
  const Request& front() const noexcept;

  /// Remove and return the oldest request.  Precondition: !empty().
  Request pop() noexcept;

  /// Drop every queued request, returning how many were dropped.
  std::size_t clear() noexcept;

 private:
  std::vector<Request> buffer_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest element
  std::size_t size_ = 0;
};

}  // namespace rlb::core
