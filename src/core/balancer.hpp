// The load-balancer abstraction every routing policy implements.
//
// A balancer owns the entire queueing discipline of the system — where each
// request goes, and how servers drain their queues within a step.  The
// simulator is policy-agnostic: it generates a request batch per time step,
// hands it to the balancer, and reads metrics and backlogs back out.
//
// Contract for step():
//   * `requests` are the distinct chunks requested during time step `t`
//     (at most m of them), in arrival order.  Routing must be online: each
//     request is routed before later ones are seen.
//   * The balancer interleaves delivery with processing per its own
//     discipline (e.g. greedy's m/g-per-sub-step schedule) and reports every
//     submit / accept / reject / completion to `metrics`.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/metrics.hpp"
#include "core/types.hpp"

namespace rlb::core {

/// Why a request was rejected.  The live metrics plane (engine STATS)
/// reports rejections by cause, so policies attribute each one.
enum class RejectCause : std::uint8_t {
  /// The chosen server's bounded queue was full (the paper's q-bound rule).
  kQueueFull = 0,
  /// Every one of the request's d replicas was down.
  kAllReplicasDown = 1,
  /// Dropped from a queue: crash-time dump, overflow dump, or flush().
  kQueueDrop = 2,
};

const char* to_string(RejectCause cause) noexcept;

/// Per-request lifecycle observer for live serving (src/engine/).
///
/// Metrics aggregates counts; a serving engine additionally needs to know
/// WHICH request finished so it can answer the waiting client.  Policies
/// that support sinks call back synchronously from step()/flush()/
/// set_server_up() with the chunk identity: every request delivered to
/// step() eventually produces exactly one on_served or on_rejected (queue
/// dumps and flushes report each dropped request individually).
class RequestSink {
 public:
  virtual ~RequestSink() = default;

  /// A queued request for chunk x finished on `server` after waiting
  /// `wait_steps` whole time steps (completion − arrival).
  virtual void on_served(ChunkId x, ServerId server,
                         std::uint64_t wait_steps) = 0;

  /// A request for chunk x was rejected — at admission (full queue / all
  /// replicas down), in a queue dump, at a crash, or in a flush.
  virtual void on_rejected(ChunkId x) = 0;

  /// Cause-attributed form; policies call this one.  The default forwards
  /// to on_rejected(x), so sinks that do not care about causes need not
  /// override it.
  virtual void on_rejected(ChunkId x, RejectCause /*cause*/) {
    on_rejected(x);
  }
};

/// Abstract routing policy + queueing discipline.
class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  /// Human-readable policy name (used in experiment tables).
  virtual std::string_view name() const = 0;

  /// Number of servers m.
  virtual std::size_t server_count() const = 0;

  /// Execute one synchronous time step `t` over the given request batch.
  virtual void step(Time t, std::span<const ChunkId> requests,
                    Metrics& metrics) = 0;

  /// Outstanding requests currently queued at server s (all of its queues).
  virtual std::uint32_t backlog(ServerId s) const = 0;

  /// Fill `out` with the backlog of every server (resized to m).
  virtual void backlogs(std::vector<std::uint32_t>& out) const;

  /// Sum of all backlogs.
  virtual std::uint64_t total_backlog() const;

  /// Reject every queued request (the paper's periodic "reset" knob),
  /// reporting the drops to `metrics`.
  virtual void flush(Metrics& metrics) = 0;

  // -- Fault injection ---------------------------------------------------

  /// Apply an up/down transition to server s.  Down means the server stops
  /// processing and the policy must fail over — route each request to an up
  /// server among its d choices, rejecting only when all d are down.  When
  /// `dump_queue` is set, a crash also rejects everything queued on s
  /// (reported through `metrics` as dropped-from-queue); otherwise the
  /// queue survives and resumes draining on recovery.
  ///
  /// The default is a no-op: policies without fault support silently keep
  /// routing to down servers (and fault-injection experiments should not be
  /// run against them — see server_up()).
  virtual void set_server_up(ServerId s, bool up, bool dump_queue,
                             Metrics& metrics);

  /// Current up/down state of server s.  Policies without fault support
  /// report every server as up.
  virtual bool server_up(ServerId s) const;

  // -- Live serving ------------------------------------------------------

  /// Install a per-request lifecycle sink (nullptr detaches).  Returns
  /// false when the policy cannot report per-request outcomes — the
  /// default — in which case it must not be used for live serving.
  virtual bool set_request_sink(RequestSink* sink);
};

}  // namespace rlb::core
