// Versioned placement epochs: an epoch-stamped remap overlay on top of
// the stateless core::Placement.
//
// The base placement is deliberately frozen (see placement.hpp) — the
// paper's reappearance dependencies come from chunks always hashing to
// the same d servers.  Repair, however, must move replicas when a server
// dies.  EpochedPlacement reconciles the two: the base hash stays the
// chunk's *identity* mapping, and every repair commit layers a
// PlacementDelta (chunk-level from→to remaps) on top, bumping a
// monotonically increasing epoch number.
//
// Reads are lock-free RCU: choices() loads one
// std::atomic<std::shared_ptr<const Overlay>> snapshot, so the router's
// forwarding hot path never takes a lock and an in-flight request keeps
// routing against the epoch it started on — cutover needs no
// stop-the-world barrier.  Writers (the repair coordinator) serialize on
// a mutex, build the next overlay off to the side, and publish it with
// one atomic store.
//
// Epochs advance by exactly one per applied delta, and the full delta
// history is retained so a peer at epoch N can be brought to N+k by
// replaying deltas_since(N) — the piggyback contract used by the router's
// heartbeats.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/placement.hpp"
#include "core/types.hpp"

namespace rlb::core {

/// One replica move: chunk's replica on `from` is now on `to`.
struct ChunkRemap {
  ChunkId chunk = 0;
  ServerId from = 0;
  ServerId to = 0;

  friend bool operator==(const ChunkRemap& a, const ChunkRemap& b) {
    return a.chunk == b.chunk && a.from == b.from && a.to == b.to;
  }
};

/// An atomic batch of remaps committing one epoch transition: applying
/// `remaps` to the placement at epoch-1 yields the placement at `epoch`.
struct PlacementDelta {
  std::uint64_t epoch = 0;
  std::vector<ChunkRemap> remaps;
};

/// Append the delta's canonical little-endian encoding to `out`:
/// u64 epoch, u32 count, then per remap u64 chunk, u32 from, u32 to.
void encode_placement_delta(const PlacementDelta& delta,
                            std::vector<std::uint8_t>& out);

/// Decode one delta from exactly `size` bytes (trailing bytes = failure).
[[nodiscard]] bool decode_placement_delta(const std::uint8_t* data,
                                          std::size_t size,
                                          PlacementDelta& out);

/// Placement with an epoch-stamped remap overlay.  Reads are lock-free
/// and wait-free of writers; apply() serializes writers internally.
class EpochedPlacement {
 public:
  EpochedPlacement(std::size_t servers, unsigned replication,
                   std::uint64_t seed,
                   PlacementMode mode = PlacementMode::kUniform);

  /// The chunk's current d servers: the overlay entry when the chunk has
  /// ever been remapped, the stable base hash otherwise.  Lock-free.
  [[nodiscard]] ChoiceList choices(ChunkId chunk) const;

  /// Current epoch; 0 until the first delta commits.  Lock-free.
  [[nodiscard]] std::uint64_t epoch() const;

  /// Commit one delta.  Transactional: either every remap applies and the
  /// epoch advances to delta.epoch, or nothing changes.  Fails when
  /// delta.epoch != epoch() + 1, when a remap's `from` is not among the
  /// chunk's current choices, or when `to` already is (a remap whose
  /// from == to is rejected too).  Thread-safe against other writers and
  /// concurrent readers.
  bool apply(const PlacementDelta& delta);

  /// Every delta applied so far, in epoch order (epoch 1 first).
  [[nodiscard]] std::vector<PlacementDelta> history() const;

  /// The suffix of history() strictly after `epoch` — what a peer at that
  /// epoch must replay to catch up.
  [[nodiscard]] std::vector<PlacementDelta> deltas_since(
      std::uint64_t epoch) const;

  /// Number of chunks whose current choices differ from the base hash.
  [[nodiscard]] std::size_t remapped_chunks() const;

  const Placement& base() const noexcept { return base_; }
  std::size_t servers() const noexcept { return base_.servers(); }
  unsigned replication() const noexcept { return base_.replication(); }

 private:
  struct Overlay {
    std::uint64_t epoch = 0;
    std::unordered_map<ChunkId, ChoiceList> choices;
    std::vector<PlacementDelta> history;
  };

  Placement base_;
  std::atomic<std::shared_ptr<const Overlay>> overlay_;
  std::mutex apply_mu_;  // serializes writers; readers never touch it
};

}  // namespace rlb::core
