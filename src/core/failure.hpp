// Fault injection: per-server crash/recover schedules.
//
// The paper's placement is frozen — a chunk's d candidate servers can never
// be re-rolled — so a server failure permanently removes one of a chunk's
// few routing options.  That is exactly the regime where reappearance
// dependencies bite hardest (cf. Aspnes–Yang–Yin's unreliable-machines
// model), and the failure/recovery workload family this header opens.
//
// A FailureSchedule is a pluggable source of up/down transitions, consulted
// by core::simulate at the start of every step.  Schedules are oblivious
// (like workloads): they see only the current up/down state and the clock,
// never the balancer or the placement — and they are deterministic in their
// seed, so parallel trials aggregate identically regardless of thread
// scheduling.  The simulator applies transitions through
// LoadBalancer::set_server_up, which is where failover policy lives.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "stats/rng.hpp"

namespace rlb::core {

/// One up/down transition taking effect at the start of a step.
struct FailureTransition {
  ServerId server = 0;
  /// New state: false = crash, true = recover.
  bool up = false;
};

/// Pluggable source of per-step fault transitions.
class FailureSchedule {
 public:
  virtual ~FailureSchedule() = default;

  /// Append the transitions taking effect at the start of step `t` to
  /// `out` (not cleared).  `up[s] != 0` is server s's current state; the
  /// simulator ignores no-op transitions (crash of a down server etc.).
  /// Called once per step with strictly increasing `t`.
  virtual void transitions(Time t, const std::vector<std::uint8_t>& up,
                           std::vector<FailureTransition>& out) = 0;
};

/// A fixed list of (step, server, up) events — deterministic outage scripts
/// ("servers 3 and 7 crash at step 100, recover at step 250").
class ScriptedFailureSchedule final : public FailureSchedule {
 public:
  struct Event {
    Time step = 0;
    ServerId server = 0;
    bool up = false;
  };

  /// Events may be given in any order; they are sorted by step (stable for
  /// equal steps, preserving script order).
  explicit ScriptedFailureSchedule(std::vector<Event> events);

  void transitions(Time t, const std::vector<std::uint8_t>& up,
                   std::vector<FailureTransition>& out) override;

 private:
  std::vector<Event> events_;  // sorted by step
};

/// Seeded memoryless crash/recover process: each step, every up server
/// crashes with probability `fail_rate` and every down server recovers with
/// probability 1/mttr (mttr = mean time to recovery in steps; mttr == 0
/// means crashed servers never come back).
class BernoulliFailureSchedule final : public FailureSchedule {
 public:
  BernoulliFailureSchedule(double fail_rate, double mttr, std::uint64_t seed);

  void transitions(Time t, const std::vector<std::uint8_t>& up,
                   std::vector<FailureTransition>& out) override;

  double fail_rate() const noexcept { return fail_rate_; }
  double mttr() const noexcept { return mttr_; }

 private:
  double fail_rate_;
  double mttr_;
  stats::Rng rng_;
};

/// Correlated failures: servers are partitioned into `racks` contiguous
/// racks (sizes differ by at most one); each step every up rack loses ALL
/// of its servers with probability `rack_fail_rate`, and every down rack
/// recovers wholesale with probability 1/mttr.  A rack's state is read off
/// its first server, so racks always transition as a unit.
class RackFailureSchedule final : public FailureSchedule {
 public:
  RackFailureSchedule(std::size_t racks, double rack_fail_rate, double mttr,
                      std::uint64_t seed);

  void transitions(Time t, const std::vector<std::uint8_t>& up,
                   std::vector<FailureTransition>& out) override;

  std::size_t racks() const noexcept { return racks_; }

 private:
  std::size_t racks_;
  double rack_fail_rate_;
  double mttr_;
  stats::Rng rng_;
};

}  // namespace rlb::core
