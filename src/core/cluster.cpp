#include "core/cluster.hpp"

#include <stdexcept>

namespace rlb::core {

Cluster::Cluster(std::size_t servers, std::size_t queue_capacity)
    : backlog_(servers, 0), up_(servers, 1), capacity_(queue_capacity) {
  if (servers == 0) throw std::invalid_argument("Cluster: zero servers");
  queues_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    queues_.emplace_back(queue_capacity);
  }
}

bool Cluster::push(ServerId s, const Request& request) noexcept {
  if (!queues_[s].push(request)) return false;
  ++backlog_[s];
  ++total_backlog_;
  return true;
}

Request Cluster::pop(ServerId s) noexcept {
  Request out = queues_[s].pop();
  --backlog_[s];
  --total_backlog_;
  return out;
}

std::size_t Cluster::clear_server(ServerId s) noexcept {
  const std::size_t dropped = queues_[s].clear();
  total_backlog_ -= dropped;
  backlog_[s] = 0;
  return dropped;
}

void Cluster::set_up(ServerId s, bool up) noexcept {
  const std::uint8_t next = up ? 1 : 0;
  if (up_[s] == next) return;
  up_[s] = next;
  if (up) {
    --down_count_;
  } else {
    ++down_count_;
  }
}

std::size_t Cluster::clear_all() noexcept {
  std::size_t dropped = 0;
  for (std::size_t s = 0; s < queues_.size(); ++s) {
    dropped += clear_server(static_cast<ServerId>(s));
  }
  return dropped;
}

}  // namespace rlb::core
