#include "core/placement_graph.hpp"

#include <numeric>
#include <stdexcept>

namespace rlb::core {

namespace {

struct Dsu {
  std::vector<std::size_t> parent;
  std::vector<std::size_t> vertices;
  std::vector<std::size_t> edges;

  explicit Dsu(std::size_t n) : parent(n), vertices(n, 1), edges(n, 0) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void add_edge(std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra == rb) {
      ++edges[ra];
      return;
    }
    parent[rb] = ra;
    vertices[ra] += vertices[rb];
    edges[ra] += edges[rb] + 1;
  }
};

}  // namespace

PlacementGraphStats analyze_edge_list(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    std::size_t servers, unsigned g) {
  if (servers == 0) {
    throw std::invalid_argument("analyze_edge_list: zero servers");
  }
  Dsu dsu(servers);
  for (const auto& [a, b] : edges) {
    if (a >= servers || b >= servers) {
      throw std::out_of_range("analyze_edge_list: endpoint out of range");
    }
    dsu.add_edge(a, b);
  }

  PlacementGraphStats stats;
  stats.servers = servers;
  stats.chunks = edges.size();
  for (std::size_t v = 0; v < servers; ++v) {
    if (dsu.find(v) != v) continue;  // not a component root
    ++stats.components;
    const std::size_t vertex_count = dsu.vertices[v];
    const std::size_t edge_count = dsu.edges[v];
    stats.largest_component = std::max(stats.largest_component, vertex_count);
    if (edge_count + 1 <= vertex_count) {
      ++stats.tree_components;
    } else if (edge_count == vertex_count) {
      ++stats.unicyclic_components;
    } else {
      ++stats.complex_components;
    }
    const std::int64_t excess =
        static_cast<std::int64_t>(edge_count) -
        static_cast<std::int64_t>(g) * static_cast<std::int64_t>(vertex_count);
    stats.max_overload_excess = std::max(stats.max_overload_excess, excess);
  }
  return stats;
}

PlacementGraphStats analyze_placement_graph(const Placement& placement,
                                            std::size_t chunk_count,
                                            unsigned g) {
  if (placement.replication() != 2) {
    throw std::invalid_argument(
        "analyze_placement_graph: requires replication d = 2");
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(chunk_count);
  for (ChunkId x = 0; x < chunk_count; ++x) {
    const ChoiceList choices = placement.choices(x);
    edges.emplace_back(choices[0], choices[1]);
  }
  return analyze_edge_list(edges, placement.servers(), g);
}

}  // namespace rlb::core
