// Chunk-to-server placement: the paper's h_1(x), ..., h_d(x).
//
// Each chunk is replicated on d distinct servers chosen "randomly" — here,
// by seeded hashing, so placement is stateless, deterministic given the
// seed, and — crucially for reappearance dependencies — STABLE: the same
// chunk id always maps to the same d servers, no matter how many times it
// is requested.  This stability is the entire source of the paper's
// technical difficulty, so the placement layer is deliberately incapable of
// refreshing a chunk's choices.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace rlb::core {

/// How a chunk's d replica servers are drawn.
enum class PlacementMode {
  /// Each replica uniform over all m servers (distinct); the paper's model.
  kUniform,
  /// Replica i uniform over the i-th of d contiguous groups of servers —
  /// the placement Vöcking's LEFT[d] strategy requires (used by the
  /// "greedy-left" policy).  Groups partition [0, m); sizes differ by at
  /// most one.
  kGrouped,
  /// Dynamo-style consistent hashing: servers own virtual nodes on a hash
  /// ring; a chunk's d replicas are the first d DISTINCT servers clockwise
  /// from the chunk's ring position.  Production KV stores (Dynamo,
  /// Cassandra — both in the paper's related work) place this way to make
  /// membership changes cheap; the cost is CORRELATED replicas (successors
  /// on the ring), which experiment E19 measures against the paper's
  /// independent placement.
  kVirtualRing,
};

/// Stateless replicated placement of chunks onto m servers.
class Placement {
 public:
  /// `servers` = m, `replication` = d in [1, kMaxReplication], `seed` drives
  /// the hash functions.  Requires replication <= servers.
  Placement(std::size_t servers, unsigned replication, std::uint64_t seed,
            PlacementMode mode = PlacementMode::kUniform);

  /// The d distinct servers storing chunk x.  Deterministic in (x, seed).
  [[nodiscard]] ChoiceList choices(ChunkId chunk) const noexcept;

  std::size_t servers() const noexcept { return servers_; }
  unsigned replication() const noexcept { return replication_; }
  std::uint64_t seed() const noexcept { return seed_; }
  PlacementMode mode() const noexcept { return mode_; }

  /// First server of group g (kGrouped); group d is one-past-the-end.
  std::size_t group_begin(unsigned group) const noexcept;

  /// Virtual nodes per server on the ring (kVirtualRing).
  static constexpr unsigned kVirtualNodesPerServer = 16;

 private:
  ChoiceList uniform_choices(ChunkId chunk) const noexcept;
  ChoiceList grouped_choices(ChunkId chunk) const noexcept;
  ChoiceList ring_choices(ChunkId chunk) const noexcept;

  std::size_t servers_;
  unsigned replication_;
  std::uint64_t seed_;
  PlacementMode mode_;
  /// Sorted (position, server) virtual nodes; built once for kVirtualRing.
  std::vector<std::pair<std::uint64_t, ServerId>> ring_;
};

}  // namespace rlb::core
