// The paper's safe-distribution invariant (Definition 3.2).
//
// A backlog vector over m servers is "safe" when, for every j >= 1, at most
// m / 2^j servers have backlog strictly greater than j.  Lemma 3.4 proves
// greedy preserves safety across sub-steps w.h.p.; experiment E2 checks the
// invariant empirically at every sub-step boundary.
#pragma once

#include <cstdint>
#include <vector>

namespace rlb::core {

/// Outcome of one safety check.
struct SafetyReport {
  bool safe = true;
  /// The smallest level j at which the bound fails (0 when safe).
  std::uint32_t violated_level = 0;
  /// max over j of  |{servers with backlog > j}| / (m / 2^j); <= 1 iff safe.
  double worst_ratio = 0.0;
};

/// Checks Definition 3.2 against `backlogs` (one entry per server).
[[nodiscard]] SafetyReport check_safe_distribution(
    const std::vector<std::uint32_t>& backlogs);

/// tail[j] = number of servers with backlog > j, for j in [0, max backlog].
[[nodiscard]] std::vector<std::uint64_t> backlog_tail_counts(
    const std::vector<std::uint32_t>& backlogs);

}  // namespace rlb::core
