// The paper's safe-distribution invariant (Definition 3.2).
//
// A backlog vector over m servers is "safe" when, for every j >= 1, at most
// m / 2^j servers have backlog strictly greater than j.  Lemma 3.4 proves
// greedy preserves safety across sub-steps w.h.p.; experiment E2 checks the
// invariant empirically at every sub-step boundary.
#pragma once

#include <cstdint>
#include <vector>

namespace rlb::core {

/// Outcome of one safety check.
struct SafetyReport {
  bool safe = true;
  /// The smallest level j at which the bound fails (0 when safe).
  std::uint32_t violated_level = 0;
  /// max over j of  |{servers with backlog > j}| / (m / 2^j); <= 1 iff safe.
  double worst_ratio = 0.0;
};

/// Checks Definition 3.2 against `backlogs` (one entry per server).
[[nodiscard]] SafetyReport check_safe_distribution(
    const std::vector<std::uint32_t>& backlogs);

/// tail[j] = number of servers with backlog > j, for j in [0, max backlog].
[[nodiscard]] std::vector<std::uint64_t> backlog_tail_counts(
    const std::vector<std::uint32_t>& backlogs);

/// One level of the Definition 3.2 envelope, as exposed by the live
/// safe-set monitor: at level j the bound is m / 2^j and `observed` counts
/// servers with backlog strictly greater than j.
struct SafeSetLevel {
  std::uint32_t level = 0;   ///< j
  std::uint64_t observed = 0;
  double bound = 0.0;        ///< m / 2^j
  double ratio = 0.0;        ///< observed / bound; > 1 means violated
};

/// The full per-level view of check_safe_distribution: one entry per level
/// j in [1, max backlog], in increasing j.  Empty when no server has
/// backlog > 1 (every level trivially holds) or `backlogs` is empty.
/// max over entries of `ratio` equals SafetyReport::worst_ratio.
[[nodiscard]] std::vector<SafeSetLevel> safe_set_levels(
    const std::vector<std::uint32_t>& backlogs);

}  // namespace rlb::core
