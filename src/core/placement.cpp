#include "core/placement.hpp"

#include <algorithm>
#include <stdexcept>

#include "hashing/hash.hpp"
#include "stats/rng.hpp"

namespace rlb::core {

Placement::Placement(std::size_t servers, unsigned replication,
                     std::uint64_t seed, PlacementMode mode)
    : servers_(servers), replication_(replication), seed_(seed), mode_(mode) {
  if (servers == 0) throw std::invalid_argument("Placement: zero servers");
  if (replication == 0 || replication > kMaxReplication) {
    throw std::invalid_argument("Placement: replication out of [1, 8]");
  }
  if (replication > servers) {
    throw std::invalid_argument("Placement: replication exceeds server count");
  }
  if (mode == PlacementMode::kVirtualRing) {
    // Build the virtual-node ring once: kVirtualNodesPerServer positions
    // per server, sorted by ring position.
    ring_.reserve(servers_ * kVirtualNodesPerServer);
    for (std::size_t s = 0; s < servers_; ++s) {
      for (unsigned v = 0; v < kVirtualNodesPerServer; ++v) {
        const std::uint64_t position = hashing::hash64(
            (static_cast<std::uint64_t>(s) << 16) | v,
            stats::derive_seed(seed_, 0x816));
        ring_.emplace_back(position, static_cast<ServerId>(s));
      }
    }
    std::sort(ring_.begin(), ring_.end());
  }
}

std::size_t Placement::group_begin(unsigned group) const noexcept {
  // Groups of size floor(m/d) with the first m%d groups one larger.
  const std::size_t base = servers_ / replication_;
  const std::size_t extra = servers_ % replication_;
  return static_cast<std::size_t>(group) * base +
         std::min<std::size_t>(group, extra);
}

ChoiceList Placement::uniform_choices(ChunkId chunk) const noexcept {
  ChoiceList list;
  // Replica i hashes with derived seed (seed, i); collisions with earlier
  // replicas are resolved by rehashing with a bumped counter, keeping the d
  // servers distinct while remaining a pure function of (chunk, seed).
  std::uint64_t salt = 0;
  for (unsigned i = 0; i < replication_; ++i) {
    ServerId candidate;
    do {
      const std::uint64_t replica_seed =
          stats::derive_seed(seed_, (static_cast<std::uint64_t>(i) << 32) | salt);
      candidate = static_cast<ServerId>(
          hashing::hash_to_bucket(chunk, replica_seed, servers_));
      ++salt;
    } while (list.contains(candidate));
    list.push_back(candidate);
  }
  return list;
}

ChoiceList Placement::grouped_choices(ChunkId chunk) const noexcept {
  // Replica i lands in group i; groups are disjoint, so distinctness is
  // automatic.
  ChoiceList list;
  for (unsigned i = 0; i < replication_; ++i) {
    const std::size_t begin = group_begin(i);
    const std::size_t span = group_begin(i + 1) - begin;
    const std::uint64_t replica_seed =
        stats::derive_seed(seed_, (static_cast<std::uint64_t>(i) << 32) | 1u);
    list.push_back(static_cast<ServerId>(
        begin + hashing::hash_to_bucket(chunk, replica_seed, span)));
  }
  return list;
}

ChoiceList Placement::ring_choices(ChunkId chunk) const noexcept {
  // First d distinct servers clockwise from the chunk's ring position.
  const std::uint64_t position =
      hashing::hash64(chunk, stats::derive_seed(seed_, 0x817));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(position, ServerId{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  ChoiceList list;
  std::size_t index = static_cast<std::size_t>(it - ring_.begin());
  for (std::size_t scanned = 0;
       list.size() < replication_ && scanned < ring_.size(); ++scanned) {
    const ServerId server = ring_[index % ring_.size()].second;
    if (!list.contains(server)) list.push_back(server);
    ++index;
  }
  return list;
}

ChoiceList Placement::choices(ChunkId chunk) const noexcept {
  switch (mode_) {
    case PlacementMode::kUniform:
      return uniform_choices(chunk);
    case PlacementMode::kGrouped:
      return grouped_choices(chunk);
    case PlacementMode::kVirtualRing:
      return ring_choices(chunk);
  }
  return uniform_choices(chunk);  // unreachable
}

}  // namespace rlb::core
