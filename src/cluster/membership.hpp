// Backend membership: the router's heartbeat table.
//
// One entry per backend, driven by two independent signal sources:
//
//   * the heartbeat prober (periodic lightweight STATS ping) reports
//     record_success() — carrying the piggybacked queue-depth gauges from
//     the STATS_RESP — or record_miss() on timeout/connect failure;
//   * the data plane reports force_down() the instant an upstream
//     connection drops (a SIGKILL'd backend surfaces here in
//     milliseconds, long before `miss_threshold` heartbeats elapse) and
//     note_forwarded()/note_answered() around every in-flight hop.
//
// The health state machine is deliberately asymmetric — fast down, slow
// up: `miss_threshold` consecutive misses (or one data-plane drop) mark a
// backend kDown; the first heartbeat success after that only promotes it
// to kProbation, and `probation_successes` consecutive successes are
// required before the backend is routable (kUp) again.  That damping is
// the reappearance concern of the paper made operational: a flapping
// backend must prove itself before it re-enters the choice set.
//
// Backlog estimates combine the last piggybacked gauge (stale by up to a
// heartbeat interval) with the router's own count of hops forwarded since
// — the local delta is exactly the information the paper's instant-
// backlog balancer has and a heartbeat plane lacks (docs/CLUSTER.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace rlb::cluster {

enum class BackendHealth : std::uint8_t { kDown = 0, kProbation = 1, kUp = 2 };

const char* to_string(BackendHealth health) noexcept;

struct MembershipConfig {
  /// Consecutive heartbeat misses before kUp -> kDown.
  unsigned miss_threshold = 3;
  /// Consecutive heartbeat successes before kProbation -> kUp.
  unsigned probation_successes = 2;
};

/// Everything the stats plane reports about one backend.
struct BackendView {
  std::uint32_t id = 0;
  BackendHealth health = BackendHealth::kDown;
  std::uint64_t backlog_gauge = 0;  ///< last piggybacked queue depth
  std::uint64_t inflight = 0;       ///< hops forwarded, not yet answered
  std::uint64_t load_estimate = 0;  ///< backlog_gauge + inflight
  std::uint64_t heartbeats_ok = 0;
  std::uint64_t heartbeats_missed = 0;
  std::uint64_t transitions_down = 0;
  std::uint64_t completed = 0;  ///< from the last snapshot (backend-reported)
  std::uint32_t servers = 0;
  std::uint32_t servers_down = 0;
  /// EMA of the heartbeat round trip (3/4 old + 1/4 new); 0 until the
  /// first sample.  rlb_trace uses half of this as the clock-anchor
  /// offset correction for merged cross-process spans.
  std::uint64_t rtt_ema_us = 0;
};

/// Per-backend fields piggybacked on a heartbeat STATS_RESP.
struct HeartbeatSample {
  std::uint64_t backlog = 0;  ///< queue depth gauges summed over shards
  std::uint64_t completed = 0;
  std::uint32_t servers = 0;
  std::uint32_t servers_down = 0;
  /// Measured STATS round trip for this heartbeat, microseconds.
  std::uint64_t rtt_us = 0;
};

/// Health-transition callback: fired once per state change with the old
/// and new health.  Invoked on the thread that caused the transition (a
/// heartbeat prober or a data-plane drop) AFTER the membership lock is
/// released, so a subscriber may call back into any Membership accessor.
/// Subscribers must be fast or hand off: they run inline on probe paths.
using TransitionFn = std::function<void(std::uint32_t id, BackendHealth from,
                                        BackendHealth to)>;

class Membership {
 public:
  Membership(std::size_t backends, MembershipConfig config);

  /// Register a transition subscriber (see TransitionFn).  Not
  /// thread-safe against concurrent record_*/force_down — subscribe
  /// before the heartbeat planes start.
  void subscribe(TransitionFn on_transition);

  void record_success(std::uint32_t id, const HeartbeatSample& sample);
  void record_miss(std::uint32_t id);
  /// Data-plane drop: immediate kDown regardless of heartbeat history.
  void force_down(std::uint32_t id);

  void note_forwarded(std::uint32_t id);
  void note_answered(std::uint32_t id);

  [[nodiscard]] bool is_live(std::uint32_t id) const;
  [[nodiscard]] std::uint64_t load_estimate(std::uint32_t id) const;

  /// Least-loaded live backend among `candidates` (ties -> lowest id),
  /// excluding ids whose bit is set in `exclude_mask` (already-tried
  /// backends during a retry).  Returns -1 when none qualifies.
  [[nodiscard]] int pick(const std::uint32_t* candidates, std::size_t count,
                         std::uint64_t exclude_mask = 0) const;

  [[nodiscard]] BackendView view(std::uint32_t id) const;
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] std::size_t live_count() const;

 private:
  // The per-hop data-plane surface (health / backlog_gauge / inflight) is
  // atomic so pick(), is_live(), load_estimate(), note_forwarded() and
  // note_answered() never take the lock: they run once per forwarded hop
  // and would otherwise serialize the router's request threads.  The
  // values are advisory routing state — relaxed ordering is enough; a
  // picker racing a health transition merely routes one request on a
  // one-heartbeat-stale view.  The control-plane fields (miss/success
  // streaks, heartbeat counters, EMA) stay behind mu_, written only by
  // the heartbeat probers and drop events.
  struct Slot {
    std::atomic<BackendHealth> health{BackendHealth::kDown};
    std::atomic<std::uint64_t> backlog_gauge{0};
    std::atomic<std::uint64_t> inflight{0};
    unsigned misses = 0;
    unsigned successes = 0;
    std::uint64_t heartbeats_ok = 0;
    std::uint64_t heartbeats_missed = 0;
    std::uint64_t transitions_down = 0;
    std::uint64_t completed = 0;
    std::uint32_t servers = 0;
    std::uint32_t servers_down = 0;
    std::uint64_t rtt_ema_us = 0;
  };

  /// Fire every subscriber for one transition.  Called with mu_ NOT held.
  void notify(std::uint32_t id, BackendHealth from, BackendHealth to) const;

  MembershipConfig config_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  /// Installed before the probers start, read-only afterwards.
  std::vector<TransitionFn> subscribers_;
};

}  // namespace rlb::cluster
