// The rlb_router front-end: the paper's d-choice policy lifted one level,
// from servers inside a process to backend PROCESSES across a cluster.
//
// A Router speaks the ordinary wire protocol to clients (rlb_loadgen works
// unchanged): its NetServer reactor decodes REQUEST frames, the key is
// hashed to a chunk, and core::Placement maps the chunk to its d candidate
// *backends* — the same stable, reappearance-inducing placement the
// in-process engine applies to servers.  The request is forwarded to the
// least-estimated-backlog live candidate over that backend's multiplexed
// UpstreamConn, with the request id remapped to a router-assigned hop id
// (client ids from different connections collide; hop ids never do).  The
// response is relayed back asynchronously through the reactor via
// send_response() keyed by the recorded {conn token, client id}.
//
// Failure handling is budgeted: a hop that times out, or whose backend
// connection drops, is retried on the next-best untried live candidate
// until the per-request attempt budget (= d) is spent, then rejected with
// a hop-level cause — Status::kRejectUpstreamDown when no live candidate
// was available, Status::kRejectUpstreamTimeout when forwarded attempts
// exhausted the timeout budget.  Membership (cluster/membership.hpp) is
// fed by per-backend heartbeat probers and by data-plane drop events.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/membership.hpp"
#include "core/placement_epoch.hpp"
#include "net/stats.hpp"
#include "repair/coordinator.hpp"

namespace rlb::cluster {

struct BackendEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parse "host:port,host:port,..." (host defaults to 127.0.0.1 when a bare
/// port is given).  Throws std::invalid_argument on malformed input.
std::vector<BackendEndpoint> parse_backend_list(const std::string& spec);

struct RouterConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  std::size_t max_connections = 256;

  std::vector<BackendEndpoint> backends;
  /// Cluster-level replication: each chunk's candidate backend count.
  unsigned replication = 2;
  /// Chunk-id space for the key hash (mirrors rlbd --chunks).
  std::uint64_t chunks = 1u << 16;
  std::uint64_t seed = 1;

  std::uint64_t heartbeat_interval_ms = 100;
  /// Receive timeout for one heartbeat STATS round trip.
  std::uint64_t heartbeat_timeout_ms = 100;
  MembershipConfig membership;

  /// Per-hop response deadline; an expired hop is retried or rejected.
  std::uint64_t request_timeout_ms = 2000;
  /// Total forward attempts per request; 0 = one per candidate backend.
  unsigned max_attempts = 0;

  /// Self-healing repair plane (repair/coordinator.hpp); disabled by
  /// default.  When enabled the router hosts a RepairCoordinator fed by
  /// membership transitions.
  repair::RepairConfig repair;
  /// Placement deltas applied at construction, before serving starts —
  /// benches and tests use this to start from a skewed placement (each
  /// delta's epoch must be 1 + the previous; an inapplicable delta throws
  /// std::invalid_argument).
  std::vector<core::PlacementDelta> initial_deltas;
};

/// Router-level counters (cumulative since start()).
struct RouterStats {
  std::uint64_t received = 0;       ///< REQUEST frames from clients
  std::uint64_t forwarded = 0;      ///< hop sends (retries included)
  std::uint64_t relayed_ok = 0;
  std::uint64_t relayed_reject = 0;  ///< backend-origin kReject
  std::uint64_t relayed_error = 0;
  std::uint64_t rejected_upstream_down = 0;     ///< no live candidate
  std::uint64_t rejected_upstream_timeout = 0;  ///< attempt budget spent
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;        ///< hop deadlines that expired
  std::uint64_t late_responses = 0;  ///< answers for already-retired hops
  std::uint64_t backend_drops = 0;   ///< data-plane disconnect events
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bind the client listener, dial every backend, launch heartbeat
  /// probers and the timeout sweeper.  Throws std::runtime_error when the
  /// listener cannot bind.
  void start();

  /// Reject every pending hop, tear down upstream connections and
  /// threads, drain the client listener.  Idempotent.
  void stop();

  std::uint16_t port() const noexcept;

  [[nodiscard]] RouterStats stats() const;
  [[nodiscard]] const Membership& membership() const;

  /// Current placement epoch (0 until the first repair commit).
  [[nodiscard]] std::uint64_t placement_epoch() const;
  /// Every placement delta committed so far, in epoch order.
  [[nodiscard]] std::vector<core::PlacementDelta> placement_history() const;
  /// Router-side repair counters (all-zero when repair is disabled).
  [[nodiscard]] net::RepairStats repair_stats() const;

  /// Cluster view as a StatsSnapshot (served for STATS pings): role =
  /// kRouter, one ShardStats row per backend — see docs/CLUSTER.md for
  /// the field mapping (e.g. ticks/batches carry heartbeat ok/miss
  /// counts, backlog carries the live load estimate).
  [[nodiscard]] net::StatsSnapshot snapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rlb::cluster
