#include "cluster/router.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/placement.hpp"
#include "core/placement_epoch.hpp"
#include "core/types.hpp"
#include "hashing/hash.hpp"
#include "net/client.hpp"
#include "net/events_wire.hpp"
#include "net/server.hpp"
#include "net/stats.hpp"
#include "net/trace_wire.hpp"
#include "net/upstream.hpp"
#include "obs/journal.hpp"
#include "obs/probes.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "repair/coordinator.hpp"

namespace rlb::cluster {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t bit(int backend) { return 1ULL << static_cast<unsigned>(backend); }

}  // namespace

std::vector<BackendEndpoint> parse_backend_list(const std::string& spec) {
  std::vector<BackendEndpoint> backends;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    if (item.empty()) {
      throw std::invalid_argument("backend list: empty entry in '" + spec +
                                  "'");
    }
    BackendEndpoint ep;
    const std::size_t colon = item.rfind(':');
    const std::string port_str =
        colon == std::string::npos ? item : item.substr(colon + 1);
    if (colon != std::string::npos) ep.host = item.substr(0, colon);
    char* parse_end = nullptr;
    const unsigned long port = std::strtoul(port_str.c_str(), &parse_end, 10);
    if (port_str.empty() || *parse_end != '\0' || port == 0 || port > 65535 ||
        ep.host.empty()) {
      throw std::invalid_argument("backend list: bad endpoint '" + item + "'");
    }
    ep.port = static_cast<std::uint16_t>(port);
    backends.push_back(std::move(ep));
    begin = end + 1;
    if (end == spec.size()) break;
  }
  if (backends.empty()) {
    throw std::invalid_argument("backend list: no endpoints in '" + spec + "'");
  }
  return backends;
}

struct Router::Impl {
  explicit Impl(RouterConfig cfg)
      : config(std::move(cfg)),
        replication(resolve_replication(config)),
        placement(config.backends.size(), replication, config.seed),
        membership(config.backends.size(), config.membership),
        server(net::ServerConfig{config.host, config.port,
                                 config.max_connections},
               [this](std::uint64_t token, const net::RequestMsg& request) {
                 handle_request(token, request);
               }),
        per_backend(config.backends.size()) {
    if (config.backends.size() > 64) {
      throw std::invalid_argument("Router: at most 64 backends (tried mask)");
    }
    if (config.chunks == 0) {
      throw std::invalid_argument("Router: chunks must be positive");
    }
    // Skewed-start hook: benches and the epoch-cutover tests inject a
    // pre-built remap history before any traffic or repair runs.
    for (const core::PlacementDelta& delta : config.initial_deltas) {
      if (!placement.apply(delta)) {
        throw std::invalid_argument("Router: inapplicable initial delta");
      }
    }
    if (config.repair.enabled) {
      std::vector<repair::RepairEndpoint> repair_backends;
      repair_backends.reserve(config.backends.size());
      for (const BackendEndpoint& ep : config.backends) {
        repair_backends.push_back(repair::RepairEndpoint{ep.host, ep.port});
      }
      repair::RepairCoordinator::Hooks hooks;
      hooks.is_live = [this](std::uint32_t id) {
        return membership.is_live(id);
      };
      hooks.load = [this](std::uint32_t id) {
        return membership.load_estimate(id);
      };
      coordinator = std::make_unique<repair::RepairCoordinator>(
          config.repair, std::move(repair_backends), config.chunks, placement,
          std::move(hooks));
    }
    // Subscribed before any prober starts (start() launches them), as
    // Membership::subscribe requires.  The journal records every health
    // transition whether or not repair is on; the coordinator is only
    // notified when it exists.
    membership.subscribe([this](std::uint32_t id, BackendHealth,
                                BackendHealth to) {
      switch (to) {
        case BackendHealth::kDown:
          obs::Journal::instance().append(obs::JournalType::kMemberDown, id);
          if (coordinator) coordinator->on_backend_down(id);
          break;
        case BackendHealth::kProbation:
          obs::Journal::instance().append(obs::JournalType::kMemberProbation,
                                          id);
          break;
        case BackendHealth::kUp:
          obs::Journal::instance().append(obs::JournalType::kMemberUp, id);
          if (coordinator) coordinator->on_backend_up(id);
          break;
      }
    });
    // Batched data plane: all forwards for one readable burst are
    // enqueued first, then every touched upstream drains in one writev
    // chain (one syscall per backend per burst, not per request).
    server.set_request_batch_handler(
        [this](const net::ServerRequest* batch, std::size_t count) {
          for (std::size_t i = 0; i < count; ++i) {
            handle_request(batch[i].conn_token, batch[i].msg);
          }
          flush_upstreams();
        });
    server.set_stats_handler(
        [this](std::uint64_t token, const net::StatsRequestMsg&) {
          server.send_stats(token, snapshot());
        });
    server.set_trace_handler(
        [this](std::uint64_t token, const net::TraceRequestMsg&) {
          server.send_trace(
              token, net::make_trace_snapshot(net::NodeRole::kRouter, 0));
        });
    server.set_events_handler(
        [this](std::uint64_t token, const net::EventsRequestMsg& req) {
          server.send_events(token, net::make_events_snapshot(
                                        net::NodeRole::kRouter, 0,
                                        req.cursor));
        });
  }

  static unsigned resolve_replication(const RouterConfig& cfg) {
    if (cfg.backends.empty()) {
      throw std::invalid_argument("Router: no backends configured");
    }
    unsigned d = cfg.replication == 0 ? 1 : cfg.replication;
    if (d > cfg.backends.size()) {
      d = static_cast<unsigned>(cfg.backends.size());
    }
    if (d > core::kMaxReplication) d = core::kMaxReplication;
    return d;
  }

  // ---- data plane ----------------------------------------------------
  //
  // The request path takes no router-global lock.  In-flight hops live in
  // a striped pending table (hop id & 15 picks the stripe), counters and
  // per-backend attribution are relaxed atomics folded at scrape time,
  // and membership's per-hop surface is lock-free (see membership.hpp).
  // `mu` below guards only the control plane: the running flag and the
  // heartbeat/sweeper sleep-wait.
  //
  // Ownership protocol for a pending entry: it is published to its stripe
  // BEFORE the upstream send (the backend's response can race the send
  // call's return, and the reader thread must find the hop), and exactly
  // one party retires it — the response handler, the drop handler, the
  // timeout sweeper, or the forward path reclaiming a failed send.
  // Whoever erases the entry owns its continuation (relay, re-forward, or
  // reject); everyone else backs off when the erase comes up empty.

  /// Router-side per-backend attribution, so the snapshot's per-backend
  /// rows sum to the router totals exactly once.  Client-facing rejects
  /// are attributed to the most informative backend: the first candidate
  /// (never forwarded), the dropped backend, or the last backend tried.
  struct PerBackend {
    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> relayed_ok{0};
    std::atomic<std::uint64_t> relayed_reject{0};
    std::atomic<std::uint64_t> relayed_error{0};
    std::atomic<std::uint64_t> rejected_down{0};
    std::atomic<std::uint64_t> rejected_timeout{0};
  };

  /// RouterStats with each field atomic; aggregated into the plain struct
  /// by Router::stats().
  struct Counters {
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> relayed_ok{0};
    std::atomic<std::uint64_t> relayed_reject{0};
    std::atomic<std::uint64_t> relayed_error{0};
    std::atomic<std::uint64_t> rejected_upstream_down{0};
    std::atomic<std::uint64_t> rejected_upstream_timeout{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> late_responses{0};
    std::atomic<std::uint64_t> backend_drops{0};
  };

  struct Pending {
    std::uint64_t conn_token = 0;
    std::uint64_t client_id = 0;
    std::uint64_t key = 0;
    core::ChunkId chunk = 0;
    unsigned attempts = 0;       // forward attempts spent so far
    std::uint64_t tried = 0;     // bitmask of backend indices tried
    int backend = -1;            // current attempt's backend
    Clock::time_point deadline;
    // obs::now_ns() at the hop send; anchors the hop RTT histogram and
    // the router.hop span.
    std::uint64_t send_ns = 0;
    // Distributed tracing: the client's inbound context plus the
    // router.request span (one per client request, survives retries) and
    // the router.hop span (one per forward attempt).  Zero ids when the
    // request is untraced or span recording is off.
    obs::TraceContext trace;
    std::uint64_t request_span_id = 0;
    std::uint64_t request_start_ns = 0;
    std::uint64_t hop_span_id = 0;
  };

  static constexpr std::size_t kPendingStripes = 16;
  struct Stripe {
    std::mutex mu;
    std::unordered_map<std::uint64_t, Pending> map;
  };

  Stripe& stripe_of(std::uint64_t hop) {
    return stripes[hop & (kPendingStripes - 1)];
  }

  /// Land one router span in the flight recorder (no-op when the request
  /// is untraced, `span_id` was never allocated, or obs is compiled out).
  void record_span(const obs::TraceContext& trace, const char* name,
                   std::uint64_t span_id, std::uint64_t parent_span_id,
                   std::uint64_t start_ns, std::uint8_t cause,
                   std::uint32_t backend, std::uint64_t depth) {
#if !defined(RLB_OBS_DISABLED)
    if (span_id == 0 || !trace.valid() || !obs::span_recording_enabled()) {
      return;
    }
    obs::Span span;
    span.trace_id = trace.trace_id;
    span.span_id = span_id;
    span.parent_span_id = parent_span_id;
    span.start_ns = start_ns;
    span.end_ns = obs::now_ns();
    span.queue_depth = depth;
    span.name = name;
    span.shard = backend;
    span.tid = obs::thread_index();
    span.flags = trace.flags;
    span.cause = cause;
    obs::SpanRecorder::instance().record(span);
#else
    (void)trace;
    (void)name;
    (void)span_id;
    (void)parent_span_id;
    (void)start_ns;
    (void)cause;
    (void)backend;
    (void)depth;
#endif
  }

  /// The hop span's parent: the router.request span when one exists, else
  /// the client's own parent (obs-disabled router still forwards context).
  static std::uint64_t hop_parent(const Pending& entry) {
    return entry.request_span_id != 0 ? entry.request_span_id
                                      : entry.trace.parent_span_id;
  }

  enum class Forward : std::uint8_t { kSent, kNoCandidate, kBudgetSpent };

  /// Forward (or re-forward) one request.  On kSent a Pending entry was
  /// published under a fresh hop id (and may already have been retired by
  /// a racing response).  Lock-free except for the stripe insert.
  Forward forward(std::uint64_t conn_token, std::uint64_t client_id,
                  std::uint64_t key, core::ChunkId chunk, unsigned attempts,
                  std::uint64_t tried, const obs::TraceContext& trace = {},
                  std::uint64_t request_span_id = 0,
                  std::uint64_t request_start_ns = 0) {
    static obs::Counter forwarded_probe("router.forwarded");
    static obs::Counter failover_probe("router.send_failover");
    const unsigned budget =
        config.max_attempts == 0 ? replication : config.max_attempts;
    const core::ChoiceList candidates = placement.choices(chunk);
    while (attempts < budget) {
      const int backend =
          membership.pick(candidates.begin(), candidates.size(), tried);
      if (backend < 0) return Forward::kNoCandidate;
      // Retry escalation: a re-forward means something already went wrong
      // for this request, so force the sampled bit on the attempt's
      // context.  The retry hop and the engine span it reaches survive the
      // recorders' keep policy even when the originator left the request
      // unsampled — a merged trace with a failed hop always shows where
      // the retry went.
      obs::TraceContext attempt_trace = trace;
      if (attempts > 0 && attempt_trace.valid()) {
        attempt_trace.flags |= obs::kSpanSampled;
      }
      ++attempts;
      tried |= bit(backend);
      const std::uint64_t hop =
          next_hop.fetch_add(1, std::memory_order_relaxed);
      Pending entry;
      entry.conn_token = conn_token;
      entry.client_id = client_id;
      entry.key = key;
      entry.chunk = chunk;
      entry.attempts = attempts;
      entry.tried = tried;
      entry.backend = backend;
      entry.deadline = Clock::now() + std::chrono::milliseconds(
                                          config.request_timeout_ms);
      entry.send_ns = obs::now_ns();
      entry.trace = attempt_trace;
      entry.request_span_id = request_span_id;
      entry.request_start_ns = request_start_ns;
      if (attempt_trace.valid() && obs::span_recording_enabled()) {
        entry.hop_span_id = obs::next_span_id();
      }
      // Hop to hop the context is re-parented to this attempt's hop span,
      // so a backend's engine.request span nests under the exact retry
      // that reached it.  An obs-disabled router forwards the context
      // unchanged (hop_span_id 0) — the tree just skips a level.
      obs::TraceContext forwarded_ctx = attempt_trace;
      if (entry.hop_span_id != 0) {
        forwarded_ctx.parent_span_id = entry.hop_span_id;
      }
      membership.note_forwarded(static_cast<std::uint32_t>(backend));
      {
        Stripe& stripe = stripe_of(hop);
        std::lock_guard<std::mutex> lock(stripe.mu);
        stripe.map.emplace(hop, entry);
      }
      pending_count.fetch_add(1, std::memory_order_relaxed);
      // Enqueue-only: the caller flushes the touched upstreams once per
      // burst (flush_upstreams()), so a batch of forwards to one backend
      // leaves in a single writev chain.  A queued frame whose eventual
      // write fails is recovered by the drop signal, exactly like a frame
      // queued behind another thread's active drainer.
      if (upstreams[static_cast<std::size_t>(backend)]->enqueue_request(
              hop, key, forwarded_ctx)) {
        counters.forwarded.fetch_add(1, std::memory_order_relaxed);
        per_backend[static_cast<std::size_t>(backend)].forwarded.fetch_add(
            1, std::memory_order_relaxed);
        win_hop_rtt.add(kWinForwarded);
        forwarded_probe.add();
        return Forward::kSent;
      }
      // The connection died between the membership check and the enqueue:
      // reclaim the published entry, mark the backend down, and fail over
      // within the same budget walk.  A failed erase means the drop
      // handler raced us to the entry and owns the continuation — this
      // request is being re-forwarded (or rejected) elsewhere.
      bool reclaimed = false;
      {
        Stripe& stripe = stripe_of(hop);
        std::lock_guard<std::mutex> lock(stripe.mu);
        reclaimed = stripe.map.erase(hop) != 0;
      }
      if (!reclaimed) return Forward::kSent;
      pending_count.fetch_sub(1, std::memory_order_relaxed);
      // The never-sent attempt still leaves a (near-zero-length) hop span
      // so retries stay countable in the merged tree.
      record_span(attempt_trace, "router.hop", entry.hop_span_id,
                  hop_parent(entry), entry.send_ns,
                  static_cast<std::uint8_t>(net::Status::kRejectUpstreamDown),
                  static_cast<std::uint32_t>(backend), 0);
      membership.note_answered(static_cast<std::uint32_t>(backend));
      membership.force_down(static_cast<std::uint32_t>(backend));
      failover_probe.add();
    }
    return Forward::kBudgetSpent;
  }

  void reject(std::uint64_t conn_token, std::uint64_t client_id,
              net::Status cause, int attributed_backend,
              const obs::TraceContext& trace = {},
              std::uint64_t request_span_id = 0,
              std::uint64_t request_start_ns = 0) {
    net::ResponseMsg response;
    response.request_id = client_id;
    response.status = cause;
    server.send_response(conn_token, response);
    record_span(trace, "router.request", request_span_id,
                trace.parent_span_id, request_start_ns,
                static_cast<std::uint8_t>(cause),
                static_cast<std::uint32_t>(attributed_backend),
                pending_count.load(std::memory_order_relaxed));
    PerBackend& row =
        per_backend[static_cast<std::size_t>(attributed_backend)];
    if (cause == net::Status::kRejectUpstreamDown) {
      counters.rejected_upstream_down.fetch_add(1, std::memory_order_relaxed);
      row.rejected_down.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters.rejected_upstream_timeout.fetch_add(1,
                                                   std::memory_order_relaxed);
      row.rejected_timeout.fetch_add(1, std::memory_order_relaxed);
    }
    win_hop_rtt.add(kWinRejected);
  }

  void handle_request(std::uint64_t conn_token,
                      const net::RequestMsg& request) {
    const core::ChunkId chunk = hashing::hash_to_bucket(
        request.key, config.seed ^ 0x9a3c0ff1ceULL, config.chunks);
    counters.received.fetch_add(1, std::memory_order_relaxed);
    // One router.request span covers the client request end to end across
    // retries; hop spans nest under it (see forward()).
    std::uint64_t request_span_id = 0;
    std::uint64_t request_start_ns = 0;
    if (request.trace.valid() && obs::span_recording_enabled()) {
      request_span_id = obs::next_span_id();
      request_start_ns = obs::now_ns();
    }
    const Forward outcome =
        forward(conn_token, request.request_id, request.key, chunk, 0, 0,
                request.trace, request_span_id, request_start_ns);
    if (outcome != Forward::kSent) {
      // Never forwarded: every candidate backend is down (or died during
      // the walk) — the cluster-level analogue of "all d replicas down".
      reject(conn_token, request.request_id, net::Status::kRejectUpstreamDown,
             static_cast<int>(placement.choices(chunk)[0]), request.trace,
             request_span_id, request_start_ns);
    }
  }

  void handle_upstream_response(int backend, const net::ResponseMsg& msg) {
    Pending entry;
    {
      Stripe& stripe = stripe_of(msg.request_id);
      std::lock_guard<std::mutex> lock(stripe.mu);
      auto it = stripe.map.find(msg.request_id);
      if (it == stripe.map.end() || it->second.backend != backend) {
        // The hop was already retired (timeout retry or backend drop); the
        // duplicate service is wasted work, not an error.
        counters.late_responses.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      entry = it->second;
      stripe.map.erase(it);
    }
    pending_count.fetch_sub(1, std::memory_order_relaxed);
    membership.note_answered(static_cast<std::uint32_t>(backend));
    // Per-hop RTT (v3 stats): forward-to-response round trip, retries
    // sampled once per attempt.
    const std::uint64_t now = obs::now_ns();
    if (entry.send_ns != 0 && now > entry.send_ns) {
      hop_rtt.observe_us((now - entry.send_ns) / 1000);
      win_hop_rtt.observe_us((now - entry.send_ns) / 1000, now);
    }
    record_span(entry.trace, "router.hop", entry.hop_span_id,
                hop_parent(entry), entry.send_ns,
                static_cast<std::uint8_t>(msg.status),
                static_cast<std::uint32_t>(backend), 0);
    record_span(entry.trace, "router.request", entry.request_span_id,
                entry.trace.parent_span_id, entry.request_start_ns,
                static_cast<std::uint8_t>(msg.status),
                static_cast<std::uint32_t>(backend),
                pending_count.load(std::memory_order_relaxed));
    PerBackend& row = per_backend[static_cast<std::size_t>(backend)];
    if (msg.status == net::Status::kOk) {
      counters.relayed_ok.fetch_add(1, std::memory_order_relaxed);
      row.relayed_ok.fetch_add(1, std::memory_order_relaxed);
      win_hop_rtt.add(kWinOk, 1, now);
    } else if (net::is_reject(msg.status)) {
      counters.relayed_reject.fetch_add(1, std::memory_order_relaxed);
      row.relayed_reject.fetch_add(1, std::memory_order_relaxed);
      win_hop_rtt.add(kWinRejected, 1, now);
    } else {
      counters.relayed_error.fetch_add(1, std::memory_order_relaxed);
      row.relayed_error.fetch_add(1, std::memory_order_relaxed);
    }
    net::ResponseMsg relayed = msg;
    relayed.request_id = entry.client_id;
    server.send_response(entry.conn_token, relayed);
  }

  /// Drain every upstream's queued forwards (cheap no-op on the empty
  /// ones).  Called once per forward burst: after a client batch, a drop
  /// failover pass, or a timeout sweep.
  void flush_upstreams() {
    for (auto& conn : upstreams) conn->flush();
  }

  /// A backend's data-plane connection dropped: fail its in-flight hops
  /// over to other candidates (or reject) immediately.
  void handle_upstream_drop(int backend) {
    static obs::Counter drop_probe("router.backend_drops");
    membership.force_down(static_cast<std::uint32_t>(backend));
    counters.backend_drops.fetch_add(1, std::memory_order_relaxed);
    drop_probe.add();
    std::vector<Pending> orphaned;
    for (Stripe& stripe : stripes) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      for (auto it = stripe.map.begin(); it != stripe.map.end();) {
        if (it->second.backend == backend) {
          orphaned.push_back(it->second);
          it = stripe.map.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!orphaned.empty()) {
      pending_count.fetch_sub(orphaned.size(), std::memory_order_relaxed);
    }
    for (const Pending& entry : orphaned) {
      membership.note_answered(static_cast<std::uint32_t>(backend));
      counters.retries.fetch_add(1, std::memory_order_relaxed);
      record_span(entry.trace, "router.hop", entry.hop_span_id,
                  hop_parent(entry), entry.send_ns,
                  static_cast<std::uint8_t>(net::Status::kRejectUpstreamDown),
                  static_cast<std::uint32_t>(backend), 0);
      const Forward outcome = forward(
          entry.conn_token, entry.client_id, entry.key, entry.chunk,
          entry.attempts, entry.tried, entry.trace, entry.request_span_id,
          entry.request_start_ns);
      if (outcome != Forward::kSent) {
        reject(entry.conn_token, entry.client_id,
               net::Status::kRejectUpstreamDown, backend, entry.trace,
               entry.request_span_id, entry.request_start_ns);
      }
    }
    if (!orphaned.empty()) flush_upstreams();
  }

  void sweep_timeouts() {
    const Clock::time_point now = Clock::now();
    std::vector<Pending> expired;
    for (Stripe& stripe : stripes) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      for (auto it = stripe.map.begin(); it != stripe.map.end();) {
        if (it->second.deadline <= now) {
          expired.push_back(it->second);
          it = stripe.map.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!expired.empty()) {
      pending_count.fetch_sub(expired.size(), std::memory_order_relaxed);
    }
    for (const Pending& entry : expired) {
      counters.timeouts.fetch_add(1, std::memory_order_relaxed);
      membership.note_answered(static_cast<std::uint32_t>(entry.backend));
      counters.retries.fetch_add(1, std::memory_order_relaxed);
      record_span(
          entry.trace, "router.hop", entry.hop_span_id, hop_parent(entry),
          entry.send_ns,
          static_cast<std::uint8_t>(net::Status::kRejectUpstreamTimeout),
          static_cast<std::uint32_t>(entry.backend), 0);
      const Forward outcome = forward(
          entry.conn_token, entry.client_id, entry.key, entry.chunk,
          entry.attempts, entry.tried, entry.trace, entry.request_span_id,
          entry.request_start_ns);
      if (outcome != Forward::kSent) {
        reject(entry.conn_token, entry.client_id,
               net::Status::kRejectUpstreamTimeout, entry.backend,
               entry.trace, entry.request_span_id, entry.request_start_ns);
      }
    }
    if (!expired.empty()) flush_upstreams();
  }

  // ---- control plane -------------------------------------------------

  /// One prober per backend: a dedicated admin connection sends a STATS
  /// ping every heartbeat interval and waits (bounded) for the snapshot;
  /// the queue-depth gauges piggybacked in the STATS_RESP refresh the
  /// backlog estimate.
  void heartbeat_loop(std::size_t backend) {
    static obs::Counter hb_ok_probe("router.heartbeat_ok");
    static obs::Counter hb_miss_probe("router.heartbeat_miss");
    const BackendEndpoint& endpoint = config.backends[backend];
    net::Client client;
    client.set_recv_timeout_ms(config.heartbeat_timeout_ms);
    // Probe immediately so a healthy cluster is routable after
    // `probation_successes` intervals, not one extra round later.
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (!running) return;
      }
      bool ok = false;
      HeartbeatSample sample;
      try {
        if (!client.connected()) {
          client.connect(endpoint.host, endpoint.port);
          client.set_recv_timeout_ms(config.heartbeat_timeout_ms);
        }
        const std::uint64_t ping_ns = obs::now_ns();
        // The current placement epoch rides every heartbeat; backends
        // record it, so rlb_stat shows cutover progress cluster-wide.
        client.send_stats_request(0, placement.epoch());
        client.flush();
        net::StatsSnapshot snap;
        if (client.try_read_stats_response(snap) ==
            net::ReadOutcome::kFrame) {
          const net::ShardStats totals = snap.totals();
          sample.backlog =
              totals.inbound_depth + totals.waiting_depth + totals.backlog;
          sample.completed = totals.completed;
          sample.servers = snap.servers;
          sample.servers_down = static_cast<std::uint32_t>(totals.servers_down);
          sample.rtt_us = (obs::now_ns() - ping_ns) / 1000;
          ok = true;
        }
      } catch (const std::exception&) {
        // connect/flush/read failure or protocol violation: miss.
      }
      if (ok) {
        hb_ok_probe.add();
        membership.record_success(static_cast<std::uint32_t>(backend), sample);
      } else {
        hb_miss_probe.add();
        // Drop the connection so the next round re-dials from scratch
        // (a half-read or stale buffered snapshot must not skew rounds).
        client.close();
        membership.record_miss(static_cast<std::uint32_t>(backend));
      }
      std::unique_lock<std::mutex> lock(mu);
      stop_cv.wait_for(lock,
                       std::chrono::milliseconds(config.heartbeat_interval_ms),
                       [this] { return !running; });
      if (!running) return;
    }
  }

  void sweeper_loop() {
    // Quarter-timeout granularity, clamped to [10, 100] ms.
    const std::uint64_t tick_ms = std::min<std::uint64_t>(
        100, std::max<std::uint64_t>(10, config.request_timeout_ms / 4));
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (!running) return;
        stop_cv.wait_for(lock, std::chrono::milliseconds(tick_ms),
                         [this] { return !running; });
        if (!running) return;
      }
      sweep_timeouts();
    }
  }

  // ---- lifecycle -----------------------------------------------------

  void start() {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (running) return;
      running = true;
    }
    started_at = Clock::now();
    server.start();
    upstreams.reserve(config.backends.size());
    for (std::size_t b = 0; b < config.backends.size(); ++b) {
      net::UpstreamConfig up_config;
      up_config.host = config.backends[b].host;
      up_config.port = config.backends[b].port;
      auto conn = std::make_unique<net::UpstreamConn>(
          up_config,
          [this, b](const net::ResponseMsg& msg) {
            handle_upstream_response(static_cast<int>(b), msg);
          },
          [this, b](bool connected) {
            if (!connected) handle_upstream_drop(static_cast<int>(b));
          });
      upstreams.push_back(std::move(conn));
    }
    for (auto& conn : upstreams) conn->start();
    for (std::size_t b = 0; b < config.backends.size(); ++b) {
      threads.emplace_back([this, b] { heartbeat_loop(b); });
    }
    threads.emplace_back([this] { sweeper_loop(); });
    if (coordinator) coordinator->start();
  }

  void stop() {
    // The coordinator dials backends with its own blocking clients; take
    // it down first so nothing races the upstream teardown below.
    if (coordinator) coordinator->stop();
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!running && threads.empty()) return;
      running = false;
      stop_cv.notify_all();
    }
    for (std::thread& t : threads) {
      if (t.joinable()) t.join();
    }
    threads.clear();
    // Stopping an upstream fires its drop callback, which rejects that
    // backend's in-flight hops through the still-running client listener.
    for (auto& conn : upstreams) conn->stop();
    // Belt and braces: nothing should survive the upstream teardown.
    std::vector<Pending> leftovers;
    for (Stripe& stripe : stripes) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      for (auto& [hop, entry] : stripe.map) leftovers.push_back(entry);
      stripe.map.clear();
    }
    if (!leftovers.empty()) {
      pending_count.fetch_sub(leftovers.size(), std::memory_order_relaxed);
    }
    for (const Pending& entry : leftovers) {
      record_span(
          entry.trace, "router.hop", entry.hop_span_id, hop_parent(entry),
          entry.send_ns,
          static_cast<std::uint8_t>(net::Status::kRejectUpstreamDown),
          static_cast<std::uint32_t>(entry.backend), 0);
      reject(entry.conn_token, entry.client_id,
             net::Status::kRejectUpstreamDown, entry.backend, entry.trace,
             entry.request_span_id, entry.request_start_ns);
    }
    server.stop();
  }

  // ---- stats ---------------------------------------------------------

  net::StatsSnapshot snapshot() const {
    net::StatsSnapshot snap;
    snap.role = net::NodeRole::kRouter;
    snap.policy = "router";
    snap.uptime_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              started_at)
            .count());
    snap.servers = static_cast<std::uint32_t>(config.backends.size());
    snap.replication = replication;
    snap.shard_count = static_cast<std::uint32_t>(config.backends.size());
    snap.placement_epoch = placement.epoch();
    if (coordinator) snap.repair = coordinator->stats();
    hop_rtt.merge_into(snap.hop_rtt);
    // One row per backend; docs/CLUSTER.md documents the field mapping
    // (ticks/batches carry heartbeat ok/miss, max_batch the mark-down
    // count, backlog the live load estimate).  Summing rows yields the
    // router's client-facing totals exactly once: completed +
    // rejected_total + errors = responses relayed or rejected.
    for (std::size_t b = 0; b < config.backends.size(); ++b) {
      const BackendView view = membership.view(static_cast<std::uint32_t>(b));
      const PerBackend& attribution = per_backend[b];
      net::ShardStats row;
      row.shard = static_cast<std::uint32_t>(b);
      row.submitted = attribution.forwarded.load(std::memory_order_relaxed);
      row.completed = attribution.relayed_ok.load(std::memory_order_relaxed);
      row.rejected_queue_full =
          attribution.relayed_reject.load(std::memory_order_relaxed);
      row.rejected_all_down =
          attribution.rejected_down.load(std::memory_order_relaxed);
      row.rejected_drop =
          attribution.rejected_timeout.load(std::memory_order_relaxed);
      row.errors = attribution.relayed_error.load(std::memory_order_relaxed);
      row.ticks = view.heartbeats_ok;
      row.batches = view.heartbeats_missed;
      row.max_batch = view.transitions_down;
      row.inflight = view.inflight;
      row.backlog = view.load_estimate;
      row.servers_down = view.health == BackendHealth::kUp ? 0 : 1;
      snap.shards.push_back(row);
    }

    // Health plane (v5): windowed hop RTT + rate deltas.  A router has no
    // engine latency/queue-wait; those windowed histograms stay empty,
    // mirroring the cumulative v3 convention.
    const obs::WindowedAggregator::Snapshot win = win_hop_rtt.read();
    snap.window_span_ms = win.span_ms;
    snap.win_submitted = win.counters[kWinForwarded];
    snap.win_completed = win.counters[kWinOk];
    snap.win_rejected = win.counters[kWinRejected];
    snap.win_hop_rtt.count = win.count;
    snap.win_hop_rtt.sum_us = win.sum_us;
    snap.win_hop_rtt.max_us = win.max_us;
    snap.win_hop_rtt.buckets = win.buckets;
    snap.active_alerts = obs::active_alerts();
    return snap;
  }

  RouterConfig config;
  unsigned replication;
  core::EpochedPlacement placement;
  Membership membership;
  std::unique_ptr<repair::RepairCoordinator> coordinator;
  net::NetServer server;
  std::vector<std::unique_ptr<net::UpstreamConn>> upstreams;
  std::vector<std::thread> threads;

  // Data plane (lock-free / striped; see the section comment above).
  std::array<Stripe, kPendingStripes> stripes;
  std::atomic<std::uint64_t> next_hop{1};
  std::atomic<std::uint64_t> pending_count{0};  ///< span queue_depth gauge
  Counters counters;
  std::vector<PerBackend> per_backend;
  net::AtomicLatency hop_rtt;  ///< per-hop upstream RTT (v3 stats)

  // Health plane (v5): hop RTT over the trailing window; the counter
  // slots carry windowed forwarded/relayed-ok/rejected.
  static constexpr std::size_t kWinForwarded = 0;
  static constexpr std::size_t kWinOk = 1;
  static constexpr std::size_t kWinRejected = 2;
  obs::WindowedAggregator win_hop_rtt;

  // Control plane only: the running flag and heartbeat/sweeper waits.
  mutable std::mutex mu;
  std::condition_variable stop_cv;
  bool running = false;
  Clock::time_point started_at = Clock::now();
};

Router::Router(RouterConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

Router::~Router() { impl_->stop(); }

void Router::start() { impl_->start(); }
void Router::stop() { impl_->stop(); }

std::uint16_t Router::port() const noexcept { return impl_->server.port(); }

RouterStats Router::stats() const {
  const Impl::Counters& c = impl_->counters;
  RouterStats out;
  out.received = c.received.load(std::memory_order_relaxed);
  out.forwarded = c.forwarded.load(std::memory_order_relaxed);
  out.relayed_ok = c.relayed_ok.load(std::memory_order_relaxed);
  out.relayed_reject = c.relayed_reject.load(std::memory_order_relaxed);
  out.relayed_error = c.relayed_error.load(std::memory_order_relaxed);
  out.rejected_upstream_down =
      c.rejected_upstream_down.load(std::memory_order_relaxed);
  out.rejected_upstream_timeout =
      c.rejected_upstream_timeout.load(std::memory_order_relaxed);
  out.retries = c.retries.load(std::memory_order_relaxed);
  out.timeouts = c.timeouts.load(std::memory_order_relaxed);
  out.late_responses = c.late_responses.load(std::memory_order_relaxed);
  out.backend_drops = c.backend_drops.load(std::memory_order_relaxed);
  return out;
}

const Membership& Router::membership() const { return impl_->membership; }

std::uint64_t Router::placement_epoch() const {
  return impl_->placement.epoch();
}

std::vector<core::PlacementDelta> Router::placement_history() const {
  return impl_->placement.history();
}

net::RepairStats Router::repair_stats() const {
  return impl_->coordinator ? impl_->coordinator->stats() : net::RepairStats{};
}

net::StatsSnapshot Router::snapshot() const { return impl_->snapshot(); }

}  // namespace rlb::cluster
