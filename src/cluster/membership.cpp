#include "cluster/membership.hpp"

namespace rlb::cluster {

const char* to_string(BackendHealth health) noexcept {
  switch (health) {
    case BackendHealth::kDown:
      return "down";
    case BackendHealth::kProbation:
      return "probation";
    case BackendHealth::kUp:
      return "up";
  }
  return "unknown";
}

Membership::Membership(std::size_t backends, MembershipConfig config)
    : config_(config), slots_(backends) {}

void Membership::subscribe(TransitionFn on_transition) {
  subscribers_.push_back(std::move(on_transition));
}

void Membership::notify(std::uint32_t id, BackendHealth from,
                        BackendHealth to) const {
  // Callers release mu_ first: view() and every accessor take it, and a
  // subscriber (e.g. the repair coordinator) is entitled to call back in.
  for (const TransitionFn& fn : subscribers_) fn(id, from, to);
}

void Membership::record_success(std::uint32_t id,
                                const HeartbeatSample& sample) {
  BackendHealth from = BackendHealth::kDown;
  BackendHealth to = BackendHealth::kDown;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= slots_.size()) return;
    Slot& slot = slots_[id];
    slot.misses = 0;
    ++slot.heartbeats_ok;
    slot.backlog_gauge.store(sample.backlog, std::memory_order_relaxed);
    slot.completed = sample.completed;
    slot.servers = sample.servers;
    slot.servers_down = sample.servers_down;
    if (sample.rtt_us > 0) {
      slot.rtt_ema_us = slot.rtt_ema_us == 0
                            ? sample.rtt_us
                            : (3 * slot.rtt_ema_us + sample.rtt_us) / 4;
    }
    from = slot.health.load(std::memory_order_relaxed);
    switch (from) {
      case BackendHealth::kDown:
        slot.health.store(BackendHealth::kProbation,
                          std::memory_order_relaxed);
        slot.successes = 1;
        break;
      case BackendHealth::kProbation:
        ++slot.successes;
        break;
      case BackendHealth::kUp:
        return;
    }
    if (slot.successes >= config_.probation_successes) {
      slot.health.store(BackendHealth::kUp, std::memory_order_relaxed);
    }
    to = slot.health.load(std::memory_order_relaxed);
  }
  if (from != to) notify(id, from, to);
}

void Membership::record_miss(std::uint32_t id) {
  BackendHealth from = BackendHealth::kDown;
  BackendHealth to = BackendHealth::kDown;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= slots_.size()) return;
    Slot& slot = slots_[id];
    slot.successes = 0;
    ++slot.heartbeats_missed;
    from = slot.health.load(std::memory_order_relaxed);
    if (from == BackendHealth::kDown) return;
    // Probation is unforgiving: one miss sends the backend straight back
    // down.  An established (kUp) backend gets miss_threshold strikes.
    ++slot.misses;
    if (from == BackendHealth::kProbation ||
        slot.misses >= config_.miss_threshold) {
      slot.health.store(BackendHealth::kDown, std::memory_order_relaxed);
      slot.misses = 0;
      ++slot.transitions_down;
    }
    to = slot.health.load(std::memory_order_relaxed);
  }
  if (from != to) notify(id, from, to);
}

void Membership::force_down(std::uint32_t id) {
  BackendHealth from = BackendHealth::kDown;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= slots_.size()) return;
    Slot& slot = slots_[id];
    slot.successes = 0;
    slot.misses = 0;
    from = slot.health.load(std::memory_order_relaxed);
    if (from != BackendHealth::kDown) {
      slot.health.store(BackendHealth::kDown, std::memory_order_relaxed);
      ++slot.transitions_down;
    }
  }
  if (from != BackendHealth::kDown) {
    notify(id, from, BackendHealth::kDown);
  }
}

void Membership::note_forwarded(std::uint32_t id) {
  if (id >= slots_.size()) return;
  slots_[id].inflight.fetch_add(1, std::memory_order_relaxed);
}

void Membership::note_answered(std::uint32_t id) {
  if (id >= slots_.size()) return;
  // CAS-decrement with a floor at zero: a drop event can retire hops the
  // forward path already retired, and the gauge must never wrap.
  std::atomic<std::uint64_t>& inflight = slots_[id].inflight;
  std::uint64_t current = inflight.load(std::memory_order_relaxed);
  while (current > 0 && !inflight.compare_exchange_weak(
                            current, current - 1, std::memory_order_relaxed)) {
  }
}

bool Membership::is_live(std::uint32_t id) const {
  return id < slots_.size() &&
         slots_[id].health.load(std::memory_order_relaxed) ==
             BackendHealth::kUp;
}

std::uint64_t Membership::load_estimate(std::uint32_t id) const {
  if (id >= slots_.size()) return 0;
  return slots_[id].backlog_gauge.load(std::memory_order_relaxed) +
         slots_[id].inflight.load(std::memory_order_relaxed);
}

int Membership::pick(const std::uint32_t* candidates, std::size_t count,
                     std::uint64_t exclude_mask) const {
  int best = -1;
  std::uint64_t best_load = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t id = candidates[i];
    if (id >= slots_.size()) continue;
    if (id < 64 && (exclude_mask & (1ULL << id)) != 0) continue;
    const Slot& slot = slots_[id];
    if (slot.health.load(std::memory_order_relaxed) != BackendHealth::kUp) {
      continue;
    }
    const std::uint64_t load =
        slot.backlog_gauge.load(std::memory_order_relaxed) +
        slot.inflight.load(std::memory_order_relaxed);
    if (best < 0 || load < best_load ||
        (load == best_load && id < static_cast<std::uint32_t>(best))) {
      best = static_cast<int>(id);
      best_load = load;
    }
  }
  return best;
}

BackendView Membership::view(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  BackendView v;
  v.id = id;
  if (id >= slots_.size()) return v;
  const Slot& slot = slots_[id];
  v.health = slot.health.load(std::memory_order_relaxed);
  v.backlog_gauge = slot.backlog_gauge.load(std::memory_order_relaxed);
  v.inflight = slot.inflight.load(std::memory_order_relaxed);
  v.load_estimate = v.backlog_gauge + v.inflight;
  v.heartbeats_ok = slot.heartbeats_ok;
  v.heartbeats_missed = slot.heartbeats_missed;
  v.transitions_down = slot.transitions_down;
  v.completed = slot.completed;
  v.servers = slot.servers;
  v.servers_down = slot.servers_down;
  v.rtt_ema_us = slot.rtt_ema_us;
  return v;
}

std::size_t Membership::live_count() const {
  std::size_t n = 0;
  for (const Slot& slot : slots_) {
    if (slot.health.load(std::memory_order_relaxed) == BackendHealth::kUp) {
      ++n;
    }
  }
  return n;
}

}  // namespace rlb::cluster
