// The EVENTS_RESP event batch: reading a daemon's control-plane journal
// over the wire.
//
// An EVENTS request (net/wire.hpp, u8 type=10) carries the scraper's
// cursor — the highest journal sequence it has already seen — and the
// answer is one EVENTS_RESP frame with the events after it.  The encoding
// follows STATS_RESP conventions (net/stats.hpp): u8 type=11, u32
// version, then fields in declaration order — little-endian fixed-width
// integers, u8 length + bytes for the short detail strings, u32 count +
// entries for the event list, exact payload consumption required.
//
// Unlike TRACE, reads do NOT drain: the journal ring keeps the last N
// events and any number of scrapers resume independently by cursor
// (rlb_stat --events --follow holds one cursor per endpoint).  When the
// ring wraps past a cursor the response reports the lost span in
// `dropped` — overflow is explicit, never silent.  At most
// kMaxEventsPerResponse events travel per frame; `remaining` > 0 tells
// the scraper to immediately ask again from `next_cursor`.
//
// Clock anchor: the same (steady_ns, wall_ns) pair as TRACE_RESP, so a
// merger aligns event timestamps from several processes onto one wall
// clock with the RTT-midpoint correction rlb_trace uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/stats.hpp"

namespace rlb::net {

/// Bump on any layout change.
inline constexpr std::uint32_t kEventsVersion = 1;

/// Ceiling on events per EVENTS_RESP frame: 512 x ~75 bytes stays well
/// under the 64 KiB frame payload cap.
inline constexpr std::size_t kMaxEventsPerResponse = 512;

/// One journal entry on the wire (see obs/journal.hpp JournalEvent).
struct EventRecord {
  std::uint64_t seq = 0;
  std::uint64_t steady_ns = 0;
  std::uint64_t wall_ns = 0;
  std::uint8_t type = 0;  ///< obs::JournalType value
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::string detail;
};

/// One EVENTS_RESP frame's worth of journal events.
struct EventsSnapshot {
  std::uint32_t version = kEventsVersion;
  NodeRole role = NodeRole::kBackend;
  std::uint32_t backend_id = 0;
  /// Clock anchor sampled at encode time.
  std::uint64_t steady_ns = 0;
  std::uint64_t wall_ns = 0;
  /// Events that wrapped out of the ring between the request's cursor and
  /// the oldest event returned (0 = gapless resume).
  std::uint64_t dropped = 0;
  /// Cursor for the next request (seq of the last event returned, or the
  /// request cursor when the batch is empty).
  std::uint64_t next_cursor = 0;
  /// Events still in the ring beyond this batch (non-zero => ask again).
  std::uint64_t remaining = 0;
  std::vector<EventRecord> events;
};

/// Serialize `snapshot` as an EVENTS_RESP payload (type byte included, no
/// frame length prefix) appended to `out`.  Encodes at most
/// kMaxEventsPerResponse events; callers chunk (make_events_snapshot
/// already does).
void encode_events_payload(const EventsSnapshot& snapshot,
                           std::vector<std::uint8_t>& out);

/// Parse an EVENTS_RESP payload.  Returns false on a malformed body or a
/// version other than kEventsVersion; `out` is unspecified on failure.
bool decode_events_payload(const std::uint8_t* data, std::size_t size,
                           EventsSnapshot& out);

/// Build one response batch from the process-global journal: events after
/// `cursor`, capped at kMaxEventsPerResponse, with role/id/clock anchor
/// stamped.  Under RLB_OBS_DISABLED the event list is always empty (the
/// journal is compiled to a no-op) but the anchor is still valid.
EventsSnapshot make_events_snapshot(NodeRole role, std::uint32_t backend_id,
                                    std::uint64_t cursor);

}  // namespace rlb::net
