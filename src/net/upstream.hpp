// Asynchronous multiplexed upstream connection: the router's data-plane
// link to one backend.
//
// Unlike the blocking, single-threaded net::Client, an UpstreamConn is
// written to from many threads (the router's reactor and its retry
// sweeper) while a dedicated reader thread drains RESPONSE frames and
// hands them to a callback — the connection multiplexes every in-flight
// hop over one TCP stream, matched by the hop-level request id the router
// assigned.
//
// The reader thread also owns the connection lifecycle: it dials, backs
// off on failure (bounded exponential, capped — never gives up while the
// conn is running; the membership layer decides when a backend is "down"),
// and re-dials after a drop.  State transitions are surfaced through the
// `on_state` callback so the router can fail over in-flight hops the
// moment a backend dies (a SIGKILL'd peer shows up here as EOF/RST long
// before a heartbeat times out).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/wire.hpp"

namespace rlb::net {

struct UpstreamConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Reconnect backoff: initial, doubling, capped.
  std::uint64_t backoff_initial_ms = 50;
  std::uint64_t backoff_max_ms = 2000;
};

/// Called from the reader thread for every RESPONSE frame.
using UpstreamResponseFn = std::function<void(const ResponseMsg&)>;
/// Called from the reader thread on every connect (true) / drop (false).
using UpstreamStateFn = std::function<void(bool connected)>;

class UpstreamConn {
 public:
  UpstreamConn(UpstreamConfig config, UpstreamResponseFn on_response,
               UpstreamStateFn on_state);
  ~UpstreamConn();

  UpstreamConn(const UpstreamConn&) = delete;
  UpstreamConn& operator=(const UpstreamConn&) = delete;

  /// Launch the reader/reconnect thread.  Idempotent.
  void start();
  /// Tear the connection down and join the thread.  Idempotent.
  void stop();

  /// Write one REQUEST frame (thread-safe).  Returns false — without
  /// blocking for a reconnect — when the connection is currently down;
  /// the caller picks another backend or rejects.  A valid `trace`
  /// context rides the frame's trace extension (see net/wire.hpp); the
  /// default (invalid) context encodes the plain v1 frame.
  bool send_request(std::uint64_t request_id, std::uint64_t key,
                    const obs::TraceContext& trace = {});

  /// Queue one REQUEST frame WITHOUT draining (thread-safe).  Returns
  /// false when the connection is currently down.  Pair with flush(): a
  /// caller forwarding a burst enqueues every frame, then drains the
  /// whole queue in one writev chain instead of one syscall per frame.
  /// A queued frame whose eventual write fails dies with the connection
  /// and is recovered by the drop signal — identical to the fate of a
  /// frame queued behind an active send_request() drainer.
  bool enqueue_request(std::uint64_t request_id, std::uint64_t key,
                       const obs::TraceContext& trace = {});

  /// Drain queued frames (no-op when the queue is empty, another drainer
  /// is active, or the connection is down).  Returns false when a write
  /// error tore the connection down mid-drain.
  bool flush();

  bool connected() const;
  /// Successful dials after the first (i.e. recoveries).
  std::uint64_t reconnects() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace rlb::net
