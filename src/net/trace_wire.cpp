#include "net/trace_wire.hpp"

#include <mutex>
#include <set>
#include <string>

#include "net/wire.hpp"
#include "obs/trace.hpp"

namespace rlb::net {

namespace {

// Little-endian primitives, mirroring stats.cpp.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_name(std::vector<std::uint8_t>& out, const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0' && n < 0xFFFF) ++n;
  put_u16(out, static_cast<std::uint16_t>(n));
  out.insert(out.end(), s, s + n);
}

/// Bounds-checked sequential reader (the stats.cpp Cursor, duplicated
/// because it lives in that file's anonymous namespace).
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t& v) {
    if (!has(1)) return false;
    v = data_[pos_];
    pos_ += 1;
    return true;
  }

  bool u16(std::uint16_t& v) {
    if (!has(2)) return false;
    v = static_cast<std::uint16_t>(data_[pos_]) |
        static_cast<std::uint16_t>(data_[pos_ + 1] << 8);
    pos_ += 2;
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (!has(4)) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (!has(8)) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return true;
  }

  bool str(std::string& v) {
    std::uint16_t n = 0;
    if (!u16(n) || !has(n)) return false;
    v.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == size_; }

 private:
  [[nodiscard]] bool has(std::size_t n) const { return size_ - pos_ >= n; }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Decoded span names must outlive the returned spans; intern them.
const char* intern_name(const std::string& name) {
  static std::mutex mutex;
  static std::set<std::string> pool;
  std::lock_guard lock(mutex);
  return pool.insert(name).first->c_str();
}

}  // namespace

void encode_trace_payload(const TraceSnapshot& snapshot,
                          std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(MsgType::kTraceResponse));
  put_u32(out, snapshot.version);
  out.push_back(static_cast<std::uint8_t>(snapshot.role));
  put_u32(out, snapshot.backend_id);
  put_u64(out, snapshot.steady_ns);
  put_u64(out, snapshot.wall_ns);
  put_u64(out, snapshot.dropped);
  put_u64(out, snapshot.remaining);

  const std::size_t count =
      snapshot.spans.size() > kMaxSpansPerTraceResponse
          ? kMaxSpansPerTraceResponse
          : snapshot.spans.size();
  put_u32(out, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    const obs::Span& s = snapshot.spans[i];
    put_u64(out, s.trace_id);
    put_u64(out, s.span_id);
    put_u64(out, s.parent_span_id);
    put_u64(out, s.start_ns);
    put_u64(out, s.end_ns);
    put_u64(out, s.queue_depth);
    put_name(out, s.name);
    put_u32(out, s.shard);
    put_u32(out, s.tid);
    out.push_back(s.flags);
    out.push_back(s.cause);
  }
}

bool decode_trace_payload(const std::uint8_t* data, std::size_t size,
                          TraceSnapshot& out) {
  if (size == 0 ||
      data[0] != static_cast<std::uint8_t>(MsgType::kTraceResponse)) {
    return false;
  }
  Cursor c(data + 1, size - 1);
  if (!c.u32(out.version)) return false;
  if (out.version != kTraceVersion) return false;
  std::uint8_t role = 0;
  if (!c.u8(role)) return false;
  if (role > static_cast<std::uint8_t>(NodeRole::kRouter)) return false;
  out.role = static_cast<NodeRole>(role);
  if (!c.u32(out.backend_id) || !c.u64(out.steady_ns) ||
      !c.u64(out.wall_ns) || !c.u64(out.dropped) || !c.u64(out.remaining)) {
    return false;
  }

  std::uint32_t count = 0;
  if (!c.u32(count)) return false;
  if (count > kMaxSpansPerTraceResponse) return false;
  out.spans.assign(count, obs::Span{});
  std::string name;
  for (obs::Span& s : out.spans) {
    if (!c.u64(s.trace_id) || !c.u64(s.span_id) ||
        !c.u64(s.parent_span_id) || !c.u64(s.start_ns) || !c.u64(s.end_ns) ||
        !c.u64(s.queue_depth) || !c.str(name) || !c.u32(s.shard) ||
        !c.u32(s.tid) || !c.u8(s.flags) || !c.u8(s.cause)) {
      return false;
    }
    s.name = intern_name(name);
  }
  return c.exhausted();
}

TraceSnapshot make_trace_snapshot(NodeRole role, std::uint32_t backend_id) {
  TraceSnapshot snapshot;
  snapshot.role = role;
  snapshot.backend_id = backend_id;
  snapshot.steady_ns = obs::now_ns();
  snapshot.wall_ns = obs::wall_now_ns();
#if !defined(RLB_OBS_DISABLED)
  obs::SpanRecorder& recorder = obs::SpanRecorder::instance();
  snapshot.spans = recorder.drain(kMaxSpansPerTraceResponse);
  snapshot.dropped = recorder.dropped();
  snapshot.remaining = recorder.size();
#endif
  return snapshot;
}

}  // namespace rlb::net
