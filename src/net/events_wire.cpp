#include "net/events_wire.hpp"

#include <algorithm>

#include "net/wire.hpp"
#include "obs/journal.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace rlb::net {

namespace {

// Little-endian primitives, mirroring stats.cpp / trace_wire.cpp.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

/// Bounds-checked sequential reader (same shape as the stats.cpp Cursor).
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t& v) {
    if (!has(1)) return false;
    v = data_[pos_];
    pos_ += 1;
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (!has(4)) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (!has(8)) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return true;
  }

  bool short_str(std::string& v) {
    std::uint8_t n = 0;
    if (!u8(n) || !has(n)) return false;
    v.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == size_; }

 private:
  [[nodiscard]] bool has(std::size_t n) const { return size_ - pos_ >= n; }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

void encode_events_payload(const EventsSnapshot& snapshot,
                           std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(MsgType::kEventsResponse));
  put_u32(out, snapshot.version);
  out.push_back(static_cast<std::uint8_t>(snapshot.role));
  put_u32(out, snapshot.backend_id);
  put_u64(out, snapshot.steady_ns);
  put_u64(out, snapshot.wall_ns);
  put_u64(out, snapshot.dropped);
  put_u64(out, snapshot.next_cursor);
  put_u64(out, snapshot.remaining);
  const std::size_t count =
      std::min(snapshot.events.size(), kMaxEventsPerResponse);
  put_u32(out, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    const EventRecord& e = snapshot.events[i];
    put_u64(out, e.seq);
    put_u64(out, e.steady_ns);
    put_u64(out, e.wall_ns);
    out.push_back(e.type);
    put_u64(out, e.a0);
    put_u64(out, e.a1);
    const std::size_t n = std::min<std::size_t>(e.detail.size(), 0xff);
    out.push_back(static_cast<std::uint8_t>(n));
    out.insert(out.end(), e.detail.begin(), e.detail.begin() + n);
  }
}

bool decode_events_payload(const std::uint8_t* data, std::size_t size,
                           EventsSnapshot& out) {
  if (size == 0 ||
      data[0] != static_cast<std::uint8_t>(MsgType::kEventsResponse)) {
    return false;
  }
  Cursor c(data + 1, size - 1);
  if (!c.u32(out.version)) return false;
  if (out.version != kEventsVersion) return false;
  std::uint8_t role = 0;
  if (!c.u8(role)) return false;
  if (role > static_cast<std::uint8_t>(NodeRole::kRouter)) return false;
  out.role = static_cast<NodeRole>(role);
  if (!c.u32(out.backend_id) || !c.u64(out.steady_ns) ||
      !c.u64(out.wall_ns) || !c.u64(out.dropped) ||
      !c.u64(out.next_cursor) || !c.u64(out.remaining)) {
    return false;
  }
  std::uint32_t count = 0;
  if (!c.u32(count)) return false;
  if (count > kMaxEventsPerResponse) return false;
  out.events.assign(count, EventRecord{});
  for (EventRecord& e : out.events) {
    if (!c.u64(e.seq) || !c.u64(e.steady_ns) || !c.u64(e.wall_ns) ||
        !c.u8(e.type) || !c.u64(e.a0) || !c.u64(e.a1) ||
        !c.short_str(e.detail)) {
      return false;
    }
  }
  return c.exhausted();
}

EventsSnapshot make_events_snapshot(NodeRole role, std::uint32_t backend_id,
                                    std::uint64_t cursor) {
  EventsSnapshot snapshot;
  snapshot.role = role;
  snapshot.backend_id = backend_id;
  // The anchor is stamped whether or not any events exist: a scraper can
  // always clock-align this node.
  snapshot.steady_ns = obs::now_ns();
  snapshot.wall_ns = obs::wall_now_ns();
  snapshot.next_cursor = cursor;
#if !defined(RLB_OBS_DISABLED)
  std::vector<obs::JournalEvent> events;
  const obs::JournalReadResult read =
      obs::Journal::instance().read_from(cursor, kMaxEventsPerResponse,
                                         events);
  snapshot.dropped = read.dropped;
  snapshot.next_cursor = read.next_cursor;
  snapshot.remaining = read.remaining;
  snapshot.events.reserve(events.size());
  for (const obs::JournalEvent& e : events) {
    EventRecord record;
    record.seq = e.seq;
    record.steady_ns = e.steady_ns;
    record.wall_ns = e.wall_ns;
    record.type = static_cast<std::uint8_t>(e.type);
    record.a0 = e.a0;
    record.a1 = e.a1;
    record.detail.assign(e.detail_view());
    snapshot.events.push_back(std::move(record));
  }
#endif
  return snapshot;
}

}  // namespace rlb::net
