// Blocking client connection for rlb_loadgen, tests, and benches.
//
// One Client is one TCP connection, used by one thread.  Requests may be
// pipelined: send_request() appends to an application-side buffer, flush()
// writes it in a single syscall, and read_response() blocks for the next
// RESPONSE frame (responses arrive in SERVICE order, so callers match on
// request_id).  Protocol violations throw ProtocolError.
//
// A dropped TCP connection need not be fatal: enable_reconnect() arms
// bounded-backoff auto-reconnect, after which flush() re-dials the stored
// endpoint and retransmits the still-buffered frames when the write path
// fails (or the read path has seen EOF).  Responses to frames delivered
// before the drop are gone — callers detect that via read timeouts / EOF
// and resend, exactly as they must for rejected requests.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/events_wire.hpp"
#include "net/stats.hpp"
#include "net/trace_wire.hpp"
#include "net/wire.hpp"

namespace rlb::net {

/// The peer broke framing or sent an unexpected message type.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The peer answered a STATS request with a well-formed STATS_RESP of a
/// different snapshot version — a version-skewed daemon, not corrupt
/// bytes.  Scrapers (rlb_stat --cluster) catch this separately to render
/// a per-node "version mismatch" row instead of treating the node as
/// broken or unreachable.
class StatsVersionMismatch : public ProtocolError {
 public:
  explicit StatsVersionMismatch(std::uint32_t peer_version)
      : ProtocolError("Client: STATS_RESP snapshot version v" +
                      std::to_string(peer_version) + " (want v" +
                      std::to_string(kStatsVersion) + ")"),
        peer_version_(peer_version) {}

  [[nodiscard]] std::uint32_t peer_version() const noexcept {
    return peer_version_;
  }

 private:
  std::uint32_t peer_version_;
};

/// Bounded-backoff schedule for auto-reconnect: up to `max_attempts`
/// dials, sleeping initial_backoff_ms, 2x, 4x, ... (capped at
/// max_backoff_ms) between consecutive failures.
struct ReconnectPolicy {
  unsigned max_attempts = 5;
  std::uint64_t initial_backoff_ms = 20;
  std::uint64_t max_backoff_ms = 1000;
};

/// Outcome of a try_read_* call under a receive timeout.
enum class ReadOutcome : std::uint8_t {
  kFrame,    ///< a frame was decoded into `out`
  kTimeout,  ///< no complete frame arrived within the receive timeout
  kEof,      ///< the peer closed the connection cleanly
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Blocking connect; throws std::runtime_error on failure.  The
  /// endpoint is remembered for reconnect().
  void connect(const std::string& host, std::uint16_t port);

  bool connected() const noexcept { return fd_ >= 0; }

  /// Arm auto-reconnect: when a flush() write fails (or the read side saw
  /// EOF), the client re-dials the last connect() endpoint under `policy`
  /// and retransmits the buffered frames.
  void enable_reconnect(const ReconnectPolicy& policy = {});

  /// Re-dial the stored endpoint with bounded backoff.  Returns false
  /// when every attempt failed.  Pending responses from the old
  /// connection are lost; the send buffer is preserved.
  bool reconnect();

  /// Connections survived via reconnect() since connect().
  std::uint64_t reconnects() const noexcept { return reconnects_; }

  /// Bound every subsequent read by `ms` milliseconds (SO_RCVTIMEO);
  /// 0 restores fully blocking reads.  Applies to the current connection
  /// and is re-applied after reconnect().
  void set_recv_timeout_ms(std::uint64_t ms);

  /// Buffer one REQUEST frame (no I/O until flush()).
  void send_request(std::uint64_t request_id, std::uint64_t key);

  /// Buffer one REQUEST frame carrying a trace context.  An invalid
  /// context (trace_id == 0) encodes the plain v1 frame — identical bytes
  /// to the two-argument overload.
  void send_request(std::uint64_t request_id, std::uint64_t key,
                    const obs::TraceContext& trace);

  /// Write every buffered frame; throws std::runtime_error on I/O failure
  /// (after exhausting reconnect attempts when auto-reconnect is armed).
  void flush();

  /// Block for the next RESPONSE frame.  Returns false on clean EOF (the
  /// socket is closed; with auto-reconnect armed the next flush()
  /// re-dials); throws ProtocolError on framing violations or
  /// non-RESPONSE frames, std::runtime_error on I/O errors — including
  /// an expired receive timeout (use try_read_response() instead).
  bool read_response(ResponseMsg& out);

  /// Non-throwing-on-timeout variant for use with set_recv_timeout_ms():
  /// kFrame fills `out`; kTimeout means no frame yet; kEof closes the
  /// socket (next flush() re-dials when auto-reconnect is armed).
  ReadOutcome try_read_response(ResponseMsg& out);

  /// Decode the next RESPONSE already sitting in the receive buffer
  /// WITHOUT touching the socket.  Returns false when no complete frame
  /// is buffered.  Pipelined callers drain buffered responses with this
  /// after one blocking read_response(), then refill the window with a
  /// single flush() — one write syscall per burst instead of one per
  /// request.  Throws ProtocolError like read_response().
  bool poll_buffered_response(ResponseMsg& out);

  /// Buffer one STATS admin frame (no I/O until flush()).  Use a dedicated
  /// connection for polling: REQUEST and STATS frames on one connection
  /// interleave their replies in service order.  A nonzero `epoch` rides
  /// the frame's placement-epoch extension (the router's heartbeat
  /// piggyback); 0 encodes the plain v1 frame.
  void send_stats_request(std::uint32_t flags = 0, std::uint64_t epoch = 0);

  /// Block for the next STATS_RESP frame and decode it.  Returns false on
  /// clean EOF; throws StatsVersionMismatch when the peer speaks a
  /// different snapshot version, ProtocolError on framing violations,
  /// non-STATS_RESP frames, or an undecodable snapshot.
  bool read_stats_response(StatsSnapshot& out);

  /// Timeout-aware variant of read_stats_response() (see
  /// try_read_response() for the outcome semantics).
  ReadOutcome try_read_stats_response(StatsSnapshot& out);

  /// Buffer one TRACE admin frame (no I/O until flush()).  Each TRACE
  /// drains up to one frame's worth of spans from the peer; keep issuing
  /// them until a response arrives with remaining == 0.
  void send_trace_request(std::uint32_t flags = 0);

  /// Block for the next TRACE_RESP frame and decode it.  Returns false on
  /// clean EOF; throws ProtocolError on framing violations, non-TRACE_RESP
  /// frames, or an undecodable snapshot.
  bool read_trace_response(TraceSnapshot& out);

  /// Timeout-aware variant of read_trace_response().
  ReadOutcome try_read_trace_response(TraceSnapshot& out);

  /// Buffer one EVENTS admin frame (no I/O until flush()).  `cursor` is
  /// the highest journal sequence already seen (0 = from the oldest
  /// retained); the response resumes after it.
  void send_events_request(std::uint64_t cursor, std::uint32_t flags = 0);

  /// Block for the next EVENTS_RESP frame and decode it.  Returns false
  /// on clean EOF; throws ProtocolError on framing violations,
  /// non-EVENTS_RESP frames, or an undecodable batch.
  bool read_events_response(EventsSnapshot& out);

  /// Timeout-aware variant of read_events_response().
  ReadOutcome try_read_events_response(EventsSnapshot& out);

  /// Buffer one MIGRATE order (coordinator -> source backend; no I/O
  /// until flush()).  Throws std::runtime_error when the message cannot
  /// encode (oversized host name).
  void send_migrate(const MigrateMsg& msg);

  /// Buffer one MIGRATE_DATA slice (source backend -> target backend).
  /// Throws std::runtime_error when the payload exceeds kMaxMigrateSlice.
  void send_migrate_data(const MigrateDataMsg& msg);

  /// Block for the next MIGRATE_ACK frame and decode it.  Returns false
  /// on clean EOF; throws ProtocolError on framing violations or
  /// non-MIGRATE_ACK frames.
  bool read_migrate_ack(MigrateAckMsg& out);

  /// Timeout-aware variant of read_migrate_ack() (see try_read_response()
  /// for the outcome semantics).
  ReadOutcome try_read_migrate_ack(MigrateAckMsg& out);

  void close();

 private:
  void dial(const std::string& host, std::uint16_t port);
  void close_fd() noexcept;  // drops the socket, keeps the send buffer
  /// Shared read loop: fills payload_ with the next frame.
  ReadOutcome next_frame(bool allow_timeout);

  int fd_ = -1;
  std::string host_;
  std::uint16_t port_ = 0;
  bool reconnect_enabled_ = false;
  ReconnectPolicy reconnect_policy_;
  std::uint64_t reconnects_ = 0;
  std::uint64_t recv_timeout_ms_ = 0;
  std::vector<std::uint8_t> send_buffer_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> payload_;
};

}  // namespace rlb::net
