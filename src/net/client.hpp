// Blocking client connection for rlb_loadgen, tests, and benches.
//
// One Client is one TCP connection, used by one thread.  Requests may be
// pipelined: send_request() appends to an application-side buffer, flush()
// writes it in a single syscall, and read_response() blocks for the next
// RESPONSE frame (responses arrive in SERVICE order, so callers match on
// request_id).  Protocol violations throw ProtocolError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/stats.hpp"
#include "net/wire.hpp"

namespace rlb::net {

/// The peer broke framing or sent an unexpected message type.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Blocking connect; throws std::runtime_error on failure.
  void connect(const std::string& host, std::uint16_t port);

  bool connected() const noexcept { return fd_ >= 0; }

  /// Buffer one REQUEST frame (no I/O until flush()).
  void send_request(std::uint64_t request_id, std::uint64_t key);

  /// Write every buffered frame; throws std::runtime_error on I/O failure.
  void flush();

  /// Block for the next RESPONSE frame.  Returns false on clean EOF;
  /// throws ProtocolError on framing violations or non-RESPONSE frames,
  /// std::runtime_error on I/O errors.
  bool read_response(ResponseMsg& out);

  /// Buffer one STATS admin frame (no I/O until flush()).  Use a dedicated
  /// connection for polling: REQUEST and STATS frames on one connection
  /// interleave their replies in service order.
  void send_stats_request(std::uint32_t flags = 0);

  /// Block for the next STATS_RESP frame and decode it.  Returns false on
  /// clean EOF; throws ProtocolError on framing violations, non-STATS_RESP
  /// frames, or an undecodable/mismatched-version snapshot.
  bool read_stats_response(StatsSnapshot& out);

  void close();

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> send_buffer_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> payload_;
};

}  // namespace rlb::net
