#include "net/stats.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "net/wire.hpp"

namespace rlb::net {

namespace {

// Little-endian primitives, mirroring wire.cpp.  The snapshot body reuses
// the same conventions so a STATS_RESP is one hexdump-friendly format.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  const auto n = static_cast<std::uint16_t>(
      s.size() > 0xFFFF ? 0xFFFF : s.size());
  put_u16(out, n);
  out.insert(out.end(), s.begin(), s.begin() + n);
}

/// Bounds-checked sequential reader over a payload body.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t& v) {
    if (!has(1)) return false;
    v = data_[pos_];
    pos_ += 1;
    return true;
  }

  bool u16(std::uint16_t& v) {
    if (!has(2)) return false;
    v = static_cast<std::uint16_t>(data_[pos_]) |
        static_cast<std::uint16_t>(data_[pos_ + 1] << 8);
    pos_ += 2;
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (!has(4)) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (!has(8)) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return true;
  }

  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }

  bool str(std::string& v) {
    std::uint16_t n = 0;
    if (!u16(n) || !has(n)) return false;
    v.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == size_; }

 private:
  [[nodiscard]] bool has(std::size_t n) const { return size_ - pos_ >= n; }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void put_shard(std::vector<std::uint8_t>& out, const ShardStats& s) {
  put_u32(out, s.shard);
  put_u64(out, s.submitted);
  put_u64(out, s.completed);
  put_u64(out, s.rejected_queue_full);
  put_u64(out, s.rejected_all_down);
  put_u64(out, s.rejected_admission);
  put_u64(out, s.rejected_drop);
  put_u64(out, s.errors);
  put_u64(out, s.ticks);
  put_u64(out, s.batches);
  put_u64(out, s.batched_chunks);
  put_u64(out, s.max_batch);
  put_u64(out, s.inbound_depth);
  put_u64(out, s.waiting_depth);
  put_u64(out, s.inflight);
  put_u64(out, s.backlog);
  put_u64(out, s.servers_down);
  put_u64(out, s.step_ns);
}

bool get_shard(Cursor& c, ShardStats& s) {
  return c.u32(s.shard) && c.u64(s.submitted) && c.u64(s.completed) &&
         c.u64(s.rejected_queue_full) && c.u64(s.rejected_all_down) &&
         c.u64(s.rejected_admission) && c.u64(s.rejected_drop) &&
         c.u64(s.errors) && c.u64(s.ticks) &&
         c.u64(s.batches) && c.u64(s.batched_chunks) && c.u64(s.max_batch) &&
         c.u64(s.inbound_depth) && c.u64(s.waiting_depth) &&
         c.u64(s.inflight) && c.u64(s.backlog) && c.u64(s.servers_down) &&
         c.u64(s.step_ns);
}

}  // namespace

const char* to_string(NodeRole role) noexcept {
  switch (role) {
    case NodeRole::kBackend:
      return "backend";
    case NodeRole::kRouter:
      return "router";
  }
  return "unknown";
}

void LatencyStats::observe_us(std::uint64_t us) {
  ++count;
  sum_us += us;
  if (us > max_us) max_us = us;
  const std::size_t bucket =
      us <= 1 ? 0
              : std::min<std::size_t>(
                    static_cast<std::size_t>(std::bit_width(us)) - 1,
                    kLatencyBuckets - 1);
  ++buckets[bucket];
}

double LatencyStats::quantile_us(double q) const {
  if (count == 0 || q <= 0.0) return 0.0;
  if (q >= 1.0) return static_cast<double>(max_us);
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= rank) {
      // Upper edge of bucket i: samples in [2^i, 2^(i+1)).
      const unsigned shift = static_cast<unsigned>(i + 1 > 62 ? 62 : i + 1);
      return static_cast<double>(1ULL << shift);
    }
  }
  return static_cast<double>(max_us);
}

ShardStats StatsSnapshot::totals() const {
  ShardStats t;
  for (const ShardStats& s : shards) {
    t.submitted += s.submitted;
    t.completed += s.completed;
    t.rejected_queue_full += s.rejected_queue_full;
    t.rejected_all_down += s.rejected_all_down;
    t.rejected_admission += s.rejected_admission;
    t.rejected_drop += s.rejected_drop;
    t.errors += s.errors;
    t.ticks += s.ticks;
    t.batches += s.batches;
    t.batched_chunks += s.batched_chunks;
    t.max_batch = s.max_batch > t.max_batch ? s.max_batch : t.max_batch;
    t.inbound_depth += s.inbound_depth;
    t.waiting_depth += s.waiting_depth;
    t.inflight += s.inflight;
    t.backlog += s.backlog;
    t.servers_down += s.servers_down;
    t.step_ns += s.step_ns;
  }
  return t;
}

void encode_stats_payload(const StatsSnapshot& snapshot,
                          std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(MsgType::kStatsResponse));
  put_u32(out, snapshot.version);
  put_u64(out, snapshot.uptime_ms);
  out.push_back(static_cast<std::uint8_t>(snapshot.role));
  put_u32(out, snapshot.backend_id);
  put_string(out, snapshot.policy);
  put_u32(out, snapshot.servers);
  put_u32(out, snapshot.replication);
  put_u32(out, snapshot.processing_rate);
  put_u32(out, snapshot.queue_capacity);
  put_u32(out, snapshot.shard_count);

  put_u32(out, static_cast<std::uint32_t>(snapshot.shards.size()));
  for (const ShardStats& s : snapshot.shards) put_shard(out, s);

  put_u64(out, snapshot.latency.count);
  put_u64(out, snapshot.latency.sum_us);
  put_u64(out, snapshot.latency.max_us);
  for (const std::uint64_t b : snapshot.latency.buckets) put_u64(out, b);

  // v3: per-hop decomposition histograms, same layout as `latency`.
  for (const LatencyStats* h : {&snapshot.hop_rtt, &snapshot.queue_wait}) {
    put_u64(out, h->count);
    put_u64(out, h->sum_us);
    put_u64(out, h->max_us);
    for (const std::uint64_t b : h->buckets) put_u64(out, b);
  }

  put_u32(out, static_cast<std::uint32_t>(snapshot.safe_set.size()));
  for (const SafeSetLevelStats& level : snapshot.safe_set) {
    put_u32(out, level.level);
    put_u64(out, level.observed);
    put_f64(out, level.bound);
    put_f64(out, level.ratio);
  }
  put_f64(out, snapshot.safe_worst_ratio);
  put_u32(out, snapshot.safe_violated_level);

  // v4: placement epoch + repair counters.
  put_u64(out, snapshot.placement_epoch);
  put_u64(out, snapshot.repair.migrations_done);
  put_u64(out, snapshot.repair.migrations_failed);
  put_u64(out, snapshot.repair.migrations_inflight);
  put_u64(out, snapshot.repair.chunks_pending);
  put_u64(out, snapshot.repair.bytes_sent);
  put_u64(out, snapshot.repair.migrations_in);
  put_u64(out, snapshot.repair.migrations_out);
  put_u64(out, snapshot.repair.migration_bytes_in);
  put_u64(out, snapshot.repair.migration_bytes_out);

  // v5: windowed deltas + active alerts (health plane).
  put_u64(out, snapshot.window_span_ms);
  put_u64(out, snapshot.win_submitted);
  put_u64(out, snapshot.win_completed);
  put_u64(out, snapshot.win_rejected);
  for (const LatencyStats* h :
       {&snapshot.win_latency, &snapshot.win_hop_rtt,
        &snapshot.win_queue_wait}) {
    put_u64(out, h->count);
    put_u64(out, h->sum_us);
    put_u64(out, h->max_us);
    for (const std::uint64_t b : h->buckets) put_u64(out, b);
  }
  put_u32(out, static_cast<std::uint32_t>(snapshot.active_alerts.size()));
  for (const std::string& alert : snapshot.active_alerts) {
    put_string(out, alert);
  }
}

bool decode_stats_payload(const std::uint8_t* data, std::size_t size,
                          StatsSnapshot& out) {
  if (size == 0 ||
      data[0] != static_cast<std::uint8_t>(MsgType::kStatsResponse)) {
    return false;
  }
  Cursor c(data + 1, size - 1);
  if (!c.u32(out.version)) return false;
  if (out.version != kStatsVersion) return false;
  std::uint8_t role = 0;
  if (!c.u64(out.uptime_ms) || !c.u8(role)) return false;
  if (role > static_cast<std::uint8_t>(NodeRole::kRouter)) return false;
  out.role = static_cast<NodeRole>(role);
  if (!c.u32(out.backend_id)) return false;
  if (!c.str(out.policy) || !c.u32(out.servers) ||
      !c.u32(out.replication) || !c.u32(out.processing_rate) ||
      !c.u32(out.queue_capacity) || !c.u32(out.shard_count)) {
    return false;
  }

  std::uint32_t shard_rows = 0;
  if (!c.u32(shard_rows)) return false;
  // A snapshot never carries more rows than fit in a max-size frame.
  if (shard_rows > kMaxFramePayload / sizeof(ShardStats)) return false;
  out.shards.assign(shard_rows, ShardStats{});
  for (ShardStats& s : out.shards) {
    if (!get_shard(c, s)) return false;
  }

  for (LatencyStats* h :
       {&out.latency, &out.hop_rtt, &out.queue_wait}) {
    if (!c.u64(h->count) || !c.u64(h->sum_us) || !c.u64(h->max_us)) {
      return false;
    }
    for (std::uint64_t& b : h->buckets) {
      if (!c.u64(b)) return false;
    }
  }

  std::uint32_t levels = 0;
  if (!c.u32(levels)) return false;
  if (levels > kMaxFramePayload / sizeof(SafeSetLevelStats)) return false;
  out.safe_set.assign(levels, SafeSetLevelStats{});
  for (SafeSetLevelStats& level : out.safe_set) {
    if (!c.u32(level.level) || !c.u64(level.observed) ||
        !c.f64(level.bound) || !c.f64(level.ratio)) {
      return false;
    }
  }
  if (!c.f64(out.safe_worst_ratio) || !c.u32(out.safe_violated_level)) {
    return false;
  }

  if (!c.u64(out.placement_epoch) || !c.u64(out.repair.migrations_done) ||
      !c.u64(out.repair.migrations_failed) ||
      !c.u64(out.repair.migrations_inflight) ||
      !c.u64(out.repair.chunks_pending) || !c.u64(out.repair.bytes_sent) ||
      !c.u64(out.repair.migrations_in) || !c.u64(out.repair.migrations_out) ||
      !c.u64(out.repair.migration_bytes_in) ||
      !c.u64(out.repair.migration_bytes_out)) {
    return false;
  }

  // v5: windowed deltas + active alerts (health plane).
  if (!c.u64(out.window_span_ms) || !c.u64(out.win_submitted) ||
      !c.u64(out.win_completed) || !c.u64(out.win_rejected)) {
    return false;
  }
  for (LatencyStats* h :
       {&out.win_latency, &out.win_hop_rtt, &out.win_queue_wait}) {
    if (!c.u64(h->count) || !c.u64(h->sum_us) || !c.u64(h->max_us)) {
      return false;
    }
    for (std::uint64_t& b : h->buckets) {
      if (!c.u64(b)) return false;
    }
  }
  std::uint32_t alerts = 0;
  if (!c.u32(alerts)) return false;
  // Each alert is a short rule name; the payload can't carry more than
  // one per two bytes (u16 length + at least nothing).
  if (alerts > kMaxFramePayload / 2) return false;
  out.active_alerts.assign(alerts, std::string());
  for (std::string& alert : out.active_alerts) {
    if (!c.str(alert)) return false;
  }
  return c.exhausted();
}

bool peek_stats_version(const std::uint8_t* data, std::size_t size,
                        std::uint32_t& version) {
  if (size < 5 ||
      data[0] != static_cast<std::uint8_t>(MsgType::kStatsResponse)) {
    return false;
  }
  version = 0;
  for (int i = 4; i >= 1; --i) {
    version = (version << 8) | data[i];
  }
  return true;
}

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out.append(buffer, static_cast<std::size_t>(n));
}

void prom_shard_counter(std::string& out, const StatsSnapshot& snapshot,
                        const char* name, const char* help,
                        std::uint64_t ShardStats::* field,
                        const char* type = "counter") {
  append_fmt(out, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, type);
  for (const ShardStats& s : snapshot.shards) {
    append_fmt(out, "%s{shard=\"%" PRIu32 "\"} %" PRIu64 "\n", name, s.shard,
               s.*field);
  }
}

void prom_histogram(std::string& out, const char* name, const char* help,
                    const LatencyStats& h) {
  append_fmt(out, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    cumulative += h.buckets[i];
    const unsigned shift = static_cast<unsigned>(i + 1 > 62 ? 62 : i + 1);
    append_fmt(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", name,
               static_cast<std::uint64_t>(1ULL << shift), cumulative);
  }
  append_fmt(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name, h.count);
  append_fmt(out, "%s_sum %" PRIu64 "\n", name, h.sum_us);
  append_fmt(out, "%s_count %" PRIu64 "\n", name, h.count);
}

}  // namespace

std::string render_prometheus(const StatsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  out += "# HELP rlb_up Daemon liveness.\n# TYPE rlb_up gauge\nrlb_up 1\n";
  out += "# TYPE rlb_uptime_ms gauge\n";
  append_fmt(out, "rlb_uptime_ms %" PRIu64 "\n", snapshot.uptime_ms);
  append_fmt(out,
             "rlb_engine_info{policy=\"%s\",role=\"%s\",backend_id=\"%" PRIu32
             "\",servers=\"%" PRIu32
             "\",replication=\"%" PRIu32 "\",rate=\"%" PRIu32
             "\",queue_capacity=\"%" PRIu32 "\",shards=\"%" PRIu32 "\"} 1\n",
             snapshot.policy.c_str(), to_string(snapshot.role),
             snapshot.backend_id, snapshot.servers, snapshot.replication,
             snapshot.processing_rate, snapshot.queue_capacity,
             snapshot.shard_count);

  prom_shard_counter(out, snapshot, "rlb_engine_submitted_total",
                     "Requests accepted into a shard's inbound queue.",
                     &ShardStats::submitted);
  prom_shard_counter(out, snapshot, "rlb_engine_completed_total",
                     "Requests served.", &ShardStats::completed);
  prom_shard_counter(out, snapshot, "rlb_engine_rejected_queue_full_total",
                     "Rejections: bounded server queue full (q-bound rule).",
                     &ShardStats::rejected_queue_full);
  prom_shard_counter(out, snapshot, "rlb_engine_rejected_all_down_total",
                     "Rejections: every replica of the chunk was down.",
                     &ShardStats::rejected_all_down);
  prom_shard_counter(out, snapshot, "rlb_engine_rejected_admission_total",
                     "Rejections: shard waiting room overflow.",
                     &ShardStats::rejected_admission);
  prom_shard_counter(out, snapshot, "rlb_engine_rejected_drop_total",
                     "Rejections: dropped in a queue dump or drain flush.",
                     &ShardStats::rejected_drop);
  prom_shard_counter(out, snapshot, "rlb_engine_errors_total",
                     "Requests answered kError (e.g. shutdown drain).",
                     &ShardStats::errors);
  prom_shard_counter(out, snapshot, "rlb_engine_ticks_total",
                     "Worker loop iterations.", &ShardStats::ticks);
  prom_shard_counter(out, snapshot, "rlb_engine_batches_total",
                     "Ticks that stepped a non-empty micro-batch.",
                     &ShardStats::batches);
  prom_shard_counter(out, snapshot, "rlb_engine_batched_chunks_total",
                     "Distinct chunks stepped, summed over batches.",
                     &ShardStats::batched_chunks);
  prom_shard_counter(out, snapshot, "rlb_engine_step_ns_total",
                     "Nanoseconds spent inside balancer step().",
                     &ShardStats::step_ns);
  prom_shard_counter(out, snapshot, "rlb_engine_inbound_depth",
                     "Requests queued ahead of the shard worker.",
                     &ShardStats::inbound_depth, "gauge");
  prom_shard_counter(out, snapshot, "rlb_engine_waiting_depth",
                     "Waiting-room occupancy.", &ShardStats::waiting_depth,
                     "gauge");
  prom_shard_counter(out, snapshot, "rlb_engine_inflight",
                     "Requests inside the balancer (queued on servers).",
                     &ShardStats::inflight, "gauge");
  prom_shard_counter(out, snapshot, "rlb_engine_backlog",
                     "Sum of server backlogs in the shard.",
                     &ShardStats::backlog, "gauge");
  prom_shard_counter(out, snapshot, "rlb_engine_servers_down",
                     "Servers currently marked down.",
                     &ShardStats::servers_down, "gauge");

  prom_histogram(out, "rlb_engine_latency_us",
                 "Wire-to-response latency (microseconds).",
                 snapshot.latency);
  prom_histogram(out, "rlb_router_hop_rtt_us",
                 "Router-side upstream hop round trip (microseconds), one "
                 "sample per forward attempt.",
                 snapshot.hop_rtt);
  prom_histogram(out, "rlb_engine_queue_wait_us",
                 "Submit-to-drain-tick wait inside the engine's inbound "
                 "queue + waiting room (microseconds).",
                 snapshot.queue_wait);

  out +=
      "# HELP rlb_safe_set_observed Servers with backlog > j (Def 3.2).\n"
      "# TYPE rlb_safe_set_observed gauge\n";
  for (const SafeSetLevelStats& level : snapshot.safe_set) {
    append_fmt(out, "rlb_safe_set_observed{level=\"%" PRIu32 "\"} %" PRIu64
               "\n",
               level.level, level.observed);
  }
  out += "# TYPE rlb_safe_set_bound gauge\n";
  for (const SafeSetLevelStats& level : snapshot.safe_set) {
    append_fmt(out, "rlb_safe_set_bound{level=\"%" PRIu32 "\"} %g\n",
               level.level, level.bound);
  }
  out += "# TYPE rlb_safe_set_ratio gauge\n";
  for (const SafeSetLevelStats& level : snapshot.safe_set) {
    append_fmt(out, "rlb_safe_set_ratio{level=\"%" PRIu32 "\"} %g\n",
               level.level, level.ratio);
  }
  out +=
      "# HELP rlb_safe_set_worst_ratio Max over j of observed/(m/2^j); <= 1 "
      "iff the backlog distribution is safe.\n"
      "# TYPE rlb_safe_set_worst_ratio gauge\n";
  append_fmt(out, "rlb_safe_set_worst_ratio %g\n", snapshot.safe_worst_ratio);
  out += "# TYPE rlb_safe_set_violated_level gauge\n";
  append_fmt(out, "rlb_safe_set_violated_level %" PRIu32 "\n",
             snapshot.safe_violated_level);

  out +=
      "# HELP rlb_placement_epoch Current placement epoch (0 = no repair "
      "cutover yet).\n# TYPE rlb_placement_epoch gauge\n";
  append_fmt(out, "rlb_placement_epoch %" PRIu64 "\n",
             snapshot.placement_epoch);
  out += "# TYPE rlb_repair_migrations_done_total counter\n";
  append_fmt(out, "rlb_repair_migrations_done_total %" PRIu64 "\n",
             snapshot.repair.migrations_done);
  out += "# TYPE rlb_repair_migrations_failed_total counter\n";
  append_fmt(out, "rlb_repair_migrations_failed_total %" PRIu64 "\n",
             snapshot.repair.migrations_failed);
  out += "# TYPE rlb_repair_migrations_inflight gauge\n";
  append_fmt(out, "rlb_repair_migrations_inflight %" PRIu64 "\n",
             snapshot.repair.migrations_inflight);
  out += "# TYPE rlb_repair_chunks_pending gauge\n";
  append_fmt(out, "rlb_repair_chunks_pending %" PRIu64 "\n",
             snapshot.repair.chunks_pending);
  out += "# TYPE rlb_repair_bytes_sent_total counter\n";
  append_fmt(out, "rlb_repair_bytes_sent_total %" PRIu64 "\n",
             snapshot.repair.bytes_sent);
  out += "# TYPE rlb_migrations_in_total counter\n";
  append_fmt(out, "rlb_migrations_in_total %" PRIu64 "\n",
             snapshot.repair.migrations_in);
  out += "# TYPE rlb_migrations_out_total counter\n";
  append_fmt(out, "rlb_migrations_out_total %" PRIu64 "\n",
             snapshot.repair.migrations_out);
  out += "# TYPE rlb_migration_bytes_in_total counter\n";
  append_fmt(out, "rlb_migration_bytes_in_total %" PRIu64 "\n",
             snapshot.repair.migration_bytes_in);
  out += "# TYPE rlb_migration_bytes_out_total counter\n";
  append_fmt(out, "rlb_migration_bytes_out_total %" PRIu64 "\n",
             snapshot.repair.migration_bytes_out);

  out +=
      "# HELP rlb_win_span_ms Wall time covered by the windowed deltas "
      "below (0 = no windowed data).\n# TYPE rlb_win_span_ms gauge\n";
  append_fmt(out, "rlb_win_span_ms %" PRIu64 "\n", snapshot.window_span_ms);
  out += "# TYPE rlb_win_submitted gauge\n";
  append_fmt(out, "rlb_win_submitted %" PRIu64 "\n", snapshot.win_submitted);
  out += "# TYPE rlb_win_completed gauge\n";
  append_fmt(out, "rlb_win_completed %" PRIu64 "\n", snapshot.win_completed);
  out += "# TYPE rlb_win_rejected gauge\n";
  append_fmt(out, "rlb_win_rejected %" PRIu64 "\n", snapshot.win_rejected);
  prom_histogram(out, "rlb_win_latency_us",
                 "Wire-to-response latency over the trailing window "
                 "(microseconds).",
                 snapshot.win_latency);
  prom_histogram(out, "rlb_win_hop_rtt_us",
                 "Upstream hop round trip over the trailing window "
                 "(microseconds).",
                 snapshot.win_hop_rtt);
  prom_histogram(out, "rlb_win_queue_wait_us",
                 "Queue wait over the trailing window (microseconds).",
                 snapshot.win_queue_wait);

  out +=
      "# HELP rlb_alert_active Watchdog alert currently raised "
      "(absent rule = not firing).\n# TYPE rlb_alert_active gauge\n";
  for (const std::string& alert : snapshot.active_alerts) {
    append_fmt(out, "rlb_alert_active{rule=\"%s\"} 1\n", alert.c_str());
  }
  return out;
}

std::string render_json(const StatsSnapshot& snapshot) {
  const ShardStats t = snapshot.totals();
  std::string out = "{";
  append_fmt(out, "\"uptime_ms\":%" PRIu64 ",", snapshot.uptime_ms);
  append_fmt(out, "\"role\":\"%s\",\"backend_id\":%" PRIu32 ",",
             to_string(snapshot.role), snapshot.backend_id);
  append_fmt(out, "\"policy\":\"%s\",", snapshot.policy.c_str());
  append_fmt(out, "\"servers\":%" PRIu32 ",\"shards\":%" PRIu32 ",",
             snapshot.servers, snapshot.shard_count);
  append_fmt(out,
             "\"submitted\":%" PRIu64 ",\"completed\":%" PRIu64
             ",\"rejected_queue_full\":%" PRIu64
             ",\"rejected_all_down\":%" PRIu64
             ",\"rejected_admission\":%" PRIu64 ",\"rejected_drop\":%" PRIu64
             ",\"errors\":%" PRIu64 ",",
             t.submitted, t.completed, t.rejected_queue_full,
             t.rejected_all_down, t.rejected_admission, t.rejected_drop,
             t.errors);
  append_fmt(out,
             "\"inbound_depth\":%" PRIu64 ",\"waiting_depth\":%" PRIu64
             ",\"inflight\":%" PRIu64 ",\"backlog\":%" PRIu64
             ",\"servers_down\":%" PRIu64 ",",
             t.inbound_depth, t.waiting_depth, t.inflight, t.backlog,
             t.servers_down);
  append_fmt(out,
             "\"latency_p50_us\":%g,\"latency_p99_us\":%g,"
             "\"latency_max_us\":%" PRIu64 ",",
             snapshot.latency.quantile_us(0.5),
             snapshot.latency.quantile_us(0.99), snapshot.latency.max_us);
  append_fmt(out,
             "\"hop_rtt_count\":%" PRIu64
             ",\"hop_rtt_p50_us\":%g,\"hop_rtt_p99_us\":%g,"
             "\"hop_rtt_max_us\":%" PRIu64 ",",
             snapshot.hop_rtt.count, snapshot.hop_rtt.quantile_us(0.5),
             snapshot.hop_rtt.quantile_us(0.99), snapshot.hop_rtt.max_us);
  append_fmt(out,
             "\"queue_wait_count\":%" PRIu64
             ",\"queue_wait_p50_us\":%g,\"queue_wait_p99_us\":%g,"
             "\"queue_wait_max_us\":%" PRIu64 ",",
             snapshot.queue_wait.count, snapshot.queue_wait.quantile_us(0.5),
             snapshot.queue_wait.quantile_us(0.99),
             snapshot.queue_wait.max_us);
  out += "\"safe_set\":[";
  for (std::size_t i = 0; i < snapshot.safe_set.size(); ++i) {
    const SafeSetLevelStats& level = snapshot.safe_set[i];
    append_fmt(out,
               "%s{\"level\":%" PRIu32 ",\"observed\":%" PRIu64
               ",\"bound\":%g,\"ratio\":%g}",
               i == 0 ? "" : ",", level.level, level.observed, level.bound,
               level.ratio);
  }
  out += "],";
  append_fmt(out, "\"safe_worst_ratio\":%g,\"safe_violated_level\":%" PRIu32
             ",",
             snapshot.safe_worst_ratio, snapshot.safe_violated_level);
  append_fmt(out,
             "\"placement_epoch\":%" PRIu64
             ",\"repair\":{\"migrations_done\":%" PRIu64
             ",\"migrations_failed\":%" PRIu64
             ",\"migrations_inflight\":%" PRIu64
             ",\"chunks_pending\":%" PRIu64 ",\"bytes_sent\":%" PRIu64
             ",\"migrations_in\":%" PRIu64 ",\"migrations_out\":%" PRIu64
             ",\"migration_bytes_in\":%" PRIu64
             ",\"migration_bytes_out\":%" PRIu64 "}",
             snapshot.placement_epoch, snapshot.repair.migrations_done,
             snapshot.repair.migrations_failed,
             snapshot.repair.migrations_inflight,
             snapshot.repair.chunks_pending, snapshot.repair.bytes_sent,
             snapshot.repair.migrations_in, snapshot.repair.migrations_out,
             snapshot.repair.migration_bytes_in,
             snapshot.repair.migration_bytes_out);
  append_fmt(out,
             ",\"window\":{\"span_ms\":%" PRIu64 ",\"submitted\":%" PRIu64
             ",\"completed\":%" PRIu64 ",\"rejected\":%" PRIu64
             ",\"latency_p50_us\":%g,\"latency_p99_us\":%g"
             ",\"hop_rtt_p99_us\":%g,\"queue_wait_p99_us\":%g}",
             snapshot.window_span_ms, snapshot.win_submitted,
             snapshot.win_completed, snapshot.win_rejected,
             snapshot.win_latency.quantile_us(0.5),
             snapshot.win_latency.quantile_us(0.99),
             snapshot.win_hop_rtt.quantile_us(0.99),
             snapshot.win_queue_wait.quantile_us(0.99));
  out += ",\"alerts\":[";
  for (std::size_t i = 0; i < snapshot.active_alerts.size(); ++i) {
    append_fmt(out, "%s\"%s\"", i == 0 ? "" : ",",
               snapshot.active_alerts[i].c_str());
  }
  out += "]}";
  return out;
}

}  // namespace rlb::net
