// A small freelist of byte buffers so steady-state frame traffic does
// zero per-frame allocations.
//
// The serving hot path reuses long-lived per-connection vectors (decoder
// buffer, staging/drain buffers), which warm up once and then never
// allocate.  The pool covers the remaining churn: per-frame chunks queued
// on an UpstreamConn, admin-response encode scratch, and reclaiming the
// occasionally huge buffer a slow consumer left behind (release() frees
// anything over the capacity cap instead of caching it, so one bad client
// can't pin memory).
//
// Thread-safe; the lock is held only for a vector swap.  acquire() never
// blocks on allocation inside the lock — a miss just returns a fresh
// empty vector that warms up with use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace rlb::net {

class BufferPool {
 public:
  /// `max_cached` buffers are kept at rest; `max_buffer_capacity` is the
  /// largest capacity worth caching — bigger buffers are freed on release.
  explicit BufferPool(std::size_t max_cached = 64,
                      std::size_t max_buffer_capacity = 1 << 20)
      : max_cached_(max_cached), max_buffer_capacity_(max_buffer_capacity) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty buffer, with cached capacity when the pool has one.
  std::vector<std::uint8_t> acquire() {
    {
      std::lock_guard lock(mu_);
      if (!cache_.empty()) {
        std::vector<std::uint8_t> buf = std::move(cache_.back());
        cache_.pop_back();
        return buf;
      }
    }
    return {};
  }

  /// Hand a buffer back.  It is cleared here; capacity is cached unless
  /// the pool is full or the buffer is oversized (then it is freed).
  void release(std::vector<std::uint8_t>&& buf) {
    buf.clear();
    if (buf.capacity() == 0 || buf.capacity() > max_buffer_capacity_) return;
    std::lock_guard lock(mu_);
    if (cache_.size() >= max_cached_) return;
    cache_.push_back(std::move(buf));
  }

  /// Buffers currently at rest (test/diagnostic hook).
  std::size_t cached() const {
    std::lock_guard lock(mu_);
    return cache_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<std::uint8_t>> cache_;
  std::size_t max_cached_;
  std::size_t max_buffer_capacity_;
};

/// The process-wide pool shared by the net layer.
BufferPool& global_buffer_pool();

}  // namespace rlb::net
