#include "net/upstream.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace rlb::net {

struct UpstreamConn::Impl {
  UpstreamConfig config;
  UpstreamResponseFn on_response;
  UpstreamStateFn on_state;

  // `mu` guards fd/up for writers; the reader thread is the only closer,
  // and closes only under `mu`, so a writer holding the lock never races
  // a close.  Reads happen outside the lock: concurrent read/write on one
  // socket is fine, and the fd stays valid for the reader by construction
  // (nobody else closes it).
  mutable std::mutex mu;
  std::condition_variable cv;  // interrupts backoff sleeps on stop()
  int fd = -1;
  bool up = false;
  bool running = false;
  std::atomic<std::uint64_t> dials{0};
  std::thread reader;

  int dial() {
    int s = ::socket(AF_INET, SOCK_STREAM, 0);
    if (s < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(s);
      return -1;
    }
    const int one = 1;
    ::setsockopt(s, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return s;
  }

  void run() {
    std::uint64_t backoff_ms = config.backoff_initial_ms;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (!running) return;
      }
      const int s = dial();
      if (s < 0) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait_for(lock, std::chrono::milliseconds(backoff_ms),
                    [this] { return !running; });
        if (!running) return;
        backoff_ms = std::min(backoff_ms * 2, config.backoff_max_ms);
        continue;
      }
      backoff_ms = config.backoff_initial_ms;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!running) {
          ::close(s);
          return;
        }
        fd = s;
        up = true;
      }
      dials.fetch_add(1, std::memory_order_relaxed);
      if (on_state) on_state(true);
      read_until_drop(s);
      bool still_running;
      {
        std::lock_guard<std::mutex> lock(mu);
        up = false;
        ::close(fd);
        fd = -1;
        still_running = running;
      }
      if (on_state) on_state(false);
      if (!still_running) return;
    }
  }

  void read_until_drop(int s) {
    FrameDecoder decoder;
    std::vector<std::uint8_t> payload;
    std::uint8_t buffer[16384];
    for (;;) {
      const ssize_t n = ::read(s, buffer, sizeof(buffer));
      if (n == 0) return;  // EOF — backend went away
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // ECONNRESET / EBADF-after-shutdown / ...
      }
      if (!decoder.feed(buffer, static_cast<std::size_t>(n))) return;
      while (decoder.next(payload)) {
        RequestMsg request;
        ResponseMsg response;
        const Decoded decoded = decode_payload(payload.data(), payload.size(),
                                               request, response);
        // Only RESPONSE frames belong on a data-plane stream; anything
        // else is a framing-level violation, so drop the connection.
        if (decoded != Decoded::kResponse) return;
        if (on_response) on_response(response);
      }
      if (decoder.error()) return;
    }
  }
};

UpstreamConn::UpstreamConn(UpstreamConfig config, UpstreamResponseFn on_response,
                           UpstreamStateFn on_state)
    : impl_(new Impl{}) {
  impl_->config = std::move(config);
  impl_->on_response = std::move(on_response);
  impl_->on_state = std::move(on_state);
}

UpstreamConn::~UpstreamConn() {
  stop();
  delete impl_;
}

void UpstreamConn::start() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->running) return;
  impl_->running = true;
  impl_->reader = std::thread([this] { impl_->run(); });
}

void UpstreamConn::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->running && !impl_->reader.joinable()) return;
    impl_->running = false;
    // Wake a blocking read; the reader closes the fd itself.
    if (impl_->fd >= 0) ::shutdown(impl_->fd, SHUT_RDWR);
    impl_->cv.notify_all();
  }
  if (impl_->reader.joinable()) impl_->reader.join();
}

bool UpstreamConn::send_request(std::uint64_t request_id, std::uint64_t key,
                                const obs::TraceContext& trace) {
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + kRequestTracedPayloadSize);
  encode_request(RequestMsg{request_id, key, trace}, frame);
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->up) return false;
  std::size_t offset = 0;
  while (offset < frame.size()) {
    const ssize_t n = ::send(impl_->fd, frame.data() + offset,
                             frame.size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // The reader will observe the same drop and fire on_state(false);
      // report the send as failed so the caller fails over now.
      return false;
    }
    offset += static_cast<std::size_t>(n);
  }
  return true;
}

bool UpstreamConn::connected() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->up;
}

std::uint64_t UpstreamConn::reconnects() const {
  const std::uint64_t d = impl_->dials.load(std::memory_order_relaxed);
  return d > 0 ? d - 1 : 0;
}

}  // namespace rlb::net
