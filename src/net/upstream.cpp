#include "net/upstream.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/buffer_pool.hpp"

namespace rlb::net {

struct UpstreamConn::Impl {
  UpstreamConfig config;
  UpstreamResponseFn on_response;
  UpstreamStateFn on_state;

  // `mu` guards fd/up and the outbound queue.  The reader thread is the
  // only closer; since the drain writer runs writev() OUTSIDE the lock,
  // the reader first shutdown()s the socket (making in-flight writes fail
  // fast) and waits for `writer_active` to clear before close(), so the
  // fd number can never be recycled under a blocked writer.  Reads happen
  // outside the lock: concurrent read/write on one socket is fine, and
  // the fd stays valid for the reader by construction.
  mutable std::mutex mu;
  std::condition_variable cv;  // interrupts backoff sleeps on stop(),
                               // and signals writer_active clearing
  int fd = -1;
  bool up = false;
  bool running = false;
  std::atomic<std::uint64_t> dials{0};
  std::thread reader;

  // Outbound frame queue: one pooled chunk per frame, drained by whichever
  // sender finds no writer active.  Concurrent send_request() calls under
  // contention thus batch into a single writev() iovec chain instead of
  // serializing one syscall each.
  std::deque<std::vector<std::uint8_t>> outq;
  std::size_t outq_head_off = 0;  // bytes of outq.front() already written
  bool writer_active = false;
  std::vector<iovec> iov_scratch;

  void clear_outq_locked() {
    for (auto& chunk : outq) global_buffer_pool().release(std::move(chunk));
    outq.clear();
    outq_head_off = 0;
  }

  /// Drain the queue with writev() until empty, error, or drop.  `lock`
  /// is held on entry and exit, released across each syscall.  The caller
  /// owns writer_active.
  bool drain_outq(std::unique_lock<std::mutex>& lock) {
    constexpr std::size_t kMaxIov = 64;
    while (up && !outq.empty()) {
      iov_scratch.clear();
      const std::size_t count = std::min(outq.size(), kMaxIov);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t off = (i == 0) ? outq_head_off : 0;
        iov_scratch.push_back(
            iovec{outq[i].data() + off, outq[i].size() - off});
      }
      const int s = fd;
      lock.unlock();
      // Blocking socket.  sendmsg instead of writev purely for
      // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
      msghdr msg{};
      msg.msg_iov = iov_scratch.data();
      msg.msg_iovlen = count;
      ssize_t n = ::sendmsg(s, &msg, MSG_NOSIGNAL);
      lock.lock();
      if (n < 0) {
        if (errno == EINTR) continue;
        // The reader will observe the same drop and fire on_state(false);
        // queued frames die with the connection (the router re-forwards
        // their hops from its pending table on the drop signal).
        clear_outq_locked();
        return false;
      }
      while (n > 0 && !outq.empty()) {
        std::vector<std::uint8_t>& head = outq.front();
        const std::size_t remaining = head.size() - outq_head_off;
        if (static_cast<std::size_t>(n) >= remaining) {
          n -= static_cast<ssize_t>(remaining);
          outq_head_off = 0;
          global_buffer_pool().release(std::move(head));
          outq.pop_front();
        } else {
          outq_head_off += static_cast<std::size_t>(n);
          n = 0;
        }
      }
    }
    if (!up) {
      clear_outq_locked();
      return false;
    }
    return true;
  }

  int dial() {
    int s = ::socket(AF_INET, SOCK_STREAM, 0);
    if (s < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(s);
      return -1;
    }
    const int one = 1;
    ::setsockopt(s, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return s;
  }

  void run() {
    std::uint64_t backoff_ms = config.backoff_initial_ms;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (!running) return;
      }
      const int s = dial();
      if (s < 0) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait_for(lock, std::chrono::milliseconds(backoff_ms),
                    [this] { return !running; });
        if (!running) return;
        backoff_ms = std::min(backoff_ms * 2, config.backoff_max_ms);
        continue;
      }
      backoff_ms = config.backoff_initial_ms;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!running) {
          ::close(s);
          return;
        }
        fd = s;
        up = true;
      }
      dials.fetch_add(1, std::memory_order_relaxed);
      if (on_state) on_state(true);
      read_until_drop(s);
      bool still_running;
      {
        std::unique_lock<std::mutex> lock(mu);
        up = false;
        // Fail any in-flight writev fast, then wait for the writer to get
        // off the fd before close(): closing under a blocked writer would
        // let the kernel recycle the fd number mid-syscall.
        ::shutdown(fd, SHUT_RDWR);
        cv.wait(lock, [this] { return !writer_active; });
        ::close(fd);
        fd = -1;
        clear_outq_locked();
        still_running = running;
      }
      if (on_state) on_state(false);
      if (!still_running) return;
    }
  }

  void read_until_drop(int s) {
    FrameDecoder decoder;
    std::vector<std::uint8_t> payload;
    std::uint8_t buffer[16384];
    for (;;) {
      const ssize_t n = ::read(s, buffer, sizeof(buffer));
      if (n == 0) return;  // EOF — backend went away
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // ECONNRESET / EBADF-after-shutdown / ...
      }
      if (!decoder.feed(buffer, static_cast<std::size_t>(n))) return;
      while (decoder.next(payload)) {
        RequestMsg request;
        ResponseMsg response;
        const Decoded decoded = decode_payload(payload.data(), payload.size(),
                                               request, response);
        // Only RESPONSE frames belong on a data-plane stream; anything
        // else is a framing-level violation, so drop the connection.
        if (decoded != Decoded::kResponse) return;
        if (on_response) on_response(response);
      }
      if (decoder.error()) return;
    }
  }
};

UpstreamConn::UpstreamConn(UpstreamConfig config, UpstreamResponseFn on_response,
                           UpstreamStateFn on_state)
    : impl_(new Impl{}) {
  impl_->config = std::move(config);
  impl_->on_response = std::move(on_response);
  impl_->on_state = std::move(on_state);
}

UpstreamConn::~UpstreamConn() {
  stop();
  delete impl_;
}

void UpstreamConn::start() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->running) return;
  impl_->running = true;
  impl_->reader = std::thread([this] { impl_->run(); });
}

void UpstreamConn::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->running && !impl_->reader.joinable()) return;
    impl_->running = false;
    // Wake a blocking read; the reader closes the fd itself.
    if (impl_->fd >= 0) ::shutdown(impl_->fd, SHUT_RDWR);
    impl_->cv.notify_all();
  }
  if (impl_->reader.joinable()) impl_->reader.join();
}

bool UpstreamConn::send_request(std::uint64_t request_id, std::uint64_t key,
                                const obs::TraceContext& trace) {
  std::vector<std::uint8_t> frame = global_buffer_pool().acquire();
  encode_request(RequestMsg{request_id, key, trace}, frame);
  std::unique_lock<std::mutex> lock(impl_->mu);
  if (!impl_->up) {
    lock.unlock();
    global_buffer_pool().release(std::move(frame));
    return false;
  }
  impl_->outq.push_back(std::move(frame));
  if (impl_->writer_active) {
    // The active drainer's next writev batches this frame; report queued
    // as sent.  If the drain then fails, the frame dies with the
    // connection and the drop signal re-forwards its hop — same outcome
    // as a frame lost in the kernel buffer of a dying socket.
    return true;
  }
  impl_->writer_active = true;
  const bool ok = impl_->drain_outq(lock);
  impl_->writer_active = false;
  impl_->cv.notify_all();  // the reader may be waiting to close the fd
  return ok;
}

bool UpstreamConn::enqueue_request(std::uint64_t request_id, std::uint64_t key,
                                   const obs::TraceContext& trace) {
  std::vector<std::uint8_t> frame = global_buffer_pool().acquire();
  encode_request(RequestMsg{request_id, key, trace}, frame);
  std::unique_lock<std::mutex> lock(impl_->mu);
  if (!impl_->up) {
    lock.unlock();
    global_buffer_pool().release(std::move(frame));
    return false;
  }
  impl_->outq.push_back(std::move(frame));
  return true;
}

bool UpstreamConn::flush() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  if (impl_->outq.empty() || impl_->writer_active || !impl_->up) {
    // An active drainer's next iovec chain picks the queue up; a down
    // connection cleared it already (or will, in the reader's teardown).
    return impl_->up;
  }
  impl_->writer_active = true;
  const bool ok = impl_->drain_outq(lock);
  impl_->writer_active = false;
  impl_->cv.notify_all();  // the reader may be waiting to close the fd
  return ok;
}

bool UpstreamConn::connected() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->up;
}

std::uint64_t UpstreamConn::reconnects() const {
  const std::uint64_t d = impl_->dials.load(std::memory_order_relaxed);
  return d > 0 ? d - 1 : 0;
}

}  // namespace rlb::net
