// The TRACE_RESP span blob: draining a daemon's span flight recorder over
// the wire.
//
// A TRACE request (net/wire.hpp, u8 type=5) asks the daemon for buffered
// spans; the answer is one TRACE_RESP frame carrying a TraceSnapshot.  The
// encoding follows STATS_RESP conventions exactly (net/stats.hpp): u8
// type=6, u32 version, then fields in declaration order — little-endian
// fixed-width integers, strings as u16 length + bytes, vectors as u32
// count + entries, exact payload consumption required.
//
// Responses DRAIN: each answered TRACE removes the returned spans from the
// recorder, and at most kMaxSpansPerTraceResponse travel per frame (the
// frame payload cap is 64 KiB), so a scraper loops until an empty response
// comes back.
//
// Clock anchor: span timestamps are steady-clock ns since *their* process
// started, which is meaningless across processes.  Every snapshot therefore
// carries a (steady_ns, wall_ns) pair sampled at encode time; a merger maps
// span time onto the shared wall clock as
//   wall(span_ts) = wall_ns - (steady_ns - span_ts)
// and can correct residual skew with its own scrape RTT (rlb_trace does
// RTT/2 midpoint correction, the same scheme the router's heartbeats use
// for their RTT estimate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/stats.hpp"
#include "obs/span.hpp"

namespace rlb::net {

/// Bump on any layout change.
inline constexpr std::uint32_t kTraceVersion = 1;

/// Ceiling on spans per TRACE_RESP frame, sized so a full response stays
/// under kMaxFramePayload even with long span names.
inline constexpr std::size_t kMaxSpansPerTraceResponse = 400;

/// One TRACE_RESP frame's worth of spans.
struct TraceSnapshot {
  std::uint32_t version = kTraceVersion;
  NodeRole role = NodeRole::kBackend;
  std::uint32_t backend_id = 0;
  /// Clock anchor sampled at encode time (see file comment).
  std::uint64_t steady_ns = 0;
  std::uint64_t wall_ns = 0;
  /// Spans lost before this snapshot: ring evictions.
  std::uint64_t dropped = 0;
  /// Spans still buffered after this drain (non-zero => scrape again).
  std::uint64_t remaining = 0;
  std::vector<obs::Span> spans;
};

/// Serialize `snapshot` as a TRACE_RESP payload (type byte included, no
/// frame length prefix) appended to `out`.  Encodes at most
/// kMaxSpansPerTraceResponse spans; callers chunk (make_trace_snapshot
/// already does).
void encode_trace_payload(const TraceSnapshot& snapshot,
                          std::vector<std::uint8_t>& out);

/// Parse a TRACE_RESP payload.  Returns false on a malformed body or a
/// version other than kTraceVersion; `out` is unspecified on failure.
/// Span names are interned for the process lifetime.
bool decode_trace_payload(const std::uint8_t* data, std::size_t size,
                          TraceSnapshot& out);

/// Build one response chunk: drain up to kMaxSpansPerTraceResponse spans
/// from the process-global SpanRecorder and stamp role/id/clock anchor.
/// Under RLB_OBS_DISABLED the span list is always empty (the recorder is
/// compiled out) but the anchor is still valid.
TraceSnapshot make_trace_snapshot(NodeRole role, std::uint32_t backend_id);

}  // namespace rlb::net
