#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#if defined(RLB_NET_USE_EPOLL)
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/buffer_pool.hpp"
#include "obs/journal.hpp"
#include "obs/obs.hpp"

namespace rlb::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::uint64_t make_token(std::size_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         static_cast<std::uint64_t>(slot);
}

/// Per-connection drain buffers larger than this are returned to the
/// global pool (which frees oversized ones) when the connection closes,
/// so one slow consumer doesn't pin megabytes on an idle slot forever.
constexpr std::size_t kRetainCapacity = 64 * 1024;

void trim_buffer(std::vector<std::uint8_t>& buf) {
  buf.clear();
  if (buf.capacity() > kRetainCapacity) {
    global_buffer_pool().release(std::move(buf));
    buf = std::vector<std::uint8_t>();
  }
}

}  // namespace

struct NetServer::Impl {
  // Why a struct of atomics instead of ServerStats behind a mutex: every
  // field is a monotonic counter touched on the per-read / per-frame hot
  // path by exactly one writer class (loop thread or response senders).
  // Relaxed increments are enough — stats() reads each field relaxed and
  // the result is per-field exact, merely not a cross-field atomic cut.
  struct AtomicStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> requests_decoded{0};
    std::atomic<std::uint64_t> responses_sent{0};
    std::atomic<std::uint64_t> stats_requests{0};
    std::atomic<std::uint64_t> trace_requests{0};
    std::atomic<std::uint64_t> events_requests{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> slow_consumer_drops{0};
  };

  struct Conn {
    // ---- Loop-owned state: only the event-loop thread touches these.
    int fd = -1;
    FrameDecoder decoder;
    /// Drain pair: `front` is being written (from front_off), `back`
    /// overflows behind it.  writev() chains both in one syscall.
    std::vector<std::uint8_t> front;
    std::size_t front_off = 0;
    std::vector<std::uint8_t> back;

    // ---- Cross-thread surface.  stage_mu guards `staged` plus the
    // open/gen identity transitions, so a sender that observes open under
    // the lock cannot leak bytes into a recycled slot: close_conn flips
    // open/gen under the same lock before clearing staged.
    std::mutex stage_mu;
    std::vector<std::uint8_t> staged;
    bool open = false;
    std::uint32_t gen = 0;
    /// Clean->dirty edge triggers one self-pipe wake; the loop exchanges
    /// it back to false before splicing so no staging is ever missed.
    std::atomic<bool> stage_dirty{false};
  };

  ServerConfig config;
  RequestHandler on_request;
  RequestBatchHandler on_batch;
  StatsHandler on_stats;
  TraceHandler on_trace;
  EventsHandler on_events;
  MigrateHandler on_migrate;
  MigrateDataHandler on_migrate_data;

  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
#if defined(RLB_NET_USE_EPOLL)
  int epoll_fd = -1;
#endif
  std::thread loop_thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};

  /// Fixed at start(): slots never reallocate, so sender threads can
  /// index without a container lock (per-slot stage_mu is the only one).
  std::vector<std::unique_ptr<Conn>> conns;
  /// Loop-private free-slot stack.
  std::vector<std::size_t> free_slots;

  AtomicStats stats;
  /// Outbound bytes accepted but not yet written (staged + front/back).
  /// Senders add under stage_mu; the loop subtracts what it writes or
  /// drops.  Drives the graceful-stop flush without scanning conns.
  std::atomic<std::int64_t> pending_out{0};
  /// True only while the loop is (about to be) blocked in epoll/poll.
  /// Senders skip the wake-pipe syscall when the loop is awake anyway —
  /// under load that removes a write+read syscall pair per splice cycle.
  /// Dekker pairing (both seq_cst): the sender stores stage_dirty then
  /// loads loop_asleep; the loop stores loop_asleep then re-scans
  /// stage_dirty before sleeping, so a staged response is either seen by
  /// that final scan or its sender sees loop_asleep and wakes the pipe.
  std::atomic<bool> loop_asleep{false};

  // Event-loop-private scratch.
  std::vector<ServerRequest> batch;
#if !defined(RLB_NET_USE_EPOLL)
  std::vector<pollfd> pollfds;
  std::vector<std::size_t> poll_slots;
#endif

  void wake() {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_write, &byte, 1);
  }

  bool loop_open(std::size_t slot) const { return conns[slot]->fd >= 0; }

  void close_conn(std::size_t slot, bool error) {
    Conn& conn = *conns[slot];
    if (conn.fd < 0) return;
    std::int64_t dropped = 0;
    {
      std::lock_guard lock(conn.stage_mu);
      conn.open = false;
      ++conn.gen;
      dropped += static_cast<std::int64_t>(conn.staged.size());
      trim_buffer(conn.staged);
    }
    conn.stage_dirty.store(false, std::memory_order_relaxed);
    dropped += static_cast<std::int64_t>(conn.front.size() - conn.front_off) +
               static_cast<std::int64_t>(conn.back.size());
    if (dropped != 0) pending_out.fetch_sub(dropped, std::memory_order_relaxed);
    ::close(conn.fd);  // also deregisters from epoll
    conn.fd = -1;
    trim_buffer(conn.front);
    conn.front_off = 0;
    trim_buffer(conn.back);
    conn.decoder.reset();
    free_slots.push_back(slot);
    stats.connections_closed.fetch_add(1, std::memory_order_relaxed);
    // Protocol errors are counted at their detection sites; `error` only
    // labels the trace event.
    RLB_TRACE_EVENT(obs::EventKind::kNet,
                    error ? "net.close_error" : "net.close", slot, conn.gen);
  }

  void accept_ready() {
    static obs::Counter accept_counter("net.accepted");
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;
      }
      if (free_slots.empty()) {
        ::close(fd);
        continue;
      }
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (config.sndbuf > 0) {
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config.sndbuf,
                     sizeof(config.sndbuf));
      }
      const std::size_t slot = free_slots.back();
      free_slots.pop_back();
      Conn& conn = *conns[slot];
      conn.fd = fd;
      conn.front_off = 0;
      {
        std::lock_guard lock(conn.stage_mu);
        conn.staged.clear();
        conn.open = true;
      }
      conn.stage_dirty.store(false, std::memory_order_relaxed);
#if defined(RLB_NET_USE_EPOLL)
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
      ev.data.u64 = static_cast<std::uint64_t>(slot);
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        close_conn(slot, /*error=*/true);
        continue;
      }
#endif
      stats.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      accept_counter.add();
      RLB_TRACE_EVENT(obs::EventKind::kNet, "net.accept", slot, conn.gen);
    }
  }

  void flush_batch() {
    if (batch.empty()) return;
    on_batch(batch.data(), batch.size());
    batch.clear();
  }

  /// Drain readable bytes, reassemble frames, dispatch requests.  Returns
  /// false when the connection must close (EOF, error, protocol violation).
  bool read_ready(std::size_t slot) {
    static obs::Counter request_counter("net.requests");
    static obs::Counter protocol_error_counter("net.protocol_errors");
    static obs::Histogram decode_hist("net.decode_ns");
    Conn& conn = *conns[slot];
    bool keep = true;
    std::uint8_t buffer[16384];
    while (keep) {
      const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
      if (n == 0) {  // clean EOF
        keep = false;
        break;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        keep = false;
        break;
      }
      stats.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                               std::memory_order_relaxed);
      obs::ObsTimer decode_timer("net.decode",
                                 obs::enabled() ? &decode_hist : nullptr,
                                 slot);
      if (!conn.decoder.feed(buffer, static_cast<std::size_t>(n))) {
        protocol_error_counter.add();
        RLB_TRACE_EVENT(obs::EventKind::kNet, "net.bad_frame", slot, 0);
        stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        keep = false;
        break;
      }
      const std::uint64_t token = make_token(slot, conn.gen);
      FrameView payload;
      while (conn.decoder.next_view(payload)) {
        RequestMsg request;
        ResponseMsg response;
        StatsRequestMsg stats_request;
        TraceRequestMsg trace_request;
        EventsRequestMsg events_request;
        const Decoded decoded =
            decode_payload(payload.data, payload.size, request, response,
                           stats_request, trace_request, events_request);
        if (decoded == Decoded::kRequest) {
          stats.requests_decoded.fetch_add(1, std::memory_order_relaxed);
          request_counter.add();
          if (on_batch) {
            batch.push_back(ServerRequest{token, request});
          } else {
            on_request(token, request);
          }
          continue;
        }
        // Admin frames are rare; flush buffered requests first so the
        // per-connection order (requests before a subsequent admin frame)
        // is preserved for the handler.
        flush_batch();
        if (decoded == Decoded::kStats && on_stats) {
          static obs::Counter stats_counter("net.stats_requests");
          stats.stats_requests.fetch_add(1, std::memory_order_relaxed);
          stats_counter.add();
          RLB_TRACE_EVENT(obs::EventKind::kNet, "net.stats", slot,
                          stats_request.flags);
          on_stats(token, stats_request);
          continue;
        }
        if (decoded == Decoded::kTrace && on_trace) {
          static obs::Counter trace_counter("net.trace_requests");
          stats.trace_requests.fetch_add(1, std::memory_order_relaxed);
          trace_counter.add();
          RLB_TRACE_EVENT(obs::EventKind::kNet, "net.trace", slot,
                          trace_request.flags);
          on_trace(token, trace_request);
          continue;
        }
        if (decoded == Decoded::kEvents && on_events) {
          static obs::Counter events_counter("net.events_requests");
          stats.events_requests.fetch_add(1, std::memory_order_relaxed);
          events_counter.add();
          RLB_TRACE_EVENT(obs::EventKind::kNet, "net.events", slot,
                          events_request.cursor);
          on_events(token, events_request);
          continue;
        }
        if (decoded == Decoded::kMigrate && on_migrate) {
          static obs::Counter migrate_counter("net.migrate_requests");
          MigrateMsg migrate;
          if (!decode_migrate(payload.data, payload.size, migrate)) {
            protocol_error_counter.add();
            stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
            keep = false;
            break;
          }
          migrate_counter.add();
          RLB_TRACE_EVENT(obs::EventKind::kNet, "net.migrate", slot,
                          migrate.chunk);
          on_migrate(token, migrate);
          continue;
        }
        if (decoded == Decoded::kMigrateData && on_migrate_data) {
          MigrateDataMsg data;
          if (!decode_migrate_data(payload.data, payload.size, data)) {
            protocol_error_counter.add();
            stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
            keep = false;
            break;
          }
          on_migrate_data(token, data);
          continue;
        }
        // Clients may only send REQUEST frames (plus STATS/TRACE/MIGRATE
        // when the daemon installed an admin handler).
        protocol_error_counter.add();
        RLB_TRACE_EVENT(obs::EventKind::kNet, "net.bad_message", slot,
                        payload.size == 0 ? 0 : payload.data[0]);
        stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        keep = false;
        break;
      }
      if (keep && conn.decoder.error()) {
        protocol_error_counter.add();
        stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        keep = false;
      }
    }
    flush_batch();
    return keep;
  }

  /// writev() the loop-owned drain pair until empty or EAGAIN.  Never
  /// holds a lock.  Returns false on a fatal write error.
  bool flush_writes(std::size_t slot) {
    Conn& conn = *conns[slot];
    while (conn.front_off < conn.front.size() || !conn.back.empty()) {
      if (conn.front_off == conn.front.size()) {
        conn.front.clear();
        conn.front_off = 0;
        conn.front.swap(conn.back);
      }
      iovec iov[2];
      int iov_count = 1;
      iov[0].iov_base = conn.front.data() + conn.front_off;
      iov[0].iov_len = conn.front.size() - conn.front_off;
      if (!conn.back.empty()) {
        iov[1].iov_base = conn.back.data();
        iov[1].iov_len = conn.back.size();
        iov_count = 2;
      }
      // sendmsg instead of writev purely for MSG_NOSIGNAL: a mid-write
      // disconnect must surface as EPIPE, not SIGPIPE.
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<std::size_t>(iov_count);
      const ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      stats.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      pending_out.fetch_sub(n, std::memory_order_relaxed);
      std::size_t advance = static_cast<std::size_t>(n);
      const std::size_t front_remaining = conn.front.size() - conn.front_off;
      if (advance >= front_remaining) {
        advance -= front_remaining;
        conn.front.clear();
        conn.front.swap(conn.back);
        conn.front_off = advance;
      } else {
        conn.front_off += advance;
      }
    }
    return true;
  }

  /// Splice staged bytes into the drain pair (vector swap when possible),
  /// enforce the slow-consumer cap, then flush.  Returns false when the
  /// connection must close.
  bool service_outbound(std::size_t slot) {
    static obs::Counter slow_consumer_counter("net.slow_consumer");
    Conn& conn = *conns[slot];
    if (conn.stage_dirty.exchange(false, std::memory_order_acq_rel)) {
      std::lock_guard lock(conn.stage_mu);
      if (!conn.staged.empty()) {
        if (conn.front.empty()) {
          conn.front_off = 0;
          conn.front.swap(conn.staged);
        } else if (conn.back.empty()) {
          conn.back.swap(conn.staged);
        } else {
          conn.back.insert(conn.back.end(), conn.staged.begin(),
                           conn.staged.end());
          conn.staged.clear();
        }
      }
    }
    const std::size_t queued =
        (conn.front.size() - conn.front_off) + conn.back.size();
    if (config.max_outbound_bytes > 0 && queued > config.max_outbound_bytes) {
      stats.slow_consumer_drops.fetch_add(1, std::memory_order_relaxed);
      slow_consumer_counter.add();
      RLB_TRACE_EVENT(obs::EventKind::kNet, "net.slow_consumer", slot,
                      static_cast<std::uint64_t>(queued));
      obs::Journal::instance().append(obs::JournalType::kSlowConsumer,
                                      static_cast<std::uint64_t>(slot),
                                      static_cast<std::uint64_t>(queued));
      return false;
    }
    return flush_writes(slot);
  }

  /// Post-events pass: splice/flush every connection flagged dirty by a
  /// sender since the last pass.
  void service_dirty() {
    for (std::size_t slot = 0; slot < conns.size(); ++slot) {
      Conn& conn = *conns[slot];
      if (conn.fd < 0) continue;
      if (!conn.stage_dirty.load(std::memory_order_relaxed)) continue;
      if (!service_outbound(slot)) close_conn(slot, /*error=*/false);
    }
  }

  void drain_wake_pipe() {
    std::uint8_t drain[256];
    while (::read(wake_read, drain, sizeof(drain)) > 0) {
    }
  }

  /// Publish intent to sleep, then re-scan dirty flags (see loop_asleep).
  /// Returns the poll/epoll timeout to use: 0 when staged output is
  /// already waiting, the idle timeout otherwise.
  int arm_sleep(int idle_timeout_ms) {
    loop_asleep.store(true, std::memory_order_seq_cst);
    for (const auto& conn : conns) {
      if (conn->fd >= 0 &&
          conn->stage_dirty.load(std::memory_order_relaxed)) {
        loop_asleep.store(false, std::memory_order_relaxed);
        return 0;
      }
    }
    return idle_timeout_ms;
  }

  void handle_conn_event(std::size_t slot, bool had_error, bool writable,
                         bool readable) {
    if (!loop_open(slot)) return;
    bool ok = !had_error;
    if (ok && writable) ok = service_outbound(slot);
    if (ok && readable) ok = read_ready(slot);
    if (!ok) close_conn(slot, /*error=*/false);
  }

#if defined(RLB_NET_USE_EPOLL)
  void run_loop() {
    constexpr std::uint64_t kWakeTag = UINT64_MAX;
    constexpr std::uint64_t kListenTag = UINT64_MAX - 1;
    std::vector<epoll_event> events(512);
    while (running.load(std::memory_order_acquire)) {
      const bool draining = stopping.load(std::memory_order_acquire);
      if (draining && pending_out.load(std::memory_order_acquire) <= 0) break;
      const int timeout = arm_sleep(100);
      const int ready = ::epoll_wait(epoll_fd, events.data(),
                                     static_cast<int>(events.size()), timeout);
      loop_asleep.store(false, std::memory_order_seq_cst);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < ready; ++i) {
        const epoll_event& ev = events[i];
        if (ev.data.u64 == kWakeTag) {
          drain_wake_pipe();
          continue;
        }
        if (ev.data.u64 == kListenTag) {
          if (!draining) accept_ready();
          continue;
        }
        const auto slot = static_cast<std::size_t>(ev.data.u64);
        handle_conn_event(slot,
                          (ev.events & EPOLLERR) != 0,
                          (ev.events & EPOLLOUT) != 0,
                          (ev.events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP)) != 0);
      }
      service_dirty();
    }
    close_all();
  }
#else
  void run_loop() {
    while (running.load(std::memory_order_acquire)) {
      const bool draining = stopping.load(std::memory_order_acquire);
      if (draining && pending_out.load(std::memory_order_acquire) <= 0) break;
      // Splice before arming so POLLOUT reflects true pending state.
      service_dirty();
      pollfds.clear();
      poll_slots.clear();
      if (!draining) {
        pollfds.push_back({listen_fd, POLLIN, 0});
        poll_slots.push_back(SIZE_MAX);
      }
      pollfds.push_back({wake_read, POLLIN, 0});
      poll_slots.push_back(SIZE_MAX);
      for (std::size_t i = 0; i < conns.size(); ++i) {
        const Conn& conn = *conns[i];
        if (conn.fd < 0) continue;
        short events = POLLIN;
        if (conn.front_off < conn.front.size() || !conn.back.empty()) {
          events |= POLLOUT;
        }
        pollfds.push_back({conn.fd, events, 0});
        poll_slots.push_back(i);
      }
      const int timeout = arm_sleep(100);
      const int ready = ::poll(pollfds.data(),
                               static_cast<nfds_t>(pollfds.size()), timeout);
      loop_asleep.store(false, std::memory_order_seq_cst);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (std::size_t i = 0; i < pollfds.size(); ++i) {
        const pollfd& pfd = pollfds[i];
        if (pfd.revents == 0) continue;
        if (pfd.fd == wake_read) {
          drain_wake_pipe();
          continue;
        }
        if (pfd.fd == listen_fd) {
          accept_ready();
          continue;
        }
        handle_conn_event(poll_slots[i],
                          (pfd.revents & (POLLERR | POLLNVAL)) != 0,
                          (pfd.revents & POLLOUT) != 0,
                          (pfd.revents & (POLLIN | POLLHUP)) != 0);
      }
      service_dirty();
    }
    close_all();
  }
#endif

  void close_all() {
    for (std::size_t slot = 0; slot < conns.size(); ++slot) {
      if (loop_open(slot)) close_conn(slot, /*error=*/false);
    }
  }
};

NetServer::NetServer(const ServerConfig& config, RequestHandler on_request)
    : impl_(new Impl) {
  impl_->config = config;
  impl_->on_request = std::move(on_request);
}

NetServer::~NetServer() {
  stop(0);
  delete impl_;
}

void NetServer::start() {
  if (impl_->running.load()) return;
  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) {
    throw std::runtime_error("NetServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl_->config.port);
  if (::inet_pton(AF_INET, impl_->config.host.c_str(), &addr.sin_addr) != 1) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw std::runtime_error("NetServer: bad host '" + impl_->config.host +
                             "'");
  }
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw std::runtime_error("NetServer: bind failed: " +
                             std::string(std::strerror(errno)));
  }
  if (::listen(impl_->listen_fd, 128) != 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw std::runtime_error("NetServer: listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(impl_->listen_fd);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw std::runtime_error("NetServer: pipe failed");
  }
  impl_->wake_read = pipe_fds[0];
  impl_->wake_write = pipe_fds[1];
  set_nonblocking(impl_->wake_read);
  set_nonblocking(impl_->wake_write);

  // Fixed slot table: tokens index it lock-free, so it must never grow.
  if (impl_->conns.empty()) {
    impl_->conns.reserve(impl_->config.max_connections);
    for (std::size_t i = 0; i < impl_->config.max_connections; ++i) {
      impl_->conns.push_back(std::make_unique<Impl::Conn>());
    }
  }
  impl_->free_slots.clear();
  for (std::size_t i = impl_->conns.size(); i > 0; --i) {
    impl_->free_slots.push_back(i - 1);
  }

#if defined(RLB_NET_USE_EPOLL)
  impl_->epoll_fd = ::epoll_create1(0);
  if (impl_->epoll_fd < 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    ::close(impl_->wake_read);
    ::close(impl_->wake_write);
    impl_->wake_read = impl_->wake_write = -1;
    throw std::runtime_error("NetServer: epoll_create1 failed");
  }
  epoll_event wake_ev{};
  wake_ev.events = EPOLLIN | EPOLLET;
  wake_ev.data.u64 = UINT64_MAX;
  ::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->wake_read, &wake_ev);
  epoll_event listen_ev{};
  listen_ev.events = EPOLLIN | EPOLLET;
  listen_ev.data.u64 = UINT64_MAX - 1;
  ::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->listen_fd, &listen_ev);
#endif

  impl_->running.store(true, std::memory_order_release);
  impl_->stopping.store(false, std::memory_order_release);
  impl_->loop_thread = std::thread([this] { impl_->run_loop(); });
}

void NetServer::stop(std::uint64_t flush_timeout_ms) {
  if (!impl_->running.load()) return;
  impl_->stopping.store(true, std::memory_order_release);
  impl_->wake();
  // Give the loop its flush window, then force it down.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(flush_timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (impl_->pending_out.load(std::memory_order_acquire) <= 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  impl_->running.store(false, std::memory_order_release);
  impl_->wake();
  if (impl_->loop_thread.joinable()) impl_->loop_thread.join();
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
  if (impl_->wake_read >= 0) {
    ::close(impl_->wake_read);
    ::close(impl_->wake_write);
    impl_->wake_read = impl_->wake_write = -1;
  }
#if defined(RLB_NET_USE_EPOLL)
  if (impl_->epoll_fd >= 0) {
    ::close(impl_->epoll_fd);
    impl_->epoll_fd = -1;
  }
#endif
}

bool NetServer::send_response(std::uint64_t conn_token,
                              const ResponseMsg& response) {
  static obs::Counter response_counter("net.responses");
  const std::size_t slot = static_cast<std::size_t>(conn_token & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(conn_token >> 32);
  if (slot >= impl_->conns.size()) return false;
  Impl::Conn& conn = *impl_->conns[slot];
  {
    std::lock_guard lock(conn.stage_mu);
    if (!conn.open || conn.gen != gen) return false;
    const std::size_t before = conn.staged.size();
    encode_response(response, conn.staged);
    impl_->pending_out.fetch_add(
        static_cast<std::int64_t>(conn.staged.size() - before),
        std::memory_order_relaxed);
  }
  impl_->stats.responses_sent.fetch_add(1, std::memory_order_relaxed);
  response_counter.add();
  // Only the clean -> dirty edge needs a wake (the loop re-arms the flag
  // before splicing), and only when the loop is actually blocked — an
  // awake loop re-scans dirty flags before its next sleep (seq_cst
  // pairing documented at loop_asleep).
  if (!conn.stage_dirty.exchange(true, std::memory_order_seq_cst) &&
      impl_->loop_asleep.load(std::memory_order_seq_cst)) {
    impl_->wake();
  }
  return true;
}

void NetServer::set_request_batch_handler(RequestBatchHandler on_batch) {
  impl_->on_batch = std::move(on_batch);
}

void NetServer::set_stats_handler(StatsHandler on_stats) {
  impl_->on_stats = std::move(on_stats);
}

bool NetServer::send_stats(std::uint64_t conn_token,
                           const StatsSnapshot& snapshot) {
  std::vector<std::uint8_t> payload = global_buffer_pool().acquire();
  encode_stats_payload(snapshot, payload);
  const std::size_t slot = static_cast<std::size_t>(conn_token & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(conn_token >> 32);
  if (slot >= impl_->conns.size()) return false;
  Impl::Conn& conn = *impl_->conns[slot];
  {
    std::lock_guard lock(conn.stage_mu);
    if (!conn.open || conn.gen != gen) return false;
    const std::size_t before = conn.staged.size();
    if (!encode_stats_response_frame(payload, conn.staged)) return false;
    impl_->pending_out.fetch_add(
        static_cast<std::int64_t>(conn.staged.size() - before),
        std::memory_order_relaxed);
  }
  global_buffer_pool().release(std::move(payload));
  if (!conn.stage_dirty.exchange(true, std::memory_order_seq_cst) &&
      impl_->loop_asleep.load(std::memory_order_seq_cst)) {
    impl_->wake();
  }
  return true;
}

void NetServer::set_trace_handler(TraceHandler on_trace) {
  impl_->on_trace = std::move(on_trace);
}

bool NetServer::send_trace(std::uint64_t conn_token,
                           const TraceSnapshot& snapshot) {
  std::vector<std::uint8_t> payload = global_buffer_pool().acquire();
  encode_trace_payload(snapshot, payload);
  const std::size_t slot = static_cast<std::size_t>(conn_token & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(conn_token >> 32);
  if (slot >= impl_->conns.size()) return false;
  Impl::Conn& conn = *impl_->conns[slot];
  {
    std::lock_guard lock(conn.stage_mu);
    if (!conn.open || conn.gen != gen) return false;
    const std::size_t before = conn.staged.size();
    if (!encode_trace_response_frame(payload, conn.staged)) return false;
    impl_->pending_out.fetch_add(
        static_cast<std::int64_t>(conn.staged.size() - before),
        std::memory_order_relaxed);
  }
  global_buffer_pool().release(std::move(payload));
  if (!conn.stage_dirty.exchange(true, std::memory_order_seq_cst) &&
      impl_->loop_asleep.load(std::memory_order_seq_cst)) {
    impl_->wake();
  }
  return true;
}

void NetServer::set_events_handler(EventsHandler on_events) {
  impl_->on_events = std::move(on_events);
}

bool NetServer::send_events(std::uint64_t conn_token,
                            const EventsSnapshot& snapshot) {
  std::vector<std::uint8_t> payload = global_buffer_pool().acquire();
  encode_events_payload(snapshot, payload);
  const std::size_t slot = static_cast<std::size_t>(conn_token & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(conn_token >> 32);
  if (slot >= impl_->conns.size()) return false;
  Impl::Conn& conn = *impl_->conns[slot];
  {
    std::lock_guard lock(conn.stage_mu);
    if (!conn.open || conn.gen != gen) return false;
    const std::size_t before = conn.staged.size();
    if (!encode_events_response_frame(payload, conn.staged)) return false;
    impl_->pending_out.fetch_add(
        static_cast<std::int64_t>(conn.staged.size() - before),
        std::memory_order_relaxed);
  }
  global_buffer_pool().release(std::move(payload));
  if (!conn.stage_dirty.exchange(true, std::memory_order_seq_cst) &&
      impl_->loop_asleep.load(std::memory_order_seq_cst)) {
    impl_->wake();
  }
  return true;
}

void NetServer::set_migrate_handler(MigrateHandler on_migrate) {
  impl_->on_migrate = std::move(on_migrate);
}

void NetServer::set_migrate_data_handler(MigrateDataHandler on_migrate_data) {
  impl_->on_migrate_data = std::move(on_migrate_data);
}

bool NetServer::send_migrate_ack(std::uint64_t conn_token,
                                 const MigrateAckMsg& ack) {
  const std::size_t slot = static_cast<std::size_t>(conn_token & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(conn_token >> 32);
  if (slot >= impl_->conns.size()) return false;
  Impl::Conn& conn = *impl_->conns[slot];
  {
    std::lock_guard lock(conn.stage_mu);
    if (!conn.open || conn.gen != gen) return false;
    const std::size_t before = conn.staged.size();
    encode_migrate_ack(ack, conn.staged);
    impl_->pending_out.fetch_add(
        static_cast<std::int64_t>(conn.staged.size() - before),
        std::memory_order_relaxed);
  }
  if (!conn.stage_dirty.exchange(true, std::memory_order_seq_cst) &&
      impl_->loop_asleep.load(std::memory_order_seq_cst)) {
    impl_->wake();
  }
  return true;
}

ServerStats NetServer::stats() const {
  const Impl::AtomicStats& a = impl_->stats;
  ServerStats out;
  out.connections_accepted =
      a.connections_accepted.load(std::memory_order_relaxed);
  out.connections_closed = a.connections_closed.load(std::memory_order_relaxed);
  out.protocol_errors = a.protocol_errors.load(std::memory_order_relaxed);
  out.requests_decoded = a.requests_decoded.load(std::memory_order_relaxed);
  out.responses_sent = a.responses_sent.load(std::memory_order_relaxed);
  out.stats_requests = a.stats_requests.load(std::memory_order_relaxed);
  out.trace_requests = a.trace_requests.load(std::memory_order_relaxed);
  out.events_requests = a.events_requests.load(std::memory_order_relaxed);
  out.bytes_in = a.bytes_in.load(std::memory_order_relaxed);
  out.bytes_out = a.bytes_out.load(std::memory_order_relaxed);
  out.slow_consumer_drops =
      a.slow_consumer_drops.load(std::memory_order_relaxed);
  return out;
}

}  // namespace rlb::net
