#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace rlb::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::uint64_t make_token(std::size_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         static_cast<std::uint64_t>(slot);
}

}  // namespace

struct NetServer::Impl {
  struct Conn {
    int fd = -1;
    std::uint32_t gen = 0;
    bool open = false;
    FrameDecoder decoder;
    // Outbound bytes; guarded by NetServer::Impl::mutex (written by engine
    // worker threads via send_response, drained by the event loop).
    std::vector<std::uint8_t> outbound;
    std::size_t out_offset = 0;
  };

  ServerConfig config;
  RequestHandler on_request;
  StatsHandler on_stats;
  TraceHandler on_trace;

  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  std::thread loop_thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> flush_deadline_ms{0};

  // Guards every Conn's open/gen/outbound plus the stats block: the event
  // loop and the engine's shard workers both touch them.  All critical
  // sections are short (slot lookup + buffer append/drain bookkeeping).
  mutable std::mutex mutex;
  std::vector<Conn> conns;
  ServerStats stats;

  // Event-loop-private scratch.
  std::vector<pollfd> pollfds;
  std::vector<std::size_t> poll_slots;
  std::vector<std::uint8_t> payload;

  void wake() {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_write, &byte, 1);
  }

  void close_conn(std::size_t slot, bool error) {
    std::lock_guard lock(mutex);
    Conn& conn = conns[slot];
    if (!conn.open) return;
    ::close(conn.fd);
    conn.fd = -1;
    conn.open = false;
    ++conn.gen;
    conn.outbound.clear();
    conn.out_offset = 0;
    // Reset framing state for the slot's next tenant.
    conn.decoder = FrameDecoder();
    ++stats.connections_closed;
    // Protocol errors are counted at their detection sites; `error` only
    // labels the trace event.
    RLB_TRACE_EVENT(obs::EventKind::kNet,
                    error ? "net.close_error" : "net.close", slot, conn.gen);
  }

  void accept_ready() {
    static obs::Counter accept_counter("net.accepted");
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;
      }
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::lock_guard lock(mutex);
      std::size_t slot = conns.size();
      for (std::size_t i = 0; i < conns.size(); ++i) {
        if (!conns[i].open) {
          slot = i;
          break;
        }
      }
      if (slot == conns.size()) {
        if (conns.size() >= config.max_connections) {
          ::close(fd);
          continue;
        }
        conns.emplace_back();
      }
      Conn& conn = conns[slot];
      conn.fd = fd;
      conn.open = true;
      ++stats.connections_accepted;
      accept_counter.add();
      RLB_TRACE_EVENT(obs::EventKind::kNet, "net.accept", slot, conn.gen);
    }
  }

  /// Drain readable bytes, reassemble frames, dispatch requests.  Returns
  /// false when the connection must close (EOF, error, protocol violation).
  bool read_ready(std::size_t slot) {
    static obs::Counter request_counter("net.requests");
    static obs::Counter protocol_error_counter("net.protocol_errors");
    static obs::Histogram decode_hist("net.decode_ns");
    Conn& conn = conns[slot];
    std::uint8_t buffer[16384];
    for (;;) {
      const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
      if (n == 0) return false;  // clean EOF
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        return false;
      }
      {
        std::lock_guard lock(mutex);
        stats.bytes_in += static_cast<std::uint64_t>(n);
      }
      obs::ObsTimer decode_timer("net.decode",
                                 obs::enabled() ? &decode_hist : nullptr,
                                 slot);
      if (!conn.decoder.feed(buffer, static_cast<std::size_t>(n))) {
        protocol_error_counter.add();
        RLB_TRACE_EVENT(obs::EventKind::kNet, "net.bad_frame", slot, 0);
        std::lock_guard lock(mutex);
        ++stats.protocol_errors;
        return false;
      }
      const std::uint64_t token = make_token(slot, conn.gen);
      while (conn.decoder.next(payload)) {
        RequestMsg request;
        ResponseMsg response;
        StatsRequestMsg stats_request;
        TraceRequestMsg trace_request;
        const Decoded decoded = decode_payload(payload.data(), payload.size(),
                                               request, response,
                                               stats_request, trace_request);
        if (decoded == Decoded::kStats && on_stats) {
          static obs::Counter stats_counter("net.stats_requests");
          {
            std::lock_guard lock(mutex);
            ++stats.stats_requests;
          }
          stats_counter.add();
          RLB_TRACE_EVENT(obs::EventKind::kNet, "net.stats", slot,
                          stats_request.flags);
          on_stats(token, stats_request);
          continue;
        }
        if (decoded == Decoded::kTrace && on_trace) {
          static obs::Counter trace_counter("net.trace_requests");
          {
            std::lock_guard lock(mutex);
            ++stats.trace_requests;
          }
          trace_counter.add();
          RLB_TRACE_EVENT(obs::EventKind::kNet, "net.trace", slot,
                          trace_request.flags);
          on_trace(token, trace_request);
          continue;
        }
        if (decoded != Decoded::kRequest) {
          // Clients may only send REQUEST frames (plus STATS/TRACE when
          // the daemon installed an admin handler).
          protocol_error_counter.add();
          RLB_TRACE_EVENT(obs::EventKind::kNet, "net.bad_message", slot,
                          payload.empty() ? 0 : payload[0]);
          std::lock_guard lock(mutex);
          ++stats.protocol_errors;
          return false;
        }
        {
          std::lock_guard lock(mutex);
          ++stats.requests_decoded;
        }
        request_counter.add();
        on_request(token, request);
      }
      if (conn.decoder.error()) {
        protocol_error_counter.add();
        std::lock_guard lock(mutex);
        ++stats.protocol_errors;
        return false;
      }
    }
    return true;
  }

  /// Write as much pending outbound as the socket accepts.  Returns false
  /// on a fatal write error.
  bool write_ready(std::size_t slot) {
    std::lock_guard lock(mutex);
    Conn& conn = conns[slot];
    if (!conn.open) return true;
    while (conn.out_offset < conn.outbound.size()) {
      const ssize_t n =
          ::write(conn.fd, conn.outbound.data() + conn.out_offset,
                  conn.outbound.size() - conn.out_offset);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      conn.out_offset += static_cast<std::size_t>(n);
      stats.bytes_out += static_cast<std::uint64_t>(n);
    }
    conn.outbound.clear();
    conn.out_offset = 0;
    return true;
  }

  bool any_outbound() const {
    std::lock_guard lock(mutex);
    for (const Conn& conn : conns) {
      if (conn.open && conn.out_offset < conn.outbound.size()) return true;
    }
    return false;
  }

  void run_loop() {
    while (running.load(std::memory_order_acquire)) {
      const bool draining = stopping.load(std::memory_order_acquire);
      if (draining) {
        // Flush phase: exit once everything pending went out (or the
        // stop() deadline passed — checked by stop() via running).
        if (!any_outbound()) break;
      }
      pollfds.clear();
      poll_slots.clear();
      if (!draining) {
        pollfds.push_back({listen_fd, POLLIN, 0});
        poll_slots.push_back(SIZE_MAX);
      }
      pollfds.push_back({wake_read, POLLIN, 0});
      poll_slots.push_back(SIZE_MAX);
      {
        std::lock_guard lock(mutex);
        for (std::size_t i = 0; i < conns.size(); ++i) {
          const Conn& conn = conns[i];
          if (!conn.open) continue;
          short events = POLLIN;
          if (conn.out_offset < conn.outbound.size()) events |= POLLOUT;
          pollfds.push_back({conn.fd, events, 0});
          poll_slots.push_back(i);
        }
      }
      const int ready = ::poll(pollfds.data(),
                               static_cast<nfds_t>(pollfds.size()), 100);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (std::size_t i = 0; i < pollfds.size(); ++i) {
        const pollfd& pfd = pollfds[i];
        if (pfd.revents == 0) continue;
        if (pfd.fd == wake_read) {
          std::uint8_t drain[256];
          while (::read(wake_read, drain, sizeof(drain)) > 0) {
          }
          continue;
        }
        if (pfd.fd == listen_fd) {
          accept_ready();
          continue;
        }
        const std::size_t slot = poll_slots[i];
        bool ok = true;
        if (pfd.revents & (POLLERR | POLLNVAL)) ok = false;
        if (ok && (pfd.revents & POLLOUT)) ok = write_ready(slot);
        if (ok && (pfd.revents & (POLLIN | POLLHUP))) ok = read_ready(slot);
        if (!ok) close_conn(slot, /*error=*/false);
      }
    }
    // Loop exit: close every socket.
    std::lock_guard lock(mutex);
    for (Conn& conn : conns) {
      if (conn.open) {
        ::close(conn.fd);
        conn.fd = -1;
        conn.open = false;
        ++conn.gen;
        ++stats.connections_closed;
      }
    }
  }
};

NetServer::NetServer(const ServerConfig& config, RequestHandler on_request)
    : impl_(new Impl) {
  impl_->config = config;
  impl_->on_request = std::move(on_request);
}

NetServer::~NetServer() {
  stop(0);
  delete impl_;
}

void NetServer::start() {
  if (impl_->running.load()) return;
  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) {
    throw std::runtime_error("NetServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl_->config.port);
  if (::inet_pton(AF_INET, impl_->config.host.c_str(), &addr.sin_addr) != 1) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw std::runtime_error("NetServer: bad host '" + impl_->config.host +
                             "'");
  }
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw std::runtime_error("NetServer: bind failed: " +
                             std::string(std::strerror(errno)));
  }
  if (::listen(impl_->listen_fd, 128) != 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw std::runtime_error("NetServer: listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(impl_->listen_fd);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw std::runtime_error("NetServer: pipe failed");
  }
  impl_->wake_read = pipe_fds[0];
  impl_->wake_write = pipe_fds[1];
  set_nonblocking(impl_->wake_read);
  set_nonblocking(impl_->wake_write);

  impl_->running.store(true, std::memory_order_release);
  impl_->stopping.store(false, std::memory_order_release);
  impl_->loop_thread = std::thread([this] { impl_->run_loop(); });
}

void NetServer::stop(std::uint64_t flush_timeout_ms) {
  if (!impl_->running.load()) return;
  impl_->stopping.store(true, std::memory_order_release);
  impl_->wake();
  // Give the loop its flush window, then force it down.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(flush_timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (!impl_->any_outbound()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  impl_->running.store(false, std::memory_order_release);
  impl_->wake();
  if (impl_->loop_thread.joinable()) impl_->loop_thread.join();
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
  if (impl_->wake_read >= 0) {
    ::close(impl_->wake_read);
    ::close(impl_->wake_write);
    impl_->wake_read = impl_->wake_write = -1;
  }
}

bool NetServer::send_response(std::uint64_t conn_token,
                              const ResponseMsg& response) {
  static obs::Counter response_counter("net.responses");
  const std::size_t slot = static_cast<std::size_t>(conn_token & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(conn_token >> 32);
  bool need_wake = false;
  {
    std::lock_guard lock(impl_->mutex);
    if (slot >= impl_->conns.size()) return false;
    Impl::Conn& conn = impl_->conns[slot];
    if (!conn.open || conn.gen != gen) return false;
    need_wake = conn.out_offset >= conn.outbound.size();
    encode_response(response, conn.outbound);
    ++impl_->stats.responses_sent;
  }
  response_counter.add();
  // Only the empty -> non-empty transition needs a wake: once armed, the
  // loop keeps POLLOUT until the buffer drains.
  if (need_wake) impl_->wake();
  return true;
}

void NetServer::set_stats_handler(StatsHandler on_stats) {
  impl_->on_stats = std::move(on_stats);
}

bool NetServer::send_stats(std::uint64_t conn_token,
                           const StatsSnapshot& snapshot) {
  std::vector<std::uint8_t> payload;
  encode_stats_payload(snapshot, payload);
  const std::size_t slot = static_cast<std::size_t>(conn_token & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(conn_token >> 32);
  bool need_wake = false;
  {
    std::lock_guard lock(impl_->mutex);
    if (slot >= impl_->conns.size()) return false;
    Impl::Conn& conn = impl_->conns[slot];
    if (!conn.open || conn.gen != gen) return false;
    need_wake = conn.out_offset >= conn.outbound.size();
    if (!encode_stats_response_frame(payload, conn.outbound)) return false;
  }
  if (need_wake) impl_->wake();
  return true;
}

void NetServer::set_trace_handler(TraceHandler on_trace) {
  impl_->on_trace = std::move(on_trace);
}

bool NetServer::send_trace(std::uint64_t conn_token,
                           const TraceSnapshot& snapshot) {
  std::vector<std::uint8_t> payload;
  encode_trace_payload(snapshot, payload);
  const std::size_t slot = static_cast<std::size_t>(conn_token & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(conn_token >> 32);
  bool need_wake = false;
  {
    std::lock_guard lock(impl_->mutex);
    if (slot >= impl_->conns.size()) return false;
    Impl::Conn& conn = impl_->conns[slot];
    if (!conn.open || conn.gen != gen) return false;
    need_wake = conn.out_offset >= conn.outbound.size();
    if (!encode_trace_response_frame(payload, conn.outbound)) return false;
  }
  if (need_wake) impl_->wake();
  return true;
}

ServerStats NetServer::stats() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace rlb::net
