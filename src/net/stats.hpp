// The STATS_RESP snapshot: what a running rlbd reports about itself.
//
// A snapshot is a pure data object — the engine fills one from its
// shard-local atomics (no global lock, see ServingEngine::snapshot()) and
// the wire layer ships it as one STATS_RESP frame.  The encoding is
// versioned and self-contained: u8 type=4, u32 version, then the fields in
// declaration order.  Integers are little-endian fixed-width, doubles
// travel as IEEE-754 bit patterns in a u64, strings as u16 length + bytes,
// vectors as u32 count + entries.  A decoder that sees an unknown version
// rejects the payload (clients and daemons ship together; there is no
// cross-version skew to paper over).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rlb::net {

/// Bump on any layout change.  v2: role + backend_id (cluster mode).
/// v3: per-hop latency histograms (hop_rtt, queue_wait).
/// v4: placement epoch + repair/migration counters (self-healing tier).
/// v5: windowed (trailing ~10 s) histograms + counter deltas and active
///     watchdog alerts (health plane).
inline constexpr std::uint32_t kStatsVersion = 5;

/// Which tier produced a snapshot.
enum class NodeRole : std::uint8_t { kBackend = 0, kRouter = 1 };

const char* to_string(NodeRole role) noexcept;

/// Number of log2-microsecond latency buckets.  Bucket i counts samples
/// with floor(log2(us)) == i (bucket 0 also takes us <= 1); the last
/// bucket is a catch-all.
inline constexpr std::size_t kLatencyBuckets = 32;

/// A log2-bucketed microsecond histogram (wire-to-response latency, hop
/// RTT, queue wait), merged across shards.
struct LatencyStats {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;
  std::array<std::uint64_t, kLatencyBuckets> buckets{};

  /// Record one sample (single-writer callers: the engine keeps per-shard
  /// atomics instead and merges into this struct at snapshot time).
  void observe_us(std::uint64_t us);

  /// Approximate quantile (0 < q < 1) from the log2 buckets: the upper
  /// edge of the bucket containing the q-th sample.  0 when empty.
  [[nodiscard]] double quantile_us(double q) const;
};

/// Concurrent counterpart of LatencyStats: hot paths record with relaxed
/// atomics (no lock, no cache-line ping-pong beyond the counters
/// themselves) and the scrape path folds the fields into a plain
/// LatencyStats via merge_into().  Relaxed ordering means a snapshot may
/// tear across fields (count updated, sum not yet) — fine for advisory
/// telemetry, never used for control decisions.
struct AtomicLatency {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum_us{0};
  std::atomic<std::uint64_t> max_us{0};
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> buckets{};

  void observe_us(std::uint64_t us) {
    count.fetch_add(1, std::memory_order_relaxed);
    sum_us.fetch_add(us, std::memory_order_relaxed);
    std::uint64_t prev = max_us.load(std::memory_order_relaxed);
    while (us > prev &&
           !max_us.compare_exchange_weak(prev, us, std::memory_order_relaxed)) {
    }
    std::size_t bucket =
        us <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(us) - 1);
    if (bucket >= kLatencyBuckets) bucket = kLatencyBuckets - 1;
    buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  /// Accumulate this histogram into `out` (relaxed loads; max_us merges
  /// as a max so several AtomicLatency sources can fold into one row).
  void merge_into(LatencyStats& out) const {
    out.count += count.load(std::memory_order_relaxed);
    out.sum_us += sum_us.load(std::memory_order_relaxed);
    const std::uint64_t m = max_us.load(std::memory_order_relaxed);
    if (m > out.max_us) out.max_us = m;
    for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
      out.buckets[i] += buckets[i].load(std::memory_order_relaxed);
    }
  }
};

/// One worker shard's counters.  Counters are cumulative since engine
/// start; *_depth / inflight / backlog / servers_down are gauges sampled
/// at scrape time.
struct ShardStats {
  std::uint32_t shard = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_all_down = 0;
  std::uint64_t rejected_admission = 0;  ///< waiting-room overflow
  std::uint64_t rejected_drop = 0;       ///< queue dumps / drain flushes
  std::uint64_t errors = 0;              ///< kError responses (drain)
  std::uint64_t ticks = 0;
  std::uint64_t batches = 0;         ///< ticks that served a non-empty batch
  std::uint64_t batched_chunks = 0;  ///< sum of micro-batch sizes
  std::uint64_t max_batch = 0;
  std::uint64_t inbound_depth = 0;
  std::uint64_t waiting_depth = 0;
  std::uint64_t inflight = 0;
  std::uint64_t backlog = 0;
  std::uint64_t servers_down = 0;
  std::uint64_t step_ns = 0;  ///< cumulative balancer step() time

  [[nodiscard]] std::uint64_t rejected_total() const {
    return rejected_queue_full + rejected_all_down + rejected_admission +
           rejected_drop;
  }
};

/// Self-healing repair state (v4).  A router fills the coordinator-side
/// fields (migrations_done/failed/inflight, chunks_pending, bytes_sent);
/// a backend fills the agent-side fields (migrations_in/out and their
/// byte totals).  The counterpart fields stay zero for each role.
struct RepairStats {
  std::uint64_t migrations_done = 0;      ///< committed into an epoch
  std::uint64_t migrations_failed = 0;    ///< acked failure / timed out
  std::uint64_t migrations_inflight = 0;  ///< gauge: currently streaming
  std::uint64_t chunks_pending = 0;       ///< gauge: queued, not yet done
  std::uint64_t bytes_sent = 0;           ///< repair bytes moved so far
  std::uint64_t migrations_in = 0;        ///< slices received + verified
  std::uint64_t migrations_out = 0;       ///< MIGRATE orders streamed out
  std::uint64_t migration_bytes_in = 0;
  std::uint64_t migration_bytes_out = 0;
};

/// One level of the Def 3.2 envelope as observed at scrape time.
struct SafeSetLevelStats {
  std::uint32_t level = 0;    ///< j
  std::uint64_t observed = 0; ///< servers with backlog > j
  double bound = 0.0;         ///< m / 2^j
  double ratio = 0.0;         ///< observed / bound
};

/// The full snapshot carried by one STATS_RESP frame.
struct StatsSnapshot {
  std::uint32_t version = kStatsVersion;
  std::uint64_t uptime_ms = 0;

  /// Cluster identity: which tier answered, and (for backends) the
  /// operator-assigned id (`rlbd --backend-id`).  A router's snapshot
  /// carries one ShardStats row per backend instead, with `shard` = the
  /// backend id (see docs/CLUSTER.md for the row mapping).
  NodeRole role = NodeRole::kBackend;
  std::uint32_t backend_id = 0;

  // Engine configuration (static for the daemon's lifetime).
  std::string policy;
  std::uint32_t servers = 0;
  std::uint32_t replication = 0;
  std::uint32_t processing_rate = 0;
  std::uint32_t queue_capacity = 0;
  std::uint32_t shard_count = 0;

  std::vector<ShardStats> shards;
  LatencyStats latency;

  // Per-hop latency decomposition (v3).  On a backend, `queue_wait` is the
  // submit-to-drain-tick wait inside the MPSC queue + waiting room; on a
  // router, `hop_rtt` is the forward-to-response round trip per upstream
  // hop (retries sample once per attempt).  The counterpart histogram is
  // empty for each role.
  LatencyStats hop_rtt;
  LatencyStats queue_wait;

  // Safe-set invariant monitor (Def 3.2 over the merged backlog vector).
  std::vector<SafeSetLevelStats> safe_set;
  double safe_worst_ratio = 0.0;
  std::uint32_t safe_violated_level = 0;  ///< 0 when safe

  // Self-healing tier (v4): the node's current placement epoch (0 until a
  // repair cutover commits; backends learn theirs from the heartbeat
  // piggyback) and the repair/migration counters for its role.
  std::uint64_t placement_epoch = 0;
  RepairStats repair;

  // Health plane (v5): the same histograms again, but as deltas over the
  // trailing window (obs::WindowedAggregator, ~10 x 1 s), so an incident's
  // p99 spike shows up within a scrape interval instead of drowning in
  // lifetime samples.  window_span_ms is the wall time the deltas cover
  // (0 = no windowed data); win_submitted/completed/rejected are counter
  // deltas over the same span, i.e. rate gauges after dividing by it.
  std::uint64_t window_span_ms = 0;
  std::uint64_t win_submitted = 0;
  std::uint64_t win_completed = 0;
  std::uint64_t win_rejected = 0;
  LatencyStats win_latency;
  LatencyStats win_hop_rtt;
  LatencyStats win_queue_wait;

  // Active watchdog alerts (obs::HealthWatchdog rule names), rendered as
  // rlb_alert_active{rule=...} gauges in the Prometheus exposition.
  std::vector<std::string> active_alerts;

  /// Sum of all shard rows (shard id meaningless in the result).
  [[nodiscard]] ShardStats totals() const;
};

/// Serialize `snapshot` as a STATS_RESP payload (type byte included, no
/// frame length prefix) appended to `out`.
void encode_stats_payload(const StatsSnapshot& snapshot,
                          std::vector<std::uint8_t>& out);

/// Parse a STATS_RESP payload.  Returns false on a malformed body or a
/// version other than kStatsVersion; `out` is unspecified on failure.
bool decode_stats_payload(const std::uint8_t* data, std::size_t size,
                          StatsSnapshot& out);

/// Read just the version word of a STATS_RESP payload, without parsing
/// the body.  True when the payload is a STATS_RESP with room for the
/// version; lets a scraper distinguish "peer speaks snapshot v<N>" from
/// "malformed bytes" when decode_stats_payload rejects (rlb_stat
/// --cluster renders a version-mismatch row instead of 'unreachable').
bool peek_stats_version(const std::uint8_t* data, std::size_t size,
                        std::uint32_t& version);

/// Prometheus text exposition (one `# TYPE` line per family, `{shard=...}`
/// and `{level=...}` labels, log2 latency buckets as a cumulative
/// histogram).
std::string render_prometheus(const StatsSnapshot& snapshot);

/// One-line JSON object (for --safe-set-log streams and bench output).
std::string render_json(const StatsSnapshot& snapshot);

}  // namespace rlb::net
