// The rlb serving wire protocol: length-prefixed binary frames.
//
// Everything on the wire is a frame: a little-endian u32 payload length
// followed by that many payload bytes.  The first payload byte is the
// message type; all integers are little-endian and fixed-width, so a frame
// decodes with no lookahead beyond its length prefix and encodes with no
// allocation beyond the output buffer.
//
//   REQUEST    (client -> rlbd):  u8 type=1, u64 request_id, u64 key
//                                 [, u64 trace_id, u64 parent_span_id,
//                                    u8 trace_flags]
//   RESPONSE   (rlbd -> client):  u8 type=2, u64 request_id, u8 status,
//                                 u32 server, u32 wait_steps
//   STATS      (client -> rlbd):  u8 type=3, u32 flags (reserved, send 0)
//   STATS_RESP (rlbd -> client):  u8 type=4, versioned snapshot blob
//                                 (see net/stats.hpp for the layout)
//   TRACE      (client -> rlbd):  u8 type=5, u32 flags (reserved, send 0)
//   TRACE_RESP (rlbd -> client):  u8 type=6, versioned span blob
//                                 (see net/trace_wire.hpp for the layout)
//   MIGRATE    (coordinator -> source rlbd):
//                                 u8 type=7, u64 migration_id, u64 chunk,
//                                 u64 epoch, u32 target_backend, u64 bytes,
//                                 u16 target_port, u16 host_len, host bytes
//   MIGRATE_DATA (source rlbd -> target rlbd):
//                                 u8 type=8, u64 migration_id, u64 chunk,
//                                 u64 offset, u64 total_bytes, u64 checksum,
//                                 u8 last, u32 payload_len, payload bytes
//   MIGRATE_ACK  (rlbd -> sender):
//                                 u8 type=9, u64 migration_id, u8 status,
//                                 u64 bytes
//   EVENTS     (client -> daemon): u8 type=10, u32 flags (reserved,
//                                 send 0), u64 cursor (last-seen journal
//                                 sequence; 0 = from the oldest retained)
//   EVENTS_RESP (daemon -> client): u8 type=11, versioned event batch
//                                 (see net/events_wire.hpp for the layout)
//
// The REQUEST trace extension is optional and version-free by size: a
// 17-byte payload is the v1 frame (no context), a 34-byte payload appends
// the 17-byte trace context.  Encoders emit the extension only when a
// context is present (trace_id != 0), so peers that predate it never see
// extended frames and new decoders accept both sizes — sampling off costs
// zero wire bytes.  STATS uses the same idiom for the repair tier's
// placement-epoch piggyback: the 5-byte v1 form carries no epoch, a
// 13-byte form appends the sender's u64 placement epoch (emitted only when
// nonzero), so pre-repair peers and scrapers interoperate unchanged.
//
// `request_id` is client-assigned and echoed verbatim; responses may come
// back in any order (the engine answers in service order, not arrival
// order), so clients must match on it.  `status` is the paper's rejection
// rule surfaced as backpressure: kOk = served, kReject = the bounded queue
// (or the engine's waiting room) was full, kError = the daemon could not
// process the request (e.g. shutting down).  `server` and `wait_steps`
// (drain-clock steps spent queued) are meaningful for kOk only.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace rlb::net {

/// Hard ceiling on a frame's payload size.  Request/response frames are
/// tiny, but a STATS_RESP snapshot carries per-shard rows, latency buckets
/// and safe-set levels, so the cap is sized for it.  Anything larger is a
/// corrupt or hostile stream and kills the connection.
inline constexpr std::uint32_t kMaxFramePayload = 64 * 1024;

enum class MsgType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kStats = 3,
  kStatsResponse = 4,
  kTrace = 5,
  kTraceResponse = 6,
  kMigrate = 7,
  kMigrateData = 8,
  kMigrateAck = 9,
  kEvents = 10,
  kEventsResponse = 11,
};

enum class Status : std::uint8_t {
  kOk = 0,
  /// The backend's bounded queue (or waiting room) was full.
  kReject = 1,
  /// The daemon could not process the request (e.g. shutting down).
  kError = 2,
  /// Hop-level reject from a router tier: every one of the chunk's d
  /// candidate backends was marked down, so the request was never
  /// forwarded.
  kRejectUpstreamDown = 3,
  /// Hop-level reject from a router tier: the request was forwarded but
  /// no backend answered within the retry/timeout budget.
  kRejectUpstreamTimeout = 4,
};

const char* to_string(Status status) noexcept;

/// True for every rejection flavour (queue-bound or hop-level) — the
/// request was refused under backpressure, as opposed to served (kOk) or
/// failed (kError).
constexpr bool is_reject(Status status) noexcept {
  return status == Status::kReject || status == Status::kRejectUpstreamDown ||
         status == Status::kRejectUpstreamTimeout;
}

struct RequestMsg {
  std::uint64_t request_id = 0;
  std::uint64_t key = 0;
  /// Optional distributed-tracing context (see obs/span.hpp).  Zero
  /// trace_id = absent; present contexts ride the wire as the 17-byte
  /// REQUEST extension and are forwarded hop to hop.
  obs::TraceContext trace;
};

struct ResponseMsg {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  /// Global server id that served the request (kOk only).
  std::uint32_t server = 0;
  /// Drain-clock steps the request spent queued (kOk only).
  std::uint32_t wait_steps = 0;
};

/// Admin request for a live metrics snapshot.  `flags` is reserved for
/// future sub-selection (always send 0; the daemon ignores it today).
/// `epoch` is the sender's current placement epoch, piggybacked on the
/// router's heartbeat scrapes so backends learn of repair cutovers with
/// no extra round trip; zero (the default) encodes the 5-byte v1 frame.
struct StatsRequestMsg {
  std::uint32_t flags = 0;
  std::uint64_t epoch = 0;
};

/// Admin request draining the daemon's span flight recorder.  `flags` is
/// reserved (always send 0); a TRACE always drains, so scrapers loop until
/// an empty TRACE_RESP comes back.
struct TraceRequestMsg {
  std::uint32_t flags = 0;
};

/// Admin request for the control-plane event journal (obs/journal.hpp).
/// `cursor` is the highest journal sequence the scraper has already seen
/// (0 on first contact); the daemon answers with events AFTER it, reads
/// are non-destructive, and the reply's next_cursor resumes the stream —
/// so any number of scrapers (and `rlb_stat --events --follow`) drain
/// independently.  `flags` is reserved (send 0).
struct EventsRequestMsg {
  std::uint32_t flags = 0;
  std::uint64_t cursor = 0;
};

/// Repair-plane order from the coordinator to the backend currently
/// holding a replica of `chunk`: stream `bytes` bytes of chunk state to
/// the target backend (dial `target_host:target_port`), then MIGRATE_ACK
/// the coordinator.  `epoch` is the placement epoch this migration works
/// toward; `migration_id` correlates the ack.
struct MigrateMsg {
  std::uint64_t migration_id = 0;
  std::uint64_t chunk = 0;
  std::uint64_t epoch = 0;
  std::uint32_t target_backend = 0;
  std::uint64_t bytes = 0;
  std::uint16_t target_port = 0;
  std::string target_host;
};

/// One slice of migrated chunk state, source backend -> target backend.
/// `offset` positions the slice inside `total_bytes`; `checksum` is the
/// FNV-1a digest of the payload bytes; `last` marks the final slice of
/// the migration.  The target MIGRATE_ACKs once after the last slice.
struct MigrateDataMsg {
  std::uint64_t migration_id = 0;
  std::uint64_t chunk = 0;
  std::uint64_t offset = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t checksum = 0;
  bool last = false;
  std::vector<std::uint8_t> payload;
};

/// Migration outcome: status 0 = success, nonzero = failure code.
/// `bytes` echoes how many payload bytes the acker verified (target) or
/// streamed (source).
struct MigrateAckMsg {
  std::uint64_t migration_id = 0;
  std::uint8_t status = 0;
  std::uint64_t bytes = 0;
};

/// Encoded sizes (frame = 4-byte length prefix + payload).
inline constexpr std::size_t kRequestPayloadSize = 17;
/// REQUEST with the trace-context extension appended.
inline constexpr std::size_t kRequestTracedPayloadSize = 34;
inline constexpr std::size_t kResponsePayloadSize = 18;
inline constexpr std::size_t kStatsPayloadSize = 5;
/// STATS with the placement-epoch extension appended.
inline constexpr std::size_t kStatsEpochPayloadSize = 13;
inline constexpr std::size_t kTracePayloadSize = 5;
inline constexpr std::size_t kEventsPayloadSize = 13;
/// MIGRATE before the variable-length target host bytes.
inline constexpr std::size_t kMigrateHeaderSize = 41;
/// MIGRATE_DATA before the variable-length payload bytes.
inline constexpr std::size_t kMigrateDataHeaderSize = 46;
inline constexpr std::size_t kMigrateAckPayloadSize = 18;
/// Largest MIGRATE_DATA payload slice an encoder may emit — comfortably
/// under kMaxFramePayload so repair frames never monopolize a stream.
inline constexpr std::size_t kMaxMigrateSlice = 32 * 1024;

/// Append one framed message to `out`.
void encode_request(const RequestMsg& msg, std::vector<std::uint8_t>& out);
void encode_response(const ResponseMsg& msg, std::vector<std::uint8_t>& out);
void encode_stats_request(const StatsRequestMsg& msg,
                          std::vector<std::uint8_t>& out);
void encode_trace_request(const TraceRequestMsg& msg,
                          std::vector<std::uint8_t>& out);
/// Frame an already-encoded STATS_RESP payload (type byte included — see
/// net/stats.hpp encode_stats_payload).  Returns false (and appends
/// nothing) when the payload exceeds kMaxFramePayload.
bool encode_stats_response_frame(const std::vector<std::uint8_t>& payload,
                                 std::vector<std::uint8_t>& out);
/// Same for a TRACE_RESP payload (see net/trace_wire.hpp
/// encode_trace_payload).
bool encode_trace_response_frame(const std::vector<std::uint8_t>& payload,
                                 std::vector<std::uint8_t>& out);
void encode_events_request(const EventsRequestMsg& msg,
                           std::vector<std::uint8_t>& out);
/// Same for an EVENTS_RESP payload (see net/events_wire.hpp
/// encode_events_payload).
bool encode_events_response_frame(const std::vector<std::uint8_t>& payload,
                                  std::vector<std::uint8_t>& out);

/// Repair-plane frames.  encode_migrate fails (appends nothing) when the
/// host name would overflow the frame cap; encode_migrate_data fails when
/// the payload slice exceeds kMaxMigrateSlice.
bool encode_migrate(const MigrateMsg& msg, std::vector<std::uint8_t>& out);
bool encode_migrate_data(const MigrateDataMsg& msg,
                         std::vector<std::uint8_t>& out);
void encode_migrate_ack(const MigrateAckMsg& msg,
                        std::vector<std::uint8_t>& out);

/// Parse a payload decode_payload classified as kMigrate / kMigrateData /
/// kMigrateAck.  False on malformed bodies (bad lengths, truncation).
[[nodiscard]] bool decode_migrate(const std::uint8_t* data, std::size_t size,
                                  MigrateMsg& out);
[[nodiscard]] bool decode_migrate_data(const std::uint8_t* data,
                                       std::size_t size, MigrateDataMsg& out);
[[nodiscard]] bool decode_migrate_ack(const std::uint8_t* data,
                                      std::size_t size, MigrateAckMsg& out);

/// FNV-1a digest of a migration payload slice (the MIGRATE_DATA checksum).
[[nodiscard]] std::uint64_t migrate_checksum(const std::uint8_t* data,
                                             std::size_t size) noexcept;

/// What a payload decoded to.
enum class Decoded : std::uint8_t {
  kRequest,
  kResponse,
  kStats,
  /// A STATS_RESP frame.  decode_payload only classifies it; the snapshot
  /// body is parsed separately (net/stats.hpp decode_stats_payload).
  kStatsResponse,
  kTrace,
  /// A TRACE_RESP frame; classified only, parsed by net/trace_wire.hpp
  /// decode_trace_payload.
  kTraceResponse,
  /// Repair-plane frames: classified only (size-sanity checked); bodies
  /// are parsed by decode_migrate / decode_migrate_data /
  /// decode_migrate_ack.
  kMigrate,
  kMigrateData,
  kMigrateAck,
  /// An EVENTS journal request.
  kEvents,
  /// An EVENTS_RESP frame; classified only, parsed by
  /// net/events_wire.hpp decode_events_payload.
  kEventsResponse,
  kMalformed,
};

/// Decode one frame payload (no length prefix).  At most one of
/// `request` / `response` / `stats` / `trace` / `events` is filled on
/// success.
Decoded decode_payload(const std::uint8_t* data, std::size_t size,
                       RequestMsg& request, ResponseMsg& response,
                       StatsRequestMsg& stats, TraceRequestMsg& trace,
                       EventsRequestMsg& events);

/// Without the EVENTS out-param: EVENTS frames classify but fill nothing.
Decoded decode_payload(const std::uint8_t* data, std::size_t size,
                       RequestMsg& request, ResponseMsg& response,
                       StatsRequestMsg& stats, TraceRequestMsg& trace);

/// STATS-only admin form: TRACE frames classify but fill nothing.
Decoded decode_payload(const std::uint8_t* data, std::size_t size,
                       RequestMsg& request, ResponseMsg& response,
                       StatsRequestMsg& stats);

/// Request/response-only form: admin frames classify but fill nothing.
Decoded decode_payload(const std::uint8_t* data, std::size_t size,
                       RequestMsg& request, ResponseMsg& response);

/// A complete frame payload viewed in place inside a FrameDecoder's
/// buffer.  Valid only until the next feed()/next()/next_view()/reset()
/// call on the decoder that produced it.
struct FrameView {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

/// Incremental frame reassembly over an arbitrary byte stream.
///
/// feed() buffers bytes; next()/next_view() pop complete payloads in
/// order.  The buffer is consumed by advancing an offset and compacted
/// with a capacity-retaining memmove only when the dead prefix dominates,
/// so steady-state traffic does zero per-frame allocations after the
/// buffer warms up.
///
/// A frame with a zero or oversize length poisons the decoder: error()
/// becomes true, buffered bytes are dropped, and every subsequent feed(),
/// next() and next_view() returns false — the error is sticky and framing
/// cannot resynchronize; the connection must be closed.
class FrameDecoder {
 public:
  /// Buffer `size` bytes.  Returns false once the stream is poisoned
  /// (including when this very call trips the poison).
  bool feed(const std::uint8_t* data, std::size_t size);

  /// Pop the next complete payload into `out` (resized).  False when no
  /// complete frame is buffered (or the decoder is poisoned).
  bool next(std::vector<std::uint8_t>& out);

  /// Zero-copy variant: point `out` at the next complete payload inside
  /// the internal buffer.  The view is invalidated by the next call on
  /// this decoder.  False when no complete frame is buffered (or the
  /// decoder is poisoned).
  bool next_view(FrameView& out);

  /// Forget everything (buffered bytes and a sticky error), retaining the
  /// buffer's capacity so a recycled decoder stays allocation-free.
  void reset() noexcept;

  bool error() const noexcept { return error_; }
  /// Bytes buffered but not yet popped (length prefixes included).
  /// Always zero once the decoder is poisoned.
  std::size_t buffered() const noexcept {
    return error_ ? 0 : buffer_.size() - offset_;
  }

 private:
  void poison() noexcept;

  std::vector<std::uint8_t> buffer_;
  std::size_t offset_ = 0;  // consumed prefix of buffer_
  bool error_ = false;
};

}  // namespace rlb::net
