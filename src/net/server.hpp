// Non-blocking loopback TCP listener + event loop for the serving engine.
//
// One event-loop thread owns every socket: it accepts connections, reads
// and reassembles frames (net/wire.hpp), and hands decoded REQUEST
// messages to the registered handler.  The readiness loop is epoll
// edge-triggered on Linux (a portable poll() fallback sits behind the
// RLB_NET_EPOLL CMake option); read, accept and write paths all drain to
// EAGAIN as edge-triggering requires.
//
// There is no global lock on the data path.  Responses are pushed from
// OTHER threads (the engine's shard workers) through send_response(),
// which appends to a small per-connection staging buffer under that
// connection's own mutex, flags the connection dirty, and wakes the loop
// through a self-pipe on the clean->dirty edge.  The loop splices staged
// bytes into loop-owned front/back drain buffers (a vector swap — no
// copy) and writes them with writev() iovec chaining, never holding any
// lock across a syscall.  Server counters are relaxed per-field atomics
// aggregated by stats().
//
// Connections are addressed by opaque 64-bit tokens (slot index + a
// generation counter), so a late response for a connection that already
// closed is dropped instead of reaching a recycled socket.  A connection
// whose pending outbound bytes exceed ServerConfig::max_outbound_bytes
// (a stalled or slow-reading client) is disconnected and counted as a
// slow-consumer drop instead of growing its buffer without bound.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/events_wire.hpp"
#include "net/stats.hpp"
#include "net/trace_wire.hpp"
#include "net/wire.hpp"

namespace rlb::net {

struct ServerConfig {
  /// Bind address.  The serving engine is loopback-only for now.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Concurrent connection cap; accepts beyond it are closed immediately.
  std::size_t max_connections = 256;
  /// Backpressure cap: a connection whose queued outbound bytes (staged +
  /// not yet written) exceed this is closed and counted in
  /// slow_consumer_drops.  0 disables the cap.
  std::size_t max_outbound_bytes = 8u << 20;
  /// SO_SNDBUF override for accepted sockets; 0 keeps the OS default.
  /// Mainly a test hook for forcing partial writes.
  int sndbuf = 0;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  /// Framing/decode violations (each also closes its connection).
  std::uint64_t protocol_errors = 0;
  std::uint64_t requests_decoded = 0;
  std::uint64_t responses_sent = 0;
  /// STATS admin frames served.
  std::uint64_t stats_requests = 0;
  /// TRACE admin frames served.
  std::uint64_t trace_requests = 0;
  /// EVENTS admin frames served.
  std::uint64_t events_requests = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Connections dropped for exceeding max_outbound_bytes.
  std::uint64_t slow_consumer_drops = 0;
};

/// Called on the event-loop thread for every decoded REQUEST frame.
using RequestHandler =
    std::function<void(std::uint64_t conn_token, const RequestMsg& request)>;

/// One decoded REQUEST with the connection it arrived on, for the batch
/// handler form.
struct ServerRequest {
  std::uint64_t conn_token = 0;
  RequestMsg msg;
};

/// Batch form of the request handler: called on the event-loop thread
/// with every REQUEST decoded from one readable burst (across reads of
/// one connection, flushed before any admin frame so ordering per
/// connection is preserved).  When installed it replaces the per-request
/// handler on the hot path, letting the engine take one queue lock per
/// burst instead of one per frame.
using RequestBatchHandler =
    std::function<void(const ServerRequest* batch, std::size_t count)>;

/// Called on the event-loop thread for every decoded STATS frame.  The
/// handler answers with send_stats() (immediately or later); it must be
/// fast — a snapshot built from shard-local atomics, not a blocking walk.
using StatsHandler =
    std::function<void(std::uint64_t conn_token, const StatsRequestMsg&)>;

/// Called on the event-loop thread for every decoded TRACE frame.  The
/// handler answers with send_trace(); draining the span recorder takes a
/// few uncontended mutexes, cheap enough for the loop thread.
using TraceHandler =
    std::function<void(std::uint64_t conn_token, const TraceRequestMsg&)>;

/// Called on the event-loop thread for every decoded EVENTS frame.  The
/// handler answers with send_events(); building a batch is a short
/// cursor read of the journal ring, cheap enough for the loop thread.
using EventsHandler =
    std::function<void(std::uint64_t conn_token, const EventsRequestMsg&)>;

/// Called on the event-loop thread for every decoded MIGRATE frame (the
/// repair coordinator ordering this backend to stream a chunk out).  The
/// handler must be fast: hand the order to the migration agent's worker
/// queue and return; the eventual outcome is reported with
/// send_migrate_ack().
using MigrateHandler =
    std::function<void(std::uint64_t conn_token, const MigrateMsg&)>;

/// Called on the event-loop thread for every decoded MIGRATE_DATA frame
/// (a source backend streaming chunk state into this one).  Verification
/// is a checksum over an already-decoded payload — cheap enough for the
/// loop thread; the handler acks the final slice with send_migrate_ack().
using MigrateDataHandler =
    std::function<void(std::uint64_t conn_token, const MigrateDataMsg&)>;

class NetServer {
 public:
  explicit NetServer(const ServerConfig& config, RequestHandler on_request);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bind + listen + spawn the event loop.  Throws std::runtime_error on
  /// socket failures (port in use, etc.).
  void start();

  /// The bound port (after start(); resolves port 0 to the real one).
  std::uint16_t port() const noexcept { return port_; }

  /// Graceful shutdown: stop accepting, flush pending outbound bytes for
  /// up to `flush_timeout_ms`, close everything, join the loop thread.
  /// Idempotent.
  void stop(std::uint64_t flush_timeout_ms = 1000);

  /// Queue a response for delivery.  Thread-safe; callable from engine
  /// worker threads.  Returns false when the connection is gone (the
  /// response is dropped).
  bool send_response(std::uint64_t conn_token, const ResponseMsg& response);

  /// Install the batch request handler (see RequestBatchHandler).  Call
  /// before start().  Takes precedence over the per-request handler.
  void set_request_batch_handler(RequestBatchHandler on_batch);

  /// Install the STATS admin handler.  Call before start(); without one,
  /// inbound STATS frames are protocol errors (connection closed).
  void set_stats_handler(StatsHandler on_stats);

  /// Queue a STATS_RESP snapshot for delivery.  Thread-safe.  Returns
  /// false when the connection is gone or the encoded snapshot exceeds
  /// kMaxFramePayload (the frame is dropped, connection left alone).
  bool send_stats(std::uint64_t conn_token, const StatsSnapshot& snapshot);

  /// Install the TRACE admin handler.  Call before start(); without one,
  /// inbound TRACE frames are protocol errors (connection closed).
  void set_trace_handler(TraceHandler on_trace);

  /// Queue a TRACE_RESP span snapshot for delivery.  Thread-safe; same
  /// semantics as send_stats().
  bool send_trace(std::uint64_t conn_token, const TraceSnapshot& snapshot);

  /// Install the EVENTS admin handler.  Call before start(); without one,
  /// inbound EVENTS frames are protocol errors (connection closed).
  void set_events_handler(EventsHandler on_events);

  /// Queue an EVENTS_RESP batch for delivery.  Thread-safe; same
  /// semantics as send_stats().
  bool send_events(std::uint64_t conn_token, const EventsSnapshot& snapshot);

  /// Install the MIGRATE / MIGRATE_DATA repair handlers.  Call before
  /// start(); without them, inbound repair frames are protocol errors
  /// (connection closed) — a backend not running a migration agent
  /// refuses the repair plane outright.
  void set_migrate_handler(MigrateHandler on_migrate);
  void set_migrate_data_handler(MigrateDataHandler on_migrate_data);

  /// Queue a MIGRATE_ACK for delivery.  Thread-safe; returns false when
  /// the connection is gone (the ack is dropped — the coordinator's
  /// migration timeout handles the loss).
  bool send_migrate_ack(std::uint64_t conn_token, const MigrateAckMsg& ack);

  /// Aggregated from relaxed atomics; each field is individually
  /// consistent but the snapshot is not a cross-field atomic cut.
  ServerStats stats() const;

 private:
  struct Impl;
  Impl* impl_;
  std::uint16_t port_ = 0;
};

}  // namespace rlb::net
