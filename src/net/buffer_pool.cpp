#include "net/buffer_pool.hpp"

namespace rlb::net {

BufferPool& global_buffer_pool() {
  static BufferPool pool;
  return pool;
}

}  // namespace rlb::net
