#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace rlb::net {

namespace {

void apply_recv_timeout(int fd, std::uint64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Client::~Client() { close(); }

void Client::dial(const std::string& host, std::uint16_t port) {
  close_fd();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("Client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close_fd();
    throw std::runtime_error("Client: bad host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close_fd();
    throw std::runtime_error("Client: connect to " + host + ":" +
                             std::to_string(port) + " failed: " + why);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_ms_ > 0) apply_recv_timeout(fd_, recv_timeout_ms_);
}

void Client::connect(const std::string& host, std::uint16_t port) {
  send_buffer_.clear();
  dial(host, port);
  host_ = host;
  port_ = port;
  reconnects_ = 0;
}

void Client::enable_reconnect(const ReconnectPolicy& policy) {
  reconnect_enabled_ = true;
  reconnect_policy_ = policy;
}

bool Client::reconnect() {
  if (host_.empty()) return false;
  std::uint64_t backoff_ms = reconnect_policy_.initial_backoff_ms;
  for (unsigned attempt = 0; attempt < reconnect_policy_.max_attempts;
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, reconnect_policy_.max_backoff_ms);
    }
    try {
      dial(host_, port_);
      ++reconnects_;
      return true;
    } catch (const std::runtime_error&) {
      // dial() already closed the half-made socket; back off and retry.
    }
  }
  return false;
}

void Client::set_recv_timeout_ms(std::uint64_t ms) {
  recv_timeout_ms_ = ms;
  if (fd_ >= 0) apply_recv_timeout(fd_, ms);
}

void Client::send_request(std::uint64_t request_id, std::uint64_t key) {
  encode_request(RequestMsg{request_id, key}, send_buffer_);
}

void Client::send_request(std::uint64_t request_id, std::uint64_t key,
                          const obs::TraceContext& trace) {
  encode_request(RequestMsg{request_id, key, trace}, send_buffer_);
}

void Client::flush() {
  // The buffer is kept intact until fully written so that a mid-flush
  // connection drop can retransmit every frame from the top on the fresh
  // connection (the peer discards a torn trailing frame with the dead
  // socket, so no duplicate framing results).
  bool retried = false;
  if (fd_ < 0 && reconnect_enabled_ && !reconnect()) {
    throw std::runtime_error("Client: reconnect failed (attempts exhausted)");
  }
  std::size_t offset = 0;
  while (offset < send_buffer_.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd_, send_buffer_.data() + offset,
                             send_buffer_.size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const bool gone =
          errno == EPIPE || errno == ECONNRESET || errno == EBADF;
      if (gone && reconnect_enabled_ && !retried && reconnect()) {
        retried = true;
        offset = 0;
        continue;
      }
      throw std::runtime_error(std::string("Client: write failed: ") +
                               std::strerror(errno));
    }
    offset += static_cast<std::size_t>(n);
  }
  send_buffer_.clear();
}

ReadOutcome Client::next_frame(bool allow_timeout) {
  using Clock = std::chrono::steady_clock;
  // With a recv timeout armed, the whole call gets ONE deadline window.
  // SO_RCVTIMEO restarts from scratch on every read(), so after an EINTR
  // the remaining window must be recomputed and re-applied — otherwise a
  // signal storm arriving faster than the timeout extends a 100 ms budget
  // indefinitely.
  const bool deadline_armed = recv_timeout_ms_ > 0 && fd_ >= 0;
  const Clock::time_point deadline =
      deadline_armed
          ? Clock::now() + std::chrono::milliseconds(recv_timeout_ms_)
          : Clock::time_point{};
  // Restore the configured full timeout on every exit once it has been
  // shortened, so the next call starts with a fresh window.
  struct RestoreTimeout {
    int fd = -1;
    std::uint64_t ms = 0;
    ~RestoreTimeout() {
      if (fd >= 0) apply_recv_timeout(fd, ms);
    }
  } restore;
  for (;;) {
    if (decoder_.next(payload_)) return ReadOutcome::kFrame;
    if (decoder_.error()) throw ProtocolError("Client: bad frame length");
    if (fd_ < 0) {
      throw std::runtime_error("Client: read on closed connection");
    }
    std::uint8_t buffer[16384];
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n == 0) {
      // Clean EOF: drop the socket now so that (with auto-reconnect
      // armed) the next flush() re-dials instead of writing into a dead
      // connection.
      close_fd();
      return ReadOutcome::kEof;
    }
    if (n < 0) {
      if (errno == EINTR) {
        if (deadline_armed) {
          const Clock::time_point now = Clock::now();
          if (now >= deadline) {
            if (allow_timeout) return ReadOutcome::kTimeout;
            throw std::runtime_error("Client: read timed out");
          }
          const auto remaining_ms =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - now).count() + 1;  // ceil: never arm 0 = forever
          apply_recv_timeout(fd_, static_cast<std::uint64_t>(remaining_ms));
          restore.fd = fd_;
          restore.ms = recv_timeout_ms_;
        }
        continue;
      }
      if (allow_timeout && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return ReadOutcome::kTimeout;
      }
      if (errno == ECONNRESET) {
        // An abortive close (RST) means the same thing as a clean FIN
        // from the caller's point of view: the peer is gone and pending
        // responses are lost.  Surface both uniformly as kEof so the
        // reconnect path stays one code path.
        close_fd();
        return ReadOutcome::kEof;
      }
      throw std::runtime_error(std::string("Client: read failed: ") +
                               std::strerror(errno));
    }
    if (!decoder_.feed(buffer, static_cast<std::size_t>(n))) {
      throw ProtocolError("Client: bad frame length");
    }
  }
}

bool Client::read_response(ResponseMsg& out) {
  const ReadOutcome outcome = try_read_response(out);
  if (outcome == ReadOutcome::kTimeout) {
    throw std::runtime_error("Client: read timed out");
  }
  return outcome == ReadOutcome::kFrame;
}

ReadOutcome Client::try_read_response(ResponseMsg& out) {
  const ReadOutcome outcome = next_frame(/*allow_timeout=*/true);
  if (outcome != ReadOutcome::kFrame) return outcome;
  RequestMsg request;
  const Decoded decoded =
      decode_payload(payload_.data(), payload_.size(), request, out);
  if (decoded != Decoded::kResponse) {
    throw ProtocolError("Client: unexpected frame from server");
  }
  return ReadOutcome::kFrame;
}

bool Client::poll_buffered_response(ResponseMsg& out) {
  if (!decoder_.next(payload_)) {
    if (decoder_.error()) throw ProtocolError("Client: bad frame length");
    return false;
  }
  RequestMsg request;
  const Decoded decoded =
      decode_payload(payload_.data(), payload_.size(), request, out);
  if (decoded != Decoded::kResponse) {
    throw ProtocolError("Client: unexpected frame from server");
  }
  return true;
}

void Client::send_stats_request(std::uint32_t flags, std::uint64_t epoch) {
  encode_stats_request(StatsRequestMsg{flags, epoch}, send_buffer_);
}

bool Client::read_stats_response(StatsSnapshot& out) {
  const ReadOutcome outcome = try_read_stats_response(out);
  if (outcome == ReadOutcome::kTimeout) {
    throw std::runtime_error("Client: read timed out");
  }
  return outcome == ReadOutcome::kFrame;
}

ReadOutcome Client::try_read_stats_response(StatsSnapshot& out) {
  const ReadOutcome outcome = next_frame(/*allow_timeout=*/true);
  if (outcome != ReadOutcome::kFrame) return outcome;
  RequestMsg request;
  ResponseMsg response;
  StatsRequestMsg stats_request;
  const Decoded decoded = decode_payload(payload_.data(), payload_.size(),
                                         request, response, stats_request);
  if (decoded != Decoded::kStatsResponse) {
    throw ProtocolError("Client: expected STATS_RESP frame");
  }
  if (!decode_stats_payload(payload_.data(), payload_.size(), out)) {
    // A well-formed header with a different version word is skew, not
    // corruption — report which version the peer speaks.
    std::uint32_t peer_version = 0;
    if (peek_stats_version(payload_.data(), payload_.size(), peer_version) &&
        peer_version != kStatsVersion) {
      throw StatsVersionMismatch(peer_version);
    }
    throw ProtocolError("Client: bad STATS_RESP snapshot");
  }
  return ReadOutcome::kFrame;
}

void Client::send_trace_request(std::uint32_t flags) {
  encode_trace_request(TraceRequestMsg{flags}, send_buffer_);
}

bool Client::read_trace_response(TraceSnapshot& out) {
  const ReadOutcome outcome = try_read_trace_response(out);
  if (outcome == ReadOutcome::kTimeout) {
    throw std::runtime_error("Client: read timed out");
  }
  return outcome == ReadOutcome::kFrame;
}

ReadOutcome Client::try_read_trace_response(TraceSnapshot& out) {
  const ReadOutcome outcome = next_frame(/*allow_timeout=*/true);
  if (outcome != ReadOutcome::kFrame) return outcome;
  if (payload_.empty() ||
      payload_[0] != static_cast<std::uint8_t>(MsgType::kTraceResponse)) {
    throw ProtocolError("Client: expected TRACE_RESP frame");
  }
  if (!decode_trace_payload(payload_.data(), payload_.size(), out)) {
    throw ProtocolError("Client: bad TRACE_RESP snapshot");
  }
  return ReadOutcome::kFrame;
}

void Client::send_events_request(std::uint64_t cursor, std::uint32_t flags) {
  encode_events_request(EventsRequestMsg{flags, cursor}, send_buffer_);
}

bool Client::read_events_response(EventsSnapshot& out) {
  const ReadOutcome outcome = try_read_events_response(out);
  if (outcome == ReadOutcome::kTimeout) {
    throw std::runtime_error("Client: read timed out");
  }
  return outcome == ReadOutcome::kFrame;
}

ReadOutcome Client::try_read_events_response(EventsSnapshot& out) {
  const ReadOutcome outcome = next_frame(/*allow_timeout=*/true);
  if (outcome != ReadOutcome::kFrame) return outcome;
  if (payload_.empty() ||
      payload_[0] != static_cast<std::uint8_t>(MsgType::kEventsResponse)) {
    throw ProtocolError("Client: expected EVENTS_RESP frame");
  }
  if (!decode_events_payload(payload_.data(), payload_.size(), out)) {
    throw ProtocolError("Client: bad EVENTS_RESP batch");
  }
  return ReadOutcome::kFrame;
}

void Client::send_migrate(const MigrateMsg& msg) {
  if (!encode_migrate(msg, send_buffer_)) {
    throw std::runtime_error("Client: MIGRATE message does not encode");
  }
}

void Client::send_migrate_data(const MigrateDataMsg& msg) {
  if (!encode_migrate_data(msg, send_buffer_)) {
    throw std::runtime_error("Client: MIGRATE_DATA slice too large");
  }
}

bool Client::read_migrate_ack(MigrateAckMsg& out) {
  const ReadOutcome outcome = try_read_migrate_ack(out);
  if (outcome == ReadOutcome::kTimeout) {
    throw std::runtime_error("Client: read timed out");
  }
  return outcome == ReadOutcome::kFrame;
}

ReadOutcome Client::try_read_migrate_ack(MigrateAckMsg& out) {
  const ReadOutcome outcome = next_frame(/*allow_timeout=*/true);
  if (outcome != ReadOutcome::kFrame) return outcome;
  if (!decode_migrate_ack(payload_.data(), payload_.size(), out)) {
    throw ProtocolError("Client: expected MIGRATE_ACK frame");
  }
  return ReadOutcome::kFrame;
}

void Client::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

void Client::close() {
  close_fd();
  send_buffer_.clear();
  host_.clear();
  port_ = 0;
}

}  // namespace rlb::net
