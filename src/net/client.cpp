#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rlb::net {

Client::~Client() { close(); }

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("Client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("Client: bad host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close();
    throw std::runtime_error("Client: connect to " + host + ":" +
                             std::to_string(port) + " failed: " + why);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Client::send_request(std::uint64_t request_id, std::uint64_t key) {
  encode_request(RequestMsg{request_id, key}, send_buffer_);
}

void Client::flush() {
  std::size_t offset = 0;
  while (offset < send_buffer_.size()) {
    const ssize_t n = ::write(fd_, send_buffer_.data() + offset,
                              send_buffer_.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("Client: write failed: ") +
                               std::strerror(errno));
    }
    offset += static_cast<std::size_t>(n);
  }
  send_buffer_.clear();
}

bool Client::read_response(ResponseMsg& out) {
  for (;;) {
    if (decoder_.next(payload_)) {
      RequestMsg request;
      const Decoded decoded =
          decode_payload(payload_.data(), payload_.size(), request, out);
      if (decoded != Decoded::kResponse) {
        throw ProtocolError("Client: unexpected frame from server");
      }
      return true;
    }
    if (decoder_.error()) throw ProtocolError("Client: bad frame length");
    std::uint8_t buffer[16384];
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("Client: read failed: ") +
                               std::strerror(errno));
    }
    if (!decoder_.feed(buffer, static_cast<std::size_t>(n))) {
      throw ProtocolError("Client: bad frame length");
    }
  }
}

void Client::send_stats_request(std::uint32_t flags) {
  encode_stats_request(StatsRequestMsg{flags}, send_buffer_);
}

bool Client::read_stats_response(StatsSnapshot& out) {
  for (;;) {
    if (decoder_.next(payload_)) {
      RequestMsg request;
      ResponseMsg response;
      StatsRequestMsg stats_request;
      const Decoded decoded = decode_payload(payload_.data(), payload_.size(),
                                             request, response,
                                             stats_request);
      if (decoded != Decoded::kStatsResponse) {
        throw ProtocolError("Client: expected STATS_RESP frame");
      }
      if (!decode_stats_payload(payload_.data(), payload_.size(), out)) {
        throw ProtocolError("Client: bad STATS_RESP snapshot");
      }
      return true;
    }
    if (decoder_.error()) throw ProtocolError("Client: bad frame length");
    std::uint8_t buffer[16384];
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("Client: read failed: ") +
                               std::strerror(errno));
    }
    if (!decoder_.feed(buffer, static_cast<std::size_t>(n))) {
      throw ProtocolError("Client: bad frame length");
    }
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  send_buffer_.clear();
  decoder_ = FrameDecoder();
}

}  // namespace rlb::net
