#include "net/wire.hpp"

#include <cstring>

namespace rlb::net {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kReject:
      return "reject";
    case Status::kError:
      return "error";
    case Status::kRejectUpstreamDown:
      return "reject-upstream-down";
    case Status::kRejectUpstreamTimeout:
      return "reject-upstream-timeout";
  }
  return "unknown";
}

void encode_request(const RequestMsg& msg, std::vector<std::uint8_t>& out) {
  // The trace extension is emitted only when a context is present, so a
  // non-sampled request is byte-identical to the v1 frame (and old peers
  // never see the extended size).
  const bool traced = msg.trace.valid();
  put_u32(out, static_cast<std::uint32_t>(traced ? kRequestTracedPayloadSize
                                                 : kRequestPayloadSize));
  out.push_back(static_cast<std::uint8_t>(MsgType::kRequest));
  put_u64(out, msg.request_id);
  put_u64(out, msg.key);
  if (traced) {
    put_u64(out, msg.trace.trace_id);
    put_u64(out, msg.trace.parent_span_id);
    out.push_back(msg.trace.flags);
  }
}

void encode_response(const ResponseMsg& msg, std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(kResponsePayloadSize));
  out.push_back(static_cast<std::uint8_t>(MsgType::kResponse));
  put_u64(out, msg.request_id);
  out.push_back(static_cast<std::uint8_t>(msg.status));
  put_u32(out, msg.server);
  put_u32(out, msg.wait_steps);
}

void encode_stats_request(const StatsRequestMsg& msg,
                          std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(kStatsPayloadSize));
  out.push_back(static_cast<std::uint8_t>(MsgType::kStats));
  put_u32(out, msg.flags);
}

bool encode_stats_response_frame(const std::vector<std::uint8_t>& payload,
                                 std::vector<std::uint8_t>& out) {
  if (payload.empty() || payload.size() > kMaxFramePayload) return false;
  if (payload[0] != static_cast<std::uint8_t>(MsgType::kStatsResponse)) {
    return false;
  }
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return true;
}

void encode_trace_request(const TraceRequestMsg& msg,
                          std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(kTracePayloadSize));
  out.push_back(static_cast<std::uint8_t>(MsgType::kTrace));
  put_u32(out, msg.flags);
}

bool encode_trace_response_frame(const std::vector<std::uint8_t>& payload,
                                 std::vector<std::uint8_t>& out) {
  if (payload.empty() || payload.size() > kMaxFramePayload) return false;
  if (payload[0] != static_cast<std::uint8_t>(MsgType::kTraceResponse)) {
    return false;
  }
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return true;
}

Decoded decode_payload(const std::uint8_t* data, std::size_t size,
                       RequestMsg& request, ResponseMsg& response,
                       StatsRequestMsg& stats, TraceRequestMsg& trace) {
  if (size == 0) return Decoded::kMalformed;
  switch (static_cast<MsgType>(data[0])) {
    case MsgType::kRequest:
      // Two valid sizes: the v1 frame, and v1 + the trace-context
      // extension.  Anything else (including a partial extension) is
      // malformed.
      if (size != kRequestPayloadSize && size != kRequestTracedPayloadSize) {
        return Decoded::kMalformed;
      }
      request.request_id = get_u64(data + 1);
      request.key = get_u64(data + 9);
      if (size == kRequestTracedPayloadSize) {
        request.trace.trace_id = get_u64(data + 17);
        request.trace.parent_span_id = get_u64(data + 25);
        request.trace.flags = data[33];
      } else {
        request.trace = obs::TraceContext{};
      }
      return Decoded::kRequest;
    case MsgType::kResponse: {
      if (size != kResponsePayloadSize) return Decoded::kMalformed;
      response.request_id = get_u64(data + 1);
      const std::uint8_t status = data[9];
      if (status > static_cast<std::uint8_t>(Status::kRejectUpstreamTimeout)) {
        return Decoded::kMalformed;
      }
      response.status = static_cast<Status>(status);
      response.server = get_u32(data + 10);
      response.wait_steps = get_u32(data + 14);
      return Decoded::kResponse;
    }
    case MsgType::kStats:
      if (size != kStatsPayloadSize) return Decoded::kMalformed;
      stats.flags = get_u32(data + 1);
      return Decoded::kStats;
    case MsgType::kStatsResponse:
      // The snapshot body is versioned and parsed by net/stats.hpp; here we
      // only classify, requiring room for the version word that follows the
      // type byte.
      if (size < 5) return Decoded::kMalformed;
      return Decoded::kStatsResponse;
    case MsgType::kTrace:
      if (size != kTracePayloadSize) return Decoded::kMalformed;
      trace.flags = get_u32(data + 1);
      return Decoded::kTrace;
    case MsgType::kTraceResponse:
      // Versioned span blob parsed by net/trace_wire.hpp; classify only,
      // requiring room for the version word.
      if (size < 5) return Decoded::kMalformed;
      return Decoded::kTraceResponse;
  }
  return Decoded::kMalformed;
}

Decoded decode_payload(const std::uint8_t* data, std::size_t size,
                       RequestMsg& request, ResponseMsg& response,
                       StatsRequestMsg& stats) {
  TraceRequestMsg scratch;
  return decode_payload(data, size, request, response, stats, scratch);
}

Decoded decode_payload(const std::uint8_t* data, std::size_t size,
                       RequestMsg& request, ResponseMsg& response) {
  StatsRequestMsg stats_scratch;
  TraceRequestMsg trace_scratch;
  return decode_payload(data, size, request, response, stats_scratch,
                        trace_scratch);
}

void FrameDecoder::poison() noexcept {
  // Sticky.  The buffered bytes become unreachable (buffered() reads zero,
  // every accessor short-circuits) but are not shrunk here: a FrameView
  // returned from the same call may still point into the buffer, so the
  // storage is only reclaimed by reset() when the connection slot is
  // recycled.
  error_ = true;
}

void FrameDecoder::reset() noexcept {
  buffer_.clear();
  offset_ = 0;
  error_ = false;
}

bool FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (error_) return false;
  if (offset_ != 0 && offset_ == buffer_.size()) {
    // Fully drained: rewind with no copy, keeping the warmed-up capacity.
    buffer_.clear();
    offset_ = 0;
  } else if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
    // Compact once the consumed prefix dominates — amortized O(1) per
    // byte.  memmove within the same storage keeps capacity, so the
    // steady state appends into reserved space with no allocation.
    const std::size_t live = buffer_.size() - offset_;
    std::memmove(buffer_.data(), buffer_.data() + offset_, live);
    buffer_.resize(live);
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
  // Validate eagerly so a poisoned stream is detected at feed time, not
  // only when the caller drains frames.
  if (buffer_.size() - offset_ >= 4) {
    const std::uint32_t length = get_u32(buffer_.data() + offset_);
    if (length == 0 || length > kMaxFramePayload) {
      poison();
      return false;
    }
  }
  return true;
}

bool FrameDecoder::next_view(FrameView& out) {
  if (error_) return false;
  const std::size_t available = buffer_.size() - offset_;
  if (available < 4) return false;
  const std::uint32_t length = get_u32(buffer_.data() + offset_);
  if (length == 0 || length > kMaxFramePayload) {
    poison();
    return false;
  }
  if (available < 4 + static_cast<std::size_t>(length)) return false;
  out.data = buffer_.data() + offset_ + 4;
  out.size = length;
  offset_ += 4 + static_cast<std::size_t>(length);
  if (buffer_.size() - offset_ >= 4) {
    // Eager validation of the next frame header (see feed()).  poison()
    // leaves the storage alone, so the view we are about to return stays
    // valid even when the byte right behind it trips the error.
    const std::uint32_t next_length = get_u32(buffer_.data() + offset_);
    if (next_length == 0 || next_length > kMaxFramePayload) poison();
  }
  return true;
}

bool FrameDecoder::next(std::vector<std::uint8_t>& out) {
  FrameView view;
  if (!next_view(view)) return false;
  out.assign(view.data, view.data + view.size);
  return true;
}

}  // namespace rlb::net
