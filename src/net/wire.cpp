#include "net/wire.hpp"

#include <cstring>

namespace rlb::net {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kReject:
      return "reject";
    case Status::kError:
      return "error";
    case Status::kRejectUpstreamDown:
      return "reject-upstream-down";
    case Status::kRejectUpstreamTimeout:
      return "reject-upstream-timeout";
  }
  return "unknown";
}

void encode_request(const RequestMsg& msg, std::vector<std::uint8_t>& out) {
  // The trace extension is emitted only when a context is present, so a
  // non-sampled request is byte-identical to the v1 frame (and old peers
  // never see the extended size).
  const bool traced = msg.trace.valid();
  put_u32(out, static_cast<std::uint32_t>(traced ? kRequestTracedPayloadSize
                                                 : kRequestPayloadSize));
  out.push_back(static_cast<std::uint8_t>(MsgType::kRequest));
  put_u64(out, msg.request_id);
  put_u64(out, msg.key);
  if (traced) {
    put_u64(out, msg.trace.trace_id);
    put_u64(out, msg.trace.parent_span_id);
    out.push_back(msg.trace.flags);
  }
}

void encode_response(const ResponseMsg& msg, std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(kResponsePayloadSize));
  out.push_back(static_cast<std::uint8_t>(MsgType::kResponse));
  put_u64(out, msg.request_id);
  out.push_back(static_cast<std::uint8_t>(msg.status));
  put_u32(out, msg.server);
  put_u32(out, msg.wait_steps);
}

void encode_stats_request(const StatsRequestMsg& msg,
                          std::vector<std::uint8_t>& out) {
  // Same optional-extension-by-size idiom as the REQUEST trace context:
  // epoch 0 (no repair commits yet, or a pre-repair sender) encodes the
  // 5-byte v1 frame, so the extension costs zero bytes until the first
  // placement cutover.
  const bool epoched = msg.epoch != 0;
  put_u32(out, static_cast<std::uint32_t>(epoched ? kStatsEpochPayloadSize
                                                  : kStatsPayloadSize));
  out.push_back(static_cast<std::uint8_t>(MsgType::kStats));
  put_u32(out, msg.flags);
  if (epoched) put_u64(out, msg.epoch);
}

bool encode_stats_response_frame(const std::vector<std::uint8_t>& payload,
                                 std::vector<std::uint8_t>& out) {
  if (payload.empty() || payload.size() > kMaxFramePayload) return false;
  if (payload[0] != static_cast<std::uint8_t>(MsgType::kStatsResponse)) {
    return false;
  }
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return true;
}

void encode_trace_request(const TraceRequestMsg& msg,
                          std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(kTracePayloadSize));
  out.push_back(static_cast<std::uint8_t>(MsgType::kTrace));
  put_u32(out, msg.flags);
}

bool encode_trace_response_frame(const std::vector<std::uint8_t>& payload,
                                 std::vector<std::uint8_t>& out) {
  if (payload.empty() || payload.size() > kMaxFramePayload) return false;
  if (payload[0] != static_cast<std::uint8_t>(MsgType::kTraceResponse)) {
    return false;
  }
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return true;
}

void encode_events_request(const EventsRequestMsg& msg,
                           std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(kEventsPayloadSize));
  out.push_back(static_cast<std::uint8_t>(MsgType::kEvents));
  put_u32(out, msg.flags);
  put_u64(out, msg.cursor);
}

bool encode_events_response_frame(const std::vector<std::uint8_t>& payload,
                                  std::vector<std::uint8_t>& out) {
  if (payload.empty() || payload.size() > kMaxFramePayload) return false;
  if (payload[0] != static_cast<std::uint8_t>(MsgType::kEventsResponse)) {
    return false;
  }
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return true;
}

bool encode_migrate(const MigrateMsg& msg, std::vector<std::uint8_t>& out) {
  const std::size_t payload = kMigrateHeaderSize + msg.target_host.size();
  if (msg.target_host.size() > 0xffff || payload > kMaxFramePayload) {
    return false;
  }
  put_u32(out, static_cast<std::uint32_t>(payload));
  out.push_back(static_cast<std::uint8_t>(MsgType::kMigrate));
  put_u64(out, msg.migration_id);
  put_u64(out, msg.chunk);
  put_u64(out, msg.epoch);
  put_u32(out, msg.target_backend);
  put_u64(out, msg.bytes);
  out.push_back(static_cast<std::uint8_t>(msg.target_port));
  out.push_back(static_cast<std::uint8_t>(msg.target_port >> 8));
  out.push_back(static_cast<std::uint8_t>(msg.target_host.size()));
  out.push_back(static_cast<std::uint8_t>(msg.target_host.size() >> 8));
  out.insert(out.end(), msg.target_host.begin(), msg.target_host.end());
  return true;
}

bool encode_migrate_data(const MigrateDataMsg& msg,
                         std::vector<std::uint8_t>& out) {
  if (msg.payload.size() > kMaxMigrateSlice) return false;
  const std::size_t payload = kMigrateDataHeaderSize + msg.payload.size();
  put_u32(out, static_cast<std::uint32_t>(payload));
  out.push_back(static_cast<std::uint8_t>(MsgType::kMigrateData));
  put_u64(out, msg.migration_id);
  put_u64(out, msg.chunk);
  put_u64(out, msg.offset);
  put_u64(out, msg.total_bytes);
  put_u64(out, msg.checksum);
  out.push_back(msg.last ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(msg.payload.size()));
  out.insert(out.end(), msg.payload.begin(), msg.payload.end());
  return true;
}

void encode_migrate_ack(const MigrateAckMsg& msg,
                        std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(kMigrateAckPayloadSize));
  out.push_back(static_cast<std::uint8_t>(MsgType::kMigrateAck));
  put_u64(out, msg.migration_id);
  out.push_back(msg.status);
  put_u64(out, msg.bytes);
}

bool decode_migrate(const std::uint8_t* data, std::size_t size,
                    MigrateMsg& out) {
  if (size < kMigrateHeaderSize ||
      data[0] != static_cast<std::uint8_t>(MsgType::kMigrate)) {
    return false;
  }
  out.migration_id = get_u64(data + 1);
  out.chunk = get_u64(data + 9);
  out.epoch = get_u64(data + 17);
  out.target_backend = get_u32(data + 25);
  out.bytes = get_u64(data + 29);
  out.target_port = static_cast<std::uint16_t>(
      data[37] | (static_cast<std::uint16_t>(data[38]) << 8));
  const std::size_t host_len =
      data[39] | (static_cast<std::size_t>(data[40]) << 8);
  if (size != kMigrateHeaderSize + host_len) return false;
  out.target_host.assign(reinterpret_cast<const char*>(data + 41), host_len);
  return true;
}

bool decode_migrate_data(const std::uint8_t* data, std::size_t size,
                         MigrateDataMsg& out) {
  if (size < kMigrateDataHeaderSize ||
      data[0] != static_cast<std::uint8_t>(MsgType::kMigrateData)) {
    return false;
  }
  out.migration_id = get_u64(data + 1);
  out.chunk = get_u64(data + 9);
  out.offset = get_u64(data + 17);
  out.total_bytes = get_u64(data + 25);
  out.checksum = get_u64(data + 33);
  if (data[41] > 1) return false;
  out.last = data[41] == 1;
  const std::size_t payload_len = get_u32(data + 42);
  if (payload_len > kMaxMigrateSlice ||
      size != kMigrateDataHeaderSize + payload_len) {
    return false;
  }
  out.payload.assign(data + kMigrateDataHeaderSize,
                     data + kMigrateDataHeaderSize + payload_len);
  return true;
}

bool decode_migrate_ack(const std::uint8_t* data, std::size_t size,
                        MigrateAckMsg& out) {
  if (size != kMigrateAckPayloadSize ||
      data[0] != static_cast<std::uint8_t>(MsgType::kMigrateAck)) {
    return false;
  }
  out.migration_id = get_u64(data + 1);
  out.status = data[9];
  out.bytes = get_u64(data + 10);
  return true;
}

std::uint64_t migrate_checksum(const std::uint8_t* data,
                               std::size_t size) noexcept {
  // FNV-1a, 64-bit.
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

Decoded decode_payload(const std::uint8_t* data, std::size_t size,
                       RequestMsg& request, ResponseMsg& response,
                       StatsRequestMsg& stats, TraceRequestMsg& trace,
                       EventsRequestMsg& events) {
  if (size == 0) return Decoded::kMalformed;
  switch (static_cast<MsgType>(data[0])) {
    case MsgType::kRequest:
      // Two valid sizes: the v1 frame, and v1 + the trace-context
      // extension.  Anything else (including a partial extension) is
      // malformed.
      if (size != kRequestPayloadSize && size != kRequestTracedPayloadSize) {
        return Decoded::kMalformed;
      }
      request.request_id = get_u64(data + 1);
      request.key = get_u64(data + 9);
      if (size == kRequestTracedPayloadSize) {
        request.trace.trace_id = get_u64(data + 17);
        request.trace.parent_span_id = get_u64(data + 25);
        request.trace.flags = data[33];
      } else {
        request.trace = obs::TraceContext{};
      }
      return Decoded::kRequest;
    case MsgType::kResponse: {
      if (size != kResponsePayloadSize) return Decoded::kMalformed;
      response.request_id = get_u64(data + 1);
      const std::uint8_t status = data[9];
      if (status > static_cast<std::uint8_t>(Status::kRejectUpstreamTimeout)) {
        return Decoded::kMalformed;
      }
      response.status = static_cast<Status>(status);
      response.server = get_u32(data + 10);
      response.wait_steps = get_u32(data + 14);
      return Decoded::kResponse;
    }
    case MsgType::kStats:
      // Two valid sizes: the v1 frame, and v1 + the placement-epoch
      // extension (see encode_stats_request).
      if (size != kStatsPayloadSize && size != kStatsEpochPayloadSize) {
        return Decoded::kMalformed;
      }
      stats.flags = get_u32(data + 1);
      stats.epoch = size == kStatsEpochPayloadSize ? get_u64(data + 5) : 0;
      return Decoded::kStats;
    case MsgType::kStatsResponse:
      // The snapshot body is versioned and parsed by net/stats.hpp; here we
      // only classify, requiring room for the version word that follows the
      // type byte.
      if (size < 5) return Decoded::kMalformed;
      return Decoded::kStatsResponse;
    case MsgType::kTrace:
      if (size != kTracePayloadSize) return Decoded::kMalformed;
      trace.flags = get_u32(data + 1);
      return Decoded::kTrace;
    case MsgType::kTraceResponse:
      // Versioned span blob parsed by net/trace_wire.hpp; classify only,
      // requiring room for the version word.
      if (size < 5) return Decoded::kMalformed;
      return Decoded::kTraceResponse;
    case MsgType::kMigrate:
      // Repair-plane bodies allocate (host string, payload vector), so
      // they are classified here and parsed on demand by decode_migrate*.
      if (size < kMigrateHeaderSize) return Decoded::kMalformed;
      return Decoded::kMigrate;
    case MsgType::kMigrateData:
      if (size < kMigrateDataHeaderSize) return Decoded::kMalformed;
      return Decoded::kMigrateData;
    case MsgType::kMigrateAck:
      if (size != kMigrateAckPayloadSize) return Decoded::kMalformed;
      return Decoded::kMigrateAck;
    case MsgType::kEvents:
      if (size != kEventsPayloadSize) return Decoded::kMalformed;
      events.flags = get_u32(data + 1);
      events.cursor = get_u64(data + 5);
      return Decoded::kEvents;
    case MsgType::kEventsResponse:
      // Versioned event batch parsed by net/events_wire.hpp; classify
      // only, requiring room for the version word.
      if (size < 5) return Decoded::kMalformed;
      return Decoded::kEventsResponse;
  }
  return Decoded::kMalformed;
}

Decoded decode_payload(const std::uint8_t* data, std::size_t size,
                       RequestMsg& request, ResponseMsg& response,
                       StatsRequestMsg& stats, TraceRequestMsg& trace) {
  EventsRequestMsg scratch;
  return decode_payload(data, size, request, response, stats, trace, scratch);
}

Decoded decode_payload(const std::uint8_t* data, std::size_t size,
                       RequestMsg& request, ResponseMsg& response,
                       StatsRequestMsg& stats) {
  TraceRequestMsg trace_scratch;
  EventsRequestMsg events_scratch;
  return decode_payload(data, size, request, response, stats, trace_scratch,
                        events_scratch);
}

Decoded decode_payload(const std::uint8_t* data, std::size_t size,
                       RequestMsg& request, ResponseMsg& response) {
  StatsRequestMsg stats_scratch;
  TraceRequestMsg trace_scratch;
  EventsRequestMsg events_scratch;
  return decode_payload(data, size, request, response, stats_scratch,
                        trace_scratch, events_scratch);
}

void FrameDecoder::poison() noexcept {
  // Sticky.  The buffered bytes become unreachable (buffered() reads zero,
  // every accessor short-circuits) but are not shrunk here: a FrameView
  // returned from the same call may still point into the buffer, so the
  // storage is only reclaimed by reset() when the connection slot is
  // recycled.
  error_ = true;
}

void FrameDecoder::reset() noexcept {
  buffer_.clear();
  offset_ = 0;
  error_ = false;
}

bool FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (error_) return false;
  if (offset_ != 0 && offset_ == buffer_.size()) {
    // Fully drained: rewind with no copy, keeping the warmed-up capacity.
    buffer_.clear();
    offset_ = 0;
  } else if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
    // Compact once the consumed prefix dominates — amortized O(1) per
    // byte.  memmove within the same storage keeps capacity, so the
    // steady state appends into reserved space with no allocation.
    const std::size_t live = buffer_.size() - offset_;
    std::memmove(buffer_.data(), buffer_.data() + offset_, live);
    buffer_.resize(live);
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
  // Validate eagerly so a poisoned stream is detected at feed time, not
  // only when the caller drains frames.
  if (buffer_.size() - offset_ >= 4) {
    const std::uint32_t length = get_u32(buffer_.data() + offset_);
    if (length == 0 || length > kMaxFramePayload) {
      poison();
      return false;
    }
  }
  return true;
}

bool FrameDecoder::next_view(FrameView& out) {
  if (error_) return false;
  const std::size_t available = buffer_.size() - offset_;
  if (available < 4) return false;
  const std::uint32_t length = get_u32(buffer_.data() + offset_);
  if (length == 0 || length > kMaxFramePayload) {
    poison();
    return false;
  }
  if (available < 4 + static_cast<std::size_t>(length)) return false;
  out.data = buffer_.data() + offset_ + 4;
  out.size = length;
  offset_ += 4 + static_cast<std::size_t>(length);
  if (buffer_.size() - offset_ >= 4) {
    // Eager validation of the next frame header (see feed()).  poison()
    // leaves the storage alone, so the view we are about to return stays
    // valid even when the byte right behind it trips the error.
    const std::uint32_t next_length = get_u32(buffer_.data() + offset_);
    if (next_length == 0 || next_length > kMaxFramePayload) poison();
  }
  return true;
}

bool FrameDecoder::next(std::vector<std::uint8_t>& out) {
  FrameView view;
  if (!next_view(view)) return false;
  out.assign(view.data, view.data + view.size);
  return true;
}

}  // namespace rlb::net
