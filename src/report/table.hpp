// Text table rendering for experiment output.
//
// Every bench binary prints its results as aligned plain-text tables so that
// `for b in build/bench/*; do $b; done` yields a readable experiment report.
// The same table can be emitted as CSV or GitHub-flavoured markdown.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rlb::report {

/// A simple row/column table with string cells and typed add helpers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls append to it.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);
  Table& cell(unsigned value);
  /// Doubles are rendered with `precision` significant decimal places.
  Table& cell(double value, int precision = 4);
  /// Scientific notation, for probabilities / rejection rates.
  Table& cell_sci(double value, int precision = 2);

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t column_count() const noexcept { return headers_.size(); }

  /// Raw cell access (JSON export and tests).
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Aligned plain text (columns padded, header underlined).
  void print(std::ostream& os) const;
  /// Comma-separated values (headers first); cells containing commas are
  /// quoted.
  void print_csv(std::ostream& os) const;
  /// GitHub-flavoured markdown.
  void print_markdown(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner:  == title ==  surrounded by blank lines.
void print_section(std::ostream& os, const std::string& title);

/// Prints a short key: value line under a section.
void print_kv(std::ostream& os, const std::string& key,
              const std::string& value);

}  // namespace rlb::report
