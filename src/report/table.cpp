#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rlb::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: needs at least one column");
  }
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) row();
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(unsigned value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return cell(oss.str());
}

Table& Table::cell_sci(double value, int precision) {
  std::ostringstream oss;
  oss << std::scientific << std::setprecision(precision) << value;
  return cell(oss.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << text;
    }
    os << '\n';
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "  " << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      const std::string& text = cells[c];
      if (text.find(',') != std::string::npos) {
        os << '"' << text << '"';
      } else {
        os << text;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::print_markdown(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << ' ' << (c < cells.size() ? cells[c] : std::string()) << " |";
    }
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << " --- |";
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void print_section(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

void print_kv(std::ostream& os, const std::string& key,
              const std::string& value) {
  os << "  " << key << ": " << value << '\n';
}

}  // namespace rlb::report
