// RAII wall-clock profiling scopes.
//
// ObsTimer always measures (two steady-clock reads bound its cost), so
// benches can read elapsed_seconds() directly — this replaces the
// copy-pasted std::chrono stopwatches the experiment binaries used to
// carry.  Emission is separate from measurement: when obs is enabled the
// scope additionally lands in the trace (a Chrome "X" complete event) and,
// if a Histogram is supplied, in the probe registry (duration in ns).
#pragma once

#include "obs/probes.hpp"
#include "obs/trace.hpp"

namespace rlb::obs {

/// Times the enclosing scope; see file comment for emission semantics.
class ObsTimer {
 public:
  /// `name` must be a string literal (it is stored in trace events).
  /// `hist` (optional, not owned) receives the duration in nanoseconds.
  /// `a0` is attached to the emitted scope event (e.g. a trial index).
  explicit ObsTimer(const char* name, Histogram* hist = nullptr,
                    std::uint64_t a0 = 0)
      : name_(name), hist_(hist), a0_(a0), start_ns_(now_ns()) {}

  ~ObsTimer() { stop(); }

  ObsTimer(const ObsTimer&) = delete;
  ObsTimer& operator=(const ObsTimer&) = delete;

  /// End the scope now (idempotent) and return its duration in seconds.
  double stop() {
    if (stopped_) return elapsed_seconds_;
    stopped_ = true;
    const std::uint64_t dur_ns = now_ns() - start_ns_;
    elapsed_seconds_ = static_cast<double>(dur_ns) * 1e-9;
#if !defined(RLB_OBS_DISABLED)
    if (enabled()) {
      emit_scope(name_, start_ns_, dur_ns, a0_);
      if (hist_ != nullptr) hist_->observe(static_cast<double>(dur_ns));
    }
#endif
    return elapsed_seconds_;
  }

  /// Seconds since construction (running) or the final duration (stopped).
  double elapsed_seconds() const {
    if (stopped_) return elapsed_seconds_;
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
  }

 private:
  const char* name_;
  Histogram* hist_;
  std::uint64_t a0_;
  std::uint64_t start_ns_;
  double elapsed_seconds_ = 0.0;
  bool stopped_ = false;
};

}  // namespace rlb::obs
