// The control-plane event journal: a bounded in-process ring of typed,
// timestamped, sequence-numbered events.
//
// Data-plane telemetry (latency histograms, counters) tells you THAT an
// incident happened; the journal records WHY — the discrete control-plane
// decisions around it: membership transitions, placement-epoch commits,
// repair migration outcomes, waiting-room sheds, slow-consumer
// disconnects, safe-set violation edges, watchdog alerts.  Every event
// carries a monotonically increasing sequence number plus a
// (steady_ns, wall_ns) timestamp pair, so a scraper can resume from a
// cursor (EVENTS wire opcode, net/events_wire.hpp) and rlb_stat --events
// can clock-align journals from several processes into one merged
// timeline.
//
// Reads are non-destructive: the ring keeps the last `capacity` events and
// any number of scrapers drain independently by cursor.  When the ring
// wraps past a scraper's cursor the lost span is reported as an explicit
// dropped count — never silently skipped.
//
// Appends are mutex-guarded but allocation-free (fixed-size POD events,
// preallocated ring) and only happen on control-plane edges, which are
// rare by construction; the serving hot path never touches the journal.
// Under RLB_OBS_DISABLED append() compiles to a no-op and the journal
// stays permanently empty.
#pragma once

#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rlb::obs {

/// Event types.  Wire-stable: values ride EVENTS_RESP frames verbatim, so
/// append new types at the end and never renumber.
enum class JournalType : std::uint8_t {
  kNone = 0,
  /// Membership transitions (a0 = backend id, a1 = previous health).
  kMemberUp = 1,
  kMemberDown = 2,
  kMemberProbation = 3,
  /// A placement epoch committed / was observed (a0 = epoch, a1 = remaps
  /// in the delta; a1 = 0 for a backend observing the heartbeat piggyback).
  kEpochCommit = 4,
  /// Repair migrations (a0 = chunk, a1 = target backend id).
  kMigrateStart = 5,
  kMigrateDone = 6,
  kMigrateFail = 7,
  /// Waiting-room shed burst (a0 = shard, a1 = cumulative sheds).
  /// Rate-limited at the call site so a storm doesn't flood the ring.
  kShed = 8,
  /// Slow-consumer disconnect (a0 = connection slot, a1 = queued bytes).
  kSlowConsumer = 9,
  /// Safe-set envelope (Def 3.2) violation edge (a0 = violated level j,
  /// a1 = worst ratio in ppm) and the matching recovery edge.
  kSafeSetViolated = 10,
  kSafeSetRecovered = 11,
  /// Watchdog alert edges (a0 = rule index; detail = rule name).
  kAlertRaised = 12,
  kAlertCleared = 13,
};

const char* to_string(JournalType type) noexcept;

/// Maximum detail text per event (short identifiers: alert rule names).
inline constexpr std::size_t kJournalDetailMax = 23;

/// One journal entry.  Fixed-size POD so the ring never allocates.
struct JournalEvent {
  std::uint64_t seq = 0;        ///< 1-based, monotonic per process
  std::uint64_t steady_ns = 0;  ///< obs::now_ns() at append
  std::uint64_t wall_ns = 0;    ///< obs::wall_now_ns() at append
  JournalType type = JournalType::kNone;
  std::uint64_t a0 = 0;  ///< type-specific (see JournalType docs)
  std::uint64_t a1 = 0;
  char detail[kJournalDetailMax + 1] = {};  ///< NUL-terminated short text

  [[nodiscard]] std::string_view detail_view() const {
    return std::string_view(detail);
  }
};

/// Outcome of one cursor read.
struct JournalReadResult {
  /// Events that wrapped out of the ring before the cursor could see them.
  std::uint64_t dropped = 0;
  /// Cursor to pass on the next read (seq of the last event returned, or
  /// the resume point when nothing was returned).
  std::uint64_t next_cursor = 0;
  /// Events still in the ring beyond this batch.
  std::uint64_t remaining = 0;
};

class Journal {
 public:
  /// Default process-global capacity; ~80 bytes/event -> ~320 KiB.
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit Journal(std::size_t capacity = kDefaultCapacity);

  /// The process-global journal every subsystem appends to.
  static Journal& instance();

#if defined(RLB_OBS_DISABLED)
  void append(JournalType, std::uint64_t = 0, std::uint64_t = 0,
              std::string_view = {}) {}
#else
  /// Record one event (timestamps sampled inside).  `detail` is truncated
  /// to kJournalDetailMax bytes.  Thread-safe.
  void append(JournalType type, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
              std::string_view detail = {});
#endif

  /// Copy events with seq > cursor into `out` (appended), oldest first, at
  /// most `max`.  Non-destructive; thread-safe.  Dropped accounting covers
  /// the gap between the cursor and the oldest retained event.
  JournalReadResult read_from(std::uint64_t cursor, std::size_t max,
                              std::vector<JournalEvent>& out) const;

  /// The last `max` events (flight-recorder tail).  Appended to `out`.
  void tail(std::size_t max, std::vector<JournalEvent>& out) const;

  /// Sequence the NEXT append will get; (next_seq() - 1) events exist.
  [[nodiscard]] std::uint64_t next_seq() const;

  /// Events currently retained in the ring.
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<JournalEvent> ring_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 1;
};

/// Process-global active-alert registry: the hosting daemon publishes its
/// HealthWatchdog's active rule names after each evaluation and the STATS
/// snapshot builders (engine / router) read them back, so `rlb_stat
/// --prom` can render rlb_alert_active{rule=...} gauges without the obs
/// layer depending on net.  Thread-safe.
void set_active_alerts(std::vector<std::string> alerts);
std::vector<std::string> active_alerts();

/// Flight recorder: atomically (tmp + rename) write one JSON post-mortem
/// document — role/identity, wall+steady clock anchors, the caller's
/// rendered stats snapshot (`snapshot_json`, an already-serialized JSON
/// object; "{}" if unavailable), active alerts, and the journal tail (at
/// most `max_events`).  Returns false on I/O failure.  Safe to call from
/// the main loop on SIGQUIT or a fatal drain path — not async-signal-safe,
/// so flag the signal and call this from ordinary context.
bool write_flight_record(const std::string& path, const std::string& role,
                         std::uint32_t backend_id,
                         const std::string& snapshot_json,
                         std::size_t max_events = 512);

}  // namespace rlb::obs
