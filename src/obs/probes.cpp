#include "obs/probes.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rlb::obs {

namespace {

/// Log2 bucket of a (clamped, floored) value: 0 for v < 1, else
/// bit_width(floor(v)).  64 buckets cover the full uint64 range.
constexpr std::size_t kBucketCount = 65;

std::size_t bucket_of(double value) noexcept {
  if (!(value >= 1.0)) return 0;  // NaN and v < 1 land in bucket 0
  const double floored = std::floor(value);
  if (floored >= 18446744073709551615.0) return kBucketCount - 1;
  return static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(floored)));
}

}  // namespace

const char* to_string(ProbeKind kind) noexcept {
  switch (kind) {
    case ProbeKind::kCounter:
      return "counter";
    case ProbeKind::kGauge:
      return "gauge";
    case ProbeKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

double ProbeSnapshot::value() const noexcept {
  switch (kind) {
    case ProbeKind::kCounter:
      return sum;
    case ProbeKind::kGauge:
      return count ? max : 0.0;
    case ProbeKind::kHistogram:
      return mean();
  }
  return 0.0;
}

double ProbeSnapshot::quantile(double q) const noexcept {
  if (buckets.empty() || count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank && buckets[b] > 0) {
      // Upper bound of bucket b: 0 -> values < 1; b -> values < 2^b.
      return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
    }
  }
  return max;
}

void ProbeRegistry::Cell::add(double value, bool histogram) {
  ++count;
  sum += value;
  min = std::min(min, value);
  max = std::max(max, value);
  if (histogram) {
    if (buckets.empty()) buckets.assign(kBucketCount, 0);
    ++buckets[bucket_of(value)];
  }
}

void ProbeRegistry::Cell::merge_into(Cell& target) const {
  if (count == 0) return;
  target.count += count;
  target.sum += sum;
  target.min = std::min(target.min, min);
  target.max = std::max(target.max, max);
  if (!buckets.empty()) {
    if (target.buckets.empty()) target.buckets.assign(kBucketCount, 0);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      target.buckets[b] += buckets[b];
    }
  }
}

ProbeRegistry& ProbeRegistry::instance() {
  // Intentionally leaked: worker threads retiring their shards at thread
  // exit must find the registry alive regardless of static-destructor
  // ordering across translation units.
  static ProbeRegistry* registry = new ProbeRegistry();
  return *registry;
}

std::size_t ProbeRegistry::register_probe(const std::string& name,
                                          ProbeKind kind) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const std::size_t id = probes_.size();
  probes_.emplace_back(name, kind);
  index_.emplace(name, id);
  return id;
}

struct ProbeRegistry::ThreadShardHolder {
  Shard shard;
  ProbeRegistry* registry = nullptr;
  ~ThreadShardHolder() {
    if (registry != nullptr) registry->retire(&shard);
  }
};

ProbeRegistry::Shard& ProbeRegistry::local_shard() {
  thread_local ThreadShardHolder holder;
  if (holder.registry == nullptr) {
    holder.registry = this;
    std::lock_guard lock(mutex_);
    live_.push_back(&holder.shard);
  }
  return holder.shard;
}

void ProbeRegistry::retire(Shard* shard) {
  std::lock_guard lock(mutex_);
  for (std::size_t id = 0; id < shard->cells.size(); ++id) {
    if (retired_.cells.size() <= id) retired_.cells.resize(id + 1);
    shard->cells[id].merge_into(retired_.cells[id]);
  }
  live_.erase(std::remove(live_.begin(), live_.end(), shard), live_.end());
}

void ProbeRegistry::record(std::size_t id, double value, bool histogram) {
  Shard& shard = local_shard();
  if (shard.cells.size() <= id) shard.cells.resize(id + 1);
  shard.cells[id].add(value, histogram);
}

void ProbeRegistry::merge_shard_locked(const Shard& shard,
                                       std::vector<Cell>& into) const {
  for (std::size_t id = 0; id < shard.cells.size() && id < into.size();
       ++id) {
    shard.cells[id].merge_into(into[id]);
  }
}

std::vector<ProbeSnapshot> ProbeRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Cell> merged(probes_.size());
  merge_shard_locked(retired_, merged);
  for (const Shard* shard : live_) merge_shard_locked(*shard, merged);

  std::vector<ProbeSnapshot> out;
  out.reserve(probes_.size());
  for (std::size_t id = 0; id < probes_.size(); ++id) {
    ProbeSnapshot snap;
    snap.name = probes_[id].first;
    snap.kind = probes_[id].second;
    snap.count = merged[id].count;
    snap.sum = merged[id].sum;
    snap.min = merged[id].min;
    snap.max = merged[id].max;
    snap.buckets = std::move(merged[id].buckets);
    out.push_back(std::move(snap));
  }
  return out;
}

bool ProbeRegistry::find(const std::string& name, ProbeSnapshot& out) const {
  for (ProbeSnapshot& snap : snapshot()) {
    if (snap.name == name) {
      out = std::move(snap);
      return true;
    }
  }
  return false;
}

std::size_t ProbeRegistry::probe_count() const {
  std::lock_guard lock(mutex_);
  return probes_.size();
}

void ProbeRegistry::reset() {
  std::lock_guard lock(mutex_);
  retired_ = Shard{};
  for (Shard* shard : live_) shard->cells.clear();
}

report::Table ProbeRegistry::to_table() const {
  report::Table table({"probe", "kind", "count", "value", "mean", "min",
                       "max", "p50", "p99"});
  for (const ProbeSnapshot& snap : snapshot()) {
    if (snap.count == 0) continue;
    table.row()
        .cell(snap.name)
        .cell(to_string(snap.kind))
        .cell(snap.count)
        .cell(snap.value())
        .cell(snap.mean())
        .cell(snap.min)
        .cell(snap.max)
        .cell(snap.kind == ProbeKind::kHistogram ? snap.quantile(0.50) : 0.0)
        .cell(snap.kind == ProbeKind::kHistogram ? snap.quantile(0.99) : 0.0);
  }
  return table;
}

}  // namespace rlb::obs
