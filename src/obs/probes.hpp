// Probe registry: named counters / gauges / histograms with per-thread
// sharded storage.
//
// Policies and the simulator register probes by dotted name
// ("greedy.choice_gap", "cuckoo.kick_chain_len", "pqueue.arrivals_per_phase",
// "safety.worst_ratio") and record into a thread-local shard — no
// cross-thread contention on the hot path.  snapshot() merges live shards
// plus the folded totals of exited threads, so values recorded inside
// parallel::run_trials worker threads aggregate correctly.
//
// Recording is gated on obs::enabled() inside the handle classes: probes
// off costs one predictable branch per site.  RLB_OBS_DISABLED compiles the
// recording away entirely.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "report/table.hpp"

namespace rlb::obs {

enum class ProbeKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(ProbeKind kind) noexcept;

/// Merged view of one probe across all threads.
struct ProbeSnapshot {
  std::string name;
  ProbeKind kind = ProbeKind::kCounter;
  /// Number of record() calls.
  std::uint64_t count = 0;
  /// Sum of recorded values (the counter's value).
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  /// Histograms only: log2 buckets — buckets[b] counts values v with
  /// bit_width(floor(max(v,0))) == b, i.e. bucket 0 holds v < 1, bucket b
  /// holds v in [2^(b-1), 2^b).
  std::vector<std::uint64_t> buckets;

  /// Headline value: counter -> sum, gauge -> max, histogram -> mean.
  double value() const noexcept;
  double mean() const noexcept { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Histogram quantile estimate (upper bound of the q-quantile's bucket);
  /// 0 when empty or not a histogram.
  double quantile(double q) const noexcept;
};

/// Process-wide registry.  Probe ids are stable for the process lifetime;
/// handles (Counter/Gauge/Histogram) cache the id so steady-state recording
/// never touches the name map.
class ProbeRegistry {
 public:
  /// The singleton (immortal: never destroyed, so thread-exit hooks from
  /// late-dying pool threads stay safe).
  static ProbeRegistry& instance();

  /// Intern `name`, returning its id.  Re-registering an existing name
  /// returns the same id (the first registration's kind wins).
  std::size_t register_probe(const std::string& name, ProbeKind kind);

  /// Record `value` against probe `id` in the calling thread's shard.
  /// Lock-free: touches only thread-local storage.  `histogram` selects
  /// bucketed accumulation; the handle classes pass their own kind so the
  /// hot path never consults the name table.
  void record(std::size_t id, double value, bool histogram = false);

  /// Merged snapshots of every registered probe, in registration order.
  std::vector<ProbeSnapshot> snapshot() const;

  /// Snapshot of one probe by name; false if unregistered.
  bool find(const std::string& name, ProbeSnapshot& out) const;

  /// Render all probes with at least one recording as a report::Table
  /// (columns: probe, kind, count, value, mean, min, max, p50, p99).
  report::Table to_table() const;

  std::size_t probe_count() const;

  /// Zero every probe (tests).  Callers must ensure no thread is recording
  /// concurrently.
  void reset();

 private:
  struct Cell {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::vector<std::uint64_t> buckets;  // histograms only, lazily sized

    void add(double value, bool histogram);
    void merge_into(Cell& target) const;
  };
  struct Shard {
    std::vector<Cell> cells;
  };
  struct ThreadShardHolder;

  ProbeRegistry() = default;

  Shard& local_shard();
  void retire(Shard* shard);
  void merge_shard_locked(const Shard& shard, std::vector<Cell>& into) const;

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, ProbeKind>> probes_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<Shard*> live_;
  Shard retired_;
};

// -- Cached-id handles ---------------------------------------------------

/// Monotonically increasing named counter.
class Counter {
 public:
  explicit Counter(const char* name)
      : id_(ProbeRegistry::instance().register_probe(name,
                                                     ProbeKind::kCounter)) {}
  /// Dynamic-name form (e.g. per-shard "engine.shard3.ticks").
  explicit Counter(const std::string& name)
      : id_(ProbeRegistry::instance().register_probe(name,
                                                     ProbeKind::kCounter)) {}
  void add(std::uint64_t n = 1) {
#if !defined(RLB_OBS_DISABLED)
    if (enabled()) {
      ProbeRegistry::instance().record(id_, static_cast<double>(n), false);
    }
#else
    (void)n;
#endif
  }

 private:
  std::size_t id_;
};

/// Last-value probe; the merged snapshot reports min/max over all sets.
class Gauge {
 public:
  explicit Gauge(const char* name)
      : id_(ProbeRegistry::instance().register_probe(name,
                                                     ProbeKind::kGauge)) {}
  explicit Gauge(const std::string& name)
      : id_(ProbeRegistry::instance().register_probe(name,
                                                     ProbeKind::kGauge)) {}
  void set(double value) {
#if !defined(RLB_OBS_DISABLED)
    if (enabled()) ProbeRegistry::instance().record(id_, value, false);
#else
    (void)value;
#endif
  }

 private:
  std::size_t id_;
};

/// Log2-bucketed distribution probe.
class Histogram {
 public:
  explicit Histogram(const char* name)
      : id_(ProbeRegistry::instance().register_probe(
            name, ProbeKind::kHistogram)) {}
  explicit Histogram(const std::string& name)
      : id_(ProbeRegistry::instance().register_probe(
            name, ProbeKind::kHistogram)) {}
  void observe(double value) {
#if !defined(RLB_OBS_DISABLED)
    if (enabled()) ProbeRegistry::instance().record(id_, value, true);
#else
    (void)value;
#endif
  }

 private:
  std::size_t id_;
};

}  // namespace rlb::obs
