// Umbrella header for the observability layer: event tracing (trace.hpp),
// the probe registry (probes.hpp), and RAII profiling scopes (timer.hpp).
//
// Instrumented components include this one header.  Everything is gated on
// obs::enabled() (one relaxed atomic load when off) and compiles out
// entirely under RLB_OBS_DISABLED (CMake: -DRLB_OBS_ENABLED=OFF).
#pragma once

#include "obs/probes.hpp"   // IWYU pragma: export
#include "obs/timer.hpp"    // IWYU pragma: export
#include "obs/trace.hpp"    // IWYU pragma: export
