// Windowed metrics: a ring of per-window histogram/counter deltas.
//
// Every histogram the serving stack exposed before this existed was
// lifetime-cumulative, so a p99 spike during a 5-second incident drowns
// in hours of quiet samples.  A WindowedAggregator keeps the last ~N
// seconds as N one-second slots; writers record into the current slot
// with relaxed atomics (same discipline as the engine's shard counters —
// no locks, no ordering, telemetry-grade accuracy) and readers fold the
// live slots into one delta histogram covering the trailing window.
//
// Rotation is lazy and writer-driven: the first writer to touch a slot
// whose window index moved on claims it with a CAS and zeroes it.  A
// sample racing that reset can be lost, and a reader can observe a slot
// mid-reset — both are acceptable for advisory telemetry and keep the
// hot path to a handful of relaxed atomic adds.
//
// The 32 log2-microsecond buckets deliberately match net::LatencyStats so
// a window snapshot copies straight into a STATS v5 windowed histogram.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>

#include "obs/trace.hpp"

namespace rlb::obs {

class WindowedAggregator {
 public:
  static constexpr std::size_t kBuckets = 32;
  /// Named counter slots; meaning is the owner's (the engine uses
  /// submitted/completed/rejected, the router forwarded/ok/rejected).
  static constexpr std::size_t kCounters = 4;

  explicit WindowedAggregator(std::size_t windows = 10,
                              std::uint64_t window_ns = 1'000'000'000)
      : slots_(std::make_unique<Slot[]>(windows == 0 ? 1 : windows)),
        nslots_(windows == 0 ? 1 : windows),
        window_ns_(window_ns == 0 ? 1 : window_ns) {}

  void observe_us(std::uint64_t us) { observe_us(us, now_ns()); }

  void observe_us(std::uint64_t us, std::uint64_t now) {
    Slot& slot = slot_for(now);
    slot.count.fetch_add(1, std::memory_order_relaxed);
    slot.sum_us.fetch_add(us, std::memory_order_relaxed);
    std::uint64_t prev = slot.max_us.load(std::memory_order_relaxed);
    while (us > prev && !slot.max_us.compare_exchange_weak(
                            prev, us, std::memory_order_relaxed)) {
    }
    std::size_t bucket =
        us <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(us) - 1);
    if (bucket >= kBuckets) bucket = kBuckets - 1;
    slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  void add(std::size_t counter, std::uint64_t delta = 1) {
    add(counter, delta, now_ns());
  }

  void add(std::size_t counter, std::uint64_t delta, std::uint64_t now) {
    if (counter >= kCounters) return;
    slot_for(now).counters[counter].fetch_add(delta,
                                              std::memory_order_relaxed);
  }

  /// The trailing window folded into one delta histogram + counter set.
  struct Snapshot {
    std::uint64_t windows = 0;  ///< distinct slots folded (incl. partial)
    std::uint64_t span_ms = 0;  ///< wall time the fold covers
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::uint64_t max_us = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
    std::array<std::uint64_t, kCounters> counters{};
  };

  [[nodiscard]] Snapshot read() const { return read(now_ns()); }

  [[nodiscard]] Snapshot read(std::uint64_t now) const {
    Snapshot out;
    const std::uint64_t current = now / window_ns_;
    bool current_included = false;
    for (std::size_t i = 0; i < nslots_; ++i) {
      const Slot& slot = slots_[i];
      const std::uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
      const std::uint64_t window = epoch == 0 ? 0 : epoch - 1;
      // Fold only slots from the trailing nslots_ windows; a stale slot
      // (process idle longer than the ring spans) is dead history.
      if (epoch == 0 || window > current || current - window >= nslots_) {
        continue;
      }
      ++out.windows;
      if (window == current) current_included = true;
      out.count += slot.count.load(std::memory_order_relaxed);
      out.sum_us += slot.sum_us.load(std::memory_order_relaxed);
      const std::uint64_t m = slot.max_us.load(std::memory_order_relaxed);
      if (m > out.max_us) out.max_us = m;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        out.buckets[b] += slot.buckets[b].load(std::memory_order_relaxed);
      }
      for (std::size_t c = 0; c < kCounters; ++c) {
        out.counters[c] += slot.counters[c].load(std::memory_order_relaxed);
      }
    }
    if (out.windows > 0) {
      std::uint64_t span_ns = out.windows * window_ns_;
      if (current_included) {
        // The newest slot is partial: count only its elapsed fraction.
        span_ns -= window_ns_ - (now - current * window_ns_);
      }
      out.span_ms = span_ns / 1'000'000;
    }
    return out;
  }

  [[nodiscard]] std::uint64_t window_ns() const { return window_ns_; }
  [[nodiscard]] std::size_t windows() const { return nslots_; }

 private:
  struct Slot {
    /// Window index + 1 of the data this slot holds; 0 = never written.
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_us{0};
    std::atomic<std::uint64_t> max_us{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::array<std::atomic<std::uint64_t>, kCounters> counters{};
  };

  Slot& slot_for(std::uint64_t now) {
    const std::uint64_t window = now / window_ns_;
    Slot& slot = slots_[window % nslots_];
    const std::uint64_t want = window + 1;
    std::uint64_t have = slot.epoch.load(std::memory_order_acquire);
    if (have != want &&
        slot.epoch.compare_exchange_strong(have, want,
                                           std::memory_order_acq_rel)) {
      // This writer claimed the recycled slot; zero last window's data.
      slot.count.store(0, std::memory_order_relaxed);
      slot.sum_us.store(0, std::memory_order_relaxed);
      slot.max_us.store(0, std::memory_order_relaxed);
      for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
      for (auto& c : slot.counters) c.store(0, std::memory_order_relaxed);
    }
    return slot;
  }

  std::unique_ptr<Slot[]> slots_;
  std::size_t nslots_;
  std::uint64_t window_ns_;
};

}  // namespace rlb::obs
