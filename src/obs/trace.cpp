#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <set>
#include <string>

namespace rlb::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_detail{false};
}  // namespace detail

namespace {

std::atomic<TraceSink*> g_sink{nullptr};

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {EventKind::kSubmit, "submit"},
    {EventKind::kRoute, "route"},
    {EventKind::kEnqueue, "enqueue"},
    {EventKind::kServe, "serve"},
    {EventKind::kReject, "reject"},
    {EventKind::kFlush, "flush"},
    {EventKind::kPhaseBegin, "phase-begin"},
    {EventKind::kPArrival, "p-arrival"},
    {EventKind::kKickChain, "kick-chain"},
    {EventKind::kStashHit, "stash-hit"},
    {EventKind::kAssignFail, "assign-fail"},
    {EventKind::kMigration, "migration"},
    {EventKind::kFault, "fault"},
    {EventKind::kNet, "net"},
    {EventKind::kEngine, "engine"},
    {EventKind::kScope, "scope"},
    {EventKind::kCounter, "counter"},
};

}  // namespace

const char* to_string(EventKind kind) noexcept {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

bool kind_from_string(const std::string& s, EventKind& out) noexcept {
  for (const KindName& entry : kKindNames) {
    if (s == entry.name) {
      out = entry.kind;
      return true;
    }
  }
  return false;
}

RingTraceCollector::RingTraceCollector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void RingTraceCollector::record(const TraceEvent& event) {
  std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

std::vector<TraceEvent> RingTraceCollector::events() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest-first: when the ring has wrapped, the oldest lives at next_.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t RingTraceCollector::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t RingTraceCollector::dropped() const {
  std::lock_guard lock(mutex_);
  return recorded_ - ring_.size();
}

void RingTraceCollector::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_detail(bool on) noexcept {
  detail::g_detail.store(on, std::memory_order_relaxed);
}

void set_sink(TraceSink* sink) noexcept {
  g_sink.store(sink, std::memory_order_release);
}

TraceSink* sink() noexcept { return g_sink.load(std::memory_order_acquire); }

std::uint64_t now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void emit(EventKind kind, const char* name, std::uint64_t a0,
          std::uint64_t a1) {
  TraceSink* s = sink();
  if (s == nullptr) return;
  TraceEvent event;
  event.kind = kind;
  event.name = name;
  event.ts_ns = now_ns();
  event.a0 = a0;
  event.a1 = a1;
  event.tid = thread_index();
  s->record(event);
}

void emit_scope(const char* name, std::uint64_t start_ns,
                std::uint64_t dur_ns, std::uint64_t a0) {
  TraceSink* s = sink();
  if (s == nullptr) return;
  TraceEvent event;
  event.kind = EventKind::kScope;
  event.name = name;
  event.ts_ns = start_ns;
  event.dur_ns = dur_ns;
  event.a0 = a0;
  event.tid = thread_index();
  s->record(event);
}

// -- Exporters -----------------------------------------------------------

namespace {

/// Escape for JSON string context (names are ASCII identifiers in practice;
/// this keeps the exporter safe for arbitrary input anyway).
void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
      os << buffer;
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

void write_jsonl(const std::vector<TraceEvent>& events, std::ostream& os) {
  for (const TraceEvent& e : events) {
    os << "{\"kind\":\"" << to_string(e.kind) << "\",\"name\":";
    write_json_string(os, e.name);
    os << ",\"ts_ns\":" << e.ts_ns << ",\"dur_ns\":" << e.dur_ns
       << ",\"a0\":" << e.a0 << ",\"a1\":" << e.a1 << ",\"tid\":" << e.tid
       << "}\n";
  }
}

namespace {

/// Extract the string value of `key` from a single-line JSON object emitted
/// by write_jsonl (flat object, no nested strings containing braces).
bool jsonl_string_field(const std::string& line, const std::string& key,
                        std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::string value;
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      value.push_back(line[++i]);
      continue;
    }
    if (c == '"') {
      out = value;
      return true;
    }
    value.push_back(c);
  }
  return false;
}

bool jsonl_u64_field(const std::string& line, const std::string& key,
                     std::uint64_t& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* p = line.c_str() + at + needle.size();
  char* end = nullptr;
  out = std::strtoull(p, &end, 10);
  return end != p;
}

/// Names parsed from JSONL must outlive the returned events; intern them.
const char* intern_name(const std::string& name) {
  static std::mutex mutex;
  static std::set<std::string> pool;
  std::lock_guard lock(mutex);
  return pool.insert(name).first->c_str();
}

}  // namespace

std::vector<TraceEvent> parse_jsonl(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::string kind_s;
    std::string name;
    TraceEvent e;
    if (!jsonl_string_field(line, "kind", kind_s) ||
        !kind_from_string(kind_s, e.kind)) {
      continue;
    }
    if (!jsonl_string_field(line, "name", name)) continue;
    e.name = intern_name(name);
    std::uint64_t tid = 0;
    if (!jsonl_u64_field(line, "ts_ns", e.ts_ns)) continue;
    jsonl_u64_field(line, "dur_ns", e.dur_ns);
    jsonl_u64_field(line, "a0", e.a0);
    jsonl_u64_field(line, "a1", e.a1);
    jsonl_u64_field(line, "tid", tid);
    e.tid = static_cast<std::uint32_t>(tid);
    events.push_back(e);
  }
  return events;
}

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ',';
    first = false;
    // Timestamps are microseconds in the trace-event format; keep ns
    // resolution with a fractional part.
    const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    os << "\n{\"name\":";
    write_json_string(os, e.name);
    os << ",\"cat\":\"" << to_string(e.kind) << "\",\"pid\":1,\"tid\":"
       << e.tid << ",\"ts\":" << ts_us;
    switch (e.kind) {
      case EventKind::kScope:
        os << ",\"ph\":\"X\",\"dur\":"
           << static_cast<double>(e.dur_ns) / 1000.0;
        break;
      case EventKind::kCounter:
      case EventKind::kPArrival:
        os << ",\"ph\":\"C\"";
        break;
      default:
        os << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
    }
    if (e.kind == EventKind::kCounter || e.kind == EventKind::kPArrival) {
      // Counter tracks plot args values; a0 identifies the series (e.g.
      // which P_j), a1 carries the sampled value.
      os << ",\"args\":{\"value\":" << e.a1 << ",\"key\":" << e.a0 << "}";
    } else {
      os << ",\"args\":{\"a0\":" << e.a0 << ",\"a1\":" << e.a1 << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

// -- Global trace file ---------------------------------------------------

namespace {

struct GlobalTraceFile {
  std::unique_ptr<RingTraceCollector> collector;
  std::string path;
  TraceFormat format = TraceFormat::kChrome;
  bool atexit_registered = false;
};

GlobalTraceFile& global_trace_file() {
  static GlobalTraceFile g;
  return g;
}

std::mutex g_trace_file_mutex;

void flush_trace_at_exit() {
  // Only registered once a trace file is configured, so a false return here
  // is a genuine write failure, not "nothing to flush".
  if (!flush_trace()) {
    std::fprintf(stderr, "rlb: failed to write trace file\n");
  }
}

}  // namespace

void set_trace_file(const std::string& path) {
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  set_trace_file(path, jsonl ? TraceFormat::kJsonl : TraceFormat::kChrome);
}

void set_trace_file(const std::string& path, TraceFormat format,
                    std::size_t ring_capacity) {
  std::lock_guard lock(g_trace_file_mutex);
  GlobalTraceFile& g = global_trace_file();
  if (!g.collector || g.collector->capacity() != ring_capacity) {
    set_sink(nullptr);
    g.collector = std::make_unique<RingTraceCollector>(ring_capacity);
  }
  g.path = path;
  g.format = format;
  set_sink(g.collector.get());
  set_enabled(true);
  if (!g.atexit_registered) {
    g.atexit_registered = true;
    std::atexit(&flush_trace_at_exit);
  }
}

bool flush_trace() {
  std::lock_guard lock(g_trace_file_mutex);
  GlobalTraceFile& g = global_trace_file();
  if (!g.collector || g.path.empty()) return false;
  // Write-to-temp + atomic rename: flushing used to truncate the target in
  // place, so a reader racing the flush (or a kill mid-write) could observe
  // a file cut off mid-record.  With the rename, the target either holds
  // the previous complete flush or the new one — never a prefix.
  const std::string tmp = g.path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    const std::vector<TraceEvent> events = g.collector->events();
    if (g.format == TraceFormat::kJsonl) {
      write_jsonl(events, out);
    } else {
      write_chrome_trace(events, out);
    }
    if (!out.good()) return false;
  }
  return std::rename(tmp.c_str(), g.path.c_str()) == 0;
}

}  // namespace rlb::obs
