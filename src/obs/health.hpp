// The alerting watchdog: edge-triggered health rules over windowed
// signals.
//
// A daemon (rlbd / rlb_router) feeds one HealthSample per evaluation tick
// (~1 s) from its own snapshot; the watchdog turns sustained breaches
// into exactly one ALERT_RAISED journal event and sustained recovery into
// exactly one ALERT_CLEARED — hysteresis on both edges, so a steady
// signal never flaps.  Active rule names are published for the STATS
// snapshot (rlb_alert_active{rule=...} Prometheus gauges) via
// obs::set_active_alerts().
//
// Rules (names are wire/metric-stable identifiers):
//   backend_down    servers/backends marked down            (fast: 1 tick)
//   safe_set        Def 3.2 worst ratio > 1 sustained
//   p99_jump        windowed p99 >> trailing baseline EMA
//   heartbeat_flap  down-transitions accumulating too fast
//   repair_stall    chunks pending but no migration completing
//   slow_consumer   outbound-overflow disconnect storm
//
// Pure logic over explicit samples — no clocks, no globals except the
// journal sink — so tests drive it deterministically.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/journal.hpp"

namespace rlb::obs {

/// One evaluation tick's worth of health signals, extracted from the
/// node's own stats snapshot.  Fields a role cannot produce stay zero.
struct HealthSample {
  /// Def 3.2 worst observed/bound ratio (backend).
  double safe_worst_ratio = 0.0;
  /// Windowed (not lifetime) p99 latency in microseconds.
  std::uint64_t win_p99_us = 0;
  /// Down servers (backend) or down backends (router); gauge.
  std::uint64_t down_count = 0;
  /// Cumulative down transitions (router heartbeat plane).
  std::uint64_t transitions_down = 0;
  /// Repair gauge + cumulative completions (router with repair enabled).
  std::uint64_t repair_pending = 0;
  std::uint64_t repair_done = 0;
  /// Cumulative slow-consumer disconnects (net server).
  std::uint64_t slow_consumer_drops = 0;
};

struct HealthWatchdogConfig {
  /// Consecutive breaching / healthy ticks before raise / clear
  /// (backend_down overrides both to 1 — a down node is an incident on
  /// the first tick and recovery should clear as fast).
  unsigned raise_after = 3;
  unsigned clear_after = 3;
  /// p99_jump: breach when windowed p99 > factor x trailing baseline and
  /// above the absolute floor (filters noise on idle nodes).
  double p99_jump_factor = 8.0;
  std::uint64_t p99_min_us = 2000;
  /// heartbeat_flap: breach when >= threshold down-transitions landed
  /// within the trailing flap_window ticks.
  std::uint64_t flap_threshold = 3;
  unsigned flap_window = 60;
  /// repair_stall: breach after this many ticks with chunks pending and
  /// no migration completing.
  unsigned repair_stall_after = 10;
  /// slow_consumer: breach when >= threshold disconnects landed within
  /// one tick.
  std::uint64_t slow_consumer_threshold = 4;
};

class HealthWatchdog {
 public:
  explicit HealthWatchdog(HealthWatchdogConfig config = {},
                          Journal* journal = nullptr);

  /// Evaluate every rule against one sample; emits raise/clear journal
  /// events on edges.  Call from one thread (the daemon main loop).
  void evaluate(const HealthSample& sample);

  /// Names of currently active (raised, not yet cleared) rules.
  [[nodiscard]] std::vector<std::string> active() const;

  /// Total raise edges so far (tests).
  [[nodiscard]] std::uint64_t raised_total() const { return raised_total_; }

 private:
  struct Rule {
    const char* name = "";
    bool active = false;
    unsigned breach_streak = 0;
    unsigned ok_streak = 0;
    unsigned raise_after = 0;  // 0 = use config default
    unsigned clear_after = 0;
  };

  void step_rule(std::size_t index, bool breached);

  HealthWatchdogConfig config_;
  Journal* journal_;
  std::vector<Rule> rules_;
  std::uint64_t raised_total_ = 0;

  // p99_jump baseline: EMA of the windowed p99 sampled while healthy.
  double p99_baseline_us_ = 0.0;
  // heartbeat_flap: trailing per-tick deltas of transitions_down.
  std::deque<std::uint64_t> flap_deltas_;
  std::uint64_t flap_sum_ = 0;
  std::uint64_t last_transitions_down_ = 0;
  bool have_transitions_ = false;
  // repair_stall bookkeeping.
  std::uint64_t last_repair_done_ = 0;
  unsigned repair_stall_ticks_ = 0;
  // slow_consumer delta base.
  std::uint64_t last_slow_drops_ = 0;
  bool have_slow_drops_ = false;
};

}  // namespace rlb::obs
