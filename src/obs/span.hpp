// Distributed-tracing spans: wire-propagated context + per-thread flight
// recorders.
//
// The cluster data plane spans three processes (loadgen -> rlb_router ->
// rlbd -> engine shard), and a slow or rejected request is only explainable
// when each hop's contribution is measured separately.  This header adds
// the two pieces the event-trace layer (trace.hpp) does not have:
//
//   * TraceContext — the 17 bytes a REQUEST frame may carry (64-bit trace
//     id, parent span id, sampling flags).  Always compiled in, even under
//     RLB_OBS_DISABLED: wire compatibility must not depend on the build
//     flavour.  A zero trace_id means "no context" and costs zero bytes on
//     the wire (net/wire.hpp only appends the extension when present).
//
//   * SpanRecorder — a process-global flight recorder of completed spans.
//     Each recording thread owns a bounded ring guarded by its own mutex
//     (uncontended in the common case: the only other locker is a rare
//     TRACE scrape), so recording never contends across worker shards.
//
// Sampling is tail-based at the recorder: a span is kept when its context
// carries the sampled flag (head sampling, decided once by the client and
// propagated hop to hop so trees stay complete), when it ended in a
// rejection/error (`cause != 0`), or when it ran longer than the slow
// budget (an SLA-shaped p99 budget; 0 disables).  Everything else is
// counted and dropped, which is what keeps sampling-off overhead under the
// obs layer's <2% bar: with no contexts on the wire, record() is never
// reached at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rlb::obs {

/// TraceContext.flags bit 0: the originator elected this request for
/// sampling; every hop keeps its spans regardless of local policy.
inline constexpr std::uint8_t kSpanSampled = 0x01;

/// The trace context a request carries across process hops.  POD; a zero
/// trace_id means "no context" (never emitted by an originator).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint8_t flags = 0;

  constexpr bool valid() const noexcept { return trace_id != 0; }
  constexpr bool sampled() const noexcept {
    return (flags & kSpanSampled) != 0;
  }
};

/// One completed span.  `name` must be a string literal (or otherwise
/// outlive the recorder), like TraceEvent.  Timestamps are obs::now_ns()
/// — steady-clock ns since *this* process started; cross-process merging
/// needs a clock anchor (see net/trace_wire.hpp and rlb_trace).
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  /// Waiting-room / pending depth observed at admission (site-specific).
  std::uint64_t queue_depth = 0;
  const char* name = "";
  /// Site-specific topology id: engine shard index, router backend id.
  std::uint32_t shard = 0;
  std::uint32_t tid = 0;  ///< dense per-process thread index
  std::uint8_t flags = 0;
  /// Terminal cause as a net::Status byte (0 = served OK); non-zero spans
  /// are always kept (tail sampling of failures).
  std::uint8_t cause = 0;
};

/// Process-global span flight recorder.
class SpanRecorder {
 public:
  static SpanRecorder& instance();

  /// Record a completed span, applying the keep policy (see file comment).
  /// Dropped spans are counted in filtered().
  void record(const Span& span);

  /// Remove and return up to `max_spans` oldest-first spans (per ring;
  /// rings are visited in registration order).  Used by the TRACE wire
  /// channel to drain buffers in frame-sized chunks.
  std::vector<Span> drain(std::size_t max_spans);

  /// Copy every buffered span without removing it.
  std::vector<Span> collect() const;

  /// Spans still buffered across all thread rings.
  std::size_t size() const;

  /// Spans evicted because a ring was full.
  std::uint64_t dropped() const;
  /// Spans dropped by the keep policy (unsampled, fast, served OK).
  std::uint64_t filtered() const noexcept {
    return filtered_.load(std::memory_order_relaxed);
  }

  /// Keep any span whose duration is >= `ns` regardless of sampling
  /// (0 disables the slow path of the keep policy).
  void set_slow_budget_ns(std::uint64_t ns) noexcept {
    slow_budget_ns_.store(ns, std::memory_order_relaxed);
  }
  std::uint64_t slow_budget_ns() const noexcept {
    return slow_budget_ns_.load(std::memory_order_relaxed);
  }

  /// Per-thread ring capacity for rings created after the call.
  void set_ring_capacity(std::size_t capacity) noexcept;

  /// Drop all buffered spans and reset counters (tests).
  void clear();

 private:
  struct Ring {
    mutable std::mutex mutex;
    std::deque<Span> spans;
    std::size_t capacity = 0;
    std::uint64_t overwritten = 0;
  };

  SpanRecorder() = default;
  Ring& local_ring();

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::size_t> ring_capacity_{1u << 14};
  std::atomic<std::uint64_t> slow_budget_ns_{0};
  std::atomic<std::uint64_t> filtered_{0};
};

// -- Global switch --------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_spans_enabled;
}  // namespace detail

/// True when span recording sites should emit.  One relaxed load; always
/// false (and free) under RLB_OBS_DISABLED.
inline bool span_recording_enabled() noexcept {
#if defined(RLB_OBS_DISABLED)
  return false;
#else
  return detail::g_spans_enabled.load(std::memory_order_relaxed);
#endif
}

/// Enable/disable span recording (independent of the event-trace switch:
/// a daemon serves TRACE scrapes even when --trace is off).
void set_span_recording(bool on) noexcept;

/// Process-unique-ish 64-bit id for a new span or trace: a per-process
/// random base (pid + wall clock, splitmix-scrambled) plus an atomic
/// counter.  Never returns 0.
std::uint64_t next_span_id() noexcept;

// -- JSONL persistence ----------------------------------------------------
//
// One object per line.  When `steady_ns`/`wall_ns` are non-zero an anchor
// line is written first:
//   {"anchor":1,"steady_ns":...,"wall_ns":...}
// pairing this process's steady epoch with the wall clock so offline
// mergers (rlb_trace) can place the spans on a shared time axis.

void write_spans_jsonl(const std::vector<Span>& spans, std::ostream& os,
                       std::uint64_t steady_ns = 0, std::uint64_t wall_ns = 0);

/// Parse write_spans_jsonl output.  Unparseable lines are skipped; names
/// are interned for the process lifetime.  When an anchor line is present
/// its pair is stored in `anchor_steady_ns`/`anchor_wall_ns` (left
/// untouched otherwise).
std::vector<Span> parse_spans_jsonl(std::istream& is,
                                    std::uint64_t& anchor_steady_ns,
                                    std::uint64_t& anchor_wall_ns);

/// Wall-clock ns since the Unix epoch (system_clock) — the other half of
/// a clock anchor.
std::uint64_t wall_now_ns() noexcept;

// -- Global span file ------------------------------------------------------

/// Arrange for buffered spans to be written (with an anchor line) to
/// `path` at flush_spans() and at process exit.  Enables span recording.
void set_span_file(const std::string& path);

/// Write the span file now.  The write is atomic: a temp file next to the
/// target is renamed over it, so readers never observe a truncated
/// mid-record file (and neither does a crash between write and rename
/// corrupt a previous complete flush).  Returns false without a configured
/// path or on I/O failure.
bool flush_spans();

}  // namespace rlb::obs
