#include "obs/health.hpp"

#include <algorithm>

namespace rlb::obs {

namespace {

enum RuleIndex : std::size_t {
  kBackendDown = 0,
  kSafeSet,
  kP99Jump,
  kHeartbeatFlap,
  kRepairStall,
  kSlowConsumer,
  kRuleCount,
};

}  // namespace

HealthWatchdog::HealthWatchdog(HealthWatchdogConfig config, Journal* journal)
    : config_(config),
      journal_(journal != nullptr ? journal : &Journal::instance()) {
  rules_.resize(kRuleCount);
  rules_[kBackendDown].name = "backend_down";
  rules_[kBackendDown].raise_after = 1;
  rules_[kBackendDown].clear_after = 1;
  rules_[kSafeSet].name = "safe_set";
  rules_[kP99Jump].name = "p99_jump";
  rules_[kHeartbeatFlap].name = "heartbeat_flap";
  rules_[kRepairStall].name = "repair_stall";
  rules_[kSlowConsumer].name = "slow_consumer";
}

void HealthWatchdog::step_rule(std::size_t index, bool breached) {
  Rule& rule = rules_[index];
  const unsigned raise_n =
      rule.raise_after != 0 ? rule.raise_after : config_.raise_after;
  const unsigned clear_n =
      rule.clear_after != 0 ? rule.clear_after : config_.clear_after;
  if (breached) {
    ++rule.breach_streak;
    rule.ok_streak = 0;
    if (!rule.active && rule.breach_streak >= raise_n) {
      rule.active = true;
      ++raised_total_;
      journal_->append(JournalType::kAlertRaised, index, rule.breach_streak,
                       rule.name);
    }
  } else {
    ++rule.ok_streak;
    rule.breach_streak = 0;
    if (rule.active && rule.ok_streak >= clear_n) {
      rule.active = false;
      journal_->append(JournalType::kAlertCleared, index, rule.ok_streak,
                       rule.name);
    }
  }
}

void HealthWatchdog::evaluate(const HealthSample& sample) {
  step_rule(kBackendDown, sample.down_count > 0);
  step_rule(kSafeSet, sample.safe_worst_ratio > 1.0);

  // p99_jump: compare against a slow EMA of the healthy windowed p99.
  // The baseline freezes while the rule breaches, so a sustained
  // regression cannot launder itself into the baseline and self-clear.
  bool p99_breach = false;
  if (sample.win_p99_us > 0) {
    const double p99 = static_cast<double>(sample.win_p99_us);
    if (p99_baseline_us_ > 0.0) {
      p99_breach =
          sample.win_p99_us >= config_.p99_min_us &&
          p99 > config_.p99_jump_factor * p99_baseline_us_;
    }
    if (!p99_breach) {
      p99_baseline_us_ = p99_baseline_us_ == 0.0
                             ? p99
                             : 0.9 * p99_baseline_us_ + 0.1 * p99;
    }
  }
  step_rule(kP99Jump, p99_breach);

  // heartbeat_flap: sliding sum of down-transition deltas.
  std::uint64_t flap_delta = 0;
  if (have_transitions_ &&
      sample.transitions_down >= last_transitions_down_) {
    flap_delta = sample.transitions_down - last_transitions_down_;
  }
  last_transitions_down_ = sample.transitions_down;
  have_transitions_ = true;
  flap_deltas_.push_back(flap_delta);
  flap_sum_ += flap_delta;
  while (flap_deltas_.size() > std::max(1u, config_.flap_window)) {
    flap_sum_ -= flap_deltas_.front();
    flap_deltas_.pop_front();
  }
  step_rule(kHeartbeatFlap, flap_sum_ >= config_.flap_threshold);

  // repair_stall: pending work with no completions tick after tick.
  if (sample.repair_pending > 0 && sample.repair_done == last_repair_done_) {
    ++repair_stall_ticks_;
  } else {
    repair_stall_ticks_ = 0;
  }
  last_repair_done_ = sample.repair_done;
  step_rule(kRepairStall, repair_stall_ticks_ >= config_.repair_stall_after);

  // slow_consumer: disconnect burst within one tick.
  std::uint64_t slow_delta = 0;
  if (have_slow_drops_ &&
      sample.slow_consumer_drops >= last_slow_drops_) {
    slow_delta = sample.slow_consumer_drops - last_slow_drops_;
  }
  last_slow_drops_ = sample.slow_consumer_drops;
  have_slow_drops_ = true;
  step_rule(kSlowConsumer, slow_delta >= config_.slow_consumer_threshold);
}

std::vector<std::string> HealthWatchdog::active() const {
  std::vector<std::string> out;
  for (const Rule& rule : rules_) {
    if (rule.active) out.emplace_back(rule.name);
  }
  return out;
}

}  // namespace rlb::obs
