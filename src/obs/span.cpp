#include "obs/span.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <set>

#include "obs/trace.hpp"

namespace rlb::obs {

namespace detail {
std::atomic<bool> g_spans_enabled{false};
}  // namespace detail

void set_span_recording(bool on) noexcept {
  detail::g_spans_enabled.store(on, std::memory_order_relaxed);
}

namespace {

constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t next_span_id() noexcept {
  // Ids must not collide across the processes of one cluster run: derive a
  // per-process base from the pid and the wall clock, then scramble a
  // counter through it.  Not cryptographic — just collision-unlikely.
  static const std::uint64_t base = splitmix64(
      (static_cast<std::uint64_t>(::getpid()) << 48) ^
      static_cast<std::uint64_t>(
          std::chrono::system_clock::now().time_since_epoch().count()));
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id =
      splitmix64(base + counter.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

std::uint64_t wall_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

SpanRecorder& SpanRecorder::instance() {
  static SpanRecorder recorder;
  return recorder;
}

SpanRecorder::Ring& SpanRecorder::local_ring() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<Ring>();
    owned->capacity = ring_capacity_.load(std::memory_order_relaxed);
    ring = owned.get();
    std::lock_guard lock(registry_mutex_);
    rings_.push_back(std::move(owned));
  }
  return *ring;
}

void SpanRecorder::record(const Span& span) {
  const std::uint64_t budget =
      slow_budget_ns_.load(std::memory_order_relaxed);
  const bool slow =
      budget != 0 && span.end_ns - span.start_ns >= budget;
  const bool keep =
      (span.flags & kSpanSampled) != 0 || span.cause != 0 || slow;
  if (!keep) {
    filtered_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Ring& ring = local_ring();
  std::lock_guard lock(ring.mutex);
  if (ring.spans.size() >= ring.capacity) {
    ring.spans.pop_front();
    ++ring.overwritten;
  }
  ring.spans.push_back(span);
}

std::vector<Span> SpanRecorder::drain(std::size_t max_spans) {
  std::vector<Span> out;
  out.reserve(std::min<std::size_t>(max_spans, 1024));
  std::lock_guard registry_lock(registry_mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    if (out.size() >= max_spans) break;
    std::lock_guard lock(ring->mutex);
    while (!ring->spans.empty() && out.size() < max_spans) {
      out.push_back(ring->spans.front());
      ring->spans.pop_front();
    }
  }
  return out;
}

std::vector<Span> SpanRecorder::collect() const {
  std::vector<Span> out;
  std::lock_guard registry_lock(registry_mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard lock(ring->mutex);
    out.insert(out.end(), ring->spans.begin(), ring->spans.end());
  }
  return out;
}

std::size_t SpanRecorder::size() const {
  std::size_t total = 0;
  std::lock_guard registry_lock(registry_mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard lock(ring->mutex);
    total += ring->spans.size();
  }
  return total;
}

std::uint64_t SpanRecorder::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard registry_lock(registry_mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard lock(ring->mutex);
    total += ring->overwritten;
  }
  return total;
}

void SpanRecorder::set_ring_capacity(std::size_t capacity) noexcept {
  ring_capacity_.store(capacity == 0 ? 1 : capacity,
                       std::memory_order_relaxed);
}

void SpanRecorder::clear() {
  std::lock_guard registry_lock(registry_mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard lock(ring->mutex);
    ring->spans.clear();
    ring->overwritten = 0;
  }
  filtered_.store(0, std::memory_order_relaxed);
}

// -- JSONL persistence ----------------------------------------------------

namespace {

void write_span_name(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
      os << buffer;
    } else {
      os << c;
    }
  }
  os << '"';
}

bool span_string_field(const std::string& line, const std::string& key,
                       std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::string value;
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      value.push_back(line[++i]);
      continue;
    }
    if (c == '"') {
      out = value;
      return true;
    }
    value.push_back(c);
  }
  return false;
}

bool span_u64_field(const std::string& line, const std::string& key,
                    std::uint64_t& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* p = line.c_str() + at + needle.size();
  char* end = nullptr;
  out = std::strtoull(p, &end, 10);
  return end != p;
}

const char* intern_span_name(const std::string& name) {
  static std::mutex mutex;
  static std::set<std::string> pool;
  std::lock_guard lock(mutex);
  return pool.insert(name).first->c_str();
}

}  // namespace

void write_spans_jsonl(const std::vector<Span>& spans, std::ostream& os,
                       std::uint64_t steady_ns, std::uint64_t wall_ns) {
  if (steady_ns != 0 || wall_ns != 0) {
    os << "{\"anchor\":1,\"steady_ns\":" << steady_ns
       << ",\"wall_ns\":" << wall_ns << "}\n";
  }
  for (const Span& s : spans) {
    os << "{\"trace_id\":" << s.trace_id << ",\"span_id\":" << s.span_id
       << ",\"parent_span_id\":" << s.parent_span_id
       << ",\"start_ns\":" << s.start_ns << ",\"end_ns\":" << s.end_ns
       << ",\"queue_depth\":" << s.queue_depth << ",\"name\":";
    write_span_name(os, s.name);
    os << ",\"shard\":" << s.shard << ",\"tid\":" << s.tid
       << ",\"flags\":" << static_cast<unsigned>(s.flags)
       << ",\"cause\":" << static_cast<unsigned>(s.cause) << "}\n";
  }
}

std::vector<Span> parse_spans_jsonl(std::istream& is,
                                    std::uint64_t& anchor_steady_ns,
                                    std::uint64_t& anchor_wall_ns) {
  std::vector<Span> spans;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::uint64_t anchor_marker = 0;
    if (span_u64_field(line, "anchor", anchor_marker) && anchor_marker != 0) {
      span_u64_field(line, "steady_ns", anchor_steady_ns);
      span_u64_field(line, "wall_ns", anchor_wall_ns);
      continue;
    }
    Span s;
    std::string name;
    if (!span_u64_field(line, "trace_id", s.trace_id) ||
        !span_u64_field(line, "span_id", s.span_id) ||
        !span_u64_field(line, "start_ns", s.start_ns) ||
        !span_string_field(line, "name", name)) {
      continue;
    }
    s.name = intern_span_name(name);
    span_u64_field(line, "parent_span_id", s.parent_span_id);
    span_u64_field(line, "end_ns", s.end_ns);
    span_u64_field(line, "queue_depth", s.queue_depth);
    std::uint64_t scratch = 0;
    if (span_u64_field(line, "shard", scratch)) {
      s.shard = static_cast<std::uint32_t>(scratch);
    }
    if (span_u64_field(line, "tid", scratch)) {
      s.tid = static_cast<std::uint32_t>(scratch);
    }
    if (span_u64_field(line, "flags", scratch)) {
      s.flags = static_cast<std::uint8_t>(scratch);
    }
    if (span_u64_field(line, "cause", scratch)) {
      s.cause = static_cast<std::uint8_t>(scratch);
    }
    spans.push_back(s);
  }
  return spans;
}

// -- Global span file ------------------------------------------------------

namespace {

struct GlobalSpanFile {
  std::string path;
  bool atexit_registered = false;
};

GlobalSpanFile& global_span_file() {
  static GlobalSpanFile g;
  return g;
}

std::mutex g_span_file_mutex;

void flush_spans_at_exit() {
  if (!flush_spans()) {
    std::fprintf(stderr, "rlb: failed to write span file\n");
  }
}

}  // namespace

void set_span_file(const std::string& path) {
  // Construct the recorder singleton *before* registering the at-exit
  // flush: atexit callbacks and static destructors run off one LIFO list,
  // so a recorder first constructed later (by the first record(), often on
  // a worker thread) would be destroyed before the flush reads it.
  SpanRecorder::instance();
  now_ns();  // pin the steady epoch too, so the anchor predates all spans
  std::lock_guard lock(g_span_file_mutex);
  GlobalSpanFile& g = global_span_file();
  g.path = path;
  set_span_recording(true);
  if (!g.atexit_registered) {
    g.atexit_registered = true;
    std::atexit(&flush_spans_at_exit);
  }
}

bool flush_spans() {
  std::lock_guard lock(g_span_file_mutex);
  GlobalSpanFile& g = global_span_file();
  if (g.path.empty()) return false;
  // Write-to-temp + rename: a reader (or a crash mid-write) never sees a
  // truncated mid-record file.
  const std::string tmp = g.path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    write_spans_jsonl(SpanRecorder::instance().collect(), out, now_ns(),
                      wall_now_ns());
    if (!out.good()) return false;
  }
  return std::rename(tmp.c_str(), g.path.c_str()) == 0;
}

}  // namespace rlb::obs
