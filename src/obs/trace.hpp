// Event tracing: typed, low-overhead, compile-out-able.
//
// The paper's guarantees are statements about *trajectories* — the safe
// backlog distribution holding step after step (Lemma 3.4), each P_j queue
// receiving O(log log m) requests per phase (Lemma 4.5) — so the simulator
// records typed events (request lifecycle, cuckoo kick chains, phase
// boundaries) into a pluggable TraceSink instead of exposing only
// end-of-run aggregates.
//
// Cost model: every instrumentation site is guarded by enabled(), a single
// relaxed atomic load — tracing off costs one predictable branch.  Defining
// RLB_OBS_DISABLED (CMake option RLB_OBS_ENABLED=OFF) compiles every site
// out entirely.
//
// Event names must be string literals (or otherwise outlive the collector):
// TraceEvent stores the pointer, never a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace rlb::obs {

/// What happened.  Request lifecycle (submit/route/enqueue/serve/reject/
/// flush), delayed-cuckoo internals (phase boundary, per-P_j arrivals,
/// kick chains, stash hits, assignment failures), migration, serving-engine
/// network events (accept/close/protocol errors), profiling scopes, and
/// free-form counter samples.
enum class EventKind : std::uint8_t {
  kSubmit,
  kRoute,
  kEnqueue,
  kServe,
  kReject,
  kFlush,
  kPhaseBegin,
  kPArrival,
  kKickChain,
  kStashHit,
  kAssignFail,
  kMigration,
  kFault,
  kNet,
  kEngine,
  kScope,
  kCounter,
};

/// Stable lower-case identifier ("route", "phase-begin", ...).
const char* to_string(EventKind kind) noexcept;
/// Inverse of to_string; false when `s` names no kind.
bool kind_from_string(const std::string& s, EventKind& out) noexcept;

/// One recorded event.  POD, 40 bytes; `name` points at a static string.
struct TraceEvent {
  std::uint64_t ts_ns = 0;   ///< steady-clock ns since process start
  std::uint64_t dur_ns = 0;  ///< kScope only: scope duration
  std::uint64_t a0 = 0;      ///< event-specific (chunk id, step, ...)
  std::uint64_t a1 = 0;      ///< event-specific (server, length, ...)
  const char* name = "";     ///< site label, e.g. "cuckoo.kick"
  EventKind kind = EventKind::kCounter;
  std::uint32_t tid = 0;     ///< dense per-process thread index
};

/// Receives every emitted event.  Implementations must be thread-safe:
/// simulation trials run concurrently on the trial pool.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Fixed-capacity ring collector: keeps the most recent `capacity` events,
/// overwriting the oldest; dropped() counts overwritten events.
class RingTraceCollector final : public TraceSink {
 public:
  explicit RingTraceCollector(std::size_t capacity = 1u << 18);

  void record(const TraceEvent& event) override;

  /// Events oldest-first (a copy; safe while recording continues).
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;       // ring_[next_] is the oldest once full
  std::uint64_t recorded_ = 0;
};

// -- Global switch + sink ------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_detail;
}  // namespace detail

/// True when instrumentation sites should emit.  One relaxed load.
inline bool enabled() noexcept {
#if defined(RLB_OBS_DISABLED)
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// True when per-request firehose events (submit/route/enqueue/serve for
/// every single request) should also emit.  Off by default: at millions of
/// requests per run those events evict everything interesting from the
/// ring and dwarf the structural events (phases, kick chains, rejects)
/// traces exist to show.
inline bool detail_enabled() noexcept {
#if defined(RLB_OBS_DISABLED)
  return false;
#else
  return enabled() && detail::g_detail.load(std::memory_order_relaxed);
#endif
}

/// Master switch for tracing AND probe recording.
void set_enabled(bool on) noexcept;

/// Opt into per-request lifecycle events (see detail_enabled()).
void set_detail(bool on) noexcept;

/// Install the process-wide sink (not owned; nullptr to detach).  Emission
/// with no sink installed is a no-op even when enabled.
void set_sink(TraceSink* sink) noexcept;
TraceSink* sink() noexcept;

/// Nanoseconds on the steady clock since process start.
std::uint64_t now_ns() noexcept;

/// Dense index of the calling thread (0, 1, 2, ... in first-use order).
std::uint32_t thread_index() noexcept;

/// Record an instant event (no-op when disabled or no sink).
void emit(EventKind kind, const char* name, std::uint64_t a0 = 0,
          std::uint64_t a1 = 0);

/// Record a completed profiling scope: `start_ns` from now_ns().
void emit_scope(const char* name, std::uint64_t start_ns,
                std::uint64_t dur_ns, std::uint64_t a0 = 0);

// -- Exporters -----------------------------------------------------------

/// One JSON object per line:
/// {"kind":"route","name":"...","ts_ns":0,"dur_ns":0,"a0":0,"a1":0,"tid":0}
void write_jsonl(const std::vector<TraceEvent>& events, std::ostream& os);

/// Parse write_jsonl output back (tests / offline tooling).  Unparseable
/// lines are skipped; names are interned for the process lifetime.
std::vector<TraceEvent> parse_jsonl(std::istream& is);

/// Chrome trace-event format (load in chrome://tracing or Perfetto):
/// {"traceEvents":[...], "displayTimeUnit":"ms"}.  Scopes become complete
/// ("X") events, counters counter ("C") events, the rest instants ("i").
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& os);

/// Trace file flavour; see set_trace_file.
enum class TraceFormat { kChrome, kJsonl };

/// Convenience used by harness::init_output's --trace flag: install a
/// process-global ring collector, enable tracing, and arrange for the
/// trace to be written to `path` at flush_trace() and at process exit.
/// Format is chosen by extension (".jsonl" -> JSONL, else Chrome JSON).
void set_trace_file(const std::string& path);
void set_trace_file(const std::string& path, TraceFormat format,
                    std::size_t ring_capacity = 1u << 18);

/// Write the global trace file now; no-op without set_trace_file.  The
/// write is atomic (temp file + rename), so readers never observe a
/// truncated mid-record file.  Returns false on I/O failure.
bool flush_trace();

// -- Instrumentation macro ----------------------------------------------

#if defined(RLB_OBS_DISABLED)
#define RLB_TRACE_EVENT(kind, name, ...) ((void)0)
#else
/// Emit an instant event iff tracing is enabled; arguments after `name`
/// are a0 [, a1] and are NOT evaluated when disabled.
#define RLB_TRACE_EVENT(kind, name, ...)                       \
  do {                                                         \
    if (::rlb::obs::enabled()) {                               \
      ::rlb::obs::emit((kind), (name), ##__VA_ARGS__);         \
    }                                                          \
  } while (0)
#endif

}  // namespace rlb::obs
