#include "obs/journal.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace rlb::obs {

const char* to_string(JournalType type) noexcept {
  switch (type) {
    case JournalType::kNone:
      return "NONE";
    case JournalType::kMemberUp:
      return "MEMBER_UP";
    case JournalType::kMemberDown:
      return "MEMBER_DOWN";
    case JournalType::kMemberProbation:
      return "MEMBER_PROBATION";
    case JournalType::kEpochCommit:
      return "EPOCH_COMMIT";
    case JournalType::kMigrateStart:
      return "MIGRATE_START";
    case JournalType::kMigrateDone:
      return "MIGRATE_DONE";
    case JournalType::kMigrateFail:
      return "MIGRATE_FAIL";
    case JournalType::kShed:
      return "SHED";
    case JournalType::kSlowConsumer:
      return "SLOW_CONSUMER";
    case JournalType::kSafeSetViolated:
      return "SAFESET_VIOLATED";
    case JournalType::kSafeSetRecovered:
      return "SAFESET_RECOVERED";
    case JournalType::kAlertRaised:
      return "ALERT_RAISED";
    case JournalType::kAlertCleared:
      return "ALERT_CLEARED";
  }
  return "UNKNOWN";
}

Journal::Journal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

Journal& Journal::instance() {
  static Journal journal;
  return journal;
}

#if !defined(RLB_OBS_DISABLED)
void Journal::append(JournalType type, std::uint64_t a0, std::uint64_t a1,
                     std::string_view detail) {
  JournalEvent event;
  event.steady_ns = now_ns();
  event.wall_ns = wall_now_ns();
  event.type = type;
  event.a0 = a0;
  event.a1 = a1;
  const std::size_t n = std::min(detail.size(), kJournalDetailMax);
  if (n > 0) std::memcpy(event.detail, detail.data(), n);
  event.detail[n] = '\0';
  std::lock_guard lock(mu_);
  event.seq = next_seq_++;
  ring_[(event.seq - 1) % capacity_] = event;
}
#endif

JournalReadResult Journal::read_from(std::uint64_t cursor, std::size_t max,
                                     std::vector<JournalEvent>& out) const {
  JournalReadResult result;
  std::lock_guard lock(mu_);
  const std::uint64_t newest = next_seq_ - 1;  // 0 when empty
  // Oldest seq still in the ring.
  const std::uint64_t oldest =
      newest > capacity_ ? newest - capacity_ + 1 : (newest > 0 ? 1 : 0);
  std::uint64_t start = cursor + 1;
  if (newest == 0 || start > newest) {
    result.next_cursor = cursor;
    return result;
  }
  if (start < oldest) {
    result.dropped = oldest - start;
    start = oldest;
  }
  const std::uint64_t available = newest - start + 1;
  const std::uint64_t take =
      std::min<std::uint64_t>(available, static_cast<std::uint64_t>(max));
  out.reserve(out.size() + take);
  for (std::uint64_t seq = start; seq < start + take; ++seq) {
    out.push_back(ring_[(seq - 1) % capacity_]);
  }
  result.next_cursor = take > 0 ? start + take - 1 : cursor;
  result.remaining = available - take;
  return result;
}

void Journal::tail(std::size_t max, std::vector<JournalEvent>& out) const {
  std::lock_guard lock(mu_);
  const std::uint64_t newest = next_seq_ - 1;
  if (newest == 0 || max == 0) return;
  const std::uint64_t oldest =
      newest > capacity_ ? newest - capacity_ + 1 : 1;
  std::uint64_t start = oldest;
  if (newest - start + 1 > max) start = newest - max + 1;
  out.reserve(out.size() + (newest - start + 1));
  for (std::uint64_t seq = start; seq <= newest; ++seq) {
    out.push_back(ring_[(seq - 1) % capacity_]);
  }
}

std::uint64_t Journal::next_seq() const {
  std::lock_guard lock(mu_);
  return next_seq_;
}

std::size_t Journal::size() const {
  std::lock_guard lock(mu_);
  const std::uint64_t newest = next_seq_ - 1;
  return static_cast<std::size_t>(std::min<std::uint64_t>(newest, capacity_));
}

namespace {

std::mutex g_alerts_mu;
std::vector<std::string> g_active_alerts;

void json_escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out.append(buffer, static_cast<std::size_t>(n));
}

}  // namespace

void set_active_alerts(std::vector<std::string> alerts) {
  std::lock_guard lock(g_alerts_mu);
  g_active_alerts = std::move(alerts);
}

std::vector<std::string> active_alerts() {
  std::lock_guard lock(g_alerts_mu);
  return g_active_alerts;
}

bool write_flight_record(const std::string& path, const std::string& role,
                         std::uint32_t backend_id,
                         const std::string& snapshot_json,
                         std::size_t max_events) {
  std::string out;
  out.reserve(16 * 1024);
  out += "{\"flight_record\":1,\"role\":\"";
  json_escape_into(out, role);
  append_fmt(out, "\",\"backend_id\":%" PRIu32 ",", backend_id);
  append_fmt(out, "\"steady_ns\":%" PRIu64 ",\"wall_ns\":%" PRIu64 ",",
             now_ns(), wall_now_ns());
  out += "\"alerts\":[";
  const std::vector<std::string> alerts = active_alerts();
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    out += i == 0 ? "\"" : ",\"";
    json_escape_into(out, alerts[i]);
    out += "\"";
  }
  out += "],\"snapshot\":";
  out += snapshot_json.empty() ? "{}" : snapshot_json;
  out += ",\"events\":[";
  std::vector<JournalEvent> events;
  Journal::instance().tail(max_events, events);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JournalEvent& e = events[i];
    if (i > 0) out += ",";
    append_fmt(out,
               "{\"seq\":%" PRIu64 ",\"steady_ns\":%" PRIu64
               ",\"wall_ns\":%" PRIu64 ",\"type\":\"%s\",\"a0\":%" PRIu64
               ",\"a1\":%" PRIu64 ",\"detail\":\"",
               e.seq, e.steady_ns, e.wall_ns, to_string(e.type), e.a0, e.a1);
    json_escape_into(out, e.detail_view());
    out += "\"}";
  }
  out += "]}\n";

  // Atomic tmp + rename, mirroring the span/trace flush idiom: readers
  // either see the old file or the complete new one, never a torn write.
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) return false;
  const bool wrote = std::fwrite(out.data(), 1, out.size(), file) == out.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace rlb::obs
