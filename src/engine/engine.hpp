// The live serving engine: concurrent request routing over the paper's
// policies.
//
// The simulator is step-synchronous and single-threaded per trial; the
// engine runs the SAME policy objects under real concurrency by sharding.
// The m servers split into `shards` contiguous partitions, each owned by
// one worker thread with its own embedded core::LoadBalancer over the
// partition.  Chunks hash to shards, so a shard's balancer sees exactly
// the model it was built for: a private set of servers, one thread,
// distinct chunks per step.
//
// Request path:  GET(key) -> store::KeyMapper -> chunk -> shard (seeded
// hash) -> the shard's MPSC inbound queue.  The worker repeats a drain
// clock: swap the inbound queue, admit into a bounded waiting room
// (overflow = immediate REJECT — admission control ahead of routing),
// assemble a micro-batch of DISTINCT chunks (duplicates wait for the next
// tick, preserving the model's distinct-chunks-per-step contract), and run
// one LoadBalancer::step(), which routes the batch and applies g service
// per server.  The paper's bounded queue q turns into protocol-level
// backpressure: a full queue rejects the arrival, and the installed
// core::RequestSink converts that into a REJECT response for the exact
// client waiting on it.
//
// Failure schedules (core::FailureSchedule) run live: each shard consults
// its slice of the schedule at every tick boundary and applies crash /
// recover transitions through set_server_up — the same failover machinery
// the fault-injection experiments exercise, now under real traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/failure.hpp"
#include "core/types.hpp"
#include "net/stats.hpp"
#include "obs/span.hpp"
#include "store/key_mapper.hpp"

namespace rlb::engine {

struct EngineConfig {
  /// Routing policy name (policies::make_policy); must support per-request
  /// reporting (core::RequestSink) — every built-in policy does except
  /// "migrating-d1" and "batched-greedy".
  std::string policy = "greedy";
  /// m — total servers across all shards.
  std::size_t servers = 64;
  /// d — replication factor.
  unsigned replication = 2;
  /// g — per-server service per drain-clock tick.
  unsigned processing_rate = 2;
  /// q — bounded queue length; 0 = the policy's theorem default.
  std::size_t queue_capacity = 0;
  /// Worker threads; servers split into `shards` contiguous partitions.
  std::size_t shards = 1;
  /// n — number of chunks the key space shards into.
  std::size_t chunks = 1 << 20;
  /// Key -> chunk scheme: "hash" (HashShardMapper) or "range"
  /// (RangeShardMapper; with key_space == chunks this is the identity map,
  /// useful for driving the engine with chunk-level workloads).
  std::string mapper = "hash";
  /// Range mapper key space; 0 = chunks (identity-width ranges).
  std::uint64_t key_space = 0;
  std::uint64_t seed = 1;
  /// Distinct chunks routed per tick per shard; 0 = the shard's server
  /// count (the model's "up to m requests per step").
  std::size_t max_batch = 0;
  /// Pre-routing waiting room per shard; arrivals beyond it are rejected
  /// immediately.  0 = 8 x max_batch.
  std::size_t waiting_limit = 0;
  /// Minimum drain-clock period in microseconds; 0 = free-running (a tick
  /// fires whenever there is work).
  std::uint64_t tick_interval_us = 0;
  /// Live outage script; see parse_failure_spec().  Empty = no faults.
  std::string failure_spec;
  /// Crash semantics: reject a crashed server's queued requests at crash
  /// time (true) or freeze them until recovery (false).
  bool dump_queue_on_crash = false;
  /// Operator-assigned cluster identity, echoed in STATS snapshots so a
  /// router / rlb_stat --cluster can tell backends apart (rlbd
  /// --backend-id).  Purely informational inside the engine.
  std::uint32_t backend_id = 0;
};

struct EngineStats {
  std::uint64_t submitted = 0;
  /// Served OK.
  std::uint64_t completed = 0;
  /// Rejected by the policy's bounded queues (the paper's rejection rule).
  std::uint64_t rejected = 0;
  /// Cause breakdown of `rejected` (queue_full + all_down + drop <=
  /// rejected; the remainder is cause-unattributed).
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_all_down = 0;
  std::uint64_t rejected_drop = 0;
  /// Rejected at admission because the shard's waiting room was full.
  std::uint64_t overload_rejected = 0;
  std::uint64_t ticks = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  /// Requests currently queued inside the balancers.
  std::uint64_t backlog = 0;
  std::size_t servers_down = 0;
};

/// One answered request, delivered to the ResponseFn from a shard worker
/// thread (thread-safe delivery is the callback's responsibility).
struct EngineResponse {
  std::uint64_t conn_token = 0;
  std::uint64_t request_id = 0;
  /// 0 = served, 1 = rejected (bounded queue / waiting room / all replicas
  /// down), 2 = error (engine not accepting).
  std::uint8_t status = 0;
  /// Global server id that served the request (status 0 only).
  core::ServerId server = 0;
  /// Drain-clock steps spent queued (status 0 only).
  std::uint32_t wait_steps = 0;
};

inline constexpr std::uint8_t kEngineOk = 0;
inline constexpr std::uint8_t kEngineReject = 1;
inline constexpr std::uint8_t kEngineError = 2;

using ResponseFn = std::function<void(const EngineResponse&)>;

/// Parse a live outage spec into a schedule over `servers` servers whose
/// clock is the engine's tick counter.  Formats:
///   script:<tick>,<server>,<down|up>[;<tick>,<server>,<down|up>...]
///   bernoulli:<fail_rate>,<mttr>
///   rack:<racks>,<rack_fail_rate>,<mttr>
/// Returns nullptr for an empty spec; throws std::invalid_argument on a
/// malformed one.
std::unique_ptr<core::FailureSchedule> parse_failure_spec(
    const std::string& spec, std::size_t servers, std::uint64_t seed);

class ServingEngine {
 public:
  /// Throws std::invalid_argument for bad configs (unknown policy/mapper,
  /// a policy without RequestSink support, more shards than servers, or a
  /// malformed failure_spec).
  ServingEngine(const EngineConfig& config, ResponseFn on_response);
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Spawn the shard workers.
  void start();

  /// Graceful drain: stop admitting, answer everything in flight, join the
  /// workers.  Idempotent.
  void stop();

  /// Route GET(key).  Thread-safe.  Returns false when the engine is not
  /// accepting (the caller answers the client with an error).
  bool submit(std::uint64_t conn_token, std::uint64_t request_id,
              store::KeyId key);

  /// Route GET(key) carrying a trace context.  A valid context rides the
  /// request through the MPSC queue and waiting room into the drain tick;
  /// when the response is delivered an `engine.request` span (parented to
  /// the context) lands in the process's SpanRecorder.  An invalid context
  /// behaves exactly like the three-argument overload.
  bool submit(std::uint64_t conn_token, std::uint64_t request_id,
              store::KeyId key, const obs::TraceContext& trace);

  /// One request in a submit_batch() call.
  struct SubmitItem {
    std::uint64_t conn_token = 0;
    std::uint64_t request_id = 0;
    store::KeyId key = 0;
    obs::TraceContext trace;
  };

  /// Batched submit for a server wakeup's worth of requests: items are
  /// grouped by destination shard so each shard's mutex is taken — and
  /// its worker woken — at most once per call instead of once per
  /// request.  Indices of items that were NOT admitted (engine not
  /// accepting, or shard stopping) are appended to `rejected`; the caller
  /// answers those with an error, exactly as for a false submit().
  /// `rejected` is not cleared first.  Thread-safe.
  void submit_batch(const SubmitItem* items, std::size_t count,
                    std::vector<std::size_t>& rejected);

  /// Aggregated live counters across all shards.
  EngineStats stats() const;

  /// Full metrics snapshot for the STATS wire channel: per-shard rows,
  /// merged wire-to-response latency, and the Def 3.2 safe-set monitor over
  /// the merged backlog vector.  Lock-free — reads each shard's atomics
  /// without stopping its worker — so a row is internally consistent only
  /// up to in-flight ticks.  Safe to call from any thread at any time.
  net::StatsSnapshot snapshot() const;

  std::size_t shard_count() const;
  const EngineConfig& config() const;

  /// Record the placement epoch piggybacked on the router's heartbeat
  /// STATS frame; echoed in snapshot().placement_epoch.  Monotonic: a
  /// stale heartbeat can never move the recorded epoch backwards.
  void set_placement_epoch(std::uint64_t epoch);

  /// Repair-plane accounting (fed by the MigrationAgent callbacks): one
  /// completed inbound / outbound migration of `bytes` bytes.  Surfaced
  /// in snapshot().repair.
  void note_migration_in(std::uint64_t bytes);
  void note_migration_out(std::uint64_t bytes);

  /// The chunk a key maps to and the shard that owns it (tests/tools).
  core::ChunkId chunk_of(store::KeyId key) const;
  std::size_t shard_of_chunk(core::ChunkId chunk) const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace rlb::engine
