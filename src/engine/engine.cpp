#include "engine/engine.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/balancer.hpp"
#include "core/metrics.hpp"
#include "hashing/hash.hpp"
#include "obs/probes.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "policies/factory.hpp"
#include "stats/rng.hpp"

namespace rlb::engine {

namespace {

// Internal parsed form of a failure spec; shards derive their local
// schedules from it, parse_failure_spec() builds the global one.
struct FailureSpec {
  enum class Kind { kNone, kScript, kBernoulli, kRack };
  Kind kind = Kind::kNone;
  std::vector<core::ScriptedFailureSchedule::Event> events;  // kScript
  double rate = 0.0;                                         // fail rate
  double mttr = 0.0;
  std::size_t racks = 0;  // kRack
};

[[noreturn]] void bad_spec(const std::string& spec, const char* why) {
  throw std::invalid_argument("failure spec '" + spec + "': " + why);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::uint64_t parse_u64(const std::string& spec, const std::string& field) {
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(field, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, "expected a non-negative integer");
  }
  if (pos != field.size()) bad_spec(spec, "trailing junk after integer");
  return static_cast<std::uint64_t>(value);
}

double parse_double(const std::string& spec, const std::string& field) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(field, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, "expected a number");
  }
  if (pos != field.size()) bad_spec(spec, "trailing junk after number");
  return value;
}

FailureSpec parse_spec(const std::string& spec, std::size_t servers) {
  FailureSpec out;
  if (spec.empty()) return out;
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) bad_spec(spec, "missing ':' after kind");
  const std::string kind = spec.substr(0, colon);
  const std::string body = spec.substr(colon + 1);
  if (kind == "script") {
    out.kind = FailureSpec::Kind::kScript;
    for (const std::string& part : split(body, ';')) {
      if (part.empty()) continue;
      const std::vector<std::string> fields = split(part, ',');
      if (fields.size() != 3) bad_spec(spec, "script events are tick,server,down|up");
      core::ScriptedFailureSchedule::Event event;
      event.step = static_cast<core::Time>(parse_u64(spec, fields[0]));
      event.server = static_cast<core::ServerId>(parse_u64(spec, fields[1]));
      if (event.server >= servers) bad_spec(spec, "server id out of range");
      if (fields[2] == "down") {
        event.up = false;
      } else if (fields[2] == "up") {
        event.up = true;
      } else {
        bad_spec(spec, "event state must be 'down' or 'up'");
      }
      out.events.push_back(event);
    }
    if (out.events.empty()) bad_spec(spec, "script has no events");
  } else if (kind == "bernoulli") {
    out.kind = FailureSpec::Kind::kBernoulli;
    const std::vector<std::string> fields = split(body, ',');
    if (fields.size() != 2) bad_spec(spec, "bernoulli takes fail_rate,mttr");
    out.rate = parse_double(spec, fields[0]);
    out.mttr = parse_double(spec, fields[1]);
    if (out.rate < 0.0 || out.rate > 1.0) bad_spec(spec, "fail_rate not in [0,1]");
    if (out.mttr < 0.0) bad_spec(spec, "mttr must be >= 0");
  } else if (kind == "rack") {
    out.kind = FailureSpec::Kind::kRack;
    const std::vector<std::string> fields = split(body, ',');
    if (fields.size() != 3) bad_spec(spec, "rack takes racks,rack_fail_rate,mttr");
    out.racks = static_cast<std::size_t>(parse_u64(spec, fields[0]));
    out.rate = parse_double(spec, fields[1]);
    out.mttr = parse_double(spec, fields[2]);
    if (out.racks == 0) bad_spec(spec, "racks must be >= 1");
    if (out.rate < 0.0 || out.rate > 1.0) bad_spec(spec, "rack_fail_rate not in [0,1]");
    if (out.mttr < 0.0) bad_spec(spec, "mttr must be >= 0");
  } else {
    bad_spec(spec, "unknown kind (want script/bernoulli/rack)");
  }
  return out;
}

// The per-shard schedule over [base, base+count) local servers.  Scripted
// events are filtered and remapped to local ids; stochastic schedules get
// an independent derived seed per shard (each shard has its own tick
// clock, so one global schedule cannot be shared across workers).  A rack
// spec splits its racks across shards proportionally, at least one each.
std::unique_ptr<core::FailureSchedule> make_shard_schedule(
    const FailureSpec& spec, std::size_t shard, std::size_t base,
    std::size_t count, std::size_t total_servers, std::size_t total_shards,
    std::uint64_t seed) {
  const std::uint64_t shard_seed =
      stats::derive_seed(seed, 0x9f0bull + static_cast<std::uint64_t>(shard));
  switch (spec.kind) {
    case FailureSpec::Kind::kNone:
      return nullptr;
    case FailureSpec::Kind::kScript: {
      std::vector<core::ScriptedFailureSchedule::Event> local;
      for (const auto& event : spec.events) {
        if (event.server < base || event.server >= base + count) continue;
        core::ScriptedFailureSchedule::Event remapped = event;
        remapped.server = event.server - static_cast<core::ServerId>(base);
        local.push_back(remapped);
      }
      if (local.empty()) return nullptr;
      return std::make_unique<core::ScriptedFailureSchedule>(std::move(local));
    }
    case FailureSpec::Kind::kBernoulli:
      return std::make_unique<core::BernoulliFailureSchedule>(
          spec.rate, spec.mttr, shard_seed);
    case FailureSpec::Kind::kRack: {
      // Proportional share of the racks, minimum one per shard.
      std::size_t racks = spec.racks * count / std::max<std::size_t>(total_servers, 1);
      if (racks == 0) racks = 1;
      if (racks > count) racks = count;
      (void)total_shards;
      return std::make_unique<core::RackFailureSchedule>(racks, spec.rate,
                                                         spec.mttr, shard_seed);
    }
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<core::FailureSchedule> parse_failure_spec(
    const std::string& spec, std::size_t servers, std::uint64_t seed) {
  const FailureSpec parsed = parse_spec(spec, servers);
  switch (parsed.kind) {
    case FailureSpec::Kind::kNone:
      return nullptr;
    case FailureSpec::Kind::kScript:
      return std::make_unique<core::ScriptedFailureSchedule>(parsed.events);
    case FailureSpec::Kind::kBernoulli:
      return std::make_unique<core::BernoulliFailureSchedule>(
          parsed.rate, parsed.mttr, seed);
    case FailureSpec::Kind::kRack:
      return std::make_unique<core::RackFailureSchedule>(parsed.racks,
                                                         parsed.rate,
                                                         parsed.mttr, seed);
  }
  return nullptr;
}

namespace {

// One inbound GET waiting to be routed.
struct Waiting {
  std::uint64_t conn_token = 0;
  std::uint64_t request_id = 0;
  core::ChunkId chunk = 0;
  std::uint64_t enqueue_tick = 0;
};

// One request delivered into the balancer, awaiting its sink event.
struct Pending {
  std::uint64_t conn_token = 0;
  std::uint64_t request_id = 0;
  // Ticks spent in the waiting room before delivery (added to the
  // balancer-reported wait for the end-to-end wait_steps).
  std::uint32_t waited = 0;
};

}  // namespace

struct ServingEngine::Impl {
  // One worker thread owning a contiguous server partition and a private
  // balancer over it.  Implements RequestSink to turn the balancer's
  // chunk-level outcomes back into per-request responses via the per-chunk
  // in-flight FIFO (sound because step() consumes distinct chunks and the
  // balancer's queues are FIFO per chunk delivery order).
  struct Shard final : core::RequestSink {
    Impl* owner = nullptr;
    std::size_t index = 0;
    core::ServerId base = 0;
    std::size_t server_span = 0;
    std::unique_ptr<core::LoadBalancer> balancer;
    std::unique_ptr<core::FailureSchedule> schedule;
    core::Metrics metrics;
    std::thread thread;

    // Producer side (submit) — guarded by mutex.
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<Waiting> inbound;
    bool stopping = false;

    // Worker-private state.
    std::deque<Waiting> waiting;
    std::unordered_map<core::ChunkId, std::deque<Pending>> inflight;
    std::vector<std::uint8_t> up_state;
    std::uint64_t tick = 0;

    // Live counters (worker writes, stats() reads).
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> overload_rejected{0};
    std::atomic<std::uint64_t> ticks{0};
    std::atomic<std::uint64_t> crashes{0};
    std::atomic<std::uint64_t> recoveries{0};
    std::atomic<std::uint64_t> backlog{0};
    std::atomic<std::size_t> down{0};

    void on_served(core::ChunkId x, core::ServerId server,
                   std::uint64_t wait_steps) override {
      Pending pending;
      if (!pop_pending(x, pending)) return;
      EngineResponse response;
      response.conn_token = pending.conn_token;
      response.request_id = pending.request_id;
      response.status = kEngineOk;
      response.server = base + server;
      response.wait_steps =
          pending.waited + static_cast<std::uint32_t>(wait_steps);
      completed.fetch_add(1, std::memory_order_relaxed);
      owner->respond(response);
    }

    void on_rejected(core::ChunkId x) override {
      Pending pending;
      if (!pop_pending(x, pending)) return;
      EngineResponse response;
      response.conn_token = pending.conn_token;
      response.request_id = pending.request_id;
      response.status = kEngineReject;
      rejected.fetch_add(1, std::memory_order_relaxed);
      owner->respond(response);
    }

    bool pop_pending(core::ChunkId x, Pending& out) {
      const auto it = inflight.find(x);
      if (it == inflight.end() || it->second.empty()) {
        // A sink event with no matching delivery would mean the balancer
        // broke the one-event-per-request contract; count, don't crash.
        static obs::Counter orphans("engine.sink_orphans");
        orphans.add();
        return false;
      }
      out = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) inflight.erase(it);
      return true;
    }

    void run();
    void apply_failures();
    std::size_t build_batch(std::vector<core::ChunkId>& batch,
                            std::size_t max_batch);
  };

  EngineConfig config;
  ResponseFn on_response;
  std::unique_ptr<store::KeyMapper> mapper;
  std::uint64_t shard_hash_seed = 0;
  std::size_t max_batch = 0;
  std::size_t waiting_limit = 0;
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<bool> accepting{false};
  std::atomic<std::uint64_t> submitted{0};
  bool started = false;
  bool stopped = false;

  void respond(const EngineResponse& response) { on_response(response); }
};

void ServingEngine::Impl::Shard::apply_failures() {
  if (!schedule) return;
  std::vector<core::FailureTransition> transitions;
  schedule->transitions(static_cast<core::Time>(tick), up_state, transitions);
  for (const auto& transition : transitions) {
    if (transition.server >= server_span) continue;
    const bool was_up = up_state[transition.server] != 0;
    if (was_up == transition.up) continue;  // no-op transition
    up_state[transition.server] = transition.up ? 1 : 0;
    balancer->set_server_up(transition.server, transition.up,
                            owner->config.dump_queue_on_crash, metrics);
    if (transition.up) {
      recoveries.fetch_add(1, std::memory_order_relaxed);
      down.fetch_sub(1, std::memory_order_relaxed);
      RLB_TRACE_EVENT(obs::EventKind::kFault, "engine.recover",
                      base + transition.server, tick);
    } else {
      crashes.fetch_add(1, std::memory_order_relaxed);
      down.fetch_add(1, std::memory_order_relaxed);
      RLB_TRACE_EVENT(obs::EventKind::kFault, "engine.crash",
                      base + transition.server, tick);
    }
  }
}

std::size_t ServingEngine::Impl::Shard::build_batch(
    std::vector<core::ChunkId>& batch, std::size_t max_batch) {
  batch.clear();
  std::unordered_set<core::ChunkId> in_batch;
  std::vector<Waiting> deferred;  // duplicate chunks -> next tick
  while (!waiting.empty() && batch.size() < max_batch) {
    Waiting request = waiting.front();
    waiting.pop_front();
    if (!in_batch.insert(request.chunk).second) {
      deferred.push_back(request);
      continue;
    }
    batch.push_back(request.chunk);
    Pending pending;
    pending.conn_token = request.conn_token;
    pending.request_id = request.request_id;
    pending.waited = static_cast<std::uint32_t>(tick - request.enqueue_tick);
    inflight[request.chunk].push_back(pending);
  }
  // Deferred requests keep their arrival-order priority.
  waiting.insert(waiting.begin(), deferred.begin(), deferred.end());
  return batch.size();
}

void ServingEngine::Impl::Shard::run() {
  static obs::Counter tick_counter("engine.ticks");
  static obs::Histogram batch_hist("engine.batch_size");
  static obs::Histogram step_hist("engine.step_ns");
  static obs::Gauge backlog_gauge("engine.backlog");

  std::vector<core::ChunkId> batch;
  std::vector<Waiting> incoming;
  const std::uint64_t interval_us = owner->config.tick_interval_us;
  auto next_tick = std::chrono::steady_clock::now();
  std::uint64_t last_backlog = 0;
  bool last_backlog_valid = false;

  for (;;) {
    const std::uint64_t balancer_backlog = balancer->total_backlog();
    backlog.store(balancer_backlog, std::memory_order_relaxed);
    bool shutting_down = false;
    {
      std::unique_lock lock(mutex);
      if (inbound.empty() && !stopping && waiting.empty() &&
          balancer_backlog == 0) {
        cv.wait(lock, [&] { return !inbound.empty() || stopping; });
      }
      incoming.swap(inbound);
      shutting_down = stopping;
    }

    // Admission control: the waiting room bounds pre-routing memory; an
    // overflowing arrival is the engine's own rejection, before the
    // policy ever sees it.
    for (const Waiting& request : incoming) {
      if (waiting.size() >= owner->waiting_limit) {
        overload_rejected.fetch_add(1, std::memory_order_relaxed);
        EngineResponse response;
        response.conn_token = request.conn_token;
        response.request_id = request.request_id;
        response.status = kEngineReject;
        owner->respond(response);
        continue;
      }
      Waiting admitted = request;
      admitted.enqueue_tick = tick;
      waiting.push_back(admitted);
    }
    incoming.clear();

    apply_failures();

    const std::size_t batch_size = build_batch(batch, owner->max_batch);
    if (batch_size > 0 || balancer_backlog > 0) {
      obs::ObsTimer step_timer("engine.step",
                               obs::enabled() ? &step_hist : nullptr, index);
      balancer->step(static_cast<core::Time>(tick), batch, metrics);
      batch_hist.observe(static_cast<double>(batch_size));
    }
    ++tick;
    ticks.fetch_add(1, std::memory_order_relaxed);
    tick_counter.add();
    backlog_gauge.set(static_cast<double>(balancer->total_backlog()));

    if (shutting_down) {
      std::unique_lock lock(mutex);
      const bool drained =
          inbound.empty() && waiting.empty() && balancer->total_backlog() == 0;
      if (drained) break;
      // Progress detection: with every remaining server down (or a policy
      // that cannot drain), backlog freezes — flush rejects the residue so
      // every client still gets an answer before the thread exits.
      const std::uint64_t now_backlog = balancer->total_backlog();
      if (batch_size == 0 && last_backlog_valid && now_backlog == last_backlog &&
          inbound.empty()) {
        lock.unlock();
        balancer->flush(metrics);
        for (auto& [chunk, queue] : inflight) {
          // Anything the balancer could not attribute (sink unsupported
          // paths) is answered as rejected rather than leaked.
          for (const Pending& pending : queue) {
            EngineResponse response;
            response.conn_token = pending.conn_token;
            response.request_id = pending.request_id;
            response.status = kEngineReject;
            rejected.fetch_add(1, std::memory_order_relaxed);
            owner->respond(response);
          }
          queue.clear();
        }
        inflight.clear();
        break;
      }
      last_backlog = now_backlog;
      last_backlog_valid = true;
      continue;  // keep draining as fast as possible, skip pacing
    }
    last_backlog_valid = false;

    if (interval_us > 0) {
      next_tick += std::chrono::microseconds(interval_us);
      const auto now = std::chrono::steady_clock::now();
      if (next_tick > now) {
        std::this_thread::sleep_until(next_tick);
      } else {
        next_tick = now;  // behind schedule: don't accumulate debt
      }
    }
  }
  backlog.store(0, std::memory_order_relaxed);
}

ServingEngine::ServingEngine(const EngineConfig& config, ResponseFn on_response)
    : impl_(new Impl) {
  impl_->config = config;
  impl_->on_response = std::move(on_response);
  if (!impl_->on_response) {
    delete impl_;
    throw std::invalid_argument("ServingEngine: null response callback");
  }
  try {
    if (config.servers == 0) {
      throw std::invalid_argument("ServingEngine: servers must be >= 1");
    }
    if (config.shards == 0 || config.shards > config.servers) {
      throw std::invalid_argument(
          "ServingEngine: shards must be in [1, servers]");
    }
    if (config.chunks == 0) {
      throw std::invalid_argument("ServingEngine: chunks must be >= 1");
    }
    if (config.mapper == "hash") {
      impl_->mapper = std::make_unique<store::HashShardMapper>(
          config.chunks, stats::derive_seed(config.seed, 0x5eedull));
    } else if (config.mapper == "range") {
      const std::uint64_t key_space =
          config.key_space ? config.key_space : config.chunks;
      impl_->mapper =
          std::make_unique<store::RangeShardMapper>(config.chunks, key_space);
    } else {
      throw std::invalid_argument("ServingEngine: unknown mapper '" +
                                  config.mapper + "' (want hash|range)");
    }
    impl_->shard_hash_seed = stats::derive_seed(config.seed, 0x51a2dull);

    const FailureSpec failure_spec =
        parse_spec(config.failure_spec, config.servers);

    const std::size_t shard_count = config.shards;
    const std::size_t per_shard = config.servers / shard_count;
    const std::size_t remainder = config.servers % shard_count;
    core::ServerId base = 0;
    for (std::size_t i = 0; i < shard_count; ++i) {
      const std::size_t span = per_shard + (i < remainder ? 1 : 0);
      auto shard = std::make_unique<Impl::Shard>();
      shard->owner = impl_;
      shard->index = i;
      shard->base = base;
      shard->server_span = span;
      policies::PolicyConfig policy_config;
      policy_config.servers = span;
      policy_config.replication = config.replication;
      policy_config.processing_rate = config.processing_rate;
      policy_config.queue_capacity = config.queue_capacity;
      policy_config.seed =
          stats::derive_seed(config.seed, 1 + static_cast<std::uint64_t>(i));
      shard->balancer = policies::make_policy(config.policy, policy_config);
      if (!shard->balancer->set_request_sink(shard.get())) {
        throw std::invalid_argument(
            "ServingEngine: policy '" + config.policy +
            "' cannot report per-request outcomes (no RequestSink support)");
      }
      shard->schedule = make_shard_schedule(failure_spec, i, base, span,
                                            config.servers, shard_count,
                                            config.seed);
      shard->up_state.assign(span, 1);
      base += static_cast<core::ServerId>(span);
      impl_->shards.push_back(std::move(shard));
    }

    impl_->max_batch = config.max_batch;
    if (impl_->max_batch == 0) {
      impl_->max_batch = per_shard + (remainder ? 1 : 0);
    }
    impl_->waiting_limit =
        config.waiting_limit ? config.waiting_limit : 8 * impl_->max_batch;
  } catch (...) {
    delete impl_;
    throw;
  }
}

ServingEngine::~ServingEngine() {
  stop();
  delete impl_;
}

void ServingEngine::start() {
  if (impl_->started) return;
  impl_->started = true;
  impl_->accepting.store(true, std::memory_order_release);
  for (auto& shard : impl_->shards) {
    shard->thread = std::thread([s = shard.get()] { s->run(); });
  }
}

void ServingEngine::stop() {
  if (!impl_->started || impl_->stopped) return;
  impl_->stopped = true;
  impl_->accepting.store(false, std::memory_order_release);
  for (auto& shard : impl_->shards) {
    {
      std::lock_guard lock(shard->mutex);
      shard->stopping = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : impl_->shards) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

bool ServingEngine::submit(std::uint64_t conn_token, std::uint64_t request_id,
                           store::KeyId key) {
  if (!impl_->accepting.load(std::memory_order_acquire)) return false;
  const core::ChunkId chunk = impl_->mapper->chunk_of(key);
  Impl::Shard& shard = *impl_->shards[hashing::hash_to_bucket(
      chunk, impl_->shard_hash_seed, impl_->shards.size())];
  Waiting request;
  request.conn_token = conn_token;
  request.request_id = request_id;
  request.chunk = chunk;
  bool was_empty = false;
  {
    std::lock_guard lock(shard.mutex);
    if (shard.stopping) return false;
    was_empty = shard.inbound.empty();
    shard.inbound.push_back(request);
  }
  impl_->submitted.fetch_add(1, std::memory_order_relaxed);
  if (was_empty) shard.cv.notify_one();
  return true;
}

EngineStats ServingEngine::stats() const {
  EngineStats out;
  out.submitted = impl_->submitted.load(std::memory_order_relaxed);
  for (const auto& shard : impl_->shards) {
    out.completed += shard->completed.load(std::memory_order_relaxed);
    out.rejected += shard->rejected.load(std::memory_order_relaxed);
    out.overload_rejected +=
        shard->overload_rejected.load(std::memory_order_relaxed);
    out.ticks += shard->ticks.load(std::memory_order_relaxed);
    out.crashes += shard->crashes.load(std::memory_order_relaxed);
    out.recoveries += shard->recoveries.load(std::memory_order_relaxed);
    out.backlog += shard->backlog.load(std::memory_order_relaxed);
    out.servers_down += shard->down.load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t ServingEngine::shard_count() const { return impl_->shards.size(); }

const EngineConfig& ServingEngine::config() const { return impl_->config; }

core::ChunkId ServingEngine::chunk_of(store::KeyId key) const {
  return impl_->mapper->chunk_of(key);
}

std::size_t ServingEngine::shard_of_chunk(core::ChunkId chunk) const {
  return static_cast<std::size_t>(hashing::hash_to_bucket(
      chunk, impl_->shard_hash_seed, impl_->shards.size()));
}

}  // namespace rlb::engine
