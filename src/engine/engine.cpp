#include "engine/engine.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/balancer.hpp"
#include "core/metrics.hpp"
#include "core/safe_distribution.hpp"
#include "hashing/hash.hpp"
#include "obs/journal.hpp"
#include "obs/probes.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "policies/factory.hpp"
#include "stats/rng.hpp"

namespace rlb::engine {

namespace {

// Internal parsed form of a failure spec; shards derive their local
// schedules from it, parse_failure_spec() builds the global one.
struct FailureSpec {
  enum class Kind { kNone, kScript, kBernoulli, kRack };
  Kind kind = Kind::kNone;
  std::vector<core::ScriptedFailureSchedule::Event> events;  // kScript
  double rate = 0.0;                                         // fail rate
  double mttr = 0.0;
  std::size_t racks = 0;  // kRack
};

[[noreturn]] void bad_spec(const std::string& spec, const char* why) {
  throw std::invalid_argument("failure spec '" + spec + "': " + why);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::uint64_t parse_u64(const std::string& spec, const std::string& field) {
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(field, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, "expected a non-negative integer");
  }
  if (pos != field.size()) bad_spec(spec, "trailing junk after integer");
  return static_cast<std::uint64_t>(value);
}

double parse_double(const std::string& spec, const std::string& field) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(field, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, "expected a number");
  }
  if (pos != field.size()) bad_spec(spec, "trailing junk after number");
  return value;
}

FailureSpec parse_spec(const std::string& spec, std::size_t servers) {
  FailureSpec out;
  if (spec.empty()) return out;
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) bad_spec(spec, "missing ':' after kind");
  const std::string kind = spec.substr(0, colon);
  const std::string body = spec.substr(colon + 1);
  if (kind == "script") {
    out.kind = FailureSpec::Kind::kScript;
    for (const std::string& part : split(body, ';')) {
      if (part.empty()) continue;
      const std::vector<std::string> fields = split(part, ',');
      if (fields.size() != 3) bad_spec(spec, "script events are tick,server,down|up");
      core::ScriptedFailureSchedule::Event event;
      event.step = static_cast<core::Time>(parse_u64(spec, fields[0]));
      event.server = static_cast<core::ServerId>(parse_u64(spec, fields[1]));
      if (event.server >= servers) bad_spec(spec, "server id out of range");
      if (fields[2] == "down") {
        event.up = false;
      } else if (fields[2] == "up") {
        event.up = true;
      } else {
        bad_spec(spec, "event state must be 'down' or 'up'");
      }
      out.events.push_back(event);
    }
    if (out.events.empty()) bad_spec(spec, "script has no events");
  } else if (kind == "bernoulli") {
    out.kind = FailureSpec::Kind::kBernoulli;
    const std::vector<std::string> fields = split(body, ',');
    if (fields.size() != 2) bad_spec(spec, "bernoulli takes fail_rate,mttr");
    out.rate = parse_double(spec, fields[0]);
    out.mttr = parse_double(spec, fields[1]);
    if (out.rate < 0.0 || out.rate > 1.0) bad_spec(spec, "fail_rate not in [0,1]");
    if (out.mttr < 0.0) bad_spec(spec, "mttr must be >= 0");
  } else if (kind == "rack") {
    out.kind = FailureSpec::Kind::kRack;
    const std::vector<std::string> fields = split(body, ',');
    if (fields.size() != 3) bad_spec(spec, "rack takes racks,rack_fail_rate,mttr");
    out.racks = static_cast<std::size_t>(parse_u64(spec, fields[0]));
    out.rate = parse_double(spec, fields[1]);
    out.mttr = parse_double(spec, fields[2]);
    if (out.racks == 0) bad_spec(spec, "racks must be >= 1");
    if (out.rate < 0.0 || out.rate > 1.0) bad_spec(spec, "rack_fail_rate not in [0,1]");
    if (out.mttr < 0.0) bad_spec(spec, "mttr must be >= 0");
  } else {
    bad_spec(spec, "unknown kind (want script/bernoulli/rack)");
  }
  return out;
}

// The per-shard schedule over [base, base+count) local servers.  Scripted
// events are filtered and remapped to local ids; stochastic schedules get
// an independent derived seed per shard (each shard has its own tick
// clock, so one global schedule cannot be shared across workers).  A rack
// spec splits its racks across shards proportionally, at least one each.
std::unique_ptr<core::FailureSchedule> make_shard_schedule(
    const FailureSpec& spec, std::size_t shard, std::size_t base,
    std::size_t count, std::size_t total_servers, std::size_t total_shards,
    std::uint64_t seed) {
  const std::uint64_t shard_seed =
      stats::derive_seed(seed, 0x9f0bull + static_cast<std::uint64_t>(shard));
  switch (spec.kind) {
    case FailureSpec::Kind::kNone:
      return nullptr;
    case FailureSpec::Kind::kScript: {
      std::vector<core::ScriptedFailureSchedule::Event> local;
      for (const auto& event : spec.events) {
        if (event.server < base || event.server >= base + count) continue;
        core::ScriptedFailureSchedule::Event remapped = event;
        remapped.server = event.server - static_cast<core::ServerId>(base);
        local.push_back(remapped);
      }
      if (local.empty()) return nullptr;
      return std::make_unique<core::ScriptedFailureSchedule>(std::move(local));
    }
    case FailureSpec::Kind::kBernoulli:
      return std::make_unique<core::BernoulliFailureSchedule>(
          spec.rate, spec.mttr, shard_seed);
    case FailureSpec::Kind::kRack: {
      // Proportional share of the racks, minimum one per shard.
      std::size_t racks = spec.racks * count / std::max<std::size_t>(total_servers, 1);
      if (racks == 0) racks = 1;
      if (racks > count) racks = count;
      (void)total_shards;
      return std::make_unique<core::RackFailureSchedule>(racks, spec.rate,
                                                         spec.mttr, shard_seed);
    }
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<core::FailureSchedule> parse_failure_spec(
    const std::string& spec, std::size_t servers, std::uint64_t seed) {
  const FailureSpec parsed = parse_spec(spec, servers);
  switch (parsed.kind) {
    case FailureSpec::Kind::kNone:
      return nullptr;
    case FailureSpec::Kind::kScript:
      return std::make_unique<core::ScriptedFailureSchedule>(parsed.events);
    case FailureSpec::Kind::kBernoulli:
      return std::make_unique<core::BernoulliFailureSchedule>(
          parsed.rate, parsed.mttr, seed);
    case FailureSpec::Kind::kRack:
      return std::make_unique<core::RackFailureSchedule>(parsed.racks,
                                                         parsed.rate,
                                                         parsed.mttr, seed);
  }
  return nullptr;
}

namespace {

// One inbound GET waiting to be routed.
struct Waiting {
  std::uint64_t conn_token = 0;
  std::uint64_t request_id = 0;
  core::ChunkId chunk = 0;
  std::uint64_t enqueue_tick = 0;
  // obs::now_ns() at submit(); anchors the wire-to-response latency probe.
  std::uint64_t submit_ns = 0;
  // Waiting-room depth observed at admission (span annotation).
  std::uint64_t queue_depth = 0;
  // Wire-propagated trace context; invalid (trace_id 0) for untraced
  // requests.
  obs::TraceContext trace;
};

// One request delivered into the balancer, awaiting its sink event.
struct Pending {
  std::uint64_t conn_token = 0;
  std::uint64_t request_id = 0;
  // Ticks spent in the waiting room before delivery (added to the
  // balancer-reported wait for the end-to-end wait_steps).
  std::uint32_t waited = 0;
  std::uint64_t submit_ns = 0;
  std::uint64_t queue_depth = 0;
  obs::TraceContext trace;
};

}  // namespace

struct ServingEngine::Impl {
  // One worker thread owning a contiguous server partition and a private
  // balancer over it.  Implements RequestSink to turn the balancer's
  // chunk-level outcomes back into per-request responses via the per-chunk
  // in-flight FIFO (sound because step() consumes distinct chunks and the
  // balancer's queues are FIFO per chunk delivery order).
  struct Shard final : core::RequestSink {
    Impl* owner = nullptr;
    std::size_t index = 0;
    core::ServerId base = 0;
    std::size_t server_span = 0;
    std::unique_ptr<core::LoadBalancer> balancer;
    std::unique_ptr<core::FailureSchedule> schedule;
    core::Metrics metrics;
    std::thread thread;

    // Producer side (submit) — guarded by mutex.
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<Waiting> inbound;
    bool stopping = false;

    // Worker-private state.
    std::deque<Waiting> waiting;
    std::unordered_map<core::ChunkId, std::deque<Pending>> inflight;
    std::vector<std::uint8_t> up_state;
    std::uint64_t tick = 0;
    // Shed journal rate limit: at most one kShed event per shard per
    // ~100 ms, so an overload storm reports without flooding the ring.
    std::uint64_t last_shed_journal_ns = 0;

    // Live counters (worker writes, stats()/snapshot() read).  The STATS
    // plane reads these directly, so they stay live with obs compiled out.
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> rejected_queue_full{0};
    std::atomic<std::uint64_t> rejected_all_down{0};
    std::atomic<std::uint64_t> rejected_drop{0};
    std::atomic<std::uint64_t> overload_rejected{0};
    std::atomic<std::uint64_t> ticks{0};
    std::atomic<std::uint64_t> crashes{0};
    std::atomic<std::uint64_t> recoveries{0};
    std::atomic<std::uint64_t> backlog{0};
    std::atomic<std::size_t> down{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batched_chunks{0};
    std::atomic<std::uint64_t> max_batch_seen{0};
    std::atomic<std::uint64_t> step_ns{0};
    std::atomic<std::uint64_t> inbound_depth{0};
    std::atomic<std::uint64_t> waiting_depth{0};
    std::atomic<std::uint64_t> inflight_count{0};

    // Wire-to-response latency in log2-microsecond buckets (the layout the
    // STATS snapshot ships; see net::LatencyStats).
    net::AtomicLatency latency;

    // Queue-wait decomposition (v3 stats): submit() to drain-tick delivery
    // — the MPSC queue + waiting-room share of the latency above.
    net::AtomicLatency queue_wait;

    // Per-server backlog, refreshed once per tick from the balancer.  The
    // scrape-side safe-set monitor merges these across shards to rebuild
    // the global backlog vector without touching any worker lock.
    std::unique_ptr<std::atomic<std::uint32_t>[]> backlog_by_server;
    std::vector<std::uint32_t> backlog_scratch;  // worker-private

    void record_latency(std::uint64_t submit_ns);

    void record_queue_wait(std::uint64_t wait_ns);

    /// Land one engine.request span in the flight recorder (no-op for
    /// untraced requests and under RLB_OBS_DISABLED).  `cause` is the
    /// response's status byte (0 = served).
    void record_span(const obs::TraceContext& trace, std::uint64_t submit_ns,
                     std::uint64_t queue_depth, std::uint8_t cause) {
#if !defined(RLB_OBS_DISABLED)
      if (!trace.valid() || !obs::span_recording_enabled()) return;
      obs::Span span;
      span.trace_id = trace.trace_id;
      span.span_id = obs::next_span_id();
      span.parent_span_id = trace.parent_span_id;
      span.start_ns = submit_ns;
      span.end_ns = obs::now_ns();
      span.queue_depth = queue_depth;
      span.name = "engine.request";
      span.shard = static_cast<std::uint32_t>(index);
      span.tid = static_cast<std::uint32_t>(obs::thread_index());
      span.flags = trace.flags;
      span.cause = cause;
      obs::SpanRecorder::instance().record(span);
#else
      (void)trace;
      (void)submit_ns;
      (void)queue_depth;
      (void)cause;
#endif
    }

    void on_served(core::ChunkId x, core::ServerId server,
                   std::uint64_t wait_steps) override {
      Pending pending;
      if (!pop_pending(x, pending)) return;
      EngineResponse response;
      response.conn_token = pending.conn_token;
      response.request_id = pending.request_id;
      response.status = kEngineOk;
      response.server = base + server;
      response.wait_steps =
          pending.waited + static_cast<std::uint32_t>(wait_steps);
      completed.fetch_add(1, std::memory_order_relaxed);
      owner->win_latency.add(kWinCompleted);
      record_latency(pending.submit_ns);
      record_span(pending.trace, pending.submit_ns, pending.queue_depth,
                  kEngineOk);
      owner->respond(response);
    }

    void on_rejected(core::ChunkId x) override {
      Pending pending;
      if (!pop_pending(x, pending)) return;
      EngineResponse response;
      response.conn_token = pending.conn_token;
      response.request_id = pending.request_id;
      response.status = kEngineReject;
      rejected.fetch_add(1, std::memory_order_relaxed);
      owner->win_latency.add(kWinRejected);
      record_latency(pending.submit_ns);
      record_span(pending.trace, pending.submit_ns, pending.queue_depth,
                  kEngineReject);
      owner->respond(response);
    }

    void on_rejected(core::ChunkId x, core::RejectCause cause) override {
      switch (cause) {
        case core::RejectCause::kQueueFull:
          rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
          break;
        case core::RejectCause::kAllReplicasDown:
          rejected_all_down.fetch_add(1, std::memory_order_relaxed);
          break;
        case core::RejectCause::kQueueDrop:
          rejected_drop.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      on_rejected(x);
    }

    bool pop_pending(core::ChunkId x, Pending& out) {
      const auto it = inflight.find(x);
      if (it == inflight.end() || it->second.empty()) {
        // A sink event with no matching delivery would mean the balancer
        // broke the one-event-per-request contract; count, don't crash.
        static obs::Counter orphans("engine.sink_orphans");
        orphans.add();
        return false;
      }
      out = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) inflight.erase(it);
      inflight_count.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }

    void run();
    void apply_failures();
    std::size_t build_batch(std::vector<core::ChunkId>& batch,
                            std::size_t max_batch);
  };

  EngineConfig config;
  ResponseFn on_response;
  std::unique_ptr<store::KeyMapper> mapper;
  std::uint64_t shard_hash_seed = 0;
  std::size_t max_batch = 0;
  std::size_t waiting_limit = 0;
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<bool> accepting{false};
  std::atomic<std::uint64_t> submitted{0};
  // Repair plane (StatsSnapshot v4): the placement epoch last heard on a
  // router heartbeat, and this backend's migration traffic totals.
  std::atomic<std::uint64_t> placement_epoch{0};
  std::atomic<std::uint64_t> migrations_in{0};
  std::atomic<std::uint64_t> migrations_out{0};
  std::atomic<std::uint64_t> migration_bytes_in{0};
  std::atomic<std::uint64_t> migration_bytes_out{0};
  std::uint64_t start_ns = 0;  // obs::now_ns() at start(); 0 until then
  bool started = false;
  bool stopped = false;

  // Health plane (StatsSnapshot v5): trailing-window latency/queue-wait
  // deltas.  win_latency's counter slots double as the windowed
  // submitted/completed/rejected counters.
  static constexpr std::size_t kWinSubmitted = 0;
  static constexpr std::size_t kWinCompleted = 1;
  static constexpr std::size_t kWinRejected = 2;
  obs::WindowedAggregator win_latency;
  obs::WindowedAggregator win_queue_wait;
  // Safe-set edge trigger: journal MEMBER-style transitions only when the
  // invariant flips, not on every scrape.
  std::atomic<bool> safe_violated{false};

  void respond(const EngineResponse& response) { on_response(response); }
};

void ServingEngine::Impl::Shard::record_latency(std::uint64_t submit_ns) {
  if (submit_ns == 0) return;
  const std::uint64_t now = obs::now_ns();
  const std::uint64_t us = now > submit_ns ? (now - submit_ns) / 1000 : 0;
  latency.observe_us(us);
  owner->win_latency.observe_us(us, now);
}

void ServingEngine::Impl::Shard::record_queue_wait(std::uint64_t wait_ns) {
  queue_wait.observe_us(wait_ns / 1000);
  owner->win_queue_wait.observe_us(wait_ns / 1000);
}

void ServingEngine::Impl::Shard::apply_failures() {
  if (!schedule) return;
  std::vector<core::FailureTransition> transitions;
  schedule->transitions(static_cast<core::Time>(tick), up_state, transitions);
  for (const auto& transition : transitions) {
    if (transition.server >= server_span) continue;
    const bool was_up = up_state[transition.server] != 0;
    if (was_up == transition.up) continue;  // no-op transition
    up_state[transition.server] = transition.up ? 1 : 0;
    balancer->set_server_up(transition.server, transition.up,
                            owner->config.dump_queue_on_crash, metrics);
    if (transition.up) {
      recoveries.fetch_add(1, std::memory_order_relaxed);
      down.fetch_sub(1, std::memory_order_relaxed);
      RLB_TRACE_EVENT(obs::EventKind::kFault, "engine.recover",
                      base + transition.server, tick);
    } else {
      crashes.fetch_add(1, std::memory_order_relaxed);
      down.fetch_add(1, std::memory_order_relaxed);
      RLB_TRACE_EVENT(obs::EventKind::kFault, "engine.crash",
                      base + transition.server, tick);
    }
  }
}

std::size_t ServingEngine::Impl::Shard::build_batch(
    std::vector<core::ChunkId>& batch, std::size_t max_batch) {
  batch.clear();
  std::unordered_set<core::ChunkId> in_batch;
  std::vector<Waiting> deferred;  // duplicate chunks -> next tick
  // One clock read covers every delivery this tick; queue wait is
  // submit() -> here (MPSC queue + waiting room).
  const std::uint64_t deliver_ns = waiting.empty() ? 0 : obs::now_ns();
  while (!waiting.empty() && batch.size() < max_batch) {
    Waiting request = waiting.front();
    waiting.pop_front();
    if (!in_batch.insert(request.chunk).second) {
      deferred.push_back(request);
      continue;
    }
    batch.push_back(request.chunk);
    Pending pending;
    pending.conn_token = request.conn_token;
    pending.request_id = request.request_id;
    pending.waited = static_cast<std::uint32_t>(tick - request.enqueue_tick);
    pending.submit_ns = request.submit_ns;
    pending.queue_depth = request.queue_depth;
    pending.trace = request.trace;
    if (request.submit_ns != 0 && deliver_ns > request.submit_ns) {
      record_queue_wait(deliver_ns - request.submit_ns);
    }
    inflight[request.chunk].push_back(pending);
    inflight_count.fetch_add(1, std::memory_order_relaxed);
  }
  // Deferred requests keep their arrival-order priority.
  waiting.insert(waiting.begin(), deferred.begin(), deferred.end());
  return batch.size();
}

void ServingEngine::Impl::Shard::run() {
  static obs::Counter tick_counter("engine.ticks");
  static obs::Histogram batch_hist("engine.batch_size");
  static obs::Histogram step_hist("engine.step_ns");
  static obs::Gauge backlog_gauge("engine.backlog");
  static obs::Gauge waiting_gauge("engine.waiting_depth");
  // Per-shard probes: the registry's per-thread shards merge counters on
  // scrape, but gauges merge as min/max, so per-shard visibility in
  // --probes output needs per-shard names.
  const std::string shard_tag = "engine.shard" + std::to_string(index);
  obs::Gauge shard_backlog_gauge(shard_tag + ".backlog");
  obs::Gauge shard_waiting_gauge(shard_tag + ".waiting_depth");
  obs::Gauge shard_inbound_gauge(shard_tag + ".inbound_depth");

  std::vector<core::ChunkId> batch;
  std::vector<Waiting> incoming;
  const std::uint64_t interval_us = owner->config.tick_interval_us;
  auto next_tick = std::chrono::steady_clock::now();
  std::uint64_t last_backlog = 0;
  bool last_backlog_valid = false;

  for (;;) {
    // Refresh the per-server backlog view (feeds the safe-set monitor) and
    // derive the total from the same sample.
    balancer->backlogs(backlog_scratch);
    std::uint64_t balancer_backlog = 0;
    for (std::size_t s = 0; s < backlog_scratch.size(); ++s) {
      backlog_by_server[s].store(backlog_scratch[s],
                                 std::memory_order_relaxed);
      balancer_backlog += backlog_scratch[s];
    }
    backlog.store(balancer_backlog, std::memory_order_relaxed);
    bool shutting_down = false;
    std::size_t drained = 0;
    {
      std::unique_lock lock(mutex);
      if (inbound.empty() && !stopping && waiting.empty() &&
          balancer_backlog == 0) {
        cv.wait(lock, [&] { return !inbound.empty() || stopping; });
      }
      incoming.swap(inbound);
      shutting_down = stopping;
      drained = incoming.size();
    }
    if (drained > 0) {
      inbound_depth.fetch_sub(drained, std::memory_order_relaxed);
    }

    // Admission control: the waiting room bounds pre-routing memory; an
    // overflowing arrival is the engine's own rejection, before the
    // policy ever sees it.
    for (const Waiting& request : incoming) {
      if (waiting.size() >= owner->waiting_limit) {
        const std::uint64_t sheds =
            overload_rejected.fetch_add(1, std::memory_order_relaxed) + 1;
        owner->win_latency.add(Impl::kWinRejected);
        const std::uint64_t shed_now = obs::now_ns();
        if (shed_now - last_shed_journal_ns > 100'000'000) {
          last_shed_journal_ns = shed_now;
          obs::Journal::instance().append(obs::JournalType::kShed, index,
                                          sheds);
        }
        EngineResponse response;
        response.conn_token = request.conn_token;
        response.request_id = request.request_id;
        response.status = kEngineReject;
        record_latency(request.submit_ns);
        record_span(request.trace, request.submit_ns, waiting.size(),
                    kEngineReject);
        owner->respond(response);
        continue;
      }
      Waiting admitted = request;
      admitted.enqueue_tick = tick;
      admitted.queue_depth = waiting.size();
      waiting.push_back(admitted);
    }
    incoming.clear();

    apply_failures();

    const std::size_t batch_size = build_batch(batch, owner->max_batch);
    waiting_depth.store(waiting.size(), std::memory_order_relaxed);
    if (batch_size > 0 || balancer_backlog > 0) {
      obs::ObsTimer step_timer("engine.step",
                               obs::enabled() ? &step_hist : nullptr, index);
      balancer->step(static_cast<core::Time>(tick), batch, metrics);
      const double step_seconds = step_timer.stop();
      step_ns.fetch_add(static_cast<std::uint64_t>(step_seconds * 1e9),
                        std::memory_order_relaxed);
      batch_hist.observe(static_cast<double>(batch_size));
    }
    if (batch_size > 0) {
      batches.fetch_add(1, std::memory_order_relaxed);
      batched_chunks.fetch_add(batch_size, std::memory_order_relaxed);
      std::uint64_t prev = max_batch_seen.load(std::memory_order_relaxed);
      while (batch_size > prev &&
             !max_batch_seen.compare_exchange_weak(
                 prev, batch_size, std::memory_order_relaxed)) {
      }
    }
    ++tick;
    ticks.fetch_add(1, std::memory_order_relaxed);
    tick_counter.add();
    backlog_gauge.set(static_cast<double>(balancer->total_backlog()));
    waiting_gauge.set(static_cast<double>(waiting.size()));
    shard_backlog_gauge.set(static_cast<double>(balancer->total_backlog()));
    shard_waiting_gauge.set(static_cast<double>(waiting.size()));
    shard_inbound_gauge.set(static_cast<double>(
        inbound_depth.load(std::memory_order_relaxed)));
    RLB_TRACE_EVENT(obs::EventKind::kEngine, "engine.tick", index,
                    batch_size);

    if (shutting_down) {
      std::unique_lock lock(mutex);
      const bool drained =
          inbound.empty() && waiting.empty() && balancer->total_backlog() == 0;
      if (drained) break;
      // Progress detection: with every remaining server down (or a policy
      // that cannot drain), backlog freezes — flush rejects the residue so
      // every client still gets an answer before the thread exits.
      const std::uint64_t now_backlog = balancer->total_backlog();
      if (batch_size == 0 && last_backlog_valid && now_backlog == last_backlog &&
          inbound.empty()) {
        lock.unlock();
        balancer->flush(metrics);
        for (auto& [chunk, queue] : inflight) {
          // Anything the balancer could not attribute (sink unsupported
          // paths) is answered as rejected rather than leaked.
          for (const Pending& pending : queue) {
            EngineResponse response;
            response.conn_token = pending.conn_token;
            response.request_id = pending.request_id;
            response.status = kEngineReject;
            rejected.fetch_add(1, std::memory_order_relaxed);
            record_latency(pending.submit_ns);
            record_span(pending.trace, pending.submit_ns,
                        pending.queue_depth, kEngineReject);
            owner->respond(response);
          }
          inflight_count.fetch_sub(queue.size(), std::memory_order_relaxed);
          queue.clear();
        }
        inflight.clear();
        break;
      }
      last_backlog = now_backlog;
      last_backlog_valid = true;
      continue;  // keep draining as fast as possible, skip pacing
    }
    last_backlog_valid = false;

    if (interval_us > 0) {
      next_tick += std::chrono::microseconds(interval_us);
      const auto now = std::chrono::steady_clock::now();
      if (next_tick > now) {
        std::this_thread::sleep_until(next_tick);
      } else {
        next_tick = now;  // behind schedule: don't accumulate debt
      }
    }
  }
  backlog.store(0, std::memory_order_relaxed);
}

ServingEngine::ServingEngine(const EngineConfig& config, ResponseFn on_response)
    : impl_(new Impl) {
  impl_->config = config;
  impl_->on_response = std::move(on_response);
  if (!impl_->on_response) {
    delete impl_;
    throw std::invalid_argument("ServingEngine: null response callback");
  }
  try {
    if (config.servers == 0) {
      throw std::invalid_argument("ServingEngine: servers must be >= 1");
    }
    if (config.shards == 0 || config.shards > config.servers) {
      throw std::invalid_argument(
          "ServingEngine: shards must be in [1, servers]");
    }
    if (config.chunks == 0) {
      throw std::invalid_argument("ServingEngine: chunks must be >= 1");
    }
    if (config.mapper == "hash") {
      impl_->mapper = std::make_unique<store::HashShardMapper>(
          config.chunks, stats::derive_seed(config.seed, 0x5eedull));
    } else if (config.mapper == "range") {
      const std::uint64_t key_space =
          config.key_space ? config.key_space : config.chunks;
      impl_->mapper =
          std::make_unique<store::RangeShardMapper>(config.chunks, key_space);
    } else {
      throw std::invalid_argument("ServingEngine: unknown mapper '" +
                                  config.mapper + "' (want hash|range)");
    }
    impl_->shard_hash_seed = stats::derive_seed(config.seed, 0x51a2dull);

    const FailureSpec failure_spec =
        parse_spec(config.failure_spec, config.servers);

    const std::size_t shard_count = config.shards;
    const std::size_t per_shard = config.servers / shard_count;
    const std::size_t remainder = config.servers % shard_count;
    core::ServerId base = 0;
    for (std::size_t i = 0; i < shard_count; ++i) {
      const std::size_t span = per_shard + (i < remainder ? 1 : 0);
      auto shard = std::make_unique<Impl::Shard>();
      shard->owner = impl_;
      shard->index = i;
      shard->base = base;
      shard->server_span = span;
      policies::PolicyConfig policy_config;
      policy_config.servers = span;
      policy_config.replication = config.replication;
      policy_config.processing_rate = config.processing_rate;
      policy_config.queue_capacity = config.queue_capacity;
      policy_config.seed =
          stats::derive_seed(config.seed, 1 + static_cast<std::uint64_t>(i));
      shard->balancer = policies::make_policy(config.policy, policy_config);
      if (!shard->balancer->set_request_sink(shard.get())) {
        throw std::invalid_argument(
            "ServingEngine: policy '" + config.policy +
            "' cannot report per-request outcomes (no RequestSink support)");
      }
      shard->schedule = make_shard_schedule(failure_spec, i, base, span,
                                            config.servers, shard_count,
                                            config.seed);
      shard->up_state.assign(span, 1);
      shard->backlog_by_server =
          std::make_unique<std::atomic<std::uint32_t>[]>(span);
      for (std::size_t s = 0; s < span; ++s) {
        shard->backlog_by_server[s].store(0, std::memory_order_relaxed);
      }
      base += static_cast<core::ServerId>(span);
      impl_->shards.push_back(std::move(shard));
    }

    impl_->max_batch = config.max_batch;
    if (impl_->max_batch == 0) {
      impl_->max_batch = per_shard + (remainder ? 1 : 0);
    }
    impl_->waiting_limit =
        config.waiting_limit ? config.waiting_limit : 8 * impl_->max_batch;
  } catch (...) {
    delete impl_;
    throw;
  }
}

ServingEngine::~ServingEngine() {
  stop();
  delete impl_;
}

void ServingEngine::start() {
  if (impl_->started) return;
  impl_->started = true;
  impl_->start_ns = obs::now_ns();
  impl_->accepting.store(true, std::memory_order_release);
  for (auto& shard : impl_->shards) {
    shard->thread = std::thread([s = shard.get()] { s->run(); });
  }
}

void ServingEngine::stop() {
  if (!impl_->started || impl_->stopped) return;
  impl_->stopped = true;
  impl_->accepting.store(false, std::memory_order_release);
  for (auto& shard : impl_->shards) {
    {
      std::lock_guard lock(shard->mutex);
      shard->stopping = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : impl_->shards) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

bool ServingEngine::submit(std::uint64_t conn_token, std::uint64_t request_id,
                           store::KeyId key) {
  return submit(conn_token, request_id, key, obs::TraceContext{});
}

bool ServingEngine::submit(std::uint64_t conn_token, std::uint64_t request_id,
                           store::KeyId key, const obs::TraceContext& trace) {
  if (!impl_->accepting.load(std::memory_order_acquire)) return false;
  const core::ChunkId chunk = impl_->mapper->chunk_of(key);
  Impl::Shard& shard = *impl_->shards[hashing::hash_to_bucket(
      chunk, impl_->shard_hash_seed, impl_->shards.size())];
  Waiting request;
  request.conn_token = conn_token;
  request.request_id = request_id;
  request.chunk = chunk;
  request.submit_ns = obs::now_ns();
  request.trace = trace;
  bool was_empty = false;
  {
    std::lock_guard lock(shard.mutex);
    if (shard.stopping) return false;
    was_empty = shard.inbound.empty();
    shard.inbound.push_back(request);
  }
  impl_->submitted.fetch_add(1, std::memory_order_relaxed);
  shard.submitted.fetch_add(1, std::memory_order_relaxed);
  shard.inbound_depth.fetch_add(1, std::memory_order_relaxed);
  impl_->win_latency.add(Impl::kWinSubmitted);
  if (was_empty) shard.cv.notify_one();
  return true;
}

void ServingEngine::submit_batch(const SubmitItem* items, std::size_t count,
                                 std::vector<std::size_t>& rejected) {
  if (count == 0) return;
  if (!impl_->accepting.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < count; ++i) rejected.push_back(i);
    return;
  }
  const std::size_t nshards = impl_->shards.size();
  // One timestamp for the whole batch: the items arrived in the same
  // server wakeup, so they share a wire arrival time.
  const std::uint64_t now = obs::now_ns();
  struct BatchEntry {
    Waiting request;
    std::size_t index;
  };
  // Scratch group buffers live across calls (the server's loop thread is
  // the steady-state caller): zero allocations once warm.
  thread_local std::vector<std::vector<BatchEntry>> groups;
  if (groups.size() < nshards) groups.resize(nshards);
  for (std::size_t i = 0; i < count; ++i) {
    const SubmitItem& item = items[i];
    Waiting request;
    request.conn_token = item.conn_token;
    request.request_id = item.request_id;
    request.chunk = impl_->mapper->chunk_of(item.key);
    request.submit_ns = now;
    request.trace = item.trace;
    const std::size_t s = hashing::hash_to_bucket(
        request.chunk, impl_->shard_hash_seed, nshards);
    groups[s].push_back(BatchEntry{request, i});
  }
  for (std::size_t s = 0; s < nshards; ++s) {
    if (groups[s].empty()) continue;
    Impl::Shard& shard = *impl_->shards[s];
    const std::size_t n = groups[s].size();
    bool was_empty = false;
    bool admitted = true;
    {
      std::lock_guard lock(shard.mutex);
      if (shard.stopping) {
        admitted = false;
      } else {
        was_empty = shard.inbound.empty();
        for (const BatchEntry& entry : groups[s]) {
          shard.inbound.push_back(entry.request);
        }
      }
    }
    if (admitted) {
      impl_->submitted.fetch_add(n, std::memory_order_relaxed);
      shard.submitted.fetch_add(n, std::memory_order_relaxed);
      shard.inbound_depth.fetch_add(n, std::memory_order_relaxed);
      impl_->win_latency.add(Impl::kWinSubmitted, n, now);
      if (was_empty) shard.cv.notify_one();
    } else {
      for (const BatchEntry& entry : groups[s]) {
        rejected.push_back(entry.index);
      }
    }
    groups[s].clear();
  }
}

EngineStats ServingEngine::stats() const {
  EngineStats out;
  out.submitted = impl_->submitted.load(std::memory_order_relaxed);
  for (const auto& shard : impl_->shards) {
    out.completed += shard->completed.load(std::memory_order_relaxed);
    out.rejected += shard->rejected.load(std::memory_order_relaxed);
    out.rejected_queue_full +=
        shard->rejected_queue_full.load(std::memory_order_relaxed);
    out.rejected_all_down +=
        shard->rejected_all_down.load(std::memory_order_relaxed);
    out.rejected_drop += shard->rejected_drop.load(std::memory_order_relaxed);
    out.overload_rejected +=
        shard->overload_rejected.load(std::memory_order_relaxed);
    out.ticks += shard->ticks.load(std::memory_order_relaxed);
    out.crashes += shard->crashes.load(std::memory_order_relaxed);
    out.recoveries += shard->recoveries.load(std::memory_order_relaxed);
    out.backlog += shard->backlog.load(std::memory_order_relaxed);
    out.servers_down += shard->down.load(std::memory_order_relaxed);
  }
  return out;
}

net::StatsSnapshot ServingEngine::snapshot() const {
  static obs::Gauge safe_ratio_gauge("engine.safe.worst_ratio");

  net::StatsSnapshot out;
  out.uptime_ms =
      impl_->start_ns ? (obs::now_ns() - impl_->start_ns) / 1000000 : 0;
  out.role = net::NodeRole::kBackend;
  out.backend_id = impl_->config.backend_id;
  out.policy = impl_->config.policy;
  out.servers = static_cast<std::uint32_t>(impl_->config.servers);
  out.replication = impl_->config.replication;
  out.processing_rate = impl_->config.processing_rate;
  out.queue_capacity = static_cast<std::uint32_t>(impl_->config.queue_capacity);
  out.shard_count = static_cast<std::uint32_t>(impl_->shards.size());

  std::vector<std::uint32_t> global_backlogs;
  global_backlogs.reserve(impl_->config.servers);

  for (const auto& shard : impl_->shards) {
    net::ShardStats row;
    row.shard = static_cast<std::uint32_t>(shard->index);
    row.submitted = shard->submitted.load(std::memory_order_relaxed);
    row.completed = shard->completed.load(std::memory_order_relaxed);
    row.rejected_queue_full =
        shard->rejected_queue_full.load(std::memory_order_relaxed);
    row.rejected_all_down =
        shard->rejected_all_down.load(std::memory_order_relaxed);
    row.rejected_admission =
        shard->overload_rejected.load(std::memory_order_relaxed);
    row.rejected_drop = shard->rejected_drop.load(std::memory_order_relaxed);
    row.ticks = shard->ticks.load(std::memory_order_relaxed);
    row.batches = shard->batches.load(std::memory_order_relaxed);
    row.batched_chunks = shard->batched_chunks.load(std::memory_order_relaxed);
    row.max_batch = shard->max_batch_seen.load(std::memory_order_relaxed);
    row.inbound_depth = shard->inbound_depth.load(std::memory_order_relaxed);
    row.waiting_depth = shard->waiting_depth.load(std::memory_order_relaxed);
    row.inflight = shard->inflight_count.load(std::memory_order_relaxed);
    row.backlog = shard->backlog.load(std::memory_order_relaxed);
    row.servers_down = shard->down.load(std::memory_order_relaxed);
    row.step_ns = shard->step_ns.load(std::memory_order_relaxed);
    out.shards.push_back(row);

    shard->latency.merge_into(out.latency);
    shard->queue_wait.merge_into(out.queue_wait);

    for (std::size_t s = 0; s < shard->server_span; ++s) {
      global_backlogs.push_back(
          shard->backlog_by_server[s].load(std::memory_order_relaxed));
    }
  }

  // Safe-set invariant monitor (Def 3.2): the per-shard samples splice back
  // into the global m-server backlog vector, so the m/2^j bounds keep their
  // whole-cluster meaning even though each shard balances a partition.
  const std::vector<core::SafeSetLevel> levels =
      core::safe_set_levels(global_backlogs);
  out.safe_set.reserve(levels.size());
  for (const core::SafeSetLevel& level : levels) {
    net::SafeSetLevelStats row;
    row.level = level.level;
    row.observed = level.observed;
    row.bound = level.bound;
    row.ratio = level.ratio;
    out.safe_set.push_back(row);
    if (level.ratio > out.safe_worst_ratio) {
      out.safe_worst_ratio = level.ratio;
    }
    if (out.safe_violated_level == 0 && level.ratio > 1.0) {
      out.safe_violated_level = level.level;
    }
  }
  safe_ratio_gauge.set(out.safe_worst_ratio);

  // Edge-triggered journal entries: one event per flip of the invariant,
  // not one per scrape.  Ratio travels in parts-per-million (the journal
  // carries integers).
  const bool violated_now = out.safe_violated_level != 0;
  if (violated_now !=
      impl_->safe_violated.exchange(violated_now, std::memory_order_relaxed)) {
    obs::Journal::instance().append(
        violated_now ? obs::JournalType::kSafeSetViolated
                     : obs::JournalType::kSafeSetRecovered,
        out.safe_violated_level,
        static_cast<std::uint64_t>(out.safe_worst_ratio * 1e6));
  }

  out.placement_epoch = impl_->placement_epoch.load(std::memory_order_relaxed);
  out.repair.migrations_in =
      impl_->migrations_in.load(std::memory_order_relaxed);
  out.repair.migrations_out =
      impl_->migrations_out.load(std::memory_order_relaxed);
  out.repair.migration_bytes_in =
      impl_->migration_bytes_in.load(std::memory_order_relaxed);
  out.repair.migration_bytes_out =
      impl_->migration_bytes_out.load(std::memory_order_relaxed);

  // Health plane (v5): trailing-window deltas, one clock read for both
  // aggregators so their spans agree.
  const std::uint64_t win_now = obs::now_ns();
  const obs::WindowedAggregator::Snapshot win =
      impl_->win_latency.read(win_now);
  out.window_span_ms = win.span_ms;
  out.win_submitted = win.counters[Impl::kWinSubmitted];
  out.win_completed = win.counters[Impl::kWinCompleted];
  out.win_rejected = win.counters[Impl::kWinRejected];
  out.win_latency.count = win.count;
  out.win_latency.sum_us = win.sum_us;
  out.win_latency.max_us = win.max_us;
  out.win_latency.buckets = win.buckets;
  const obs::WindowedAggregator::Snapshot win_qw =
      impl_->win_queue_wait.read(win_now);
  out.win_queue_wait.count = win_qw.count;
  out.win_queue_wait.sum_us = win_qw.sum_us;
  out.win_queue_wait.max_us = win_qw.max_us;
  out.win_queue_wait.buckets = win_qw.buckets;

  out.active_alerts = obs::active_alerts();
  return out;
}

void ServingEngine::set_placement_epoch(std::uint64_t epoch) {
  // Monotonic max: heartbeats from a router can interleave across
  // connections, and a stale frame must not roll the epoch back.
  std::uint64_t current =
      impl_->placement_epoch.load(std::memory_order_relaxed);
  while (epoch > current && !impl_->placement_epoch.compare_exchange_weak(
                                current, epoch, std::memory_order_relaxed)) {
  }
  if (epoch > current) {
    // This call raised the epoch (the CAS loop exits with current < epoch
    // only after a successful exchange): one journal event per adoption.
    obs::Journal::instance().append(obs::JournalType::kEpochCommit, epoch, 0);
  }
}

void ServingEngine::note_migration_in(std::uint64_t bytes) {
  impl_->migrations_in.fetch_add(1, std::memory_order_relaxed);
  impl_->migration_bytes_in.fetch_add(bytes, std::memory_order_relaxed);
}

void ServingEngine::note_migration_out(std::uint64_t bytes) {
  impl_->migrations_out.fetch_add(1, std::memory_order_relaxed);
  impl_->migration_bytes_out.fetch_add(bytes, std::memory_order_relaxed);
}

std::size_t ServingEngine::shard_count() const { return impl_->shards.size(); }

const EngineConfig& ServingEngine::config() const { return impl_->config; }

core::ChunkId ServingEngine::chunk_of(store::KeyId key) const {
  return impl_->mapper->chunk_of(key);
}

std::size_t ServingEngine::shard_of_chunk(core::ChunkId chunk) const {
  return static_cast<std::size_t>(hashing::hash_to_bucket(
      chunk, impl_->shard_hash_seed, impl_->shards.size()));
}

}  // namespace rlb::engine
