#include "stats/distributions.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace rlb::stats {

void shuffle(std::vector<std::uint64_t>& values, Rng& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(values[i - 1], values[j]);
  }
}

std::vector<std::uint64_t> sample_without_replacement(std::uint64_t universe,
                                                      std::size_t k, Rng& rng) {
  if (k > universe) {
    throw std::invalid_argument(
        "sample_without_replacement: k exceeds universe size");
  }
  // Floyd's algorithm: for j in [universe - k, universe), draw t in [0, j];
  // insert t unless present, else insert j.  Yields a uniform k-subset.
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::uint64_t> result;
  result.reserve(k);
  for (std::uint64_t j = universe - k; j < universe; ++j) {
    const std::uint64_t t = rng.next_below(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

std::vector<std::uint64_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::uint64_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  shuffle(perm, rng);
  return perm;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty universe");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: negative exponent");
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  cut_ = 1.0 - h_inverse(h(1.5) - std::pow(1.0, -s_));
}

double ZipfSampler::h(double x) const {
  // Antiderivative of x^{-s}:  x^{1-s}/(1-s), or log(x) at s = 1.
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double ZipfSampler::h_inverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow((1.0 - s_) * x, 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  if (n_ == 1) return 1;
  if (s_ == 0.0) return rng.next_below(n_) + 1;
  // Hörmann–Derflinger rejection-inversion over the hat function h.
  while (true) {
    const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
    const double x = h_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= cut_) return k;
    if (u >= h(kd + 0.5) - std::pow(kd, -s_)) return k;
  }
}

}  // namespace rlb::stats
