// Least-squares fits for scaling-law verification.
//
// The experiments validate asymptotic claims (max load ~ ln ln m / ln d,
// backlog tails ~ m / 2^j, ...) by fitting measured series against candidate
// growth functions and reporting slope + R².  A claim "grows like f(m)"
// passes when the fit against f is near-linear with positive slope and the
// fit against a faster-growing alternative has visibly worse shape.
#pragma once

#include <cstddef>
#include <vector>

namespace rlb::stats {

/// Result of an ordinary least-squares line fit y ≈ intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;
};

/// OLS fit of y against x.  Requires xs.size() == ys.size(); fewer than two
/// points yields a degenerate fit (slope 0, r² 0).
[[nodiscard]] LinearFit fit_linear(const std::vector<double>& xs,
                                   const std::vector<double>& ys);

/// Fit y against log2(x): verifies Θ(log m) growth.
[[nodiscard]] LinearFit fit_against_log2(const std::vector<double>& xs,
                                         const std::vector<double>& ys);

/// Fit y against log2(log2(x)): verifies Θ(log log m) growth.
/// Inputs with x <= 2 are skipped (log log undefined/non-positive).
[[nodiscard]] LinearFit fit_against_loglog2(const std::vector<double>& xs,
                                            const std::vector<double>& ys);

}  // namespace rlb::stats
