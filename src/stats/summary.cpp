#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace rlb::stats {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::stderror() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<double> quantiles(std::vector<double> values,
                              const std::vector<double>& qs) {
  std::vector<double> out;
  out.reserve(qs.size());
  if (values.empty()) {
    out.assign(qs.size(), 0.0);
    return out;
  }
  std::sort(values.begin(), values.end());
  for (double q : qs) {
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out.push_back(values[lo] * (1.0 - frac) + values[hi] * frac);
  }
  return out;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

ProportionInterval wilson_interval(std::uint64_t successes,
                                   std::uint64_t trials, double z) {
  ProportionInterval interval;
  if (trials == 0) return interval;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  interval.center = center;
  interval.low = std::max(0.0, center - half);
  interval.high = std::min(1.0, center + half);
  return interval;
}

}  // namespace rlb::stats
