// Deterministic random-number generation for the rlb simulation stack.
//
// Every stochastic component in the library takes an explicit 64-bit seed and
// draws from one of these engines, so that a run is reproducible bit-for-bit
// from (seed, parameters) alone.  This matters for two reasons: the test
// suite asserts exact replays, and the parallel trial runner must produce the
// same aggregate regardless of thread scheduling.
//
// Engines:
//   * SplitMix64 — tiny, used to expand a user seed into engine state.
//   * Xoshiro256StarStar — the workhorse engine (Blackman & Vigna), with
//     jump() support for creating 2^128 non-overlapping parallel streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace rlb::stats {

/// SplitMix64 — a 64-bit mixing generator.  Primarily used to seed other
/// engines and to derive decorrelated child seeds from a master seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 random bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive a decorrelated child seed from (seed, stream).  Used wherever a
/// component needs several independent sources from one user-facing seed.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t stream) noexcept {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

/// xoshiro256** 1.0 — fast, high-quality 256-bit-state generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Next 64 random bits.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound).  Lemire's nearly-divisionless method —
  /// unbiased.  bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// True with probability p (clamped to [0, 1]).
  bool next_bernoulli(double p) noexcept;

  /// Advance 2^128 steps; used to split one seed into parallel streams.
  void jump() noexcept;

  /// A decorrelated child engine: copy + `n` jumps.
  [[nodiscard]] Xoshiro256StarStar split(unsigned n = 1) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// The library-wide default engine alias.  All simulation code is written
/// against Rng so the engine can be swapped in one place.
using Rng = Xoshiro256StarStar;

}  // namespace rlb::stats
