// Streaming and batch summary statistics.
//
// OnlineStats is a Welford accumulator (numerically stable single-pass mean
// and variance, plus min/max) used by every experiment to aggregate across
// Monte-Carlo trials.  Batch quantiles operate on a copy so callers keep
// their data untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rlb::stats {

/// Single-pass mean / variance / extrema accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator into this one (parallel reduction support;
  /// Chan et al. pairwise update).
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n - 1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two samples.
  double stderror() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// The q-quantile (q in [0, 1]) of `values` by linear interpolation between
/// order statistics.  Copies and sorts internally; empty input returns 0.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Convenience: several quantiles of the same data with one sort.
[[nodiscard]] std::vector<double> quantiles(std::vector<double> values,
                                            const std::vector<double>& qs);

/// Mean of a vector; 0 for empty input.
[[nodiscard]] double mean_of(const std::vector<double>& values);

/// A two-sided confidence interval for a binomial proportion.
struct ProportionInterval {
  double center = 0.0;
  double low = 0.0;
  double high = 0.0;
};

/// Wilson score interval for `successes` out of `trials` at ~confidence
/// `z` standard normal quantiles (z = 1.96 → 95%).  Well-behaved near 0
/// and 1, unlike the normal approximation — used for the failure-rate
/// columns in the experiment tables.
[[nodiscard]] ProportionInterval wilson_interval(std::uint64_t successes,
                                                 std::uint64_t trials,
                                                 double z = 1.96);

}  // namespace rlb::stats
