#include "stats/fit.hpp"

#include <cmath>

namespace rlb::stats {

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  fit.n = n;
  if (n < 2) return fit;

  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit fit_against_log2(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  std::vector<double> tx, ty;
  tx.reserve(xs.size());
  ty.reserve(ys.size());
  for (std::size_t i = 0; i < std::min(xs.size(), ys.size()); ++i) {
    if (xs[i] <= 0.0) continue;
    tx.push_back(std::log2(xs[i]));
    ty.push_back(ys[i]);
  }
  return fit_linear(tx, ty);
}

LinearFit fit_against_loglog2(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  std::vector<double> tx, ty;
  tx.reserve(xs.size());
  ty.reserve(ys.size());
  for (std::size_t i = 0; i < std::min(xs.size(), ys.size()); ++i) {
    if (xs[i] <= 2.0) continue;
    tx.push_back(std::log2(std::log2(xs[i])));
    ty.push_back(ys[i]);
  }
  return fit_linear(tx, ty);
}

}  // namespace rlb::stats
