// Samplers built on top of the rlb RNG stack.
//
// The workload generators need: uniform subsets without replacement (the
// distinct-chunks-per-step constraint of the model), shuffles, and a Zipf
// sampler for skewed key popularity.  The Zipf sampler uses
// rejection-inversion (Hörmann & Derflinger 1996), which is O(1) per draw
// for any universe size — important because lower-bound experiments use
// universes of size m^3 and larger.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace rlb::stats {

/// Fisher–Yates shuffle of `values` in place.
void shuffle(std::vector<std::uint64_t>& values, Rng& rng);

/// `k` distinct uniform values from [0, universe).  Uses Floyd's algorithm,
/// O(k) expected time and memory independent of `universe`.
/// Requires k <= universe.
[[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(
    std::uint64_t universe, std::size_t k, Rng& rng);

/// A uniformly random permutation of [0, n).
[[nodiscard]] std::vector<std::uint64_t> random_permutation(std::size_t n,
                                                            Rng& rng);

/// Zipf(s) sampler over ranks {1, ..., n}: P(k) ∝ 1 / k^s.
///
/// Rejection-inversion sampling: constant expected time per draw regardless
/// of n, exact (no truncated-CDF approximation).  s = 0 degenerates to
/// uniform; s may be any non-negative value except exactly 1 is handled
/// via the logarithmic integral branch.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  /// A rank in [1, n], smaller ranks more likely (for s > 0).
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t universe() const noexcept { return n_; }
  double exponent() const noexcept { return s_; }

 private:
  double h(double x) const;
  double h_inverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;        // h(1.5) - 1/1^s
  double h_n_;         // h(n + 0.5)
  double cut_;         // 1 - h_inverse(h(1.5) - 1)
};

}  // namespace rlb::stats
