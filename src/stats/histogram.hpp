// Integer-valued histograms used for backlog and latency distributions.
//
// Backlogs and latencies in the model are small non-negative integers
// (bounded by the queue length q = O(log m)), so a dense counting histogram
// with an explicit overflow bucket is both exact and cheap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rlb::stats {

/// Exact counting histogram over {0, 1, ..., max_value} with an overflow
/// bucket for larger observations.
class CountingHistogram {
 public:
  /// Tracks values up to `max_value` exactly; larger values land in the
  /// overflow bucket (still counted in totals, attributed value max_value+1).
  explicit CountingHistogram(std::size_t max_value = 1024);

  void add(std::uint64_t value, std::uint64_t count = 1) noexcept;
  void merge(const CountingHistogram& other);

  std::uint64_t count_at(std::uint64_t value) const noexcept;
  std::uint64_t overflow_count() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  /// Number of observations strictly greater than `value` (overflow bucket
  /// counts as greater than max_value).
  std::uint64_t count_greater_than(std::uint64_t value) const noexcept;

  /// Largest observed value (overflow reported as max_value + 1); 0 if empty.
  std::uint64_t max_observed() const noexcept;

  double mean() const noexcept;

  /// Smallest v such that at least fraction q of observations are <= v.
  std::uint64_t quantile(double q) const noexcept;

  std::size_t bucket_limit() const noexcept { return counts_.size() - 1; }

 private:
  std::vector<std::uint64_t> counts_;  // index = value
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t weighted_sum_ = 0;
  std::uint64_t max_seen_ = 0;
  bool any_ = false;
};

}  // namespace rlb::stats
