#include "stats/rng.hpp"

namespace rlb::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  // Expand the user seed through SplitMix64 as recommended by the xoshiro
  // authors; guards against the all-zero state.
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Xoshiro256StarStar::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256StarStar::next_below(std::uint64_t bound) noexcept {
  // Lemire 2019: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256StarStar::next_double() noexcept {
  // 53 high bits → uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256StarStar::next_bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      next();
    }
  }
  s_ = acc;
}

Xoshiro256StarStar Xoshiro256StarStar::split(unsigned n) const noexcept {
  Xoshiro256StarStar child = *this;
  for (unsigned i = 0; i < n; ++i) child.jump();
  return child;
}

}  // namespace rlb::stats
