#include "stats/histogram.hpp"

#include <algorithm>

namespace rlb::stats {

CountingHistogram::CountingHistogram(std::size_t max_value)
    : counts_(max_value + 1, 0) {}

void CountingHistogram::add(std::uint64_t value, std::uint64_t count) noexcept {
  if (count == 0) return;
  std::uint64_t attributed = value;
  if (value < counts_.size()) {
    counts_[value] += count;
  } else {
    overflow_ += count;
    attributed = counts_.size();  // bucket_limit() + 1
  }
  total_ += count;
  weighted_sum_ += attributed * count;
  if (!any_ || attributed > max_seen_) max_seen_ = attributed;
  any_ = true;
}

void CountingHistogram::merge(const CountingHistogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t v = 0; v < other.counts_.size(); ++v) {
    counts_[v] += other.counts_[v];
  }
  overflow_ += other.overflow_;
  total_ += other.total_;
  weighted_sum_ += other.weighted_sum_;
  if (other.any_) {
    max_seen_ = any_ ? std::max(max_seen_, other.max_seen_) : other.max_seen_;
    any_ = true;
  }
}

std::uint64_t CountingHistogram::count_at(std::uint64_t value) const noexcept {
  return value < counts_.size() ? counts_[value] : 0;
}

std::uint64_t CountingHistogram::count_greater_than(
    std::uint64_t value) const noexcept {
  std::uint64_t acc = overflow_;
  for (std::uint64_t v = value + 1; v < counts_.size(); ++v) acc += counts_[v];
  return acc;
}

std::uint64_t CountingHistogram::max_observed() const noexcept {
  return any_ ? max_seen_ : 0;
}

double CountingHistogram::mean() const noexcept {
  return total_ ? static_cast<double>(weighted_sum_) /
                      static_cast<double>(total_)
                : 0.0;
}

std::uint64_t CountingHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank target of at least 1: for q small enough that q·total + 0.5
  // truncates to 0, the scan below would otherwise stop at bucket 0 even
  // when no sample landed there.  quantile(0) is the minimum observed value.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(total_) + 0.5));
  std::uint64_t acc = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    acc += counts_[v];
    if (acc >= target) return v;
  }
  return counts_.size();  // overflow bucket
}

}  // namespace rlb::stats
