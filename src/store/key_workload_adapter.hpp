// Adapting key-level request streams to the model's chunk-level batches.
//
// A key-level generator emits GET(key) requests per step; the adapter maps
// each key through a KeyMapper and DEDUPLICATES chunks within the step —
// several keys of the same chunk need one chunk fetch, and the model
// requires distinct chunks per step (§2).  The adapter also reports how
// much the mapping compressed the stream (keys per distinct chunk), the
// knob that differentiates hash from range sharding under skew.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "core/workload.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "store/key_mapper.hpp"

namespace rlb::store {

/// Per-step key generator: fills `keys` for step t (duplicates allowed —
/// the adapter handles chunk-level dedup).
using KeyGenerator =
    std::function<void(core::Time t, std::vector<KeyId>& keys)>;

/// Wraps (KeyGenerator, KeyMapper) into a core::Workload.
class KeyWorkloadAdapter final : public core::Workload {
 public:
  /// `max_keys_per_step` bounds the underlying generator's batch (used for
  /// buffer reservation); the mapper is borrowed, not owned.
  KeyWorkloadAdapter(KeyGenerator generator, const KeyMapper& mapper,
                     std::size_t max_keys_per_step);

  void fill_step(core::Time t, std::vector<core::ChunkId>& out) override;
  std::size_t max_requests_per_step() const override {
    return max_keys_per_step_;
  }

  std::uint64_t keys_seen() const noexcept { return keys_seen_; }
  std::uint64_t chunk_requests_emitted() const noexcept { return emitted_; }
  /// Mean keys folded into each emitted chunk request (>= 1).
  double compression() const noexcept {
    return emitted_ ? static_cast<double>(keys_seen_) /
                          static_cast<double>(emitted_)
                    : 0.0;
  }

 private:
  KeyGenerator generator_;
  const KeyMapper& mapper_;
  std::size_t max_keys_per_step_;
  std::vector<KeyId> key_scratch_;
  std::unordered_set<core::ChunkId> seen_scratch_;
  std::uint64_t keys_seen_ = 0;
  std::uint64_t emitted_ = 0;
};

/// A ready-made Zipf key generator over [0, key_space): `count` keys per
/// step, rank r mapped to key position (r·PHI mod key_space) so that
/// POPULARITY NEIGHBORS ARE KEY-SPACE NEIGHBORS ONLY UNDER identity
/// mapping — pass scramble = false to keep hot keys contiguous (the
/// range-sharding worst case) or true to scatter them.
KeyGenerator make_zipf_key_generator(std::size_t count, KeyId key_space,
                                     double skew, bool scramble,
                                     std::uint64_t seed);

}  // namespace rlb::store
