#include "store/key_workload_adapter.hpp"

#include <memory>
#include <stdexcept>

#include "hashing/hash.hpp"

namespace rlb::store {

KeyWorkloadAdapter::KeyWorkloadAdapter(KeyGenerator generator,
                                       const KeyMapper& mapper,
                                       std::size_t max_keys_per_step)
    : generator_(std::move(generator)),
      mapper_(mapper),
      max_keys_per_step_(max_keys_per_step) {
  if (!generator_) {
    throw std::invalid_argument("KeyWorkloadAdapter: null generator");
  }
  if (max_keys_per_step == 0) {
    throw std::invalid_argument("KeyWorkloadAdapter: zero batch bound");
  }
}

void KeyWorkloadAdapter::fill_step(core::Time t,
                                   std::vector<core::ChunkId>& out) {
  key_scratch_.clear();
  generator_(t, key_scratch_);
  keys_seen_ += key_scratch_.size();

  out.clear();
  seen_scratch_.clear();
  for (const KeyId key : key_scratch_) {
    const core::ChunkId chunk = mapper_.chunk_of(key);
    if (seen_scratch_.insert(chunk).second) out.push_back(chunk);
  }
  emitted_ += out.size();
}

KeyGenerator make_zipf_key_generator(std::size_t count, KeyId key_space,
                                     double skew, bool scramble,
                                     std::uint64_t seed) {
  if (count == 0) throw std::invalid_argument("zipf keys: empty batch");
  if (key_space == 0) throw std::invalid_argument("zipf keys: empty space");
  auto sampler = std::make_shared<stats::ZipfSampler>(key_space, skew);
  auto rng = std::make_shared<stats::Rng>(stats::derive_seed(seed, 0x5E1));
  const std::uint64_t scramble_seed = stats::derive_seed(seed, 0x5E2);
  return [=](core::Time /*t*/, std::vector<KeyId>& keys) {
    keys.clear();
    keys.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t rank = sampler->sample(*rng) - 1;  // 0-based
      // Identity keeps popularity contiguous in key space (hot RANGE);
      // scrambling spreads it uniformly.
      const KeyId key =
          scramble ? hashing::hash_to_bucket(rank, scramble_seed, key_space)
                   : rank;
      keys.push_back(key);
    }
  };
}

}  // namespace rlb::store
