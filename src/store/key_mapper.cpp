#include "store/key_mapper.hpp"

#include <algorithm>
#include <stdexcept>

#include "hashing/hash.hpp"

namespace rlb::store {

HashShardMapper::HashShardMapper(std::size_t chunks, std::uint64_t seed)
    : chunks_(chunks), seed_(seed) {
  if (chunks == 0) throw std::invalid_argument("HashShardMapper: 0 chunks");
}

core::ChunkId HashShardMapper::chunk_of(KeyId key) const {
  return hashing::hash_to_bucket(key, seed_, chunks_);
}

RangeShardMapper::RangeShardMapper(std::size_t chunks, KeyId key_space)
    : chunks_(chunks), key_space_(key_space) {
  if (chunks == 0) throw std::invalid_argument("RangeShardMapper: 0 chunks");
  if (key_space < chunks) {
    throw std::invalid_argument("RangeShardMapper: key space < chunks");
  }
  width_ = key_space / chunks;
}

core::ChunkId RangeShardMapper::chunk_of(KeyId key) const {
  if (key >= key_space_) key %= key_space_;  // wrap out-of-space keys
  const core::ChunkId chunk = key / width_;
  // The last range absorbs the division remainder.
  return std::min<core::ChunkId>(chunk, chunks_ - 1);
}

}  // namespace rlb::store
