// Key → chunk mapping: the sharding layer above the paper's model.
//
// The paper's footnote 1: "each chunk contains multiple data items."  A
// real store serves GET(key) requests; which KEYS share a CHUNK is a
// sharding decision with direct consequences for the model:
//
//   * hash sharding  — chunk = h(key) mod n: popular keys scatter across
//     chunks, so key-level skew flattens at chunk level;
//   * range sharding — contiguous key ranges per chunk (HBase/BigTable
//     style): a popular key RANGE concentrates into few chunks, amplifying
//     per-chunk skew and, because a chunk lives on only d servers, turning
//     key hot-spots into server hot-spots no routing policy can split.
//
// The adapter (key_workload_adapter.hpp) turns key-level request streams
// into the model's distinct-chunks-per-step batches through either mapper;
// E20 measures the difference end to end.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace rlb::store {

/// Key identifier (opaque 64-bit, like a hashed row key).
using KeyId = std::uint64_t;

/// Abstract sharding function.
class KeyMapper {
 public:
  virtual ~KeyMapper() = default;
  /// The chunk storing `key`.  Total over all keys; deterministic.
  virtual core::ChunkId chunk_of(KeyId key) const = 0;
  /// Number of chunks n.
  virtual std::size_t chunk_count() const = 0;
};

/// Hash sharding: chunk = seeded-hash(key) mod n.
class HashShardMapper final : public KeyMapper {
 public:
  HashShardMapper(std::size_t chunks, std::uint64_t seed);
  core::ChunkId chunk_of(KeyId key) const override;
  std::size_t chunk_count() const override { return chunks_; }

 private:
  std::size_t chunks_;
  std::uint64_t seed_;
};

/// Range sharding: the key space [0, key_space) splits into n contiguous
/// ranges of (near-)equal width; chunk i owns keys
/// [i·W, (i+1)·W) for W = key_space/n (last range absorbs the remainder).
class RangeShardMapper final : public KeyMapper {
 public:
  RangeShardMapper(std::size_t chunks, KeyId key_space);
  core::ChunkId chunk_of(KeyId key) const override;
  std::size_t chunk_count() const override { return chunks_; }
  KeyId key_space() const { return key_space_; }

 private:
  std::size_t chunks_;
  KeyId key_space_;
  KeyId width_;
};

}  // namespace rlb::store
