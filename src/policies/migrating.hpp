// d = 1 load balancing with chunk MIGRATION — the Wang et al. [34]
// (PPoPP '23) approach the paper positions itself against.
//
// [34] proves that without replication no routing policy can reach o(1)
// rejection (our E3), and then recovers a small rejection rate by relaxing
// the model: chunks may be MOVED from heavily loaded servers to lightly
// loaded ones over time.  This balancer implements that relaxation in
// simplified form:
//
//   * each chunk has a single, MUTABLE home server (initially random);
//   * requests are routed to the current home (no choice — d = 1);
//   * at the end of a step, every server whose arrivals exceeded its
//     processing rate g sheds its excess chunks: each is re-homed to the
//     lesser-loaded of two sampled servers (load = exponential moving
//     average of per-step arrivals), subject to a per-step migration
//     budget (migrations are expensive in a real store — data moves).
//
// Contrast measured by E16: static d = 1 rejects a constant fraction
// forever; migration drives rejections to ~0 after a convergence period
// whose length scales inversely with the migration budget.  Replication
// (the paper's approach) needs no convergence and no data movement — that
// is exactly the trade the paper's introduction discusses.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/balancer.hpp"
#include "core/cluster.hpp"
#include "stats/rng.hpp"

namespace rlb::policies {

/// Configuration for the migrating d = 1 balancer.
struct MigratingConfig {
  std::size_t servers = 64;
  /// g — per-server processing per step.
  unsigned processing_rate = 2;
  /// q — queue length bound.
  std::size_t queue_capacity = 8;
  /// Max chunk migrations performed per time step (0 = static d = 1).
  std::size_t migration_budget = 8;
  /// EMA decay for the per-server load estimate (0 < alpha <= 1).
  double load_ema_alpha = 0.3;
  std::uint64_t seed = 1;
};

/// Single-home routing with end-of-step chunk migration.
class MigratingBalancer final : public core::LoadBalancer {
 public:
  explicit MigratingBalancer(const MigratingConfig& config);

  std::string_view name() const override { return "migrating-d1"; }
  std::size_t server_count() const override { return cluster_.size(); }

  void step(core::Time t, std::span<const core::ChunkId> requests,
            core::Metrics& metrics) override;

  std::uint32_t backlog(core::ServerId s) const override {
    return cluster_.backlog(s);
  }
  void backlogs(std::vector<std::uint32_t>& out) const override {
    out = cluster_.backlogs();
  }
  std::uint64_t total_backlog() const override {
    return cluster_.total_backlog();
  }
  void flush(core::Metrics& metrics) override;

  /// Current home server of a chunk (stable until migrated).
  core::ServerId home_of(core::ChunkId chunk) const;

  /// Total chunk migrations performed so far.
  std::uint64_t migrations_performed() const noexcept { return migrations_; }

 private:
  void migrate_overloaded(core::Time t);

  MigratingConfig config_;
  core::Cluster cluster_;
  stats::Rng rng_;
  std::uint64_t placement_seed_;

  /// Chunks whose home differs from the hash default.
  std::unordered_map<core::ChunkId, core::ServerId> overrides_;
  /// Per-server arrivals during the current step, and which chunks they
  /// were (migration candidates).
  std::vector<std::uint32_t> arrivals_;
  std::vector<std::vector<core::ChunkId>> arrival_chunks_;
  /// EMA of per-step arrivals — the load signal migrations steer by.
  std::vector<double> load_ema_;
  std::uint64_t migrations_ = 0;
};

}  // namespace rlb::policies
