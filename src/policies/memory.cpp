#include "policies/memory.hpp"

#include <stdexcept>

namespace rlb::policies {

StickyBalancer::StickyBalancer(const SingleQueueConfig& config,
                               std::uint32_t trigger)
    : SingleQueueBalancer(config), trigger_(trigger) {
  if (trigger == 0) {
    throw std::invalid_argument("StickyBalancer: trigger >= 1");
  }
}

core::ServerId StickyBalancer::pick(core::ChunkId x,
                                    const core::ChoiceList& choices) {
  ++routed_;
  const auto it = memory_.find(x);
  // A cached replica that has gone down forces reassessment: `choices` has
  // already been filtered to up servers, and pick() must return one of it.
  if (it != memory_.end() && cluster_.is_up(it->second) &&
      cluster_.backlog(it->second) < trigger_) {
    return it->second;  // sticky hit: one probe
  }
  // Reassess: full greedy over the d choices, cache the winner.
  ++reassessments_;
  core::ServerId best = choices[0];
  std::uint32_t best_backlog = cluster_.backlog(best);
  for (unsigned i = 1; i < choices.size(); ++i) {
    const std::uint32_t backlog = cluster_.backlog(choices[i]);
    if (backlog < best_backlog) {
      best = choices[i];
      best_backlog = backlog;
    }
  }
  memory_[x] = best;
  return best;
}

}  // namespace rlb::policies
