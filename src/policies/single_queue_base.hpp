// Shared machinery for one-queue-per-server policies.
//
// Greedy, single-choice, time-step-isolated, and round-robin all share the
// same queueing discipline — only the routing decision differs.  The base
// class implements the paper's sub-step schedule (Section 3): a time step
// consists of g sub-steps; each sub-step delivers ~|batch|/g requests and
// then every server consumes one queued request.  Subclasses override
// pick() to choose among the chunk's d placement choices.
//
// Overflow semantics are configurable:
//   * kRejectArrival — reject just the arriving request (classic bounded
//     queue).
//   * kDumpQueue — the §3 greedy behaviour: "if a queue ever overflows,
//     then it rejects all of its requests" — the queue is cleared and the
//     arrival is rejected too.
#pragma once

#include <cstdint>
#include <span>

#include "core/balancer.hpp"
#include "core/cluster.hpp"
#include "core/placement.hpp"

namespace rlb::policies {

/// How a full queue responds to one more arrival.
enum class OverflowPolicy {
  kRejectArrival,
  kDumpQueue,
};

/// Configuration shared by all single-queue policies.
struct SingleQueueConfig {
  /// m — number of servers.
  std::size_t servers = 64;
  /// d — replication factor (1 for the no-replication baseline).
  unsigned replication = 2;
  /// g — requests each server processes per time step.
  unsigned processing_rate = 2;
  /// q — queue length bound.
  std::size_t queue_capacity = 8;
  /// Seed for the chunk placement hash functions.
  std::uint64_t seed = 1;
  OverflowPolicy overflow = OverflowPolicy::kRejectArrival;
  /// Replica placement scheme (kGrouped enables the LEFT[d] policy).
  core::PlacementMode placement_mode = core::PlacementMode::kUniform;
  /// Optional per-server processing rates (heterogeneous clusters — an
  /// extension beyond the paper's uniform-g model).  Empty = every server
  /// processes `processing_rate`.  Entries are clamped to
  /// [0, processing_rate]; server s consumes one request in each of its
  /// first rate[s] sub-steps.
  std::vector<unsigned> per_server_rate;
};

/// Base class: owns cluster + placement, implements the sub-step loop.
class SingleQueueBalancer : public core::LoadBalancer {
 public:
  explicit SingleQueueBalancer(const SingleQueueConfig& config);

  std::size_t server_count() const override { return cluster_.size(); }
  std::uint32_t backlog(core::ServerId s) const override {
    return cluster_.backlog(s);
  }
  void backlogs(std::vector<std::uint32_t>& out) const override {
    out = cluster_.backlogs();
  }
  std::uint64_t total_backlog() const override {
    return cluster_.total_backlog();
  }

  void step(core::Time t, std::span<const core::ChunkId> requests,
            core::Metrics& metrics) override;

  void flush(core::Metrics& metrics) override;

  /// Fault transition: a down server is skipped among each request's d
  /// choices (requests are rejected only when ALL d replicas are down),
  /// stops consuming in the sub-step schedule, and — when `dump_queue` —
  /// has its queue rejected at crash time.
  void set_server_up(core::ServerId s, bool up, bool dump_queue,
                     core::Metrics& metrics) override;
  bool server_up(core::ServerId s) const override {
    return cluster_.is_up(s);
  }

  /// Per-request reporting for live serving: every delivered request
  /// produces exactly one sink callback (queue dumps report each dropped
  /// request individually instead of bulk-clearing).
  bool set_request_sink(core::RequestSink* sink) override {
    sink_ = sink;
    return true;
  }

  const core::Placement& placement() const noexcept { return placement_; }
  const SingleQueueConfig& config() const noexcept { return config_; }

  /// Change a server's processing rate at runtime (crash/recovery studies:
  /// 0 = down).  Rates above processing_rate are clamped by the sub-step
  /// schedule.  Switches the balancer into heterogeneous mode if it was
  /// uniform.
  void set_server_rate(core::ServerId server, unsigned rate);

 protected:
  /// Routing decision: the server (must be one of `choices`) for chunk `x`.
  virtual core::ServerId pick(core::ChunkId x,
                              const core::ChoiceList& choices) = 0;

  /// Hook invoked before the first sub-step of each time step.
  virtual void on_step_begin(core::Time t, std::size_t batch_size);

  /// Whether obs instrumentation is live for the current step.  Latched
  /// once per step so per-request sites branch on a plain bool instead of
  /// re-reading the global atomic in the delivery loop.
  bool obs_active() const noexcept { return obs_active_; }

  /// Whether per-request firehose events should also be traced (the
  /// detail level, see obs::detail_enabled()).  Latched per step like
  /// obs_active().
  bool obs_detail() const noexcept { return obs_detail_; }

  core::Cluster cluster_;
  core::Placement placement_;
  SingleQueueConfig config_;

 private:
  void deliver(core::Time t, core::ChunkId x, core::Metrics& metrics);
  void process_substep(core::Time t, unsigned substep, core::Metrics& metrics);
  /// Drop everything queued on `server`, reporting each request to the
  /// sink when one is installed; returns the number dropped.
  std::size_t drop_queue(core::ServerId server);

  core::RequestSink* sink_ = nullptr;
  bool obs_active_ = false;
  bool obs_detail_ = false;
};

}  // namespace rlb::policies
