#include "policies/migrating.hpp"

#include <algorithm>
#include <stdexcept>

#include "hashing/hash.hpp"
#include "obs/obs.hpp"

namespace rlb::policies {

MigratingBalancer::MigratingBalancer(const MigratingConfig& config)
    : config_(config),
      cluster_(config.servers, config.queue_capacity),
      rng_(stats::derive_seed(config.seed, 0xB1)),
      placement_seed_(stats::derive_seed(config.seed, 0xB2)),
      arrivals_(config.servers, 0),
      arrival_chunks_(config.servers),
      load_ema_(config.servers, 0.0) {
  if (config.processing_rate == 0) {
    throw std::invalid_argument("MigratingBalancer: g >= 1");
  }
  if (config.load_ema_alpha <= 0.0 || config.load_ema_alpha > 1.0) {
    throw std::invalid_argument("MigratingBalancer: alpha in (0, 1]");
  }
}

core::ServerId MigratingBalancer::home_of(core::ChunkId chunk) const {
  const auto it = overrides_.find(chunk);
  if (it != overrides_.end()) return it->second;
  return static_cast<core::ServerId>(
      hashing::hash_to_bucket(chunk, placement_seed_, cluster_.size()));
}

void MigratingBalancer::step(core::Time t,
                             std::span<const core::ChunkId> requests,
                             core::Metrics& metrics) {
  std::fill(arrivals_.begin(), arrivals_.end(), 0);
  for (auto& chunks : arrival_chunks_) chunks.clear();

  // Same sub-step discipline as the single-queue policies: g sub-steps,
  // each delivering ~|batch|/g requests then consuming one per server.
  const unsigned g = config_.processing_rate;
  const std::size_t n = requests.size();
  const std::size_t base = n / g;
  const std::size_t extra = n % g;
  std::size_t cursor = 0;
  for (unsigned sub = 0; sub < g; ++sub) {
    const std::size_t take = base + (sub < extra ? 1 : 0);
    for (std::size_t i = 0; i < take; ++i) {
      const core::ChunkId x = requests[cursor++];
      metrics.on_submitted();
      const core::ServerId home = home_of(x);
      ++arrivals_[home];
      arrival_chunks_[home].push_back(x);
      if (!cluster_.push(home, core::Request{x, t})) {
        metrics.on_rejected();
      }
    }
    for (std::size_t s = 0; s < cluster_.size(); ++s) {
      const auto server = static_cast<core::ServerId>(s);
      if (cluster_.empty(server)) continue;
      const core::Request request = cluster_.pop(server);
      metrics.on_completed(static_cast<std::uint64_t>(t - request.arrival));
    }
  }

  // Update the load signal, then shed overload.
  for (std::size_t s = 0; s < cluster_.size(); ++s) {
    load_ema_[s] = (1.0 - config_.load_ema_alpha) * load_ema_[s] +
                   config_.load_ema_alpha * static_cast<double>(arrivals_[s]);
  }
  migrate_overloaded(t);
}

void MigratingBalancer::migrate_overloaded(core::Time /*t*/) {
  std::size_t budget = config_.migration_budget;
  if (budget == 0) return;
  const std::size_t m = cluster_.size();
  for (std::size_t s = 0; s < m && budget > 0; ++s) {
    const unsigned g = config_.processing_rate;
    if (arrivals_[s] <= g) continue;
    // Shed the excess beyond what this server can process per step.  Move
    // the most recent arrivals — they are certainly still hot.
    std::size_t excess = arrivals_[s] - g;
    auto& chunks = arrival_chunks_[s];
    while (excess > 0 && budget > 0 && !chunks.empty()) {
      const core::ChunkId chunk = chunks.back();
      chunks.pop_back();
      // Power-of-two sampling on the EMA load estimate: O(1) per
      // migration, no global scan.
      const auto a = static_cast<std::size_t>(rng_.next_below(m));
      const auto b = static_cast<std::size_t>(rng_.next_below(m));
      const std::size_t target = load_ema_[a] <= load_ema_[b] ? a : b;
      if (target == s) continue;  // sampled ourselves: skip this candidate
      static obs::Counter migration_counter("migrating.migrations");
      migration_counter.add();
      RLB_TRACE_EVENT(obs::EventKind::kMigration, "migrating.move", chunk,
                      target);
      overrides_[chunk] = static_cast<core::ServerId>(target);
      // Account the chunk's unit of load against the target immediately so
      // several migrations in one step do not all pile onto it.
      load_ema_[target] += config_.load_ema_alpha;
      --excess;
      --budget;
      ++migrations_;
    }
  }
}

void MigratingBalancer::flush(core::Metrics& metrics) {
  metrics.on_dropped_from_queue(cluster_.clear_all());
}

}  // namespace rlb::policies
