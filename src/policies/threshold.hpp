// Threshold (probe-until-below-T) routing — a low-information baseline.
//
// Probes the chunk's choices in order and routes to the FIRST whose backlog
// is strictly below the threshold T; if every choice is at or above T, the
// request falls back to the overall least-backlogged choice.  With T = 1
// this is "first idle replica, else least loaded".
//
// Why it is interesting here: greedy needs all d backlogs per decision; the
// threshold rule usually needs just one probe, the classic messaging-cost
// trade-off of the supermarket-model literature.  Experiment E13 measures
// how much guarantee is lost under reappearance dependencies, and the
// probes-per-request counter quantifies the saving.
#pragma once

#include <cstdint>

#include "policies/single_queue_base.hpp"

namespace rlb::policies {

/// First-choice-below-threshold routing with least-loaded fallback.
class ThresholdBalancer final : public SingleQueueBalancer {
 public:
  /// `threshold` >= 1: a choice with backlog < threshold is taken
  /// immediately.
  ThresholdBalancer(const SingleQueueConfig& config, std::uint32_t threshold);

  std::string_view name() const override { return "threshold"; }

  std::uint32_t threshold() const noexcept { return threshold_; }
  /// Total backlog probes issued; probes / requests in [1, d] measures the
  /// messaging cost relative to greedy's constant d.
  std::uint64_t probes_issued() const noexcept { return probes_; }
  std::uint64_t requests_routed() const noexcept { return routed_; }

 protected:
  core::ServerId pick(core::ChunkId x,
                      const core::ChoiceList& choices) override;

 private:
  std::uint32_t threshold_;
  std::uint64_t probes_ = 0;
  std::uint64_t routed_ = 0;
};

}  // namespace rlb::policies
