// Per-chunk round-robin over the d replicas.
//
// A stateful (NOT time-step-isolated) baseline: each chunk cycles through
// its d choices on successive requests, spreading a repeated chunk's load
// evenly across its replicas without ever looking at queue lengths.  On the
// repeated-set workload every server's average arrival rate becomes
// (#chunks choosing it)/d per step — better than random-of-d's variance but
// still blind to placement collisions, so it sits strictly between the
// isolated strategies and backlog-aware greedy in the policy matrix (E11).
#pragma once

#include <unordered_map>

#include "policies/single_queue_base.hpp"

namespace rlb::policies {

/// Route request k of chunk x to choice (k mod d).
class RoundRobinBalancer final : public SingleQueueBalancer {
 public:
  explicit RoundRobinBalancer(const SingleQueueConfig& config)
      : SingleQueueBalancer(config) {}

  std::string_view name() const override { return "round-robin"; }

 protected:
  core::ServerId pick(core::ChunkId x,
                      const core::ChoiceList& choices) override;

 private:
  std::unordered_map<core::ChunkId, std::uint32_t> counters_;
};

}  // namespace rlb::policies
