// Vöcking's LEFT[d] asymmetric strategy, adapted to the load-balancing
// model (an extension beyond the paper; [33] in its references).
//
// The servers are partitioned into d contiguous groups; chunk replica i is
// always placed in group i (PlacementMode::kGrouped), and ties between
// equally-backlogged choices break toward the LEFTMOST group.  In the
// classical balls-into-bins setting this improves the max-load constant
// from ln ln m / ln d to ln ln m / (d·ln φ_d); experiment E13 (ablations)
// measures whether the improvement carries over under reappearance
// dependencies.
//
// Note the paper's greedy analysis (Theorem 3.1) does not depend on the
// placement being uniform over all servers — the union bound of Lemma 3.3
// only needs enough placement entropy — so LEFT[d] is a drop-in variant.
#pragma once

#include "policies/single_queue_base.hpp"

namespace rlb::policies {

/// Least-backlog routing over grouped placement with leftmost tie-break.
class LeftGreedyBalancer final : public SingleQueueBalancer {
 public:
  /// Forces PlacementMode::kGrouped regardless of the config's mode.
  explicit LeftGreedyBalancer(SingleQueueConfig config)
      : SingleQueueBalancer(
            (config.placement_mode = core::PlacementMode::kGrouped, config)) {}

  std::string_view name() const override { return "greedy-left"; }

 protected:
  core::ServerId pick(core::ChunkId x,
                      const core::ChoiceList& choices) override;
};

}  // namespace rlb::policies
