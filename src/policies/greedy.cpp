#include "policies/greedy.hpp"

#include <bit>

namespace rlb::policies {

core::ServerId GreedyBalancer::pick(core::ChunkId /*x*/,
                                    const core::ChoiceList& choices) {
  core::ServerId best = choices[0];
  std::uint32_t best_backlog = cluster_.backlog(best);
  for (unsigned i = 1; i < choices.size(); ++i) {
    const core::ServerId candidate = choices[i];
    const std::uint32_t backlog = cluster_.backlog(candidate);
    if (backlog < best_backlog) {
      best = candidate;
      best_backlog = backlog;
    }
  }
  return best;
}

SingleQueueConfig GreedyBalancer::theorem_config(std::size_t servers,
                                                 unsigned replication,
                                                 unsigned processing_rate,
                                                 std::uint64_t seed) {
  SingleQueueConfig config;
  config.servers = servers;
  config.replication = replication;
  config.processing_rate = processing_rate;
  // q = log2(m) + 1 (Theorem 3.1); bit_width(m) == floor(log2 m) + 1.
  config.queue_capacity = static_cast<std::size_t>(std::bit_width(servers));
  config.seed = seed;
  config.overflow = OverflowPolicy::kDumpQueue;
  return config;
}

}  // namespace rlb::policies
