#include "policies/greedy.hpp"

#include <algorithm>
#include <bit>

#include "obs/obs.hpp"

namespace rlb::policies {
namespace {

// Out of line and cold so the obs-off pick() stays a frame-less leaf: inlining
// this (static guard + second backlog pass) forces callee-saved spills in the
// hot path even when the branch is never taken.
[[gnu::noinline, gnu::cold]] void observe_pick(const core::Cluster& cluster,
                                               const core::ChoiceList& choices,
                                               core::ChunkId x,
                                               core::ServerId best,
                                               std::uint32_t best_backlog,
                                               bool detail) {
  // Gap between the chosen (least) and the most loaded of the d choices —
  // the margin the two-choice argument of Lemma 3.4 lives on.
  static obs::Histogram gap_hist("greedy.choice_gap");
  std::uint32_t worst_backlog = best_backlog;
  for (const core::ServerId candidate : choices) {
    worst_backlog = std::max(worst_backlog, cluster.backlog(candidate));
  }
  gap_hist.observe(static_cast<double>(worst_backlog - best_backlog));
  if (detail) obs::emit(obs::EventKind::kRoute, "greedy.pick", x, best);
}

}  // namespace

core::ServerId GreedyBalancer::pick(core::ChunkId x,
                                    const core::ChoiceList& choices) {
  core::ServerId best = choices[0];
  std::uint32_t best_backlog = cluster_.backlog(best);
  for (unsigned i = 1; i < choices.size(); ++i) {
    const core::ServerId candidate = choices[i];
    const std::uint32_t backlog = cluster_.backlog(candidate);
    if (backlog < best_backlog) {
      best = candidate;
      best_backlog = backlog;
    }
  }
  if (obs_active()) [[unlikely]] {
    observe_pick(cluster_, choices, x, best, best_backlog, obs_detail());
  }
  return best;
}

SingleQueueConfig GreedyBalancer::theorem_config(std::size_t servers,
                                                 unsigned replication,
                                                 unsigned processing_rate,
                                                 std::uint64_t seed) {
  SingleQueueConfig config;
  config.servers = servers;
  config.replication = replication;
  config.processing_rate = processing_rate;
  // q = log2(m) + 1 (Theorem 3.1); bit_width(m) == floor(log2 m) + 1.
  config.queue_capacity = static_cast<std::size_t>(std::bit_width(servers));
  config.seed = seed;
  config.overflow = OverflowPolicy::kDumpQueue;
  return config;
}

}  // namespace rlb::policies
