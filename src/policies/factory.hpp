// String-keyed policy construction for experiments and examples.
//
// One configuration struct covers every policy; each named policy consumes
// the fields it understands.  Keeps bench binaries and examples free of
// per-policy construction boilerplate and makes the E11 policy matrix a
// simple loop over names.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/balancer.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "policies/single_queue_base.hpp"

namespace rlb::policies {

/// Union of every policy's knobs.
struct PolicyConfig {
  std::size_t servers = 64;
  /// d for the single-queue policies (delayed-cuckoo is always 2).
  unsigned replication = 2;
  /// g.
  unsigned processing_rate = 16;
  /// q; 0 lets each policy derive its theorem default
  /// (greedy: log2 m + 1; delayed-cuckoo: 4·phase_length).
  std::size_t queue_capacity = 0;
  std::uint64_t seed = 1;
  OverflowPolicy overflow = OverflowPolicy::kRejectArrival;
  /// Replica placement scheme for the single-queue policies (greedy-left
  /// always forces kGrouped; delayed-cuckoo/migrating use their own).
  core::PlacementMode placement_mode = core::PlacementMode::kUniform;
  /// Delayed-cuckoo extras (ignored by others).
  std::size_t phase_length = 0;
  std::size_t stash_per_group = 4;
  /// Threshold-policy extra (ignored by others).
  std::uint32_t threshold = 1;
  /// Heterogeneous per-server rates (single-queue policies only; empty =
  /// uniform processing_rate).
  std::vector<unsigned> per_server_rate;
  /// Migrating-d1 extra: chunk migrations allowed per step.
  std::size_t migration_budget = 8;
};

/// Known policy names:
///   "greedy", "greedy-d1" (replication forced to 1), "greedy-left"
///   (Vöcking LEFT[d] over grouped placement), "batched-greedy" (snapshot
///   decisions per sub-step, parallel-friendly), "delayed-cuckoo",
///   "random-of-d", "per-step-greedy", "round-robin", "threshold",
///   "migrating-d1" (the [34] relaxation: no replication, chunks move).
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<core::LoadBalancer> make_policy(
    const std::string& name, const PolicyConfig& config);

/// All names make_policy accepts, in canonical comparison order.
[[nodiscard]] const std::vector<std::string>& policy_names();

}  // namespace rlb::policies
