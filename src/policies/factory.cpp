#include "policies/factory.hpp"

#include <bit>
#include <stdexcept>

#include "policies/batched_greedy.hpp"
#include "policies/greedy.hpp"
#include "policies/left_greedy.hpp"
#include "policies/memory.hpp"
#include "policies/migrating.hpp"
#include "policies/round_robin.hpp"
#include "policies/threshold.hpp"
#include "policies/time_step_isolated.hpp"

namespace rlb::policies {

namespace {

SingleQueueConfig to_single_queue(const PolicyConfig& config,
                                  unsigned replication_override = 0) {
  SingleQueueConfig sq;
  sq.servers = config.servers;
  sq.replication =
      replication_override ? replication_override : config.replication;
  sq.processing_rate = config.processing_rate;
  sq.queue_capacity =
      config.queue_capacity
          ? config.queue_capacity
          : static_cast<std::size_t>(std::bit_width(config.servers));
  sq.seed = config.seed;
  sq.overflow = config.overflow;
  sq.placement_mode = config.placement_mode;
  sq.per_server_rate = config.per_server_rate;
  return sq;
}

DelayedCuckooConfig to_delayed_cuckoo(const PolicyConfig& config) {
  DelayedCuckooConfig dc;
  dc.servers = config.servers;
  // Round g up to the next multiple of 4 (>= 4) as the algorithm requires.
  dc.processing_rate = std::max(4u, (config.processing_rate + 3) / 4 * 4);
  dc.queue_capacity = config.queue_capacity;
  dc.phase_length = config.phase_length;
  dc.stash_per_group = config.stash_per_group;
  dc.seed = config.seed;
  return dc;
}

}  // namespace

std::unique_ptr<core::LoadBalancer> make_policy(const std::string& name,
                                                const PolicyConfig& config) {
  if (name == "greedy") {
    return std::make_unique<GreedyBalancer>(to_single_queue(config));
  }
  if (name == "greedy-d1") {
    return std::make_unique<GreedyBalancer>(to_single_queue(config, 1));
  }
  if (name == "greedy-left") {
    return std::make_unique<LeftGreedyBalancer>(to_single_queue(config));
  }
  if (name == "threshold") {
    return std::make_unique<ThresholdBalancer>(to_single_queue(config),
                                               config.threshold);
  }
  if (name == "sticky") {
    // Reuse the threshold knob as the reassessment trigger.
    return std::make_unique<StickyBalancer>(to_single_queue(config),
                                            std::max(1u, config.threshold));
  }
  if (name == "delayed-cuckoo") {
    return std::make_unique<DelayedCuckooBalancer>(to_delayed_cuckoo(config));
  }
  if (name == "random-of-d") {
    return std::make_unique<RandomOfDBalancer>(to_single_queue(config));
  }
  if (name == "per-step-greedy") {
    return std::make_unique<PerStepGreedyBalancer>(to_single_queue(config));
  }
  if (name == "round-robin") {
    return std::make_unique<RoundRobinBalancer>(to_single_queue(config));
  }
  if (name == "batched-greedy") {
    BatchedGreedyConfig bg;
    bg.servers = config.servers;
    bg.replication = config.replication;
    bg.processing_rate = config.processing_rate;
    bg.queue_capacity =
        config.queue_capacity
            ? config.queue_capacity
            : static_cast<std::size_t>(std::bit_width(config.servers));
    bg.seed = config.seed;
    return std::make_unique<BatchedGreedyBalancer>(bg);
  }
  if (name == "migrating-d1") {
    MigratingConfig mg;
    mg.servers = config.servers;
    mg.processing_rate = config.processing_rate;
    mg.queue_capacity =
        config.queue_capacity
            ? config.queue_capacity
            : static_cast<std::size_t>(std::bit_width(config.servers));
    mg.migration_budget = config.migration_budget;
    mg.seed = config.seed;
    return std::make_unique<MigratingBalancer>(mg);
  }
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

const std::vector<std::string>& policy_names() {
  static const std::vector<std::string> names = {
      "greedy",        "greedy-d1",       "greedy-left", "batched-greedy",
      "delayed-cuckoo", "random-of-d",    "per-step-greedy",
      "round-robin",   "threshold",       "sticky",      "migrating-d1",
  };
  return names;
}

}  // namespace rlb::policies
