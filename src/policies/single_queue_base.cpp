#include "policies/single_queue_base.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace rlb::policies {

SingleQueueBalancer::SingleQueueBalancer(const SingleQueueConfig& config)
    : cluster_(config.servers, config.queue_capacity),
      placement_(config.servers, config.replication, config.seed,
                 config.placement_mode),
      config_(config) {
  if (config.processing_rate == 0) {
    throw std::invalid_argument("SingleQueueBalancer: processing rate g >= 1");
  }
  if (!config.per_server_rate.empty() &&
      config.per_server_rate.size() != config.servers) {
    throw std::invalid_argument(
        "SingleQueueBalancer: per_server_rate must be empty or size m");
  }
}

void SingleQueueBalancer::on_step_begin(core::Time /*t*/,
                                        std::size_t /*batch_size*/) {}

void SingleQueueBalancer::set_server_rate(core::ServerId server,
                                          unsigned rate) {
  if (server >= cluster_.size()) {
    throw std::out_of_range("set_server_rate: bad server id");
  }
  if (config_.per_server_rate.empty()) {
    config_.per_server_rate.assign(cluster_.size(),
                                   config_.processing_rate);
  }
  config_.per_server_rate[server] = rate;
}

void SingleQueueBalancer::deliver(core::Time t, core::ChunkId x,
                                  core::Metrics& metrics) {
  metrics.on_submitted();
  core::ChoiceList choices = placement_.choices(x);
  if (!cluster_.all_up()) [[unlikely]] {
    // Failover: restrict the routing decision to the up replicas.  The
    // placement itself never changes (reappearance dependencies!), so a
    // down server simply removes one of the chunk's few fixed options.
    static obs::Counter failover_counter("fault.failovers");
    static obs::Counter all_down_counter("fault.all_replicas_down");
    core::ChoiceList live;
    for (const core::ServerId s : choices) {
      if (cluster_.is_up(s)) live.push_back(s);
    }
    if (live.empty()) {
      all_down_counter.add();
      metrics.on_rejected();
      if (sink_ != nullptr) {
        sink_->on_rejected(x, core::RejectCause::kAllReplicasDown);
      }
      if (obs_active_) {
        obs::emit(obs::EventKind::kReject, "sq.reject_all_down", x, t);
      }
      return;
    }
    if (live.size() < choices.size()) failover_counter.add();
    choices = live;
  }
  const core::ServerId target = pick(x, choices);
  if (obs_detail_) [[unlikely]] {
    obs::emit(obs::EventKind::kSubmit, "sq.submit", x, t);
    obs::emit(obs::EventKind::kRoute, "sq.route", x, target);
  }
  if (cluster_.push(target, core::Request{x, t})) {
    if (obs_detail_) [[unlikely]] {
      obs::emit(obs::EventKind::kEnqueue, "sq.enqueue", x, target);
    }
    return;
  }

  // Queue full.
  if (config_.overflow == OverflowPolicy::kDumpQueue) {
    static obs::Counter dump_counter("sq.queue_dumps");
    const std::size_t dumped = drop_queue(target);
    metrics.on_dropped_from_queue(dumped);
    dump_counter.add();
    if (obs_active_) {
      obs::emit(obs::EventKind::kFlush, "sq.queue_dump", target, dumped);
    }
  }
  metrics.on_rejected();
  if (sink_ != nullptr) sink_->on_rejected(x, core::RejectCause::kQueueFull);
  if (obs_active_) obs::emit(obs::EventKind::kReject, "sq.reject", x, target);
}

std::size_t SingleQueueBalancer::drop_queue(core::ServerId server) {
  if (sink_ == nullptr) return cluster_.clear_server(server);
  std::size_t dropped = 0;
  while (!cluster_.empty(server)) {
    const core::Request request = cluster_.pop(server);
    sink_->on_rejected(request.chunk, core::RejectCause::kQueueDrop);
    ++dropped;
  }
  return dropped;
}

void SingleQueueBalancer::process_substep(core::Time t, unsigned substep,
                                          core::Metrics& metrics) {
  const std::size_t m = cluster_.size();
  const bool heterogeneous = !config_.per_server_rate.empty();
  const bool faults = !cluster_.all_up();
  for (std::size_t s = 0; s < m; ++s) {
    const auto server = static_cast<core::ServerId>(s);
    // A server with rate r consumes one request in each of its first r
    // sub-steps of the time step (homogeneous servers consume in all g).
    if (heterogeneous && substep >= config_.per_server_rate[s]) continue;
    // Down servers process nothing; any surviving queue (no dump-on-crash)
    // is frozen until recovery.
    if (faults && !cluster_.is_up(server)) continue;
    if (cluster_.empty(server)) continue;
    const core::Request request = cluster_.pop(server);
    metrics.on_completed(static_cast<std::uint64_t>(t - request.arrival));
    if (sink_ != nullptr) {
      sink_->on_served(request.chunk, server,
                       static_cast<std::uint64_t>(t - request.arrival));
    }
    if (obs_detail_) [[unlikely]] {
      obs::emit(obs::EventKind::kServe, "sq.serve", request.chunk,
                static_cast<std::uint64_t>(t - request.arrival));
    }
  }
}

void SingleQueueBalancer::step(core::Time t,
                               std::span<const core::ChunkId> requests,
                               core::Metrics& metrics) {
  obs_active_ = obs::enabled();
  obs_detail_ = obs::detail_enabled();
  on_step_begin(t, requests.size());
  const unsigned g = config_.processing_rate;
  // Sub-step schedule (Section 3): g sub-steps, each delivering ~|batch|/g
  // requests followed by one consumption round.  Remainder requests go to
  // the earliest sub-steps so all are delivered.
  const std::size_t n = requests.size();
  const std::size_t base = n / g;
  const std::size_t extra = n % g;
  std::size_t cursor = 0;
  for (unsigned sub = 0; sub < g; ++sub) {
    const std::size_t take = base + (sub < extra ? 1 : 0);
    for (std::size_t i = 0; i < take; ++i) {
      deliver(t, requests[cursor++], metrics);
    }
    process_substep(t, sub, metrics);
  }
}

void SingleQueueBalancer::set_server_up(core::ServerId s, bool up,
                                        bool dump_queue,
                                        core::Metrics& metrics) {
  if (s >= cluster_.size()) {
    throw std::out_of_range("set_server_up: bad server id");
  }
  cluster_.set_up(s, up);
  if (!up && dump_queue) {
    const std::size_t dropped = drop_queue(s);
    if (dropped > 0) {
      metrics.on_dropped_from_queue(dropped);
      RLB_TRACE_EVENT(obs::EventKind::kFlush, "fault.queue_dump", s, dropped);
    }
  }
}

void SingleQueueBalancer::flush(core::Metrics& metrics) {
  std::size_t dropped = 0;
  if (sink_ == nullptr) {
    dropped = cluster_.clear_all();
  } else {
    for (std::size_t s = 0; s < cluster_.size(); ++s) {
      dropped += drop_queue(static_cast<core::ServerId>(s));
    }
  }
  metrics.on_dropped_from_queue(dropped);
  RLB_TRACE_EVENT(obs::EventKind::kFlush, "sq.flush", dropped,
                  cluster_.size());
}

}  // namespace rlb::policies
