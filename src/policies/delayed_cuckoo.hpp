// Delayed cuckoo routing (Section 4) — the paper's main algorithm.
//
// Uses replication d = 2, constant processing rate g, and queues of only
// Θ(log log m) — exponentially shorter than greedy's Θ(log m) — while
// keeping rejection rate O(1/m^c) and expected average latency O(1)
// (Theorem 4.3).  This is optimal: Theorem 5.1 rules out queues of
// o(log log m).
//
// Mechanics (Section 4.1).  Time is divided into phases of Θ(log log m)
// steps.  Each server i maintains four FIFO queues, each draining g/4
// requests per step:
//   Q_i  — first access of a chunk within the phase: the request joins the
//          shorter of Q_{h1(x)}, Q_{h2(x)} (fresh randomness ⇒ classical
//          two-choice bounds apply, Lemma 4.4).
//   P_i  — reappearance within the phase: the request is routed to
//          P_{T_{t'}(x)}, where T_{t'} is the OFFLINE cuckoo assignment
//          (Lemma 4.2) computed at the end of the chunk's most recent
//          access step t' < t.  Cuckoo guarantees O(1) assignments per
//          server per step, so P_i receives O(log log m) per phase
//          DETERMINISTICALLY (Lemma 4.5).
//   Q'_i, P'_i — the previous phase's leftovers, moved here at the phase
//          boundary and fully drained within the phase.
//
// The "delayed" part: T_t cannot be used during step t (it needs the whole
// set S_t), so it only guides FUTURE reappearances of step-t chunks.  If
// computing T_t fails (probability O(1/m^c), Lemma 4.2), reappearances that
// would consult it are rejected.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/balancer.hpp"
#include "core/placement.hpp"
#include "core/server_queue.hpp"

namespace rlb::policies {

/// Configuration for DelayedCuckooBalancer.  Zeros mean "derive from m per
/// the theorem's recipe".
struct DelayedCuckooConfig {
  /// m — number of servers.
  std::size_t servers = 64;
  /// g — total per-server processing per step; must be a multiple of 4
  /// and >= 4 (each of the four queues drains g/4).
  unsigned processing_rate = 16;
  /// q — per-queue capacity; 0 derives 4 * phase_length (so carried-over
  /// queues provably drain within one phase: (g/4)·L >= q when g >= 16).
  std::size_t queue_capacity = 0;
  /// Phase length in steps; 0 derives ceil(log2 log2 m), minimum 2.
  std::size_t phase_length = 0;
  /// Stash size per cuckoo group (Theorem 4.1's constant; failure
  /// probability falls as m^{-(stash+1)}).
  std::size_t stash_per_group = 4;
  /// Placement hash seed (d = 2 always — the algorithm requires it).
  std::uint64_t seed = 1;
  /// ABLATION: route reappearances via the previous step's cuckoo
  /// assignment (the paper's algorithm).  When false, every request is
  /// treated as a first access (two-choice on the Q queues) — removing
  /// exactly the mechanism that defeats reappearance dependencies.
  bool use_cuckoo_routing = true;
  /// ABLATION: move phase leftovers into the Q'/P' carry-over queues (the
  /// paper's algorithm).  When false, leftovers are dropped (rejected) at
  /// each phase boundary — quantifying what the carry-over machinery saves.
  bool carry_over_queues = true;
};

/// The delayed cuckoo routing balancer.
class DelayedCuckooBalancer final : public core::LoadBalancer {
 public:
  explicit DelayedCuckooBalancer(const DelayedCuckooConfig& config);

  std::string_view name() const override { return "delayed-cuckoo"; }
  std::size_t server_count() const override { return servers_; }

  void step(core::Time t, std::span<const core::ChunkId> requests,
            core::Metrics& metrics) override;

  std::uint32_t backlog(core::ServerId s) const override;
  void flush(core::Metrics& metrics) override;

  /// Fault transition.  A down server is treated as a removed cuckoo slot
  /// when the next T_t is planned; reappearances whose recorded assignment
  /// points at a crashed server fail over to the chunk's live replica via
  /// the Q (two-choice) path; requests with BOTH replicas down are
  /// rejected.  `dump_queue` rejects everything in the server's four
  /// queues at crash time.
  void set_server_up(core::ServerId s, bool up, bool dump_queue,
                     core::Metrics& metrics) override;
  bool server_up(core::ServerId s) const override { return up_[s] != 0; }

  /// Per-request reporting for live serving: phase-boundary drops, crash
  /// dumps, and flushes report each dropped request individually when a
  /// sink is installed.
  bool set_request_sink(core::RequestSink* sink) override {
    sink_ = sink;
    return true;
  }

  /// Effective (possibly derived) parameters.
  std::size_t phase_length() const noexcept { return phase_length_; }
  std::size_t queue_capacity() const noexcept { return queue_capacity_; }
  unsigned processing_rate() const noexcept { return processing_rate_; }

  /// Observability for tests/experiments: arrivals routed into P_j during
  /// the current step (index j = server id); reset each step.
  const std::vector<std::uint32_t>& p_arrivals_this_step() const noexcept {
    return p_arrivals_;
  }
  /// Arrivals routed into P_j since the current phase began (the Lemma 4.5
  /// quantity: deterministically O(log log m) per phase).  Recorded into
  /// the "pqueue.arrivals_per_phase" probe at every phase boundary.  Only
  /// maintained while obs is enabled — all zeros otherwise, keeping the
  /// per-request delivery path free of the extra counter array.
  const std::vector<std::uint32_t>& p_arrivals_this_phase() const noexcept {
    return p_arrivals_phase_;
  }
  /// Count of offline-assignment failures so far (the Lemma 4.2 event).
  std::uint64_t assignment_failures() const noexcept {
    return assignment_failures_;
  }
  /// Phases completed so far (phase 0 runs until the first boundary).
  std::uint64_t phases_completed() const noexcept { return phase_index_; }

 private:
  /// Per-server queue block.
  struct ServerState {
    core::ServerQueue q;        // fresh (first-in-phase) requests
    core::ServerQueue p;        // reappearance requests
    core::ServerQueue q_prev;   // previous phase's Q leftovers
    core::ServerQueue p_prev;   // previous phase's P leftovers
    explicit ServerState(std::size_t capacity)
        : q(capacity), p(capacity), q_prev(capacity), p_prev(capacity) {}
  };

  void begin_phase(core::Metrics& metrics);
  void deliver(core::Time t, core::ChunkId x, core::Metrics& metrics);
  void process(core::Time t, core::Metrics& metrics);
  void compute_assignment(std::span<const core::ChunkId> requests);
  void drain_queue(core::ServerQueue& queue, core::ServerId server,
                   unsigned budget, core::Time t, core::Metrics& metrics);
  /// Drop everything in `queue`, reporting each request to the sink when
  /// one is installed; returns the number dropped.
  std::size_t drop_queue(core::ServerQueue& queue);

  std::size_t servers_;
  unsigned processing_rate_;
  std::size_t queue_capacity_;
  std::size_t phase_length_;
  std::size_t stash_per_group_;
  bool use_cuckoo_routing_;
  bool carry_over_queues_;
  core::Placement placement_;

  std::vector<ServerState> state_;
  /// Per-server up/down flags (all up initially); see set_server_up.
  std::vector<std::uint8_t> up_;
  std::size_t down_count_ = 0;

  /// Most recent within-phase assignment per chunk.  Value = assigned
  /// server, or kAssignmentFailed when that step's T_t failed.
  static constexpr std::uint32_t kAssignmentFailed = 0xffffffffu;
  std::unordered_map<core::ChunkId, std::uint32_t> last_assignment_;

  std::vector<std::uint32_t> p_arrivals_;
  std::vector<std::uint32_t> p_arrivals_phase_;
  core::RequestSink* sink_ = nullptr;
  std::uint64_t assignment_failures_ = 0;
  std::size_t steps_into_phase_ = 0;
  std::uint64_t phase_index_ = 0;
  /// obs::enabled() latched once per step (see SingleQueueBalancer).
  bool obs_active_ = false;
  bool obs_detail_ = false;

  // Scratch buffers reused across steps (no per-step allocation).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> choice_scratch_;
  /// With faults: request indices included in the cuckoo instance (chunks
  /// with both replicas down are excluded).
  std::vector<std::uint32_t> assign_items_;
};

}  // namespace rlb::policies
