#include "policies/batched_greedy.hpp"

#include <stdexcept>

namespace rlb::policies {

BatchedGreedyBalancer::BatchedGreedyBalancer(const BatchedGreedyConfig& config)
    : config_(config),
      cluster_(config.servers, config.queue_capacity),
      placement_(config.servers, config.replication, config.seed) {
  if (config.processing_rate == 0) {
    throw std::invalid_argument("BatchedGreedyBalancer: g >= 1");
  }
}

void BatchedGreedyBalancer::decide(std::span<const core::ChunkId> batch) {
  decisions_.resize(batch.size());
  auto decide_one = [&](std::size_t i) {
    const core::ChoiceList choices = placement_.choices(batch[i]);
    core::ServerId best = choices[0];
    std::uint32_t best_backlog = snapshot_[best];
    for (unsigned c = 1; c < choices.size(); ++c) {
      const core::ServerId candidate = choices[c];
      if (snapshot_[candidate] < best_backlog) {
        best = candidate;
        best_backlog = snapshot_[candidate];
      }
    }
    decisions_[i] = best;
  };
  // Decisions read only the snapshot, so parallel and serial execution are
  // bit-identical; the pool is purely a throughput lever.
  if (config_.pool != nullptr && batch.size() >= 256) {
    parallel::parallel_for(*config_.pool, batch.size(), decide_one);
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) decide_one(i);
  }
}

void BatchedGreedyBalancer::step(core::Time t,
                                 std::span<const core::ChunkId> requests,
                                 core::Metrics& metrics) {
  const unsigned g = config_.processing_rate;
  const std::size_t n = requests.size();
  const std::size_t base = n / g;
  const std::size_t extra = n % g;
  std::size_t cursor = 0;
  for (unsigned sub = 0; sub < g; ++sub) {
    const std::size_t take = base + (sub < extra ? 1 : 0);
    const auto batch = requests.subspan(cursor, take);
    cursor += take;

    // Phase 1: snapshot + parallel decisions.
    snapshot_ = cluster_.backlogs();
    decide(batch);

    // Phase 2: serial commit in arrival order (the queue bound is still
    // enforced against the LIVE state, as a real server would).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      metrics.on_submitted();
      if (!cluster_.push(decisions_[i], core::Request{batch[i], t})) {
        metrics.on_rejected();
      }
    }

    // Phase 3: every server consumes one request.
    for (std::size_t s = 0; s < cluster_.size(); ++s) {
      const auto server = static_cast<core::ServerId>(s);
      if (cluster_.empty(server)) continue;
      const core::Request request = cluster_.pop(server);
      metrics.on_completed(static_cast<std::uint64_t>(t - request.arrival));
    }
  }
}

void BatchedGreedyBalancer::flush(core::Metrics& metrics) {
  metrics.on_dropped_from_queue(cluster_.clear_all());
}

}  // namespace rlb::policies
