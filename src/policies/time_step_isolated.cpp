#include "policies/time_step_isolated.hpp"

#include <algorithm>

namespace rlb::policies {

core::ServerId RandomOfDBalancer::pick(core::ChunkId /*x*/,
                                       const core::ChoiceList& choices) {
  return choices[static_cast<unsigned>(rng_.next_below(choices.size()))];
}

void PerStepGreedyBalancer::on_step_begin(core::Time /*t*/,
                                          std::size_t /*batch_size*/) {
  std::fill(step_arrivals_.begin(), step_arrivals_.end(), 0);
}

core::ServerId PerStepGreedyBalancer::pick(core::ChunkId /*x*/,
                                           const core::ChoiceList& choices) {
  core::ServerId best = choices[0];
  std::uint32_t best_count = step_arrivals_[best];
  for (unsigned i = 1; i < choices.size(); ++i) {
    const core::ServerId candidate = choices[i];
    if (step_arrivals_[candidate] < best_count) {
      best = candidate;
      best_count = step_arrivals_[candidate];
    }
  }
  ++step_arrivals_[best];
  return best;
}

}  // namespace rlb::policies
