#include "policies/round_robin.hpp"

namespace rlb::policies {

core::ServerId RoundRobinBalancer::pick(core::ChunkId x,
                                        const core::ChoiceList& choices) {
  const std::uint32_t count = counters_[x]++;
  return choices[count % choices.size()];
}

}  // namespace rlb::policies
