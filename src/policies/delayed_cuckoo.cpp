#include "policies/delayed_cuckoo.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "cuckoo/offline_assignment.hpp"
#include "obs/obs.hpp"

namespace rlb::policies {

namespace {

/// ceil(log2(log2(m))), floored at 2 — the phase length recipe.
std::size_t derived_phase_length(std::size_t servers) {
  const double log_m = std::log2(std::max<double>(4.0, static_cast<double>(servers)));
  const double loglog_m = std::log2(log_m);
  return std::max<std::size_t>(2, static_cast<std::size_t>(std::ceil(loglog_m)));
}

}  // namespace

DelayedCuckooBalancer::DelayedCuckooBalancer(const DelayedCuckooConfig& config)
    : servers_(config.servers),
      processing_rate_(config.processing_rate),
      queue_capacity_(config.queue_capacity),
      phase_length_(config.phase_length),
      stash_per_group_(config.stash_per_group),
      use_cuckoo_routing_(config.use_cuckoo_routing),
      carry_over_queues_(config.carry_over_queues),
      placement_(config.servers, /*replication=*/2, config.seed),
      up_(config.servers, 1),
      p_arrivals_(config.servers, 0),
      p_arrivals_phase_(config.servers, 0) {
  if (processing_rate_ < 4 || processing_rate_ % 4 != 0) {
    throw std::invalid_argument(
        "DelayedCuckooBalancer: g must be a positive multiple of 4");
  }
  if (phase_length_ == 0) phase_length_ = derived_phase_length(servers_);
  if (queue_capacity_ == 0) {
    // 4·L by the theorem recipe, clamped so the drain guarantee below holds
    // even for small g (the paper assumes g is a sufficiently large
    // constant; smaller g simply yields shorter queues).
    queue_capacity_ =
        std::min<std::size_t>(4 * phase_length_,
                              (processing_rate_ / 4) * phase_length_);
    queue_capacity_ = std::max<std::size_t>(queue_capacity_, 1);
  }
  // Carried-over queues must drain within one phase: (g/4)·L >= q.
  // Irrelevant when the carry-over ablation is off (leftovers are dropped
  // at boundaries instead of moved).
  if (carry_over_queues_ &&
      static_cast<std::size_t>(processing_rate_ / 4) * phase_length_ <
          queue_capacity_) {
    throw std::invalid_argument(
        "DelayedCuckooBalancer: (g/4)*phase_length must be >= queue capacity "
        "or previous-phase queues cannot be guaranteed to drain");
  }
  state_.reserve(servers_);
  for (std::size_t i = 0; i < servers_; ++i) {
    state_.emplace_back(queue_capacity_);
  }
  last_assignment_.reserve(servers_ * 2);
}

std::uint32_t DelayedCuckooBalancer::backlog(core::ServerId s) const {
  const ServerState& st = state_[s];
  return static_cast<std::uint32_t>(st.q.size() + st.p.size() +
                                    st.q_prev.size() + st.p_prev.size());
}

void DelayedCuckooBalancer::begin_phase(core::Metrics& metrics) {
  // Record the finished phase's per-P_j arrival counts (the Lemma 4.5
  // quantity) before resetting them, then mark the boundary in the trace.
  if (obs_active_) {
    static obs::Histogram p_arrivals_hist("pqueue.arrivals_per_phase");
    for (std::size_t j = 0; j < p_arrivals_phase_.size(); ++j) {
      p_arrivals_hist.observe(static_cast<double>(p_arrivals_phase_[j]));
      if (p_arrivals_phase_[j] > 0) {
        obs::emit(obs::EventKind::kPArrival, "pqueue.arrivals_per_phase",
                  static_cast<std::uint64_t>(j), p_arrivals_phase_[j]);
      }
    }
    obs::emit(obs::EventKind::kPhaseBegin, "cuckoo.phase", phase_index_ + 1,
              static_cast<std::uint64_t>(phase_length_));
  }
  std::fill(p_arrivals_phase_.begin(), p_arrivals_phase_.end(), 0);
  ++phase_index_;

  // Move this phase's leftovers into the previous-phase queues.  By the
  // drain guarantee ((g/4)·L >= q) the q_prev/p_prev queues are empty at
  // every boundary; the assert documents the invariant, and any residue
  // (impossible under the constructor check) would be dropped as rejected.
  for (ServerState& st : state_) {
    std::size_t residue = drop_queue(st.q_prev) + drop_queue(st.p_prev);
    if (!carry_over_queues_) {
      // Ablation: no carry-over — leftovers are rejected outright.
      residue += drop_queue(st.q) + drop_queue(st.p);
    }
    if (residue > 0) metrics.on_dropped_from_queue(residue);
    while (!st.q.empty()) {
      st.q_prev.push(st.q.pop());  // same capacity: cannot fail
    }
    while (!st.p.empty()) {
      st.p_prev.push(st.p.pop());
    }
  }
  // New phase: all chunks count as first access again.
  last_assignment_.clear();
  steps_into_phase_ = 0;
}

void DelayedCuckooBalancer::deliver(core::Time t, core::ChunkId x,
                                    core::Metrics& metrics) {
  metrics.on_submitted();
  const auto it = use_cuckoo_routing_ ? last_assignment_.find(x)
                                      : last_assignment_.end();
  if (it != last_assignment_.end()) {
    // Reappearance within the phase: follow the most recent T_{t'}.
    if (it->second == kAssignmentFailed) {
      metrics.on_rejected();
      if (sink_ != nullptr) {
        sink_->on_rejected(x, core::RejectCause::kQueueFull);
      }
      if (obs_active_) {
        obs::emit(obs::EventKind::kReject, "cuckoo.reject_failed_assign", x,
                  t);
      }
      return;
    }
    const auto target = static_cast<core::ServerId>(it->second);
    // If the assigned server crashed after T_{t'} was computed, fall
    // through to the Q path, which fails over to the live replica (the
    // assigned server is always one of the chunk's two choices, so the Q
    // path also accounts the failover).
    if (down_count_ == 0 || up_[target] != 0) {
      ++p_arrivals_[target];
      if (obs_active_) ++p_arrivals_phase_[target];
      if (obs_detail_) {
        obs::emit(obs::EventKind::kRoute, "cuckoo.route_p", x, target);
      }
      if (!state_[target].p.push(core::Request{x, t})) {
        // Lemma 4.5 says this cannot happen when q = Θ(log log m) with a
        // sufficient constant; kept for smaller configurations.
        metrics.on_rejected();
        if (sink_ != nullptr) {
          sink_->on_rejected(x, core::RejectCause::kQueueFull);
        }
        if (obs_active_) {
          obs::emit(obs::EventKind::kReject, "cuckoo.reject_p_full", x,
                    target);
        }
      }
      return;
    }
  }
  // First access this phase (or a reappearance failing over from a crashed
  // assignment): classic two-choice on the Q queues, up replicas only.
  const core::ChoiceList choices = placement_.choices(x);
  core::ServerId a = choices[0];
  core::ServerId b = choices[1];
  if (down_count_ > 0) [[unlikely]] {
    static obs::Counter failover_counter("fault.failovers");
    static obs::Counter all_down_counter("fault.all_replicas_down");
    const bool a_up = up_[a] != 0;
    const bool b_up = up_[b] != 0;
    if (!a_up && !b_up) {
      all_down_counter.add();
      metrics.on_rejected();
      if (sink_ != nullptr) {
        sink_->on_rejected(x, core::RejectCause::kAllReplicasDown);
      }
      if (obs_active_) {
        obs::emit(obs::EventKind::kReject, "cuckoo.reject_all_down", x, t);
      }
      return;
    }
    if (a_up != b_up) {
      failover_counter.add();
      if (!a_up) a = b;
      if (!b_up) b = a;
    }
  }
  const core::ServerId target =
      state_[a].q.size() <= state_[b].q.size() ? a : b;
  if (obs_detail_) {
    obs::emit(obs::EventKind::kRoute, "cuckoo.route_q", x, target);
  }
  if (!state_[target].q.push(core::Request{x, t})) {
    metrics.on_rejected();
    if (sink_ != nullptr) {
      sink_->on_rejected(x, core::RejectCause::kQueueFull);
    }
    if (obs_active_) {
      obs::emit(obs::EventKind::kReject, "cuckoo.reject_q_full", x, target);
    }
  }
}

void DelayedCuckooBalancer::drain_queue(core::ServerQueue& queue,
                                        core::ServerId server,
                                        unsigned budget, core::Time t,
                                        core::Metrics& metrics) {
  for (unsigned i = 0; i < budget && !queue.empty(); ++i) {
    const core::Request request = queue.pop();
    metrics.on_completed(static_cast<std::uint64_t>(t - request.arrival));
    if (sink_ != nullptr) {
      sink_->on_served(request.chunk, server,
                       static_cast<std::uint64_t>(t - request.arrival));
    }
  }
}

std::size_t DelayedCuckooBalancer::drop_queue(core::ServerQueue& queue) {
  if (sink_ == nullptr) return queue.clear();
  std::size_t dropped = 0;
  while (!queue.empty()) {
    sink_->on_rejected(queue.pop().chunk, core::RejectCause::kQueueDrop);
    ++dropped;
  }
  return dropped;
}

void DelayedCuckooBalancer::process(core::Time t, core::Metrics& metrics) {
  const unsigned per_queue = processing_rate_ / 4;
  const bool faults = down_count_ > 0;
  for (std::size_t s = 0; s < state_.size(); ++s) {
    // Down servers process nothing; any surviving queues (no dump-on-crash)
    // are frozen until recovery.
    if (faults && up_[s] == 0) continue;
    ServerState& st = state_[s];
    const auto server = static_cast<core::ServerId>(s);
    drain_queue(st.q, server, per_queue, t, metrics);
    drain_queue(st.p, server, per_queue, t, metrics);
    drain_queue(st.q_prev, server, per_queue, t, metrics);
    drain_queue(st.p_prev, server, per_queue, t, metrics);
  }
}

void DelayedCuckooBalancer::compute_assignment(
    std::span<const core::ChunkId> requests) {
  // Build the two-choice instance for S_t and run Lemma 4.2's offline
  // assignment.  The result overwrites each requested chunk's entry — "the
  // most recent time t' < t that the chunk was requested".
  //
  // Down servers are removed cuckoo slots: a chunk with one live replica
  // enters the instance as a forced (live, live) item, and a chunk with
  // both replicas down is left out entirely (its entry is erased, so a
  // reappearance takes the Q path and is rejected there unless a replica
  // has recovered by then).
  choice_scratch_.clear();
  choice_scratch_.reserve(requests.size());
  assign_items_.clear();
  const bool faults = down_count_ > 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const core::ChoiceList choices = placement_.choices(requests[i]);
    std::uint32_t a = choices[0];
    std::uint32_t b = choices[1];
    if (faults) [[unlikely]] {
      const bool a_up = up_[a] != 0;
      const bool b_up = up_[b] != 0;
      if (!a_up && !b_up) {
        last_assignment_.erase(requests[i]);
        continue;
      }
      if (!a_up) a = b;
      if (!b_up) b = a;
    }
    choice_scratch_.emplace_back(a, b);
    assign_items_.push_back(static_cast<std::uint32_t>(i));
  }
  const cuckoo::OfflineAssignment result =
      cuckoo::assign_offline(choice_scratch_, servers_, stash_per_group_);
  if (result.success) {
    for (std::size_t k = 0; k < assign_items_.size(); ++k) {
      last_assignment_[requests[assign_items_[k]]] = result.assignment[k];
    }
  } else {
    static obs::Counter failure_counter("cuckoo.assign_failures");
    ++assignment_failures_;
    failure_counter.add();
    RLB_TRACE_EVENT(obs::EventKind::kAssignFail, "cuckoo.assign_fail",
                    requests.size(), result.stash_used);
    for (const std::uint32_t i : assign_items_) {
      last_assignment_[requests[i]] = kAssignmentFailed;
    }
  }
}

void DelayedCuckooBalancer::step(core::Time t,
                                 std::span<const core::ChunkId> requests,
                                 core::Metrics& metrics) {
  obs_active_ = obs::enabled();
  obs_detail_ = obs::detail_enabled();
  if (steps_into_phase_ == phase_length_) begin_phase(metrics);
  std::fill(p_arrivals_.begin(), p_arrivals_.end(), 0);

  for (const core::ChunkId x : requests) deliver(t, x, metrics);
  process(t, metrics);

  // The delayed part: T_t becomes available only now, to guide future
  // reappearances of S_t within this phase.  (Skipped entirely when the
  // cuckoo-routing ablation is off — nothing would read it.)
  if (use_cuckoo_routing_) compute_assignment(requests);
  ++steps_into_phase_;
}

void DelayedCuckooBalancer::set_server_up(core::ServerId s, bool up,
                                          bool dump_queue,
                                          core::Metrics& metrics) {
  if (s >= servers_) {
    throw std::out_of_range("set_server_up: bad server id");
  }
  const bool was_up = up_[s] != 0;
  if (was_up == up) return;
  up_[s] = up ? 1 : 0;
  if (up) {
    --down_count_;
  } else {
    ++down_count_;
  }
  if (!up && dump_queue) {
    ServerState& st = state_[s];
    const std::size_t dropped = drop_queue(st.q) + drop_queue(st.p) +
                                drop_queue(st.q_prev) + drop_queue(st.p_prev);
    if (dropped > 0) {
      metrics.on_dropped_from_queue(dropped);
      RLB_TRACE_EVENT(obs::EventKind::kFlush, "fault.queue_dump", s, dropped);
    }
  }
}

void DelayedCuckooBalancer::flush(core::Metrics& metrics) {
  std::size_t dropped = 0;
  for (ServerState& st : state_) {
    dropped += drop_queue(st.q) + drop_queue(st.p) + drop_queue(st.q_prev) +
               drop_queue(st.p_prev);
  }
  metrics.on_dropped_from_queue(dropped);
  RLB_TRACE_EVENT(obs::EventKind::kFlush, "cuckoo.flush", dropped, servers_);
}

}  // namespace rlb::policies
