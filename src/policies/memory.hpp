// Sticky routing with backlog-triggered reassessment — per-chunk memory.
//
// Real key-value-store clients cache a preferred replica per key ("replica
// affinity") instead of probing every replica on every request.  This
// policy models that: each chunk remembers the server chosen at its last
// reassessment and returns there — ZERO additional probes — unless the
// remembered server's backlog has reached a trigger threshold, in which
// case the chunk re-probes all d choices greedily and re-caches the
// winner.
//
// Why it is interesting for THIS paper: stickiness converts reappearance
// dependencies from an adversary into an asset — the cached decision is
// only revisited when it demonstrably stopped working, so cross-step
// information flows exactly where Lemma 5.3 says it must (a time-step
// isolated policy cannot do this).  The E11 matrix and E13 ablations
// measure how close 1-probe stickiness gets to full d-probe greedy.
#pragma once

#include <unordered_map>

#include "policies/single_queue_base.hpp"

namespace rlb::policies {

/// Per-chunk cached-replica routing with greedy reassessment.
class StickyBalancer final : public SingleQueueBalancer {
 public:
  /// Reassess when the cached server's backlog is >= `trigger` (>= 1).
  StickyBalancer(const SingleQueueConfig& config, std::uint32_t trigger);

  std::string_view name() const override { return "sticky"; }

  std::uint32_t trigger() const noexcept { return trigger_; }
  /// Reassessments performed (each costs d probes; sticky hits cost 1).
  std::uint64_t reassessments() const noexcept { return reassessments_; }
  std::uint64_t requests_routed() const noexcept { return routed_; }

 protected:
  core::ServerId pick(core::ChunkId x,
                      const core::ChoiceList& choices) override;

 private:
  std::uint32_t trigger_;
  std::unordered_map<core::ChunkId, core::ServerId> memory_;
  std::uint64_t reassessments_ = 0;
  std::uint64_t routed_ = 0;
};

}  // namespace rlb::policies
