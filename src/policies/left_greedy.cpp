#include "policies/left_greedy.hpp"

namespace rlb::policies {

core::ServerId LeftGreedyBalancer::pick(core::ChunkId /*x*/,
                                        const core::ChoiceList& choices) {
  // choices[i] lives in group i (grouped placement), so "first strict
  // minimum wins" IS the always-go-left tie-break.
  core::ServerId best = choices[0];
  std::uint32_t best_backlog = cluster_.backlog(best);
  for (unsigned i = 1; i < choices.size(); ++i) {
    const core::ServerId candidate = choices[i];
    const std::uint32_t backlog = cluster_.backlog(candidate);
    if (backlog < best_backlog) {
      best = candidate;
      best_backlog = backlog;
    }
  }
  return best;
}

}  // namespace rlb::policies
