// Time-step-isolated strategies (Section 5, Lemma 5.3 / Corollary 5.4).
//
// A strategy is time-step isolated when its routing decisions within a step
// use only that step's requests — no queue state, no history.  The paper
// proves such strategies are non-viable: even on a fixed repeated request
// set, some server must receive Ω(log log m) average load per step, so with
// g = O(1) its queue grows without bound and with q = O(1) the rejection
// rate is Ω(1/m)·ω(1) — they cannot match greedy or delayed cuckoo.
//
// Two natural representatives are provided:
//   * RandomOfDBalancer  — pick one of the d choices uniformly at random
//     each time (fresh per-request randomness, no state at all).
//   * PerStepGreedyBalancer — pick the choice that has received the fewest
//     requests SO FAR THIS STEP (resets every step; uses within-step info
//     only, which the definition allows).
#pragma once

#include <vector>

#include "policies/single_queue_base.hpp"
#include "stats/rng.hpp"

namespace rlb::policies {

/// Uniformly random choice among the d replicas, independently per request.
class RandomOfDBalancer final : public SingleQueueBalancer {
 public:
  explicit RandomOfDBalancer(const SingleQueueConfig& config)
      : SingleQueueBalancer(config),
        rng_(stats::derive_seed(config.seed, 0xDA)) {}

  std::string_view name() const override { return "random-of-d"; }

 protected:
  core::ServerId pick(core::ChunkId x,
                      const core::ChoiceList& choices) override;

 private:
  stats::Rng rng_;
};

/// Least-arrivals-this-step choice (time-step isolated "greedy"): tracks
/// only the current step's arrival counts, never the real backlogs.
class PerStepGreedyBalancer final : public SingleQueueBalancer {
 public:
  explicit PerStepGreedyBalancer(const SingleQueueConfig& config)
      : SingleQueueBalancer(config), step_arrivals_(config.servers, 0) {}

  std::string_view name() const override { return "per-step-greedy"; }

 protected:
  core::ServerId pick(core::ChunkId x,
                      const core::ChoiceList& choices) override;
  void on_step_begin(core::Time t, std::size_t batch_size) override;

 private:
  std::vector<std::uint32_t> step_arrivals_;
};

}  // namespace rlb::policies
