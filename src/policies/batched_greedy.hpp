// Batched greedy — two-choice routing against a per-sub-step SNAPSHOT.
//
// In a real distributed router, the m/g requests of a sub-step are routed
// concurrently: each decision reads backlog state that cannot reflect the
// other in-flight decisions.  This balancer models that exactly — all
// requests of a sub-step pick the least-backlogged choice as of the START
// of the sub-step — which is the "balanced allocations in batches" model
// (Berenbrink et al. [8]; Los & Sauerwald, SPAA '23 [21], both cited by
// the paper).  The batch relaxation costs an additive O(batch/m·log m)
// in the classical analysis; E13-style comparisons against sequential
// greedy measure the cost here.
//
// Because every decision depends only on the snapshot (never on the other
// decisions), the decision loop is embarrassingly parallel; when a thread
// pool is supplied, decisions fan out across it and are then committed
// serially in arrival order.  Results are bit-identical with and without
// the pool — a test asserts this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/balancer.hpp"
#include "core/cluster.hpp"
#include "core/placement.hpp"
#include "parallel/thread_pool.hpp"

namespace rlb::policies {

/// Configuration for BatchedGreedyBalancer.
struct BatchedGreedyConfig {
  std::size_t servers = 64;
  unsigned replication = 2;
  unsigned processing_rate = 2;
  std::size_t queue_capacity = 8;
  std::uint64_t seed = 1;
  /// Decisions are computed on this pool when non-null (optional — the
  /// semantics are identical either way).
  parallel::ThreadPool* pool = nullptr;
};

/// Snapshot-based greedy: all decisions within a sub-step read the same
/// backlog state.
class BatchedGreedyBalancer final : public core::LoadBalancer {
 public:
  explicit BatchedGreedyBalancer(const BatchedGreedyConfig& config);

  std::string_view name() const override { return "batched-greedy"; }
  std::size_t server_count() const override { return cluster_.size(); }

  void step(core::Time t, std::span<const core::ChunkId> requests,
            core::Metrics& metrics) override;

  std::uint32_t backlog(core::ServerId s) const override {
    return cluster_.backlog(s);
  }
  void backlogs(std::vector<std::uint32_t>& out) const override {
    out = cluster_.backlogs();
  }
  std::uint64_t total_backlog() const override {
    return cluster_.total_backlog();
  }
  void flush(core::Metrics& metrics) override;

  const core::Placement& placement() const noexcept { return placement_; }

 private:
  void decide(std::span<const core::ChunkId> batch);

  BatchedGreedyConfig config_;
  core::Cluster cluster_;
  core::Placement placement_;
  std::vector<std::uint32_t> snapshot_;       // backlogs at sub-step start
  std::vector<core::ServerId> decisions_;     // per batch index
};

}  // namespace rlb::policies
