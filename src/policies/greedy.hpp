// The greedy algorithm of Section 3.
//
// Routes each request to the least-backlogged of its d placement choices.
// With d and g sufficiently large constants and q = log2 m + 1, Theorem 3.1
// guarantees expected rejection rate O(1/m^{c-1}), max latency O(log m) and
// expected average latency O(1) — despite reappearance dependencies, via
// the safe-distribution induction (Definition 3.2 / Lemma 3.4).
//
// The paper's overflow rule (queue dump) and its periodic full flush are
// supported: the dump is the OverflowPolicy::kDumpQueue default here, and
// the every-m^c-steps flush is driven by SimConfig::flush_every.
//
// GreedyBalancer with replication = 1 *is* the paper's d = 1 baseline that
// [34] proves cannot achieve o(1) rejection on repeated workloads.
#pragma once

#include "policies/single_queue_base.hpp"

namespace rlb::policies {

/// Least-backlog-of-d routing (the paper's greedy algorithm).
class GreedyBalancer final : public SingleQueueBalancer {
 public:
  explicit GreedyBalancer(const SingleQueueConfig& config)
      : SingleQueueBalancer(config) {}

  std::string_view name() const override { return "greedy"; }

  /// Default parameters matching Theorem 3.1's regime for a given m:
  /// q = log2(m) + 1, d = replication, g = processing = d, dump-on-overflow.
  static SingleQueueConfig theorem_config(std::size_t servers,
                                          unsigned replication,
                                          unsigned processing_rate,
                                          std::uint64_t seed);

 protected:
  core::ServerId pick(core::ChunkId x,
                      const core::ChoiceList& choices) override;
};

}  // namespace rlb::policies
