#include "policies/threshold.hpp"

#include <stdexcept>

namespace rlb::policies {

ThresholdBalancer::ThresholdBalancer(const SingleQueueConfig& config,
                                     std::uint32_t threshold)
    : SingleQueueBalancer(config), threshold_(threshold) {
  if (threshold == 0) {
    throw std::invalid_argument("ThresholdBalancer: threshold >= 1");
  }
}

core::ServerId ThresholdBalancer::pick(core::ChunkId /*x*/,
                                       const core::ChoiceList& choices) {
  ++routed_;
  core::ServerId best = choices[0];
  std::uint32_t best_backlog = cluster_.backlog(best);
  ++probes_;
  if (best_backlog < threshold_) return best;
  for (unsigned i = 1; i < choices.size(); ++i) {
    const core::ServerId candidate = choices[i];
    const std::uint32_t backlog = cluster_.backlog(candidate);
    ++probes_;
    if (backlog < threshold_) return candidate;
    if (backlog < best_backlog) {
      best = candidate;
      best_backlog = backlog;
    }
  }
  return best;
}

}  // namespace rlb::policies
