// The paper's canonical hard workload: the same set S of chunks is requested
// on every time step.
//
// This maximizes reappearance dependencies — every request after step 0 is a
// reappearance, so routing can never rely on fresh placement randomness.
// It is the workload behind the d = 1 impossibility (Section 1 / [34]) and
// behind the time-step-isolated lower bound (Lemma 5.3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/workload.hpp"
#include "stats/rng.hpp"

namespace rlb::workloads {

/// Requests the same `count` distinct chunks every step.
class RepeatedSetWorkload final : public core::Workload {
 public:
  /// `count` chunks drawn once from `universe` (seeded); if
  /// `shuffle_each_step`, the within-step arrival order is re-randomized
  /// per step (routing must be online, so order matters to the policies).
  RepeatedSetWorkload(std::size_t count, std::uint64_t universe,
                      std::uint64_t seed, bool shuffle_each_step = true);

  /// Build directly from an explicit chunk set (must be distinct).
  RepeatedSetWorkload(std::vector<core::ChunkId> chunks, std::uint64_t seed,
                      bool shuffle_each_step = true);

  void fill_step(core::Time t, std::vector<core::ChunkId>& out) override;
  std::size_t max_requests_per_step() const override { return chunks_.size(); }

  const std::vector<core::ChunkId>& chunk_set() const noexcept {
    return chunks_;
  }

 private:
  std::vector<core::ChunkId> chunks_;
  stats::Rng rng_;
  bool shuffle_;
};

}  // namespace rlb::workloads
