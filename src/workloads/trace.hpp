// Trace capture and replay.
//
// Records the exact step-by-step batches emitted by any workload so that a
// run can be replayed bit-for-bit against a different policy — the fair
// head-to-head comparison mode used by the policy-matrix experiment (every
// policy sees the identical oblivious request sequence).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/workload.hpp"

namespace rlb::workloads {

/// An in-memory recorded request trace.
class Trace {
 public:
  Trace() = default;

  /// Record `steps` steps from `source` (consumes that many steps of it).
  static Trace record(core::Workload& source, std::size_t steps);

  void append_step(std::vector<core::ChunkId> batch);

  /// Text serialization: one line per step, space-separated chunk ids
  /// (blank line = empty step).  Round-trips exactly through load().
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  static Trace load(std::istream& is);
  static Trace load_file(const std::string& path);

  /// Compact binary serialization (little-endian): "RLBT" magic + u32
  /// version header, u64 step count, then per step a u32 batch size
  /// followed by that many u64 chunk ids.  ~8 bytes per request vs ~7-20
  /// text characters, and no parsing on load.  Round-trips exactly through
  /// load_binary(), which throws std::runtime_error on a bad magic,
  /// an unsupported version, or a truncated stream.
  void save_binary(std::ostream& os) const;
  void save_binary_file(const std::string& path) const;
  static Trace load_binary(std::istream& is);
  static Trace load_binary_file(const std::string& path);

  /// Load either format, sniffing the 4-byte magic.
  static Trace load_auto_file(const std::string& path);

  bool operator==(const Trace& other) const {
    return steps_ == other.steps_;
  }

  std::size_t step_count() const noexcept { return steps_.size(); }
  const std::vector<core::ChunkId>& step(std::size_t i) const {
    return steps_[i];
  }
  std::size_t max_batch_size() const noexcept { return max_batch_; }
  std::uint64_t total_requests() const noexcept { return total_; }

 private:
  std::vector<std::vector<core::ChunkId>> steps_;
  std::size_t max_batch_ = 0;
  std::uint64_t total_ = 0;
};

/// Replays a Trace as a Workload; steps beyond the recorded length cycle
/// back to the beginning (so long simulations can reuse short traces).
class TraceWorkload final : public core::Workload {
 public:
  explicit TraceWorkload(const Trace& trace);

  void fill_step(core::Time t, std::vector<core::ChunkId>& out) override;
  std::size_t max_requests_per_step() const override {
    return trace_.max_batch_size();
  }

 private:
  const Trace& trace_;
};

}  // namespace rlb::workloads
