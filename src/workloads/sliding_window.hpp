// Sliding-window working set: smooth drift instead of phased churn.
//
// The working set is a contiguous window [base, base + count) over the
// chunk-id space that advances by `drift` chunks per step.  Every chunk is
// therefore requested on exactly count/drift consecutive steps and then
// retired forever — an LRU-like popularity lifecycle (content caches, news
// feeds).  Reappearance fraction = 1 − drift/count, tunable continuously,
// with reuse distance exactly 1 — the smooth counterpart of
// PhasedChurnWorkload's bulk rotations.
#pragma once

#include <cstdint>
#include <vector>

#include "core/workload.hpp"
#include "stats/rng.hpp"

namespace rlb::workloads {

/// Window of `count` chunks advancing by `drift` ids per step.
class SlidingWindowWorkload final : public core::Workload {
 public:
  /// Requires drift <= count (a window cannot skip past itself).
  SlidingWindowWorkload(std::size_t count, std::size_t drift,
                        std::uint64_t seed, bool shuffle_each_step = true);

  void fill_step(core::Time t, std::vector<core::ChunkId>& out) override;
  std::size_t max_requests_per_step() const override { return count_; }

 private:
  std::size_t count_;
  std::size_t drift_;
  stats::Rng rng_;
  bool shuffle_;
};

}  // namespace rlb::workloads
