#include "workloads/zipf_workload.hpp"

#include <stdexcept>

namespace rlb::workloads {

ZipfWorkload::ZipfWorkload(std::size_t count, std::uint64_t universe, double s,
                           std::uint64_t seed)
    : count_(count), sampler_(universe, s), rng_(seed) {
  if (count == 0) throw std::invalid_argument("ZipfWorkload: empty");
  if (universe < 2 * count) {
    throw std::invalid_argument(
        "ZipfWorkload: universe must be >= 2x count for distinct sampling");
  }
}

void ZipfWorkload::fill_step(core::Time /*t*/,
                             std::vector<core::ChunkId>& out) {
  out.clear();
  out.reserve(count_);
  seen_.clear();
  // Rejection of duplicates.  For moderate skew (s <= ~1.2) redraws are
  // cheap; for extreme skew the head exhausts and rejection could stall, so
  // after an attempt budget we complete the batch deterministically with the
  // smallest unused ranks (these are exactly the high-popularity chunks an
  // adversary would re-request anyway).
  const std::size_t attempt_budget = 64 * count_ + 1024;
  std::size_t attempts = 0;
  while (out.size() < count_ && attempts < attempt_budget) {
    ++attempts;
    const core::ChunkId candidate = sampler_.sample(rng_);  // rank in [1, n]
    if (seen_.insert(candidate).second) out.push_back(candidate);
  }
  for (core::ChunkId rank = 1; out.size() < count_; ++rank) {
    if (seen_.insert(rank).second) out.push_back(rank);
  }
}

}  // namespace rlb::workloads
