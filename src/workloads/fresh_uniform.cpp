#include "workloads/fresh_uniform.hpp"

#include <stdexcept>

namespace rlb::workloads {

FreshUniformWorkload::FreshUniformWorkload(std::size_t count,
                                           std::uint64_t id_offset)
    : count_(count), next_id_(id_offset) {
  if (count == 0) throw std::invalid_argument("FreshUniformWorkload: empty");
}

void FreshUniformWorkload::fill_step(core::Time /*t*/,
                                     std::vector<core::ChunkId>& out) {
  out.clear();
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) out.push_back(next_id_++);
}

}  // namespace rlb::workloads
