#include "workloads/trace.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rlb::workloads {

Trace Trace::record(core::Workload& source, std::size_t steps) {
  Trace trace;
  std::vector<core::ChunkId> batch;
  for (std::size_t i = 0; i < steps; ++i) {
    source.fill_step(static_cast<core::Time>(i), batch);
    trace.append_step(batch);
  }
  return trace;
}

void Trace::append_step(std::vector<core::ChunkId> batch) {
  max_batch_ = std::max(max_batch_, batch.size());
  total_ += batch.size();
  steps_.push_back(std::move(batch));
}

void Trace::save(std::ostream& os) const {
  for (const auto& step : steps_) {
    for (std::size_t i = 0; i < step.size(); ++i) {
      if (i) os << ' ';
      os << step[i];
    }
    os << '\n';
  }
}

void Trace::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Trace::save_file: cannot open " + path);
  save(out);
}

Trace Trace::load(std::istream& is) {
  Trace trace;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream fields(line);
    std::vector<core::ChunkId> batch;
    core::ChunkId chunk = 0;
    while (fields >> chunk) batch.push_back(chunk);
    trace.append_step(std::move(batch));
  }
  return trace;
}

Trace Trace::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Trace::load_file: cannot open " + path);
  return load(in);
}

namespace {

constexpr char kTraceMagic[4] = {'R', 'L', 'B', 'T'};
constexpr std::uint32_t kTraceVersion = 1;

void put_u32(std::ostream& os, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  os.write(bytes, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  os.write(bytes, 8);
}

std::uint32_t get_u32(std::istream& is) {
  char bytes[4];
  if (!is.read(bytes, 4)) {
    throw std::runtime_error("Trace::load_binary: truncated stream");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  char bytes[8];
  if (!is.read(bytes, 8)) {
    throw std::runtime_error("Trace::load_binary: truncated stream");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void Trace::save_binary(std::ostream& os) const {
  os.write(kTraceMagic, sizeof(kTraceMagic));
  put_u32(os, kTraceVersion);
  put_u64(os, static_cast<std::uint64_t>(steps_.size()));
  for (const auto& step : steps_) {
    put_u32(os, static_cast<std::uint32_t>(step.size()));
    for (const core::ChunkId chunk : step) put_u64(os, chunk);
  }
  if (!os) throw std::runtime_error("Trace::save_binary: write failed");
}

void Trace::save_binary_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("Trace::save_binary_file: cannot open " + path);
  }
  save_binary(out);
}

Trace Trace::load_binary(std::istream& is) {
  char magic[4];
  if (!is.read(magic, 4) ||
      std::memcmp(magic, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    throw std::runtime_error("Trace::load_binary: bad magic (not a trace?)");
  }
  const std::uint32_t version = get_u32(is);
  if (version != kTraceVersion) {
    throw std::runtime_error("Trace::load_binary: unsupported version " +
                             std::to_string(version));
  }
  const std::uint64_t step_count = get_u64(is);
  Trace trace;
  for (std::uint64_t s = 0; s < step_count; ++s) {
    const std::uint32_t batch_size = get_u32(is);
    std::vector<core::ChunkId> batch;
    batch.reserve(batch_size);
    for (std::uint32_t i = 0; i < batch_size; ++i) batch.push_back(get_u64(is));
    trace.append_step(std::move(batch));
  }
  return trace;
}

Trace Trace::load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("Trace::load_binary_file: cannot open " + path);
  }
  return load_binary(in);
}

Trace Trace::load_auto_file(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    throw std::runtime_error("Trace::load_auto_file: cannot open " + path);
  }
  char magic[4] = {0, 0, 0, 0};
  probe.read(magic, 4);
  probe.close();
  if (std::memcmp(magic, kTraceMagic, sizeof(kTraceMagic)) == 0) {
    return load_binary_file(path);
  }
  return load_file(path);
}

TraceWorkload::TraceWorkload(const Trace& trace) : trace_(trace) {
  if (trace.step_count() == 0) {
    throw std::invalid_argument("TraceWorkload: empty trace");
  }
}

void TraceWorkload::fill_step(core::Time t, std::vector<core::ChunkId>& out) {
  const std::size_t index =
      static_cast<std::size_t>(t) % trace_.step_count();
  out = trace_.step(index);
}

}  // namespace rlb::workloads
