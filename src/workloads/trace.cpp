#include "workloads/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rlb::workloads {

Trace Trace::record(core::Workload& source, std::size_t steps) {
  Trace trace;
  std::vector<core::ChunkId> batch;
  for (std::size_t i = 0; i < steps; ++i) {
    source.fill_step(static_cast<core::Time>(i), batch);
    trace.append_step(batch);
  }
  return trace;
}

void Trace::append_step(std::vector<core::ChunkId> batch) {
  max_batch_ = std::max(max_batch_, batch.size());
  total_ += batch.size();
  steps_.push_back(std::move(batch));
}

void Trace::save(std::ostream& os) const {
  for (const auto& step : steps_) {
    for (std::size_t i = 0; i < step.size(); ++i) {
      if (i) os << ' ';
      os << step[i];
    }
    os << '\n';
  }
}

void Trace::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Trace::save_file: cannot open " + path);
  save(out);
}

Trace Trace::load(std::istream& is) {
  Trace trace;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream fields(line);
    std::vector<core::ChunkId> batch;
    core::ChunkId chunk = 0;
    while (fields >> chunk) batch.push_back(chunk);
    trace.append_step(std::move(batch));
  }
  return trace;
}

Trace Trace::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Trace::load_file: cannot open " + path);
  return load(in);
}

TraceWorkload::TraceWorkload(const Trace& trace) : trace_(trace) {
  if (trace.step_count() == 0) {
    throw std::invalid_argument("TraceWorkload: empty trace");
  }
}

void TraceWorkload::fill_step(core::Time t, std::vector<core::ChunkId>& out) {
  const std::size_t index =
      static_cast<std::size_t>(t) % trace_.step_count();
  out = trace_.step(index);
}

}  // namespace rlb::workloads
