// On/off bursty traffic from a fixed working set.
//
// The oblivious adversary alternates `burst_steps` of full-rate requests
// (the whole working set, maximal reappearance pressure) with `idle_steps`
// of a small trickle.  Bursts test how much queue headroom a policy really
// has: the time-average load can be far below capacity while the
// instantaneous load during a burst matches the model ceiling — exactly
// the regime where q = Θ(log m) vs Θ(log log m) queue budgets differ in
// their absorption capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "core/workload.hpp"
#include "stats/rng.hpp"

namespace rlb::workloads {

/// Alternating full-set bursts and near-idle valleys.
class BurstyWorkload final : public core::Workload {
 public:
  /// Working set of `count` chunks; cycles of `burst_steps` steps emitting
  /// all of them followed by `idle_steps` steps emitting `idle_count`
  /// (<= count) of them.
  BurstyWorkload(std::size_t count, std::size_t burst_steps,
                 std::size_t idle_steps, std::size_t idle_count,
                 std::uint64_t seed);

  void fill_step(core::Time t, std::vector<core::ChunkId>& out) override;
  std::size_t max_requests_per_step() const override { return chunks_.size(); }

  bool in_burst(core::Time t) const noexcept {
    const auto cycle = static_cast<std::size_t>(t) %
                       (burst_steps_ + idle_steps_);
    return cycle < burst_steps_;
  }

 private:
  std::vector<core::ChunkId> chunks_;
  std::size_t burst_steps_;
  std::size_t idle_steps_;
  std::size_t idle_count_;
  stats::Rng rng_;
};

}  // namespace rlb::workloads
