#include "workloads/sliding_window.hpp"

#include <stdexcept>

#include "stats/distributions.hpp"

namespace rlb::workloads {

SlidingWindowWorkload::SlidingWindowWorkload(std::size_t count,
                                             std::size_t drift,
                                             std::uint64_t seed,
                                             bool shuffle_each_step)
    : count_(count),
      drift_(drift),
      rng_(stats::derive_seed(seed, 21)),
      shuffle_(shuffle_each_step) {
  if (count == 0) throw std::invalid_argument("SlidingWindow: empty window");
  if (drift > count) {
    throw std::invalid_argument("SlidingWindow: drift exceeds window size");
  }
}

void SlidingWindowWorkload::fill_step(core::Time t,
                                      std::vector<core::ChunkId>& out) {
  const auto base = static_cast<core::ChunkId>(t) *
                    static_cast<core::ChunkId>(drift_);
  out.clear();
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(base + static_cast<core::ChunkId>(i));
  }
  if (shuffle_) stats::shuffle(out, rng_);
}

}  // namespace rlb::workloads
