// The easiest workload: every request is to a never-before-seen chunk.
//
// With no reappearances, each request's placement randomness is fresh and
// classical balls-and-bins analysis applies directly — the control case for
// every experiment, and the workload used by the Theorem 5.1 lower-bound
// measurement (a single step of m requests to independently random chunks).
#pragma once

#include <cstdint>
#include <vector>

#include "core/workload.hpp"

namespace rlb::workloads {

/// Requests `count` brand-new chunk ids per step (sequential ids; the seeded
/// placement hash turns them into independent uniform server choices).
class FreshUniformWorkload final : public core::Workload {
 public:
  /// `id_offset` shifts the id space so multiple instances don't collide.
  explicit FreshUniformWorkload(std::size_t count, std::uint64_t id_offset = 0);

  void fill_step(core::Time t, std::vector<core::ChunkId>& out) override;
  std::size_t max_requests_per_step() const override { return count_; }

 private:
  std::size_t count_;
  std::uint64_t next_id_;
};

}  // namespace rlb::workloads
