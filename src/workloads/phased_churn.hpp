// Working-set churn: a repeated set whose membership rotates over time.
//
// Each step requests the current working set; every `period` steps a
// fraction `churn` of the set is replaced by never-seen chunks.  Sweeping
// churn from 0 (pure repeated set) to 1 (pure fresh) traces the transition
// between the paper's two extreme regimes (Section 4's intuition: greedy is
// fine when chunks rarely repeat, cuckoo pre-computation handles persistent
// repeats — this workload probes every mix in between).
#pragma once

#include <cstdint>
#include <vector>

#include "core/workload.hpp"
#include "stats/rng.hpp"

namespace rlb::workloads {

/// Repeated working set with periodic partial replacement.
class PhasedChurnWorkload final : public core::Workload {
 public:
  /// `count` chunks per step; every `period` steps replace ~`churn_fraction`
  /// of the working set with fresh ids.  churn_fraction in [0, 1].
  /// `shuffle_each_step` randomizes the within-step arrival order (an
  /// oblivious adversary may also fix it).
  PhasedChurnWorkload(std::size_t count, double churn_fraction,
                      std::size_t period, std::uint64_t seed,
                      bool shuffle_each_step = true);

  void fill_step(core::Time t, std::vector<core::ChunkId>& out) override;
  std::size_t max_requests_per_step() const override { return working_.size(); }

  const std::vector<core::ChunkId>& working_set() const noexcept {
    return working_;
  }

 private:
  void rotate();

  std::vector<core::ChunkId> working_;
  double churn_;
  std::size_t period_;
  stats::Rng rng_;
  std::uint64_t next_fresh_id_;
  core::Time last_rotation_ = -1;
  bool shuffle_;
};

}  // namespace rlb::workloads
