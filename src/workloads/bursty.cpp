#include "workloads/bursty.hpp"

#include <stdexcept>

#include "stats/distributions.hpp"

namespace rlb::workloads {

BurstyWorkload::BurstyWorkload(std::size_t count, std::size_t burst_steps,
                               std::size_t idle_steps, std::size_t idle_count,
                               std::uint64_t seed)
    : burst_steps_(burst_steps),
      idle_steps_(idle_steps),
      idle_count_(idle_count),
      rng_(stats::derive_seed(seed, 11)) {
  if (count == 0) throw std::invalid_argument("BurstyWorkload: empty set");
  if (burst_steps == 0) {
    throw std::invalid_argument("BurstyWorkload: burst_steps >= 1");
  }
  if (idle_count > count) {
    throw std::invalid_argument("BurstyWorkload: idle_count > count");
  }
  stats::Rng pick_rng(stats::derive_seed(seed, 12));
  chunks_ = stats::sample_without_replacement(1ULL << 40, count, pick_rng);
}

void BurstyWorkload::fill_step(core::Time t, std::vector<core::ChunkId>& out) {
  out = chunks_;
  stats::shuffle(out, rng_);
  if (!in_burst(t)) out.resize(idle_count_);
}

}  // namespace rlb::workloads
