#include "workloads/phased_churn.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace rlb::workloads {

PhasedChurnWorkload::PhasedChurnWorkload(std::size_t count,
                                         double churn_fraction,
                                         std::size_t period,
                                         std::uint64_t seed,
                                         bool shuffle_each_step)
    : churn_(std::clamp(churn_fraction, 0.0, 1.0)),
      period_(std::max<std::size_t>(1, period)),
      rng_(stats::derive_seed(seed, 7)),
      next_fresh_id_(0),
      shuffle_(shuffle_each_step) {
  if (count == 0) throw std::invalid_argument("PhasedChurnWorkload: empty");
  working_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) working_.push_back(next_fresh_id_++);
}

void PhasedChurnWorkload::rotate() {
  const auto replace =
      static_cast<std::size_t>(churn_ * static_cast<double>(working_.size()));
  // Replace `replace` uniformly chosen members with fresh ids (partial
  // Fisher–Yates selects victims without repetition).
  for (std::size_t i = 0; i < replace; ++i) {
    const std::size_t victim =
        i + static_cast<std::size_t>(rng_.next_below(working_.size() - i));
    std::swap(working_[i], working_[victim]);
    working_[i] = next_fresh_id_++;
  }
}

void PhasedChurnWorkload::fill_step(core::Time t,
                                    std::vector<core::ChunkId>& out) {
  if (t != 0 && t % static_cast<core::Time>(period_) == 0 &&
      t != last_rotation_) {
    rotate();
    last_rotation_ = t;
  }
  out = working_;
  if (shuffle_) stats::shuffle(out, rng_);
}

}  // namespace rlb::workloads
