// Mixed repeated + fresh traffic within every step.
//
// A fraction of each step's batch comes from a fixed "hot" set (maximal
// reappearance dependencies) and the remainder is never-seen "cold" traffic
// (fresh randomness).  This is the workload shape delayed cuckoo routing is
// explicitly designed for: its Q-queues absorb the cold part with classical
// two-choice arguments while the P-queues absorb the hot part via the
// previous step's cuckoo assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "core/workload.hpp"
#include "stats/rng.hpp"

namespace rlb::workloads {

/// Per step: `hot_fraction`·count chunks from a fixed hot set + the rest
/// fresh, interleaved in random order.
class MixedWorkload final : public core::Workload {
 public:
  /// hot_fraction in [0, 1].  Hot ids live below 2^32; fresh ids above, so
  /// the two populations never collide.
  MixedWorkload(std::size_t count, double hot_fraction, std::uint64_t seed);

  void fill_step(core::Time t, std::vector<core::ChunkId>& out) override;
  std::size_t max_requests_per_step() const override { return count_; }

  std::size_t hot_per_step() const noexcept { return hot_per_step_; }

 private:
  std::size_t count_;
  std::size_t hot_per_step_;
  std::vector<core::ChunkId> hot_set_;
  stats::Rng rng_;
  std::uint64_t next_fresh_id_;
};

}  // namespace rlb::workloads
