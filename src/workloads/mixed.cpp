#include "workloads/mixed.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace rlb::workloads {

MixedWorkload::MixedWorkload(std::size_t count, double hot_fraction,
                             std::uint64_t seed)
    : count_(count),
      rng_(stats::derive_seed(seed, 3)),
      next_fresh_id_(1ULL << 32) {
  if (count == 0) throw std::invalid_argument("MixedWorkload: empty");
  hot_fraction = std::clamp(hot_fraction, 0.0, 1.0);
  hot_per_step_ =
      static_cast<std::size_t>(hot_fraction * static_cast<double>(count));
  hot_set_.reserve(hot_per_step_);
  for (std::size_t i = 0; i < hot_per_step_; ++i) {
    hot_set_.push_back(static_cast<core::ChunkId>(i));
  }
}

void MixedWorkload::fill_step(core::Time /*t*/,
                              std::vector<core::ChunkId>& out) {
  out.clear();
  out.reserve(count_);
  out.insert(out.end(), hot_set_.begin(), hot_set_.end());
  for (std::size_t i = hot_per_step_; i < count_; ++i) {
    out.push_back(next_fresh_id_++);
  }
  stats::shuffle(out, rng_);
}

}  // namespace rlb::workloads
