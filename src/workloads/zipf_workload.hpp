// Skewed-popularity workload: per step, `count` DISTINCT chunks sampled with
// Zipf(s) popularity over a fixed universe.
//
// Popular chunks reappear on almost every step (heavy reappearance
// dependencies on the head of the distribution) while the tail contributes
// fresh randomness — the realistic key-value-store middle ground between
// the repeated-set and fresh-uniform extremes (cf. the YCSB-style skewed
// workloads the paper's introduction motivates).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/workload.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace rlb::workloads {

/// Distinct Zipf-popularity sample per step.
class ZipfWorkload final : public core::Workload {
 public:
  /// `count` distinct chunks per step from a universe of `universe` chunks
  /// (requires universe >= 2 * count so dedup terminates quickly), skew
  /// exponent `s` (0 = uniform, 0.99 ≈ YCSB-zipfian).
  ZipfWorkload(std::size_t count, std::uint64_t universe, double s,
               std::uint64_t seed);

  void fill_step(core::Time t, std::vector<core::ChunkId>& out) override;
  std::size_t max_requests_per_step() const override { return count_; }

 private:
  std::size_t count_;
  stats::ZipfSampler sampler_;
  stats::Rng rng_;
  std::unordered_set<core::ChunkId> seen_;  // scratch, reused across steps
};

}  // namespace rlb::workloads
