#include "workloads/reappearance_profile.hpp"

namespace rlb::workloads {

void ReappearanceAnalyzer::observe_step(
    core::Time t, const std::vector<core::ChunkId>& batch) {
  for (const core::ChunkId x : batch) {
    ++profile_.total_requests;
    const auto [it, inserted] = last_seen_.try_emplace(x, t);
    if (inserted) {
      ++profile_.distinct_chunks;
    } else {
      ++profile_.reappearances;
      profile_.reuse_distance.add(static_cast<std::uint64_t>(t - it->second));
      it->second = t;
    }
  }
}

ReappearanceProfile profile_workload(core::Workload& workload,
                                     std::size_t steps) {
  ReappearanceAnalyzer analyzer;
  std::vector<core::ChunkId> batch;
  for (std::size_t step = 0; step < steps; ++step) {
    workload.fill_step(static_cast<core::Time>(step), batch);
    analyzer.observe_step(static_cast<core::Time>(step), batch);
  }
  return analyzer.profile();
}

}  // namespace rlb::workloads
