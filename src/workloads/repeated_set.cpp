#include "workloads/repeated_set.hpp"

#include <stdexcept>

#include "stats/distributions.hpp"

namespace rlb::workloads {

RepeatedSetWorkload::RepeatedSetWorkload(std::size_t count,
                                         std::uint64_t universe,
                                         std::uint64_t seed,
                                         bool shuffle_each_step)
    : rng_(stats::derive_seed(seed, 1)), shuffle_(shuffle_each_step) {
  if (count == 0) throw std::invalid_argument("RepeatedSetWorkload: empty");
  stats::Rng pick_rng(stats::derive_seed(seed, 0));
  chunks_ = stats::sample_without_replacement(universe, count, pick_rng);
}

RepeatedSetWorkload::RepeatedSetWorkload(std::vector<core::ChunkId> chunks,
                                         std::uint64_t seed,
                                         bool shuffle_each_step)
    : chunks_(std::move(chunks)),
      rng_(stats::derive_seed(seed, 1)),
      shuffle_(shuffle_each_step) {
  if (chunks_.empty()) throw std::invalid_argument("RepeatedSetWorkload: empty");
}

void RepeatedSetWorkload::fill_step(core::Time /*t*/,
                                    std::vector<core::ChunkId>& out) {
  out = chunks_;
  if (shuffle_) stats::shuffle(out, rng_);
}

}  // namespace rlb::workloads
