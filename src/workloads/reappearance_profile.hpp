// Quantifying reappearance dependencies in a request sequence.
//
// The paper's difficulty is parameterized by how often chunks reappear and
// how soon.  This analyzer consumes any workload (or trace) and reports:
//   * reappearance fraction  — requests whose chunk was seen before;
//   * mean / p50 / p95 reuse distance — steps since the chunk's previous
//     request (1 = requested in consecutive steps);
//   * distinct chunks seen, and working-set ratio (distinct / requests).
// The repeated-set workload scores reappearance ≈ 1 with reuse distance 1
// (the hardest instance); fresh-uniform scores exactly 0; Zipf and churn
// interpolate.  Experiment tables and the quickstart use this to label how
// adversarial each generator really is.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/workload.hpp"
#include "stats/histogram.hpp"

namespace rlb::workloads {

/// Reappearance statistics of a finite request sequence.
struct ReappearanceProfile {
  std::uint64_t total_requests = 0;
  std::uint64_t distinct_chunks = 0;
  std::uint64_t reappearances = 0;
  /// Histogram of reuse distances in steps (only reappearances).
  stats::CountingHistogram reuse_distance{4096};

  double reappearance_fraction() const {
    return total_requests ? static_cast<double>(reappearances) /
                                static_cast<double>(total_requests)
                          : 0.0;
  }
  double working_set_ratio() const {
    return total_requests ? static_cast<double>(distinct_chunks) /
                                static_cast<double>(total_requests)
                          : 0.0;
  }
};

/// Streaming analyzer: feed step batches in order.
class ReappearanceAnalyzer {
 public:
  /// Record one step's batch.
  void observe_step(core::Time t, const std::vector<core::ChunkId>& batch);

  const ReappearanceProfile& profile() const noexcept { return profile_; }

 private:
  ReappearanceProfile profile_;
  std::unordered_map<core::ChunkId, core::Time> last_seen_;
};

/// Convenience: profile the first `steps` steps of a workload (consumes
/// them).
[[nodiscard]] ReappearanceProfile profile_workload(core::Workload& workload,
                                                   std::size_t steps);

}  // namespace rlb::workloads
