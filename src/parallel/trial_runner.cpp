#include "parallel/trial_runner.hpp"

namespace rlb::parallel {

ThreadPool& default_pool() {
  static ThreadPool pool;  // sized to hardware concurrency
  return pool;
}

}  // namespace rlb::parallel
