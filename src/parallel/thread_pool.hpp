// A fixed-size thread pool for embarrassingly parallel Monte-Carlo work.
//
// The simulation experiments run many independent seeded trials; the pool
// fans them across hardware threads.  Tasks never share mutable state (each
// trial owns its RNG, cluster, and metrics), so the pool needs only a
// mutex-protected queue — no lock-free machinery, no work stealing.  That
// keeps the component obviously correct (Core Guidelines CP.1/CP.20-style:
// RAII threads, condition-variable waits, no detached threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace rlb::parallel {

/// Fixed pool of worker threads executing submitted tasks FIFO.
/// Destruction waits for all queued tasks to finish.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Submit a task; the future resolves with its result (or exception).
  /// Throws std::runtime_error once destruction has begun: a task enqueued
  /// after the workers start exiting may never run, so its future would
  /// never resolve and the caller would deadlock in get().
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit: pool is stopping");
      }
      tasks_.emplace([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::vector<std::jthread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run `body(i)` for i in [0, n) across the pool, blocking until done.
/// Indices are distributed in contiguous blocks.  Exceptions from any body
/// propagate (first one wins).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace rlb::parallel
