#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace rlb::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Join explicitly before any member (mutex_, cv_, tasks_) is destroyed —
  // workers drain remaining queued tasks first.
  workers_.clear();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        // stopping_ and no work left.
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t blocks = std::min(n, pool.thread_count() * 4);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    futures.push_back(pool.submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  // Await every block before rethrowing: still-queued blocks hold a
  // reference to `body`, so unwinding on the first exception would leave
  // workers calling through a dangling reference.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace rlb::parallel
