// Parallel Monte-Carlo trial execution.
//
// Pattern used by every experiment: run R independent replicas of a seeded
// simulation and aggregate.  Seeds are derived deterministically from a
// master seed and the trial index, so results are identical no matter how
// trials are scheduled across threads.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/rng.hpp"

namespace rlb::parallel {

/// Runs `trials` invocations of `trial(trial_seed, index)` across `pool`,
/// where trial_seed = derive_seed(master_seed, index).  Results are returned
/// in index order.
///
/// Each trial runs inside an obs profiling scope ("trial", histogram
/// "time.trial_ns") on its worker thread; probe values the trial records
/// land in that thread's registry shard and are merged by
/// obs::ProbeRegistry::snapshot() — per-thread sharding means trials never
/// contend on probe storage.
template <typename T>
std::vector<T> run_trials(ThreadPool& pool, std::size_t trials,
                          std::uint64_t master_seed,
                          const std::function<T(std::uint64_t, std::size_t)>& trial) {
  static obs::Histogram trial_time_hist("time.trial_ns");
  static obs::Counter trial_counter("trial.runs");
  std::vector<T> results(trials);
  parallel_for(pool, trials, [&](std::size_t i) {
    obs::ObsTimer timer("trial", &trial_time_hist, i);
    trial_counter.add();
    results[i] = trial(stats::derive_seed(master_seed, i), i);
  });
  return results;
}

/// Shared process-wide pool for benchmarks and examples (lazily created).
ThreadPool& default_pool();

}  // namespace rlb::parallel
