// rlb — umbrella header for the public API.
//
// Reproduction of "Distributed Load Balancing in the Face of Reappearance
// Dependencies" (SPAA '24).  Downstream users can include this single
// header; fine-grained headers remain available per module.
//
//   #include "rlb.hpp"
//   auto lb = rlb::policies::make_policy("greedy", {.servers = 1024});
//   rlb::workloads::RepeatedSetWorkload adversary(1024, 1ULL << 40, seed);
//   auto result = rlb::core::simulate(*lb, adversary, {.steps = 200});
#pragma once

// Model substrate.
#include "core/balancer.hpp"
#include "core/cluster.hpp"
#include "core/metrics.hpp"
#include "core/placement.hpp"
#include "core/placement_graph.hpp"
#include "core/safe_distribution.hpp"
#include "core/server_queue.hpp"
#include "core/simulator.hpp"
#include "core/timeseries.hpp"
#include "core/types.hpp"
#include "core/workload.hpp"

// Routing policies (the paper's algorithms + baselines + extensions).
#include "policies/batched_greedy.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "policies/factory.hpp"
#include "policies/greedy.hpp"
#include "policies/left_greedy.hpp"
#include "policies/memory.hpp"
#include "policies/migrating.hpp"
#include "policies/round_robin.hpp"
#include "policies/threshold.hpp"
#include "policies/time_step_isolated.hpp"

// Workload generators.
#include "workloads/bursty.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/mixed.hpp"
#include "workloads/phased_churn.hpp"
#include "workloads/reappearance_profile.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/sliding_window.hpp"
#include "workloads/trace.hpp"
#include "workloads/zipf_workload.hpp"

// Substrates.
#include "ballsbins/heavily_loaded.hpp"
#include "ballsbins/strategies.hpp"
#include "cuckoo/allocator.hpp"
#include "cuckoo/capacitated.hpp"
#include "cuckoo/cuckoo_table.hpp"
#include "cuckoo/dary_table.hpp"
#include "cuckoo/offline_assignment.hpp"
#include "supermarket/event_sim.hpp"

// Observability: event traces, probe registry, profiling scopes.
#include "obs/obs.hpp"

// Statistics, hashing, parallel harness, reporting.
#include "harness/adversary_search.hpp"
#include "harness/experiment.hpp"
#include "harness/output.hpp"
#include "hashing/hash.hpp"
#include "hashing/tabulation.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/trial_runner.hpp"
#include "report/table.hpp"
#include "stats/distributions.hpp"
#include "stats/fit.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
