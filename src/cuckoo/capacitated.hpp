// Direct capacitated two-choice assignment — the engineering alternative to
// Lemma 4.2's three-group construction.
//
// Instead of splitting the items into three groups and cuckoo-hashing each
// with per-server capacity 1, assign ALL items at once subject to a
// per-server capacity c, using augmenting relocation chains (unit-flow
// augmentation on the server graph).  An item is unplaceable only when no
// assignment of the current item set respects the capacities — the same
// completeness property as TwoChoiceAllocator, generalized.
//
// Trade-off measured by the E13 ablation: the direct method achieves a
// SMALLER maximum per-server load for the same instance (capacity 2
// usually suffices where the split guarantees 3), at a comparable cost;
// the paper's split is what the Theorem 4.1 stash analysis is proven for.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cuckoo/offline_assignment.hpp"

namespace rlb::cuckoo {

/// Allocates items to servers, at most `capacity` items per server, each
/// item at one of its two choices.
class CapacitatedAllocator {
 public:
  CapacitatedAllocator(std::size_t servers, std::uint32_t capacity);

  /// Place item `item` (dense unique index) with candidate servers `a`,
  /// `b`; may relocate previously placed items along augmenting chains.
  /// Returns false iff the current item set admits no capacity-respecting
  /// assignment including this item (state is left valid; the new item is
  /// simply not placed).
  bool insert(std::uint32_t item, std::uint32_t a, std::uint32_t b);

  /// Server of `item`, or -1 if unplaced/unknown.
  std::int32_t server_of(std::uint32_t item) const;

  std::uint32_t load(std::uint32_t server) const { return loads_[server]; }
  std::size_t placed_count() const noexcept { return placed_; }
  std::size_t server_count() const noexcept { return loads_.size(); }

  void clear();

 private:
  struct ItemInfo {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::int32_t server = -1;
  };

  std::uint32_t other(std::uint32_t item, std::uint32_t server) const {
    const ItemInfo& info = items_[item];
    return info.a == server ? info.b : info.a;
  }

  std::uint32_t capacity_;
  std::vector<std::uint32_t> loads_;                  // server -> load
  std::vector<std::vector<std::uint32_t>> resident_;  // server -> items
  std::vector<ItemInfo> items_;
  std::size_t placed_ = 0;

  // BFS scratch (epoch-stamped to avoid per-insert clears).
  std::vector<std::uint64_t> visited_;
  std::vector<std::uint32_t> parent_item_;  // item whose move reached server
  std::uint64_t epoch_ = 0;
};

/// One-call convenience mirroring assign_offline(): assigns all items with
/// per-server capacity `capacity`; unplaceable items count as stash and are
/// parked at their lighter choice (possibly exceeding capacity).  success
/// iff stash_used <= stash_capacity.
[[nodiscard]] OfflineAssignment assign_offline_capacitated(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& choices,
    std::size_t servers, std::uint32_t capacity,
    std::size_t stash_capacity = 4);

}  // namespace rlb::cuckoo
