// Exact two-choice slot allocation (the combinatorial core of cuckoo
// hashing).
//
// Items arrive with two candidate slots each; every slot may hold at most
// one item, but items already placed may be relocated to their other slot.
// Insertion is the classical eviction walk: place the held item, pick up the
// evicted occupant, move it to its other slot, repeat.  With two choices per
// item the walk is deterministic, and a standard argument shows it traverses
// each edge of the cuckoo graph at most twice before terminating whenever a
// feasible assignment exists — so a walk exceeding 2·slots + O(1) swaps
// certifies infeasibility.  An insertion therefore fails only when the item
// set is genuinely unplaceable, which is exactly the failure event the stash
// analysis of Kirsch–Mitzenmacher–Wieder (paper Theorem 4.1) charges for.
#pragma once

#include <cstdint>
#include <vector>

namespace rlb::cuckoo {

/// Allocates items (dense indices) to slots, one item per slot, each item in
/// one of its two choices.
class TwoChoiceAllocator {
 public:
  explicit TwoChoiceAllocator(std::size_t slots);

  /// Place item `item` (a caller-chosen dense index, unique per item) with
  /// candidate slots `a`, `b`; may relocate previously placed items.
  ///
  /// Returns -1 on success.  On failure returns the index of the item left
  /// unplaced — which, because the walk swaps as it goes, need not be
  /// `item` itself.  Failure occurs only when the full current item set is
  /// infeasible; the returned item is the natural stash candidate, and all
  /// other items remain validly placed.
  std::int32_t insert(std::uint32_t item, std::uint32_t a, std::uint32_t b);

  /// Slot currently assigned to `item`, or -1 if unplaced/unknown.
  std::int32_t slot_of(std::uint32_t item) const;

  /// Item currently occupying `slot`, or -1 if free.
  std::int32_t item_in(std::uint32_t slot) const { return owner_[slot]; }

  /// The two candidate slots registered for `item`.
  std::pair<std::uint32_t, std::uint32_t> choices_of(std::uint32_t item) const;

  std::size_t slot_count() const noexcept { return owner_.size(); }
  std::size_t placed_count() const noexcept { return placed_; }

  /// Eviction-walk length (number of displacements) of the most recent
  /// insert — the kick-chain length instrumentation reads this instead of
  /// paying a per-insert callback.  0 when the item landed in a free slot.
  std::size_t last_walk_length() const noexcept { return last_walk_length_; }

  /// Reset to empty (slot capacity preserved).
  void clear();

 private:
  struct ItemInfo {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::int32_t slot = -1;
  };

  std::vector<std::int32_t> owner_;  // slot -> item (-1 free)
  std::vector<ItemInfo> items_;      // item -> choices + placement
  std::size_t placed_ = 0;
  std::size_t last_walk_length_ = 0;
};

}  // namespace rlb::cuckoo
