#include "cuckoo/offline_assignment.hpp"

#include <optional>
#include <stdexcept>

#include "cuckoo/allocator.hpp"
#include "obs/obs.hpp"

namespace rlb::cuckoo {

OfflineAssignment assign_offline(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& choices,
    std::size_t servers, std::size_t stash_capacity_per_group) {
  if (servers == 0) throw std::invalid_argument("assign_offline: 0 servers");

  static obs::Histogram build_time_hist("time.cuckoo_assign_ns");
  static obs::Histogram kick_chain_hist("cuckoo.kick_chain_len");
  static obs::Counter stash_counter("cuckoo.stash_used");
  // Latched once: per-insert sites below branch on a plain bool, and the
  // build timer's clock reads are skipped entirely when obs is off (this
  // runs once per simulation step).
  const bool obs_active = obs::enabled();
  std::optional<obs::ObsTimer> build_timer;
  if (obs_active) {
    build_timer.emplace("cuckoo.offline_assign", &build_time_hist,
                        choices.size());
  }

  OfflineAssignment result;
  const std::size_t n = choices.size();
  result.assignment.assign(n, 0);
  result.per_server.assign(servers, 0);

  // Three groups of <= ceil(n/3) items each (the paper's Lemma 4.2 split);
  // more groups if n > m so each group still fits the m/2 - Ω(m) cuckoo
  // feasibility regime.  In the model n <= m, so groups == 3.
  constexpr std::size_t kBaseGroups = 3;
  std::size_t groups = kBaseGroups;
  while (groups * servers < kBaseGroups * n) ++groups;  // ceil(3n/m) groups
  result.groups = groups;
  const std::size_t group_size = (n + groups - 1) / groups;

  std::vector<std::uint32_t> stash_items;  // global indices of stashed items
  TwoChoiceAllocator allocator(servers);

  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t begin = g * group_size;
    if (begin >= n) break;
    const std::size_t end = std::min(begin + group_size, n);

    allocator.clear();
    std::size_t group_stash = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const auto local = static_cast<std::uint32_t>(i - begin);
      const std::int32_t displaced =
          allocator.insert(local, choices[i].first, choices[i].second);
      if (obs_active) {
        kick_chain_hist.observe(
            static_cast<double>(allocator.last_walk_length()));
        obs::emit(obs::EventKind::kKickChain, "cuckoo.kick",
                  static_cast<std::uint64_t>(i),
                  allocator.last_walk_length());
      }
      if (displaced >= 0) {
        const auto global = static_cast<std::uint32_t>(displaced) +
                            static_cast<std::uint32_t>(begin);
        stash_items.push_back(global);
        ++group_stash;
        if (group_stash > stash_capacity_per_group) result.success = false;
        if (obs_active) {
          obs::emit(obs::EventKind::kStashHit, "cuckoo.stash", global, g);
        }
      }
    }
    // Record the placements of this group.
    for (std::size_t i = begin; i < end; ++i) {
      const auto local = static_cast<std::uint32_t>(i - begin);
      const std::int32_t slot = allocator.slot_of(local);
      if (slot >= 0) {
        result.assignment[i] = static_cast<std::uint32_t>(slot);
        ++result.per_server[static_cast<std::size_t>(slot)];
      }
    }
  }

  // Stash items go to whichever of their two choices currently holds fewer
  // assignments (adds at most stash_used to any single server).
  result.stash_used = stash_items.size();
  if (!stash_items.empty()) stash_counter.add(stash_items.size());
  for (std::uint32_t item : stash_items) {
    const auto [a, b] = choices[item];
    const std::uint32_t target =
        result.per_server[a] <= result.per_server[b] ? a : b;
    result.assignment[item] = target;
    ++result.per_server[target];
  }

  return result;
}

}  // namespace rlb::cuckoo
