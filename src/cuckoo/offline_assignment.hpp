// The offline per-time-step assignment of Lemma 4.2.
//
// Given the realized request set S_t (up to m items, each with two candidate
// servers h_1(x), h_2(x)), produce an assignment T_t : S_t -> [m] such that
// every server receives O(1) requests.  Construction follows the paper:
// split the items into three groups of at most ceil(m/3); cuckoo-hash each
// group into the m servers so each server gets at most one item per group
// (Theorem 4.1), with a bounded stash absorbing unplaceable items; stash
// items are then assigned to their less-loaded choice.  Per-server total:
// at most 3 + (stash spill), i.e. O(1).
//
// A *failure* (success == false) is the Lemma 4.2 failure event — some group
// overflowed its stash.  Delayed cuckoo routing responds by rejecting the
// reappearing requests that would have used this T_t (paper Section 4.1);
// the assignment returned on failure is still structurally valid and
// best-effort, so callers may also choose to use it.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace rlb::cuckoo {

/// Result of one offline assignment computation.
struct OfflineAssignment {
  /// False iff some group overflowed its stash (the Lemma 4.2 failure
  /// event, probability O(1/m^c) for stash size c-ish).
  bool success = true;
  /// assignment[i] = server assigned to item i (always populated).
  std::vector<std::uint32_t> assignment;
  /// Requests assigned to each server; max entry is the O(1) of Lemma 4.2.
  std::vector<std::uint32_t> per_server;
  /// Total items that fell to stashes across all groups.
  std::size_t stash_used = 0;
  std::size_t groups = 0;
};

/// Compute T_t.  `choices[i]` are the two candidate servers of item i (both
/// < servers).  `stash_capacity_per_group` is the Theorem 4.1 stash size
/// (a small constant; 4 gives failure probability O(1/m^5)).
[[nodiscard]] OfflineAssignment assign_offline(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& choices,
    std::size_t servers, std::size_t stash_capacity_per_group = 4);

}  // namespace rlb::cuckoo
