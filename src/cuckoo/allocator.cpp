#include "cuckoo/allocator.hpp"

#include <stdexcept>
#include <utility>

namespace rlb::cuckoo {

TwoChoiceAllocator::TwoChoiceAllocator(std::size_t slots)
    : owner_(slots, -1) {
  if (slots == 0) throw std::invalid_argument("TwoChoiceAllocator: 0 slots");
}

std::int32_t TwoChoiceAllocator::insert(std::uint32_t item, std::uint32_t a,
                                        std::uint32_t b) {
  if (a >= owner_.size() || b >= owner_.size()) {
    throw std::out_of_range("TwoChoiceAllocator: choice out of range");
  }
  if (item >= items_.size()) items_.resize(item + 1);
  items_[item] = ItemInfo{a, b, -1};

  // Eviction walk.  2·slots + 2 swaps suffice for any feasible instance
  // (each cuckoo-graph edge is traversed at most twice); exceeding the bound
  // certifies that the current item set cannot all be placed.
  const std::size_t max_swaps = 2 * owner_.size() + 2;
  std::uint32_t held = item;
  // Prefer the emptier-looking side first (a); correctness does not depend
  // on the starting side.
  std::uint32_t slot = owner_[a] == -1 ? a : (owner_[b] == -1 ? b : a);

  for (std::size_t i = 0; i <= max_swaps; ++i) {
    const std::int32_t occupant = owner_[slot];
    owner_[slot] = static_cast<std::int32_t>(held);
    items_[held].slot = static_cast<std::int32_t>(slot);
    if (occupant == -1) {
      ++placed_;
      last_walk_length_ = i;
      return -1;
    }
    held = static_cast<std::uint32_t>(occupant);
    items_[held].slot = -1;
    const ItemInfo& info = items_[held];
    slot = (info.a == slot) ? info.b : info.a;
  }
  // Infeasible: `held` stays unplaced (everything else is consistently
  // placed).  Note placed_ is unchanged: one item went in, one came out.
  last_walk_length_ = max_swaps;
  return static_cast<std::int32_t>(held);
}

std::int32_t TwoChoiceAllocator::slot_of(std::uint32_t item) const {
  if (item >= items_.size()) return -1;
  return items_[item].slot;
}

std::pair<std::uint32_t, std::uint32_t> TwoChoiceAllocator::choices_of(
    std::uint32_t item) const {
  if (item >= items_.size()) {
    throw std::out_of_range("TwoChoiceAllocator: unknown item");
  }
  return {items_[item].a, items_[item].b};
}

void TwoChoiceAllocator::clear() {
  owner_.assign(owner_.size(), -1);
  items_.clear();
  placed_ = 0;
}

}  // namespace rlb::cuckoo
