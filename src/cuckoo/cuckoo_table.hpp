// Online cuckoo hash table with a stash (Kirsch–Mitzenmacher–Wieder).
//
// Background component for Section 4 of the paper: a set of up to ~m/3 keys
// is stored in m positions, each key at one of its two hash positions, with
// a constant-size stash absorbing the rare unplaceable keys.  Theorem 4.1:
// with a stash of size s the failure probability drops to O(1/m^{s+1}) —
// experiment E9 measures exactly this curve.
//
// The table supports the usual online operations (insert / contains / erase)
// on 64-bit keys; the delayed-cuckoo *routing* algorithm does not use this
// online table (it needs the offline per-step assignment instead, see
// offline_assignment.hpp), but tests and E9 exercise it directly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hashing/hash.hpp"
#include "stats/rng.hpp"

namespace rlb::cuckoo {

/// Cuckoo hash set over uint64 keys with two seeded hash positions and a
/// bounded stash.
class CuckooTable {
 public:
  /// `positions` table slots, stash up to `stash_capacity` keys, hashes
  /// seeded by `seed`.
  CuckooTable(std::size_t positions, std::size_t stash_capacity,
              std::uint64_t seed);

  /// Insert `key`.  Returns false when the key cannot be placed even using
  /// the stash (table unchanged except for relocations, which preserve
  /// validity).  Duplicate inserts return true without change.
  bool insert(std::uint64_t key);

  bool contains(std::uint64_t key) const;

  /// Remove `key`; false if absent.  Removing a stashed key frees stash
  /// space.
  bool erase(std::uint64_t key);

  std::size_t size() const noexcept { return size_; }
  std::size_t stash_size() const noexcept { return stash_.size(); }
  std::size_t position_count() const noexcept { return slots_.size(); }

  /// Position of `key` in the table, nullopt if absent or stashed.
  std::optional<std::size_t> position_of(std::uint64_t key) const;

  std::size_t hash1(std::uint64_t key) const {
    return hashing::hash_to_bucket(key, seed1_, slots_.size());
  }
  std::size_t hash2(std::uint64_t key) const {
    return hashing::hash_to_bucket(key, seed2_, slots_.size());
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    bool occupied = false;
  };

  std::vector<Slot> slots_;
  std::vector<std::uint64_t> stash_;
  std::size_t stash_capacity_;
  std::uint64_t seed1_;
  std::uint64_t seed2_;
  std::size_t size_ = 0;
};

}  // namespace rlb::cuckoo
