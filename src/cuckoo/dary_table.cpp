#include "cuckoo/dary_table.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlb::cuckoo {

DAryCuckooTable::DAryCuckooTable(std::size_t buckets, unsigned bucket_size,
                                 unsigned choices, std::size_t stash_capacity,
                                 std::uint64_t seed)
    : buckets_(buckets),
      bucket_size_(bucket_size),
      choices_(choices),
      stash_capacity_(stash_capacity),
      seed_(seed),
      walk_rng_(stats::derive_seed(seed, 0xD0)) {
  if (buckets == 0) throw std::invalid_argument("DAryCuckoo: 0 buckets");
  if (bucket_size == 0) throw std::invalid_argument("DAryCuckoo: b >= 1");
  if (choices < 2) throw std::invalid_argument("DAryCuckoo: d >= 2");
  stash_.reserve(stash_capacity);
}

std::size_t DAryCuckooTable::bucket_of(std::uint64_t key, unsigned c) const {
  return hashing::hash_to_bucket(key, stats::derive_seed(seed_, c),
                                 buckets_.size());
}

bool DAryCuckooTable::bucket_has(const Bucket& bucket,
                                 std::uint64_t key) const {
  return std::find(bucket.keys.begin(), bucket.keys.end(), key) !=
         bucket.keys.end();
}

bool DAryCuckooTable::contains(std::uint64_t key) const {
  for (unsigned c = 0; c < choices_; ++c) {
    if (bucket_has(buckets_[bucket_of(key, c)], key)) return true;
  }
  return std::find(stash_.begin(), stash_.end(), key) != stash_.end();
}

bool DAryCuckooTable::insert(std::uint64_t key) {
  if (contains(key)) return true;

  // Random-walk eviction: try all choices for a free slot; otherwise evict
  // a uniformly random resident of a uniformly random choice and continue
  // with the evictee.  Budget ~ c·log(n) walks suffice w.h.p. below the
  // load threshold.
  const std::size_t max_steps =
      64 + 8 * static_cast<std::size_t>(
                   std::log2(static_cast<double>(buckets_.size()) + 2.0));
  std::uint64_t held = key;
  for (std::size_t step = 0; step < max_steps; ++step) {
    for (unsigned c = 0; c < choices_; ++c) {
      Bucket& bucket = buckets_[bucket_of(held, c)];
      if (bucket.keys.size() < bucket_size_) {
        bucket.keys.push_back(held);
        ++size_;
        return true;
      }
    }
    const unsigned victim_choice =
        static_cast<unsigned>(walk_rng_.next_below(choices_));
    Bucket& bucket = buckets_[bucket_of(held, victim_choice)];
    const std::size_t victim_slot =
        static_cast<std::size_t>(walk_rng_.next_below(bucket.keys.size()));
    std::swap(held, bucket.keys[victim_slot]);
  }
  if (stash_.size() < stash_capacity_) {
    stash_.push_back(held);
    ++size_;
    return true;
  }
  // Budget exhausted, stash full: exactly one element is lost.  The walk's
  // swaps preserve the stored COUNT (the new key is in, `held` — possibly
  // a different key — is out), so size_ is already correct; callers treat
  // a false return as the stash-overflow failure event dropping one
  // element.
  return false;
}

bool DAryCuckooTable::erase(std::uint64_t key) {
  for (unsigned c = 0; c < choices_; ++c) {
    Bucket& bucket = buckets_[bucket_of(key, c)];
    const auto it = std::find(bucket.keys.begin(), bucket.keys.end(), key);
    if (it != bucket.keys.end()) {
      bucket.keys.erase(it);
      --size_;
      return true;
    }
  }
  const auto it = std::find(stash_.begin(), stash_.end(), key);
  if (it != stash_.end()) {
    stash_.erase(it);
    --size_;
    return true;
  }
  return false;
}

double DAryCuckooTable::load_factor() const noexcept {
  const double capacity = static_cast<double>(buckets_.size()) *
                          static_cast<double>(bucket_size_);
  return capacity > 0 ? static_cast<double>(size_) / capacity : 0.0;
}

}  // namespace rlb::cuckoo
