#include "cuckoo/cuckoo_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace rlb::cuckoo {

CuckooTable::CuckooTable(std::size_t positions, std::size_t stash_capacity,
                         std::uint64_t seed)
    : slots_(positions),
      stash_capacity_(stash_capacity),
      seed1_(stats::derive_seed(seed, 1)),
      seed2_(stats::derive_seed(seed, 2)) {
  if (positions == 0) throw std::invalid_argument("CuckooTable: 0 positions");
  stash_.reserve(stash_capacity);
}

bool CuckooTable::insert(std::uint64_t key) {
  if (contains(key)) return true;

  // Eviction walk bounded by 2·positions + 2 — complete for two choices
  // (see allocator.hpp for the argument).  Every swap is journaled so a
  // failed insertion can be rolled back, leaving the table exactly as it
  // was.
  const std::size_t max_swaps = 2 * slots_.size() + 2;
  std::uint64_t held = key;
  std::size_t slot = hash1(held);
  if (slots_[slot].occupied && !slots_[hash2(held)].occupied) {
    slot = hash2(held);
  }

  std::vector<std::size_t> journal;
  for (std::size_t i = 0; i <= max_swaps; ++i) {
    if (!slots_[slot].occupied) {
      slots_[slot] = Slot{held, true};
      ++size_;
      return true;
    }
    journal.push_back(slot);
    std::swap(held, slots_[slot].key);
    const std::size_t h1 = hash1(held);
    slot = (h1 == slot) ? hash2(held) : h1;
  }

  // Walk exhausted: the current key set is unplaceable in the table alone.
  // Park the final displaced key in the stash if there is room...
  if (stash_.size() < stash_capacity_) {
    static obs::Counter stash_hits("cuckoo.table_stash_hits");
    stash_.push_back(held);
    ++size_;
    stash_hits.add();
    RLB_TRACE_EVENT(obs::EventKind::kStashHit, "cuckoo.table_stash", held,
                    stash_.size());
    return true;
  }
  // ...otherwise undo every swap (reverse order restores the exact prior
  // state, ending with held == key) and report failure.
  for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
    std::swap(held, slots_[*it].key);
  }
  return false;
}

bool CuckooTable::contains(std::uint64_t key) const {
  const Slot& s1 = slots_[hash1(key)];
  if (s1.occupied && s1.key == key) return true;
  const Slot& s2 = slots_[hash2(key)];
  if (s2.occupied && s2.key == key) return true;
  return std::find(stash_.begin(), stash_.end(), key) != stash_.end();
}

bool CuckooTable::erase(std::uint64_t key) {
  Slot& s1 = slots_[hash1(key)];
  if (s1.occupied && s1.key == key) {
    s1.occupied = false;
    --size_;
    return true;
  }
  Slot& s2 = slots_[hash2(key)];
  if (s2.occupied && s2.key == key) {
    s2.occupied = false;
    --size_;
    return true;
  }
  const auto it = std::find(stash_.begin(), stash_.end(), key);
  if (it != stash_.end()) {
    stash_.erase(it);
    --size_;
    return true;
  }
  return false;
}

std::optional<std::size_t> CuckooTable::position_of(std::uint64_t key) const {
  const std::size_t p1 = hash1(key);
  if (slots_[p1].occupied && slots_[p1].key == key) return p1;
  const std::size_t p2 = hash2(key);
  if (slots_[p2].occupied && slots_[p2].key == key) return p2;
  return std::nullopt;
}

}  // namespace rlb::cuckoo
