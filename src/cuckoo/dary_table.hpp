// Generalized cuckoo hashing: d hash choices and buckets of capacity b.
//
// The paper's Theorem 4.1 uses plain (d = 2, b = 1) cuckoo hashing with a
// stash.  The generalized table (Fotakis et al.'s d-ary cuckoo; bucketized
// cuckoo à la Dietzfelbinger–Weidling) raises the feasible load factor from
// 50% to >91% at d = 3 and >97% at (d = 2, b = 4) — the variants a
// production key-value store would actually deploy, and a natural
// replacement inside Lemma 4.2 when one wants fewer groups.  Insertion uses
// a seeded random-walk eviction with a polylog step budget and a stash for
// the stragglers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hashing/hash.hpp"
#include "stats/rng.hpp"

namespace rlb::cuckoo {

/// d-ary bucketed cuckoo hash set over uint64 keys.
class DAryCuckooTable {
 public:
  /// `buckets` buckets of capacity `bucket_size` (total capacity =
  /// buckets·bucket_size), `choices` hash functions, stash up to
  /// `stash_capacity`, all randomness seeded by `seed`.
  DAryCuckooTable(std::size_t buckets, unsigned bucket_size, unsigned choices,
                  std::size_t stash_capacity, std::uint64_t seed);

  /// Insert `key`; false when the random-walk budget is exhausted and the
  /// stash is full (the table remains valid; the key is not stored).
  /// Duplicate inserts return true without change.
  bool insert(std::uint64_t key);

  bool contains(std::uint64_t key) const;
  bool erase(std::uint64_t key);

  std::size_t size() const noexcept { return size_; }
  std::size_t stash_size() const noexcept { return stash_.size(); }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  unsigned bucket_size() const noexcept { return bucket_size_; }
  unsigned choice_count() const noexcept { return choices_; }
  /// Load factor = stored keys / total slot capacity.
  double load_factor() const noexcept;

  /// The bucket index of key under hash function c.
  std::size_t bucket_of(std::uint64_t key, unsigned c) const;

 private:
  struct Bucket {
    std::vector<std::uint64_t> keys;  // size <= bucket_size_
  };

  bool bucket_has(const Bucket& bucket, std::uint64_t key) const;

  std::vector<Bucket> buckets_;
  std::vector<std::uint64_t> stash_;
  unsigned bucket_size_;
  unsigned choices_;
  std::size_t stash_capacity_;
  std::uint64_t seed_;
  stats::Rng walk_rng_;
  std::size_t size_ = 0;
};

}  // namespace rlb::cuckoo
