#include "cuckoo/capacitated.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace rlb::cuckoo {

CapacitatedAllocator::CapacitatedAllocator(std::size_t servers,
                                           std::uint32_t capacity)
    : capacity_(capacity),
      loads_(servers, 0),
      resident_(servers),
      visited_(servers, 0),
      parent_item_(servers, 0) {
  if (servers == 0) {
    throw std::invalid_argument("CapacitatedAllocator: zero servers");
  }
  if (capacity == 0) {
    throw std::invalid_argument("CapacitatedAllocator: capacity >= 1");
  }
}

bool CapacitatedAllocator::insert(std::uint32_t item, std::uint32_t a,
                                  std::uint32_t b) {
  if (a >= loads_.size() || b >= loads_.size()) {
    throw std::out_of_range("CapacitatedAllocator: choice out of range");
  }
  if (item >= items_.size()) items_.resize(item + 1);
  items_[item] = ItemInfo{a, b, -1};

  auto place = [&](std::uint32_t it, std::uint32_t server) {
    items_[it].server = static_cast<std::int32_t>(server);
    resident_[server].push_back(it);
    ++loads_[server];
  };
  auto unplace = [&](std::uint32_t it) {
    const auto server = static_cast<std::uint32_t>(items_[it].server);
    auto& bucket = resident_[server];
    bucket.erase(std::find(bucket.begin(), bucket.end(), it));
    --loads_[server];
    items_[it].server = -1;
  };

  // Fast path: spare capacity at either choice.
  if (loads_[a] < capacity_) {
    place(item, a);
    ++placed_;
    return true;
  }
  if (loads_[b] < capacity_) {
    place(item, b);
    ++placed_;
    return true;
  }

  // Augmenting BFS over servers: find a chain of relocations
  //   item -> s0, evictee(s0) -> s1, evictee(s1) -> s2, ...
  // ending at a server with spare capacity.  Each server is visited once;
  // completeness follows from this being unit-capacity flow augmentation
  // on the cuckoo multigraph.
  ++epoch_;
  std::deque<std::uint32_t> frontier;
  auto visit = [&](std::uint32_t server, std::uint32_t via_item) {
    if (visited_[server] == epoch_) return;
    visited_[server] = epoch_;
    parent_item_[server] = via_item;
    frontier.push_back(server);
  };
  visit(a, item);
  visit(b, item);

  std::int32_t free_server = -1;
  while (!frontier.empty() && free_server < 0) {
    const std::uint32_t server = frontier.front();
    frontier.pop_front();
    for (const std::uint32_t resident : resident_[server]) {
      const std::uint32_t alternative = other(resident, server);
      if (alternative == server) continue;  // both choices equal: immovable
      if (loads_[alternative] < capacity_) {
        // Found an augmenting chain ending at `alternative` via `resident`.
        // Move `resident`, then walk parents back to the inserted item.
        unplace(resident);
        place(resident, alternative);
        free_server = static_cast<std::int32_t>(server);
        break;
      }
      visit(alternative, resident);
    }
    if (free_server >= 0) break;
    // No direct escape from this server's residents; the chain continues
    // through the servers just visited.
  }

  if (free_server < 0) return false;  // genuinely infeasible

  // Walk the parent chain: the server we freed now accepts the item that
  // reached it in the BFS tree; repeat until we place the new item itself.
  auto hole = static_cast<std::uint32_t>(free_server);
  while (true) {
    const std::uint32_t mover = parent_item_[hole];
    if (mover == item) {
      place(item, hole);
      ++placed_;
      return true;
    }
    // `mover` currently sits at its other choice; shift it into the hole.
    const auto from = static_cast<std::uint32_t>(items_[mover].server);
    unplace(mover);
    place(mover, hole);
    hole = from;
  }
}

std::int32_t CapacitatedAllocator::server_of(std::uint32_t item) const {
  if (item >= items_.size()) return -1;
  return items_[item].server;
}

void CapacitatedAllocator::clear() {
  std::fill(loads_.begin(), loads_.end(), 0);
  for (auto& bucket : resident_) bucket.clear();
  items_.clear();
  placed_ = 0;
}

OfflineAssignment assign_offline_capacitated(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& choices,
    std::size_t servers, std::uint32_t capacity, std::size_t stash_capacity) {
  OfflineAssignment result;
  result.groups = 1;
  result.assignment.assign(choices.size(), 0);
  result.per_server.assign(servers, 0);

  CapacitatedAllocator allocator(servers, capacity);
  std::vector<std::uint32_t> stash_items;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (!allocator.insert(static_cast<std::uint32_t>(i), choices[i].first,
                          choices[i].second)) {
      stash_items.push_back(static_cast<std::uint32_t>(i));
    }
  }
  for (std::size_t i = 0; i < choices.size(); ++i) {
    const std::int32_t server = allocator.server_of(
        static_cast<std::uint32_t>(i));
    if (server >= 0) {
      result.assignment[i] = static_cast<std::uint32_t>(server);
      ++result.per_server[static_cast<std::size_t>(server)];
    }
  }
  result.stash_used = stash_items.size();
  result.success = result.stash_used <= stash_capacity;
  for (const std::uint32_t item : stash_items) {
    const auto [a, b] = choices[item];
    const std::uint32_t target =
        result.per_server[a] <= result.per_server[b] ? a : b;
    result.assignment[item] = target;
    ++result.per_server[target];
  }
  return result;
}

}  // namespace rlb::cuckoo
