// The supermarket model — continuous-time JSQ(d) — and a reappearance
// variant.
//
// Related-work contrast (paper Section 6): the queueing-theory literature
// [15, 24, 25, 31] studies Poisson arrivals that each sample d servers
// FRESH and join the shortest queue.  Mitzenmacher's classical result: as
// m → ∞ the fraction of queues with length >= i converges to
//     s_i = λ^((d^i - 1) / (d - 1))      (λ^i for d = 1, plain M/M/1),
// a doubly-exponential tail for d >= 2.  Experiment E17 verifies our
// event-driven simulation against this closed form — a strong correctness
// check on the whole continuous-time substrate.
//
// The paper's point is that this model CANNOT express its problem: fresh
// per-arrival sampling is exactly what reappearance dependencies destroy.
// ChoiceMode::kFixedIdentity makes the contrast measurable: arrivals carry
// identities from a finite population, and an identity's d candidate
// servers are FIXED across its arrivals (hashed), importing reappearance
// dependencies into the supermarket world.  E17 part B measures how the
// queue-tail departs from the classical prediction as the population
// shrinks.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace rlb::supermarket {

/// How an arrival obtains its d candidate servers.
enum class ChoiceMode {
  /// d i.i.d. uniform servers per arrival — the classical model.
  kFresh,
  /// The arrival carries an identity from [population]; its d servers are
  /// a fixed hash of the identity (reappearance dependencies).
  kFixedIdentity,
};

/// Simulation parameters.
struct SupermarketConfig {
  /// Number of servers m.
  std::size_t servers = 100;
  /// Arrival rate per server (λ < 1 for stability); aggregate rate λ·m.
  double lambda = 0.9;
  /// Choices per arrival (d >= 1).
  unsigned choices = 2;
  /// Mean service time is 1 (exponential); simulate until this time.
  double horizon = 1000.0;
  /// Ignore statistics before this time (warm-up).
  double warmup = 100.0;
  ChoiceMode mode = ChoiceMode::kFresh;
  /// Identity population for kFixedIdentity (ignored for kFresh).
  std::size_t population = 1000;
  /// Queue bound q (0 = unbounded, the classical model).  With a bound,
  /// an arrival whose chosen queue already holds q customers is REJECTED —
  /// the continuous-time face of the paper's bounded queues, letting
  /// Theorem 5.1's q-vs-rejection trade-off be read off in this model too.
  std::size_t queue_bound = 0;
  std::uint64_t seed = 1;
};

/// Aggregated outcome of one run.
struct SupermarketResult {
  /// tail_fraction[i] = time-stationary fraction of queues with length
  /// >= i, estimated at arrival instants (PASTA).  Index 0 is 1.0.
  std::vector<double> tail_fraction;
  /// Sojourn (wait + service) time statistics of completed customers.
  stats::OnlineStats sojourn;
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  std::uint64_t rejections = 0;  // only with queue_bound > 0
  double max_queue_seen = 0;

  double rejection_rate() const {
    return arrivals ? static_cast<double>(rejections) /
                          static_cast<double>(arrivals)
                    : 0.0;
  }
};

/// Mitzenmacher's limiting tail: s_i = λ^((d^i − 1)/(d − 1)).
[[nodiscard]] double classical_tail(double lambda, unsigned d, unsigned i);

/// Run one event-driven simulation.
[[nodiscard]] SupermarketResult simulate_supermarket(
    const SupermarketConfig& config);

}  // namespace rlb::supermarket
