#include "supermarket/event_sim.hpp"

#include <cmath>
#include <deque>
#include <queue>
#include <stdexcept>

#include "hashing/hash.hpp"

namespace rlb::supermarket {

double classical_tail(double lambda, unsigned d, unsigned i) {
  if (i == 0) return 1.0;
  if (d <= 1) return std::pow(lambda, static_cast<double>(i));
  const double exponent =
      (std::pow(static_cast<double>(d), static_cast<double>(i)) - 1.0) /
      (static_cast<double>(d) - 1.0);
  return std::pow(lambda, exponent);
}

namespace {

/// Event kinds in the continuous-time simulation.
enum class EventType { kArrival, kDeparture };

struct Event {
  double time = 0.0;
  EventType type = EventType::kArrival;
  std::uint32_t server = 0;  // departure only
  bool operator>(const Event& other) const { return time > other.time; }
};

double exponential(stats::Rng& rng, double rate) {
  // Inverse CDF; 1 − U in (0, 1] avoids log(0).
  return -std::log(1.0 - rng.next_double()) / rate;
}

}  // namespace

SupermarketResult simulate_supermarket(const SupermarketConfig& config) {
  if (config.servers == 0) {
    throw std::invalid_argument("supermarket: zero servers");
  }
  if (config.choices == 0) {
    throw std::invalid_argument("supermarket: d >= 1");
  }
  if (config.lambda <= 0.0 || config.lambda >= 1.0) {
    throw std::invalid_argument("supermarket: lambda in (0, 1)");
  }
  if (config.mode == ChoiceMode::kFixedIdentity && config.population == 0) {
    throw std::invalid_argument("supermarket: empty identity population");
  }

  const std::size_t m = config.servers;
  stats::Rng rng(config.seed);
  const std::uint64_t placement_seed = stats::derive_seed(config.seed, 0x5A);

  // Per-server FIFO of arrival times (front = in service).
  std::vector<std::deque<double>> queues(m);
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  const double aggregate_rate =
      config.lambda * static_cast<double>(m);  // Poisson arrivals
  events.push(Event{exponential(rng, aggregate_rate), EventType::kArrival, 0});

  SupermarketResult result;
  // PASTA sampling accumulators: tail_count[i] += (#queues with length >= i)
  // at each post-warmup arrival instant.
  std::vector<std::uint64_t> tail_count;
  std::uint64_t tail_samples = 0;
  // len_count[L] = #servers currently holding exactly L customers.
  std::vector<std::uint64_t> len_count(1, m);
  std::size_t max_len = 0;

  auto bump_length = [&](std::size_t from, std::size_t to) {
    if (to >= len_count.size()) len_count.resize(to + 1, 0);
    --len_count[from];
    ++len_count[to];
    max_len = std::max(max_len, to);
  };

  const double horizon = config.horizon;
  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    if (event.time > horizon) break;
    const double now = event.time;

    if (event.type == EventType::kArrival) {
      ++result.arrivals;
      // PASTA sample before admitting the new customer:
      // tail_count[i] += #queues with length >= i, suffix-summed top-down.
      if (now >= config.warmup) {
        ++tail_samples;
        if (tail_count.size() < max_len + 1) {
          tail_count.resize(max_len + 1, 0);
        }
        std::uint64_t acc = 0;
        for (std::size_t level = max_len; level >= 1; --level) {
          acc += len_count[level];
          tail_count[level] += acc;
          if (level == 1) break;
        }
      }

      // Choose the target server.
      std::uint32_t best = 0;
      std::size_t best_len = 0;
      std::uint64_t identity = 0;
      if (config.mode == ChoiceMode::kFixedIdentity) {
        identity = rng.next_below(config.population);
      }
      for (unsigned c = 0; c < config.choices; ++c) {
        std::uint32_t candidate;
        if (config.mode == ChoiceMode::kFresh) {
          candidate = static_cast<std::uint32_t>(rng.next_below(m));
        } else {
          candidate = static_cast<std::uint32_t>(hashing::hash_to_bucket(
              identity, stats::derive_seed(placement_seed, c), m));
        }
        if (c == 0 || queues[candidate].size() < best_len) {
          best = candidate;
          best_len = queues[candidate].size();
        }
      }

      const std::size_t old_len = queues[best].size();
      if (config.queue_bound > 0 && old_len >= config.queue_bound) {
        ++result.rejections;  // bounded queue full: arrival rejected
      } else {
        queues[best].push_back(now);
        bump_length(old_len, old_len + 1);
        if (old_len == 0) {
          // Server was idle: the new customer enters service immediately.
          events.push(Event{now + exponential(rng, 1.0),
                            EventType::kDeparture, best});
        }
      }
      events.push(
          Event{now + exponential(rng, aggregate_rate), EventType::kArrival,
                0});
    } else {
      auto& queue = queues[event.server];
      const double arrival_time = queue.front();
      queue.pop_front();
      bump_length(queue.size() + 1, queue.size());
      ++result.completions;
      if (arrival_time >= config.warmup) {
        result.sojourn.add(now - arrival_time);
      }
      if (!queue.empty()) {
        events.push(Event{now + exponential(rng, 1.0), EventType::kDeparture,
                          event.server});
      }
    }
  }

  result.max_queue_seen = static_cast<double>(max_len);
  result.tail_fraction.assign(max_len + 2, 0.0);
  result.tail_fraction[0] = 1.0;
  for (std::size_t i = 1; i < result.tail_fraction.size(); ++i) {
    const std::uint64_t count = i < tail_count.size() ? tail_count[i] : 0;
    result.tail_fraction[i] =
        tail_samples
            ? static_cast<double>(count) /
                  (static_cast<double>(tail_samples) * static_cast<double>(m))
            : 0.0;
  }
  return result;
}

}  // namespace rlb::supermarket
