// Classical balls-into-bins allocation strategies.
//
// These are the reference processes the paper leans on:
//   * one_choice            — the d = 1 baseline, max load Θ(log m / log log m)
//                             at m balls.
//   * d_choice_greedy       — Azar–Broder–Karlin–Upfal GREEDY[d]: place each
//                             ball in the least loaded of d random bins; max
//                             load ln ln m / ln d + Θ(1).
//   * always_go_left        — Vöcking's LEFT[d]: bins split into d groups,
//                             one random candidate per group, ties broken to
//                             the leftmost; max load ln ln m / (d·ln φ_d) + Θ(1).
// Vöcking's matching lower bound (Theorem 2 of [33]) is what powers the
// paper's Theorems 5.1 and Lemma 5.3; experiment E5 measures these curves.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace rlb::ballsbins {

/// Throw `balls` balls into `bins` bins uniformly; returns final loads.
[[nodiscard]] std::vector<std::uint32_t> one_choice(std::size_t bins,
                                                    std::size_t balls,
                                                    stats::Rng& rng);

/// GREEDY[d]: each ball draws d independent uniform bins and joins the least
/// loaded (first minimum wins).  Requires d >= 1.
[[nodiscard]] std::vector<std::uint32_t> d_choice_greedy(std::size_t bins,
                                                         std::size_t balls,
                                                         unsigned d,
                                                         stats::Rng& rng);

/// LEFT[d]: bins are split into d contiguous groups; each ball draws one
/// uniform bin per group and joins the least loaded, breaking ties toward
/// the leftmost group.  Requires 1 <= d <= bins.
[[nodiscard]] std::vector<std::uint32_t> always_go_left(std::size_t bins,
                                                        std::size_t balls,
                                                        unsigned d,
                                                        stats::Rng& rng);

/// b-BATCHED GREEDY[d] (Berenbrink et al. [8]; Los & Sauerwald, SPAA '23
/// [21], both cited by the paper): balls arrive in batches of `batch`;
/// every ball in a batch chooses by the loads AS OF THE BATCH START.  The
/// gap degrades gracefully from log log m (batch 1) toward one-choice
/// behaviour as batch/m grows — the "tower of two choices".  Requires
/// d >= 1, batch >= 1.
[[nodiscard]] std::vector<std::uint32_t> batched_d_choice_greedy(
    std::size_t bins, std::size_t balls, unsigned d, std::size_t batch,
    stats::Rng& rng);

/// WEIGHTED GREEDY[d] (Talwar–Wieder): balls carry weights; each joins the
/// choice with the smallest current total weight.  Models heterogeneous
/// request costs — a natural extension of the paper's unit-cost model.
/// Returns per-bin total weights.
[[nodiscard]] std::vector<double> weighted_d_choice_greedy(
    std::size_t bins, const std::vector<double>& weights, unsigned d,
    stats::Rng& rng);

/// Max minus average of a weighted load vector (0 for empty input).
[[nodiscard]] double weighted_gap(const std::vector<double>& loads);

/// Largest entry of a load vector (0 for empty input).
[[nodiscard]] std::uint32_t max_load(const std::vector<std::uint32_t>& loads);

/// Max load minus average load.
[[nodiscard]] double load_gap(const std::vector<std::uint32_t>& loads);

}  // namespace rlb::ballsbins
