#include "ballsbins/heavily_loaded.hpp"

#include <algorithm>
#include <stdexcept>

#include "hashing/hash.hpp"

namespace rlb::ballsbins {

HeavilyLoadedProcess::HeavilyLoadedProcess(std::size_t bins, unsigned d,
                                           std::uint64_t seed)
    : bins_(bins), d_(d), seed_(seed), loads_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("HeavilyLoadedProcess: zero bins");
  if (d == 0) throw std::invalid_argument("HeavilyLoadedProcess: d >= 1");
}

std::vector<std::size_t> HeavilyLoadedProcess::choices(std::uint64_t id) const {
  std::vector<std::size_t> out;
  out.reserve(d_);
  for (unsigned c = 0; c < d_; ++c) {
    out.push_back(static_cast<std::size_t>(
        hashing::hash_to_bucket(id, stats::derive_seed(seed_, c), bins_)));
  }
  return out;
}

bool HeavilyLoadedProcess::insert(std::uint64_t id) {
  if (contains(id)) return false;
  std::size_t best = 0;
  bool have = false;
  for (unsigned c = 0; c < d_; ++c) {
    const auto bin = static_cast<std::size_t>(
        hashing::hash_to_bucket(id, stats::derive_seed(seed_, c), bins_));
    if (!have || loads_[bin] < loads_[best]) {
      best = bin;
      have = true;
    }
  }
  ++loads_[best];
  location_.emplace(id, static_cast<std::uint32_t>(best));
  return true;
}

bool HeavilyLoadedProcess::remove(std::uint64_t id) {
  const auto it = location_.find(id);
  if (it == location_.end()) return false;
  --loads_[it->second];
  location_.erase(it);
  return true;
}

std::uint32_t HeavilyLoadedProcess::max_load() const {
  std::uint32_t best = 0;
  for (std::uint32_t v : loads_) best = std::max(best, v);
  return best;
}

double HeavilyLoadedProcess::gap() const {
  const double average = static_cast<double>(location_.size()) /
                         static_cast<double>(bins_);
  return static_cast<double>(max_load()) - average;
}

namespace {

/// Runs the shared churn schedule.  `fresh` controls whether reinsertions
/// reuse the deleted ids (reappearance) or mint new ones.
std::vector<double> churn_gaps(HeavilyLoadedProcess& process,
                               std::size_t balls, std::size_t churn,
                               std::size_t rounds, stats::Rng& rng,
                               bool fresh) {
  std::vector<std::uint64_t> present;
  present.reserve(balls);
  std::uint64_t next_id = 0;
  for (std::size_t i = 0; i < balls; ++i) {
    process.insert(next_id);
    present.push_back(next_id);
    ++next_id;
  }

  std::vector<double> gaps;
  gaps.reserve(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t c = 0; c < churn && !present.empty(); ++c) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.next_below(present.size()));
      const std::uint64_t victim = present[pick];
      process.remove(victim);
      const std::uint64_t replacement = fresh ? next_id++ : victim;
      process.insert(replacement);
      present[pick] = replacement;
    }
    gaps.push_back(process.gap());
  }
  return gaps;
}

}  // namespace

std::vector<double> fixed_id_churn_gaps(HeavilyLoadedProcess& process,
                                        std::size_t balls, std::size_t churn,
                                        std::size_t rounds, stats::Rng& rng) {
  return churn_gaps(process, balls, churn, rounds, rng, /*fresh=*/false);
}

std::vector<double> fresh_id_churn_gaps(HeavilyLoadedProcess& process,
                                        std::size_t balls, std::size_t churn,
                                        std::size_t rounds, stats::Rng& rng) {
  return churn_gaps(process, balls, churn, rounds, rng, /*fresh=*/true);
}

}  // namespace rlb::ballsbins
