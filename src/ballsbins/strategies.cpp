#include "ballsbins/strategies.hpp"

#include <algorithm>
#include <stdexcept>

namespace rlb::ballsbins {

std::vector<std::uint32_t> one_choice(std::size_t bins, std::size_t balls,
                                      stats::Rng& rng) {
  if (bins == 0) throw std::invalid_argument("one_choice: zero bins");
  std::vector<std::uint32_t> loads(bins, 0);
  for (std::size_t i = 0; i < balls; ++i) {
    ++loads[rng.next_below(bins)];
  }
  return loads;
}

std::vector<std::uint32_t> d_choice_greedy(std::size_t bins, std::size_t balls,
                                           unsigned d, stats::Rng& rng) {
  if (bins == 0) throw std::invalid_argument("d_choice_greedy: zero bins");
  if (d == 0) throw std::invalid_argument("d_choice_greedy: d must be >= 1");
  std::vector<std::uint32_t> loads(bins, 0);
  for (std::size_t i = 0; i < balls; ++i) {
    std::size_t best = rng.next_below(bins);
    for (unsigned c = 1; c < d; ++c) {
      const std::size_t candidate = rng.next_below(bins);
      if (loads[candidate] < loads[best]) best = candidate;
    }
    ++loads[best];
  }
  return loads;
}

std::vector<std::uint32_t> always_go_left(std::size_t bins, std::size_t balls,
                                          unsigned d, stats::Rng& rng) {
  if (bins == 0) throw std::invalid_argument("always_go_left: zero bins");
  if (d == 0 || d > bins) {
    throw std::invalid_argument("always_go_left: d out of [1, bins]");
  }
  std::vector<std::uint32_t> loads(bins, 0);
  // Group g covers [offset[g], offset[g+1]); sizes differ by at most one.
  std::vector<std::size_t> offset(d + 1, 0);
  for (unsigned g = 0; g < d; ++g) {
    offset[g + 1] = offset[g] + bins / d + (g < bins % d ? 1 : 0);
  }
  for (std::size_t i = 0; i < balls; ++i) {
    std::size_t best = 0;
    bool have_best = false;
    for (unsigned g = 0; g < d; ++g) {
      const std::size_t span = offset[g + 1] - offset[g];
      const std::size_t candidate = offset[g] + rng.next_below(span);
      // Strict < implements the asymmetric tie-break: earlier (leftmost)
      // groups win ties.
      if (!have_best || loads[candidate] < loads[best]) {
        best = candidate;
        have_best = true;
      }
    }
    ++loads[best];
  }
  return loads;
}

std::vector<std::uint32_t> batched_d_choice_greedy(std::size_t bins,
                                                   std::size_t balls,
                                                   unsigned d,
                                                   std::size_t batch,
                                                   stats::Rng& rng) {
  if (bins == 0) throw std::invalid_argument("batched_greedy: zero bins");
  if (d == 0) throw std::invalid_argument("batched_greedy: d must be >= 1");
  if (batch == 0) throw std::invalid_argument("batched_greedy: batch >= 1");
  std::vector<std::uint32_t> loads(bins, 0);
  std::vector<std::uint32_t> snapshot(bins, 0);
  std::size_t placed = 0;
  while (placed < balls) {
    snapshot = loads;  // decisions in this batch see the batch-start state
    const std::size_t take = std::min(batch, balls - placed);
    for (std::size_t i = 0; i < take; ++i) {
      std::size_t best = rng.next_below(bins);
      for (unsigned c = 1; c < d; ++c) {
        const std::size_t candidate = rng.next_below(bins);
        if (snapshot[candidate] < snapshot[best]) best = candidate;
      }
      ++loads[best];
    }
    placed += take;
  }
  return loads;
}

std::vector<double> weighted_d_choice_greedy(std::size_t bins,
                                             const std::vector<double>& weights,
                                             unsigned d, stats::Rng& rng) {
  if (bins == 0) throw std::invalid_argument("weighted_greedy: zero bins");
  if (d == 0) throw std::invalid_argument("weighted_greedy: d must be >= 1");
  std::vector<double> loads(bins, 0.0);
  for (const double weight : weights) {
    std::size_t best = rng.next_below(bins);
    for (unsigned c = 1; c < d; ++c) {
      const std::size_t candidate = rng.next_below(bins);
      if (loads[candidate] < loads[best]) best = candidate;
    }
    loads[best] += weight;
  }
  return loads;
}

double weighted_gap(const std::vector<double>& loads) {
  if (loads.empty()) return 0.0;
  double total = 0.0;
  double max_value = loads.front();
  for (const double v : loads) {
    total += v;
    max_value = std::max(max_value, v);
  }
  return max_value - total / static_cast<double>(loads.size());
}

std::uint32_t max_load(const std::vector<std::uint32_t>& loads) {
  std::uint32_t best = 0;
  for (std::uint32_t v : loads) best = std::max(best, v);
  return best;
}

double load_gap(const std::vector<std::uint32_t>& loads) {
  if (loads.empty()) return 0.0;
  std::uint64_t total = 0;
  for (std::uint32_t v : loads) total += v;
  const double average =
      static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(max_load(loads)) - average;
}

}  // namespace rlb::ballsbins
