// The heavily loaded balls-into-bins process with deletions and
// reappearance dependencies.
//
// Context for the paper (Section 1 and Related Work): Berenbrink, Czumaj,
// Steger & Vöcking [9] showed GREEDY[2] keeps the gap at O(log log m) even
// with k >> m balls; Bansal & Kuszmaul [5] showed that once balls can be
// deleted and REINSERTED with the SAME two hashes (reappearance
// dependencies!), id-oblivious algorithms can be forced to gap k^Ω(1).
//
// This component implements the process itself — identity-stable hashes, so
// a reinserted ball returns with its old choices — plus two churn drivers
// (fresh ids vs. fixed-id reinsertion) used by experiment E10 to measure the
// gap trajectories.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stats/rng.hpp"

namespace rlb::ballsbins {

/// Greedy d-choice allocation with deletions and identity-stable hashes.
class HeavilyLoadedProcess {
 public:
  /// `bins` bins, `d` choices per ball id, hashes seeded by `seed`.
  HeavilyLoadedProcess(std::size_t bins, unsigned d, std::uint64_t seed);

  /// Insert ball `id` into the least loaded of its d (stable) choices.
  /// Reinsertion after deletion sees the SAME choices — the reappearance
  /// dependency.  No-op if the ball is already present (returns false).
  bool insert(std::uint64_t id);

  /// Delete ball `id`; false if not present.
  bool remove(std::uint64_t id);

  bool contains(std::uint64_t id) const {
    return location_.find(id) != location_.end();
  }

  std::size_t ball_count() const noexcept { return location_.size(); }
  const std::vector<std::uint32_t>& loads() const noexcept { return loads_; }
  std::uint32_t max_load() const;
  /// Max load minus average load across bins.
  double gap() const;

  /// The d stable bin choices of ball `id`.
  std::vector<std::size_t> choices(std::uint64_t id) const;

 private:
  std::size_t bins_;
  unsigned d_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> loads_;
  std::unordered_map<std::uint64_t, std::uint32_t> location_;  // id -> bin
};

/// Gap trajectory of a churn run: start with `balls` balls (ids 0..balls-1),
/// then per round delete `churn` random *present* balls and reinsert the
/// same ids (reappearance churn).  Returns the gap after each round.
std::vector<double> fixed_id_churn_gaps(HeavilyLoadedProcess& process,
                                        std::size_t balls, std::size_t churn,
                                        std::size_t rounds, stats::Rng& rng);

/// Baseline: identical schedule, but every reinsertion uses a brand-new id
/// (fresh randomness — no reappearance dependencies).
std::vector<double> fresh_id_churn_gaps(HeavilyLoadedProcess& process,
                                        std::size_t balls, std::size_t churn,
                                        std::size_t rounds, stats::Rng& rng);

}  // namespace rlb::ballsbins
