#include "repair/migrate_agent.hpp"

#include <algorithm>
#include <exception>

#include "net/client.hpp"
#include "obs/probes.hpp"
#include "obs/trace.hpp"

namespace rlb::repair {

std::uint8_t chunk_payload_byte(std::uint64_t chunk,
                                std::uint64_t offset) noexcept {
  // Cheap mix of chunk id and offset; both ends must agree, nothing more.
  const std::uint64_t x = (chunk * 0x9E3779B97F4A7C15ull) ^ (offset * 0xFF51AFD7ED558CCDull);
  return static_cast<std::uint8_t>(x >> 56);
}

MigrationAgent::MigrationAgent(net::NetServer& server,
                               MigrationAgentConfig config)
    : server_(server), config_(config) {}

MigrationAgent::~MigrationAgent() { stop(); }

void MigrationAgent::install() {
  server_.set_migrate_handler(
      [this](std::uint64_t token, const net::MigrateMsg& msg) {
        handle_migrate(token, msg);
      });
  server_.set_migrate_data_handler(
      [this](std::uint64_t token, const net::MigrateDataMsg& msg) {
        handle_migrate_data(token, msg);
      });
}

void MigrationAgent::start() {
  if (started_) return;
  started_ = true;
  stopping_ = false;
  worker_ = std::thread([this] { worker_loop(); });
}

void MigrationAgent::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  started_ = false;
}

void MigrationAgent::handle_migrate(std::uint64_t token,
                                    const net::MigrateMsg& msg) {
  RLB_TRACE_EVENT(obs::EventKind::kMigration, "repair.order", msg.chunk,
                  msg.target_backend);
  static obs::Counter orders("repair.orders_received");
  orders.add(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    orders_.push_back(Order{token, msg});
  }
  cv_.notify_one();
}

void MigrationAgent::handle_migrate_data(std::uint64_t token,
                                         const net::MigrateDataMsg& msg) {
  static obs::Counter slices("repair.slices_received");
  static obs::Counter corrupt("repair.slices_corrupt");
  slices.add(1);
  const std::uint64_t computed =
      net::migrate_checksum(msg.payload.data(), msg.payload.size());
  bool payload_ok = computed == msg.checksum;
  if (payload_ok) {
    for (std::size_t i = 0; i < msg.payload.size(); ++i) {
      if (msg.payload[i] !=
          chunk_payload_byte(msg.chunk, msg.offset + i)) {
        payload_ok = false;
        break;
      }
    }
  }
  if (!payload_ok) corrupt.add(1);

  bool last = msg.last;
  bool ok = false;
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(inbound_mu_);
    Inbound& in = inbound_[msg.migration_id];
    in.total = msg.total_bytes;
    if (!payload_ok || msg.offset != in.received) in.corrupt = true;
    in.received += msg.payload.size();
    if (last) {
      ok = !in.corrupt && in.received == in.total;
      total = in.received;
      inbound_.erase(msg.migration_id);
    }
  }
  if (!last) return;

  if (ok) {
    migrations_in_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(total, std::memory_order_relaxed);
    if (on_in_) on_in_(total);
  }
  net::MigrateAckMsg ack;
  ack.migration_id = msg.migration_id;
  ack.status = ok ? 0 : 1;
  ack.bytes = total;
  server_.send_migrate_ack(token, ack);
}

void MigrationAgent::worker_loop() {
  for (;;) {
    Order order;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !orders_.empty(); });
      if (stopping_) return;
      order = std::move(orders_.front());
      orders_.pop_front();
    }
    bool ok = false;
    try {
      ok = stream(order);
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok) {
      migrations_out_.fetch_add(1, std::memory_order_relaxed);
      bytes_out_.fetch_add(order.msg.bytes, std::memory_order_relaxed);
      if (on_out_) on_out_(order.msg.bytes);
    }
    net::MigrateAckMsg ack;
    ack.migration_id = order.msg.migration_id;
    ack.status = ok ? 0 : 1;
    ack.bytes = ok ? order.msg.bytes : 0;
    server_.send_migrate_ack(order.conn_token, ack);
  }
}

bool MigrationAgent::stream(const Order& order) {
  const net::MigrateMsg& msg = order.msg;
  net::Client target;
  target.connect(msg.target_host, msg.target_port);
  target.set_recv_timeout_ms(config_.ack_timeout_ms);

  std::vector<std::uint8_t> slice;
  std::uint64_t offset = 0;
  do {  // a zero-byte migration still sends one (empty, last) slice
    const std::uint64_t len =
        std::min<std::uint64_t>(net::kMaxMigrateSlice, msg.bytes - offset);
    slice.resize(static_cast<std::size_t>(len));
    for (std::uint64_t i = 0; i < len; ++i) {
      slice[static_cast<std::size_t>(i)] =
          chunk_payload_byte(msg.chunk, offset + i);
    }
    net::MigrateDataMsg data;
    data.migration_id = msg.migration_id;
    data.chunk = msg.chunk;
    data.offset = offset;
    data.total_bytes = msg.bytes;
    data.checksum = net::migrate_checksum(slice.data(), slice.size());
    data.last = offset + len >= msg.bytes;
    data.payload = slice;
    target.send_migrate_data(data);
    target.flush();
    offset += len;
  } while (offset < msg.bytes);

  net::MigrateAckMsg ack;
  const net::ReadOutcome outcome = target.try_read_migrate_ack(ack);
  return outcome == net::ReadOutcome::kFrame &&
         ack.migration_id == msg.migration_id && ack.status == 0 &&
         ack.bytes == msg.bytes;
}

}  // namespace rlb::repair
