// Token-bucket byte throttle for the repair plane.
//
// Repair traffic shares the wire with serving traffic; the throttle keeps
// re-replication from starving the hot path.  Workers take() the byte
// cost of a migration before streaming it; the bucket refills at
// bytes_per_sec with a bounded burst, and take() blocks until the tokens
// are available (or the throttle is stopped).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace rlb::repair {

class TokenBucket {
 public:
  /// `bytes_per_sec` = refill rate; 0 disables throttling entirely (every
  /// take() returns immediately).  `burst` caps the accumulated tokens; 0
  /// defaults the cap to one second's refill.
  explicit TokenBucket(std::uint64_t bytes_per_sec, std::uint64_t burst = 0);

  /// Block until `bytes` tokens are available and consume them.  Returns
  /// false when stop() interrupted the wait.  A request larger than the
  /// burst cap is still served (the bucket just runs a deficit wait).
  bool take(std::uint64_t bytes);

  /// Release every current and future take() with a false return.
  void stop();

  /// Tokens currently available (testing / introspection).
  std::uint64_t available();

 private:
  void refill_locked(std::chrono::steady_clock::time_point now);

  const std::uint64_t bytes_per_sec_;
  const std::uint64_t burst_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t tokens_;
  std::chrono::steady_clock::time_point last_refill_;
  bool stopped_ = false;
};

}  // namespace rlb::repair
