#include "repair/throttle.hpp"

#include <algorithm>

namespace rlb::repair {

TokenBucket::TokenBucket(std::uint64_t bytes_per_sec, std::uint64_t burst)
    : bytes_per_sec_(bytes_per_sec),
      burst_(burst != 0 ? burst : bytes_per_sec),
      tokens_(burst != 0 ? burst : bytes_per_sec),
      last_refill_(std::chrono::steady_clock::now()) {}

void TokenBucket::refill_locked(std::chrono::steady_clock::time_point now) {
  if (bytes_per_sec_ == 0) return;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_refill_);
  if (elapsed.count() <= 0) return;
  const std::uint64_t earned = static_cast<std::uint64_t>(
      static_cast<double>(elapsed.count()) * 1e-9 *
      static_cast<double>(bytes_per_sec_));
  if (earned == 0) return;  // keep last_refill_ so sub-token intervals accrue
  tokens_ = std::min(burst_, tokens_ + earned);
  last_refill_ = now;
}

bool TokenBucket::take(std::uint64_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  if (bytes_per_sec_ == 0 || bytes == 0) return !stopped_;
  std::uint64_t need = bytes;
  while (!stopped_) {
    refill_locked(std::chrono::steady_clock::now());
    if (tokens_ >= need) {
      tokens_ -= need;
      return true;
    }
    // Drain what is there and sleep out (a bounded piece of) the rest, so
    // a request larger than the burst cap still converges.
    need -= tokens_;
    tokens_ = 0;
    const std::uint64_t chunk =
        std::min(need, std::max<std::uint64_t>(burst_, 1));
    const std::uint64_t wait_ns = static_cast<std::uint64_t>(
        static_cast<double>(chunk) * 1e9 / static_cast<double>(bytes_per_sec_));
    cv_.wait_for(lock, std::chrono::nanoseconds(std::max<std::uint64_t>(
                           wait_ns, 100'000)));
  }
  return false;
}

void TokenBucket::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
}

std::uint64_t TokenBucket::available() {
  std::lock_guard<std::mutex> lock(mu_);
  refill_locked(std::chrono::steady_clock::now());
  return bytes_per_sec_ == 0 ? ~0ull : tokens_;
}

}  // namespace rlb::repair
