// RepairCoordinator: the router-hosted control plane of self-healing
// placement.
//
// When a backend goes down and stays down past `down_grace_ms`, every
// chunk whose choice set contains it is under-replicated.  The
// coordinator's planner thread scans the (epoched) placement for such
// chunks, its worker threads drive one migration per chunk — MIGRATE
// order to the least-loaded surviving replica, which streams the chunk
// state to a least-loaded non-replica target — and the planner commits
// completed remaps as one versioned PlacementDelta per scan round, so the
// placement epoch advances atomically and in-flight requests routed on
// the previous epoch remain valid (backends serve any key; epochs only
// shape the router's candidate sets).
//
// Layering: the coordinator knows nothing of cluster::Membership.  The
// router (which owns both) subscribes to membership transitions and
// forwards them via on_backend_down()/on_backend_up(); liveness and load
// queries go through the Hooks functors.  That keeps rlb_repair below
// rlb_cluster in the link graph.
//
// Throttling: a byte token bucket (bytes_per_sec) plus a hard cap on
// concurrent migrations (max_concurrent workers).  Failure handling:
// a failed or timed-out migration simply leaves the chunk
// under-replicated; the next planner scan re-detects and re-queues it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/placement_epoch.hpp"
#include "net/stats.hpp"
#include "repair/throttle.hpp"

namespace rlb::repair {

/// Where to dial a backend's data port (mirrors the router's backend
/// table; indexed by backend id).
struct RepairEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

struct RepairConfig {
  /// Master switch; a disabled coordinator starts no threads.
  bool enabled = false;
  /// Concurrent in-flight migrations (worker threads).
  unsigned max_concurrent = 2;
  /// Repair-plane byte budget per second (token bucket); 0 = unthrottled.
  std::uint64_t bytes_per_sec = 8ull << 20;
  /// Nominal state size per chunk (what one migration streams).
  std::uint64_t bytes_per_chunk = 4096;
  /// How long a backend must stay down before repair starts; absorbs
  /// flaps so a rebooting backend is not repaired around pointlessly.
  std::uint64_t down_grace_ms = 300;
  /// End-to-end deadline for one migration (dial + stream + acks).
  std::uint64_t migrate_timeout_ms = 2000;
  /// Planner scan cadence.
  std::uint64_t scan_interval_ms = 100;
};

class RepairCoordinator {
 public:
  /// Liveness/load queries, answered by the router's membership table.
  struct Hooks {
    std::function<bool(std::uint32_t id)> is_live;
    std::function<std::uint64_t(std::uint32_t id)> load;
  };

  /// `chunks` bounds the planner's scan domain: chunk ids [0, chunks).
  /// `placement` must outlive the coordinator.
  RepairCoordinator(RepairConfig config, std::vector<RepairEndpoint> backends,
                    std::uint64_t chunks, core::EpochedPlacement& placement,
                    Hooks hooks);
  ~RepairCoordinator();

  RepairCoordinator(const RepairCoordinator&) = delete;
  RepairCoordinator& operator=(const RepairCoordinator&) = delete;

  /// Start planner + worker threads (no-op when !config.enabled).
  void start();
  void stop();

  /// Membership transition entry points; thread-safe, cheap (they only
  /// stamp state and wake the planner — heartbeat threads call these).
  void on_backend_down(std::uint32_t id);
  void on_backend_up(std::uint32_t id);

  /// Router-side repair counters for StatsSnapshot v4.  The backend-side
  /// RepairStats fields stay zero here; rlbd fills those from its
  /// MigrationAgent.
  [[nodiscard]] net::RepairStats stats() const;

  /// Chunks currently queued, in flight, or awaiting commit.
  [[nodiscard]] std::size_t pending_chunks() const;

 private:
  struct Migration {
    std::uint64_t chunk = 0;
    std::uint32_t from = 0;  ///< the dead replica being replaced
  };

  void planner_loop();
  void worker_loop();
  /// Run one migration end to end; returns the staged remap on success.
  bool execute(const Migration& m, core::ChunkRemap& out);
  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t chunk, std::uint64_t cause) const;

  const RepairConfig config_;
  const std::vector<RepairEndpoint> backends_;
  const std::uint64_t chunks_;
  core::EpochedPlacement& placement_;
  Hooks hooks_;
  TokenBucket throttle_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for pending_
  std::condition_variable plan_cv_;  ///< planner waits for scan tick / wake
  bool stopping_ = false;
  bool planner_wake_ = false;
  /// Backends currently down: id -> when they went down (for the grace
  /// window).
  std::unordered_map<std::uint32_t, std::chrono::steady_clock::time_point>
      down_at_;
  std::deque<Migration> pending_;
  /// Chunks queued, in flight, or staged — never enqueue twice.
  std::unordered_set<std::uint64_t> active_;
  /// Completed remaps awaiting the planner's next epoch commit.
  std::vector<core::ChunkRemap> staged_;

  std::thread planner_;
  std::vector<std::thread> workers_;
  bool started_ = false;

  std::atomic<std::uint64_t> next_migration_id_{1};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

}  // namespace rlb::repair
