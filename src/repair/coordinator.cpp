#include "repair/coordinator.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

#include "net/client.hpp"
#include "obs/journal.hpp"
#include "obs/probes.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace rlb::repair {

namespace {

/// Terminal outcome of one worker attempt.
enum class Attempt : std::uint8_t {
  kStaged,  ///< data moved and acked; remap awaits the next epoch commit
  kSkip,    ///< nothing to do (chunk already repaired / backend returned)
  kFailed,  ///< attempt failed; planner re-detects on its next scan
};

}  // namespace

RepairCoordinator::RepairCoordinator(RepairConfig config,
                                     std::vector<RepairEndpoint> backends,
                                     std::uint64_t chunks,
                                     core::EpochedPlacement& placement,
                                     Hooks hooks)
    : config_(config),
      backends_(std::move(backends)),
      chunks_(chunks),
      placement_(placement),
      hooks_(std::move(hooks)),
      throttle_(config.bytes_per_sec) {}

RepairCoordinator::~RepairCoordinator() { stop(); }

void RepairCoordinator::start() {
  if (!config_.enabled || started_) return;
  started_ = true;
  stopping_ = false;
  planner_ = std::thread([this] { planner_loop(); });
  const unsigned n = std::max(1u, config_.max_concurrent);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void RepairCoordinator::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  throttle_.stop();
  work_cv_.notify_all();
  plan_cv_.notify_all();
  if (planner_.joinable()) planner_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  started_ = false;
}

void RepairCoordinator::on_backend_down(std::uint32_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    down_at_.emplace(id, std::chrono::steady_clock::now());
    planner_wake_ = true;
  }
  plan_cv_.notify_one();
}

void RepairCoordinator::on_backend_up(std::uint32_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    down_at_.erase(id);
    planner_wake_ = true;
  }
  plan_cv_.notify_one();
}

net::RepairStats RepairCoordinator::stats() const {
  net::RepairStats s;
  s.migrations_done = done_.load(std::memory_order_relaxed);
  s.migrations_failed = failed_.load(std::memory_order_relaxed);
  s.migrations_inflight = inflight_.load(std::memory_order_relaxed);
  s.chunks_pending = pending_chunks();
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  return s;
}

std::size_t RepairCoordinator::pending_chunks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

void RepairCoordinator::record_span(const char* name, std::uint64_t start_ns,
                                    std::uint64_t chunk,
                                    std::uint64_t cause) const {
  if (!obs::span_recording_enabled()) return;
  obs::Span span;
  // Repair is self-originated: each migration is its own (sampled) trace.
  span.trace_id = obs::next_span_id();
  span.span_id = obs::next_span_id();
  span.start_ns = start_ns;
  span.end_ns = obs::now_ns();
  span.name = name;
  span.shard = static_cast<std::uint32_t>(chunk);
  span.flags = obs::kSpanSampled;
  span.cause = static_cast<std::uint8_t>(cause);
  obs::SpanRecorder::instance().record(span);
}

void RepairCoordinator::planner_loop() {
  static obs::Gauge pending_gauge("repair.chunks_pending");
  static obs::Gauge epoch_gauge("repair.epoch");
  static obs::Counter commits("repair.commits");

  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    plan_cv_.wait_for(lock,
                      std::chrono::milliseconds(config_.scan_interval_ms),
                      [this] { return stopping_ || planner_wake_; });
    planner_wake_ = false;
    if (stopping_) break;

    // 1. Settle the down set: purge backends that came back (and their
    //    queued migrations), collect those past the grace window.
    const auto now = std::chrono::steady_clock::now();
    std::unordered_set<std::uint32_t> dead;
    for (auto it = down_at_.begin(); it != down_at_.end();) {
      const std::uint32_t id = it->first;
      if (hooks_.is_live && hooks_.is_live(id)) {
        for (auto p = pending_.begin(); p != pending_.end();) {
          if (p->from == id) {
            active_.erase(p->chunk);
            p = pending_.erase(p);
          } else {
            ++p;
          }
        }
        it = down_at_.erase(it);
        continue;
      }
      if (now - it->second >=
          std::chrono::milliseconds(config_.down_grace_ms)) {
        dead.insert(id);
      }
      ++it;
    }

    // 2. Commit staged remaps as one epoch transition, so the scan below
    //    sees post-commit choices and in-flight readers cut over with a
    //    single atomic publish.
    if (!staged_.empty()) {
      core::PlacementDelta delta;
      delta.epoch = placement_.epoch() + 1;
      delta.remaps = std::move(staged_);
      staged_.clear();
      const std::uint64_t t0 = obs::now_ns();
      const bool applied = placement_.apply(delta);
      for (const core::ChunkRemap& remap : delta.remaps) {
        active_.erase(remap.chunk);
      }
      if (applied) {
        done_.fetch_add(delta.remaps.size(), std::memory_order_relaxed);
        commits.add(1);
        epoch_gauge.set(placement_.epoch());
        record_span("repair.commit", t0, delta.remaps.size(), 0);
        RLB_TRACE_EVENT(obs::EventKind::kMigration, "repair.commit",
                        delta.epoch, delta.remaps.size());
        obs::Journal::instance().append(obs::JournalType::kEpochCommit,
                                        delta.epoch, delta.remaps.size());
      } else {
        // Validation rejected the batch (e.g. a racing delta from tests);
        // dropping active_ lets the scan re-detect what still matters.
        failed_.fetch_add(delta.remaps.size(), std::memory_order_relaxed);
      }
    }

    // 3. Scan placement for chunks that still reference a dead backend.
    if (!dead.empty()) {
      std::size_t queued = 0;
      for (std::uint64_t chunk = 0; chunk < chunks_; ++chunk) {
        if (active_.count(chunk) != 0) continue;
        const core::ChoiceList cl =
            placement_.choices(static_cast<core::ChunkId>(chunk));
        for (const core::ServerId s : cl) {
          if (dead.count(s) != 0) {
            pending_.push_back(Migration{chunk, s});
            active_.insert(chunk);
            ++queued;
            break;  // one replica repair per chunk per round
          }
        }
      }
      if (queued > 0) work_cv_.notify_all();
    }
    pending_gauge.set(active_.size());
  }
}

void RepairCoordinator::worker_loop() {
  static obs::Counter done_counter("repair.migrations_done");
  static obs::Counter failed_counter("repair.migrations_failed");
  static obs::Counter unplaceable("repair.unplaceable");
  static obs::Counter bytes_counter("repair.bytes_sent");

  for (;;) {
    Migration m;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      m = pending_.front();
      pending_.pop_front();
    }
    // The backend may have recovered while this sat in the queue.
    if (hooks_.is_live && hooks_.is_live(m.from)) {
      std::lock_guard<std::mutex> lock(mu_);
      active_.erase(m.chunk);
      continue;
    }
    if (!throttle_.take(config_.bytes_per_chunk)) return;  // stopped

    inflight_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t t0 = obs::now_ns();
    obs::Journal::instance().append(obs::JournalType::kMigrateStart, m.chunk,
                                    m.from);
    Attempt outcome = Attempt::kFailed;
    core::ChunkRemap remap;
    try {
      outcome = execute(m, remap) ? Attempt::kStaged : Attempt::kSkip;
    } catch (const std::exception&) {
      outcome = Attempt::kFailed;
    }
    inflight_.fetch_sub(1, std::memory_order_relaxed);

    switch (outcome) {
      case Attempt::kStaged: {
        bytes_sent_.fetch_add(config_.bytes_per_chunk,
                              std::memory_order_relaxed);
        done_counter.add(1);
        bytes_counter.add(config_.bytes_per_chunk);
        record_span("repair.migrate", t0, m.chunk, 0);
        obs::Journal::instance().append(obs::JournalType::kMigrateDone,
                                        m.chunk, remap.to);
        {
          std::lock_guard<std::mutex> lock(mu_);
          staged_.push_back(remap);
          planner_wake_ = true;
        }
        plan_cv_.notify_one();
        break;
      }
      case Attempt::kSkip: {
        unplaceable.add(1);
        std::lock_guard<std::mutex> lock(mu_);
        active_.erase(m.chunk);
        break;
      }
      case Attempt::kFailed: {
        failed_.fetch_add(1, std::memory_order_relaxed);
        failed_counter.add(1);
        record_span("repair.migrate", t0, m.chunk, 1);
        obs::Journal::instance().append(obs::JournalType::kMigrateFail,
                                        m.chunk, m.from);
        std::lock_guard<std::mutex> lock(mu_);
        active_.erase(m.chunk);
        break;
      }
    }
  }
}

bool RepairCoordinator::execute(const Migration& m, core::ChunkRemap& out) {
  const core::ChoiceList cl =
      placement_.choices(static_cast<core::ChunkId>(m.chunk));
  if (!cl.contains(m.from)) return false;  // already repaired elsewhere

  // Source: least-loaded live surviving replica.
  int source = -1;
  std::uint64_t source_load = 0;
  for (const core::ServerId s : cl) {
    if (s == m.from) continue;
    if (s >= backends_.size()) continue;
    if (hooks_.is_live && !hooks_.is_live(s)) continue;
    const std::uint64_t load = hooks_.load ? hooks_.load(s) : 0;
    if (source < 0 || load < source_load) {
      source = static_cast<int>(s);
      source_load = load;
    }
  }
  // Target: least-loaded live backend outside the current choice set.
  int target = -1;
  std::uint64_t target_load = 0;
  for (std::uint32_t id = 0; id < backends_.size(); ++id) {
    if (cl.contains(id)) continue;
    if (hooks_.is_live && !hooks_.is_live(id)) continue;
    const std::uint64_t load = hooks_.load ? hooks_.load(id) : 0;
    if (target < 0 || load < target_load) {
      target = static_cast<int>(id);
      target_load = load;
    }
  }
  if (source < 0 || target < 0) return false;  // unplaceable right now

  net::MigrateMsg msg;
  msg.migration_id =
      next_migration_id_.fetch_add(1, std::memory_order_relaxed);
  msg.chunk = m.chunk;
  msg.epoch = placement_.epoch();
  msg.target_backend = static_cast<std::uint32_t>(target);
  msg.bytes = config_.bytes_per_chunk;
  msg.target_port = backends_[static_cast<std::size_t>(target)].port;
  msg.target_host = backends_[static_cast<std::size_t>(target)].host;

  net::Client source_conn;
  source_conn.connect(backends_[static_cast<std::size_t>(source)].host,
                      backends_[static_cast<std::size_t>(source)].port);
  source_conn.set_recv_timeout_ms(config_.migrate_timeout_ms);
  source_conn.send_migrate(msg);
  source_conn.flush();

  net::MigrateAckMsg ack;
  const net::ReadOutcome outcome = source_conn.try_read_migrate_ack(ack);
  if (outcome != net::ReadOutcome::kFrame ||
      ack.migration_id != msg.migration_id || ack.status != 0 ||
      ack.bytes != msg.bytes) {
    throw std::runtime_error("migration stream failed");
  }

  out.chunk = static_cast<core::ChunkId>(m.chunk);
  out.from = m.from;
  out.to = static_cast<core::ServerId>(target);
  return true;
}

}  // namespace rlb::repair
