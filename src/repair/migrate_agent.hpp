// Backend-side half of the repair plane.
//
// The agent installs the MIGRATE / MIGRATE_DATA handlers on a backend's
// NetServer.  Two roles, both live on every backend:
//
//   * migration SOURCE: a MIGRATE order from the repair coordinator names
//     a chunk, a byte budget, and a target backend.  The reactor thread
//     only queues the order; the agent's worker thread materialises the
//     chunk's (deterministic, checksummed) state, dials the target with a
//     blocking net::Client, streams it as MIGRATE_DATA slices, waits for
//     the target's MIGRATE_ACK, and finally acks the coordinator on the
//     original connection via NetServer::send_migrate_ack().  Serving is
//     never paused: the stream runs entirely off the reactor thread.
//
//   * migration TARGET: MIGRATE_DATA slices are verified (FNV-1a
//     checksum, offset continuity) and accounted on the reactor thread —
//     the nominal chunk state is small by design — and the last slice is
//     acked back to the source.
//
// Chunk state in this codebase is nominal (the engine is a queueing
// simulator), so the payload is a deterministic pattern derived from the
// chunk id; the transfer, throttle interaction, checksums, and ack chain
// are real.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "net/server.hpp"
#include "net/wire.hpp"

namespace rlb::repair {

struct MigrationAgentConfig {
  /// Receive timeout while waiting for the target backend's MIGRATE_ACK.
  std::uint64_t ack_timeout_ms = 2000;
};

/// Deterministic payload byte for `offset` within `chunk`'s state.  Both
/// ends derive it independently; tests use it to verify end-to-end
/// transfer integrity.
[[nodiscard]] std::uint8_t chunk_payload_byte(std::uint64_t chunk,
                                              std::uint64_t offset) noexcept;

class MigrationAgent {
 public:
  /// Completed-migration callback, fired with the migration's byte total.
  using ByteFn = std::function<void(std::uint64_t bytes)>;

  MigrationAgent(net::NetServer& server, MigrationAgentConfig config = {});
  ~MigrationAgent();

  MigrationAgent(const MigrationAgent&) = delete;
  MigrationAgent& operator=(const MigrationAgent&) = delete;

  /// Install the MIGRATE / MIGRATE_DATA handlers on the server.  Call
  /// before server.start() (handler installation is not thread-safe
  /// against a running reactor).
  void install();

  /// Start the outbound-stream worker thread.
  void start();

  /// Stop the worker; pending outbound orders are dropped (the
  /// coordinator times out and retries).
  void stop();

  /// Fired once per completed INBOUND migration (this backend was the
  /// target) with its byte total.  Install before start().
  void set_on_migration_in(ByteFn fn) { on_in_ = std::move(fn); }
  /// Fired once per completed OUTBOUND migration (this backend was the
  /// source).  Install before start().
  void set_on_migration_out(ByteFn fn) { on_out_ = std::move(fn); }

  std::uint64_t migrations_out() const {
    return migrations_out_.load(std::memory_order_relaxed);
  }
  std::uint64_t migrations_in() const {
    return migrations_in_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_out() const {
    return bytes_out_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_in() const {
    return bytes_in_.load(std::memory_order_relaxed);
  }

 private:
  struct Order {
    std::uint64_t conn_token = 0;  ///< coordinator connection to ack
    net::MigrateMsg msg;
  };

  /// Partially received inbound migration (target role).
  struct Inbound {
    std::uint64_t received = 0;
    std::uint64_t total = 0;
    bool corrupt = false;
  };

  void handle_migrate(std::uint64_t token, const net::MigrateMsg& msg);
  void handle_migrate_data(std::uint64_t token, const net::MigrateDataMsg& msg);
  void worker_loop();
  /// Stream one order to its target; returns true when the target acked
  /// every byte.
  bool stream(const Order& order);

  net::NetServer& server_;
  MigrationAgentConfig config_;
  ByteFn on_in_;
  ByteFn on_out_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Order> orders_;
  bool stopping_ = false;
  std::thread worker_;
  bool started_ = false;

  std::mutex inbound_mu_;
  std::unordered_map<std::uint64_t, Inbound> inbound_;

  std::atomic<std::uint64_t> migrations_out_{0};
  std::atomic<std::uint64_t> migrations_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
};

}  // namespace rlb::repair
