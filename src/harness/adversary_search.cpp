#include "harness/adversary_search.hpp"

#include <algorithm>
#include <sstream>

#include "stats/rng.hpp"
#include "workloads/phased_churn.hpp"

namespace rlb::harness {

namespace {

/// Lexicographic score: rejection dominates; latency breaks ties.
bool better(const AdversarySearchResult& a, const AdversarySearchResult& b) {
  if (a.best_rejection != b.best_rejection) {
    return a.best_rejection > b.best_rejection;
  }
  return a.best_latency > b.best_latency;
}

AdversaryParams random_params(std::size_t servers, stats::Rng& rng) {
  AdversaryParams params;
  params.working_set = 1 + rng.next_below(servers);
  params.churn = rng.next_double();
  params.churn_period = 1 + rng.next_below(8);
  params.shuffle = rng.next_bernoulli(0.5);
  return params;
}

AdversaryParams mutate(const AdversaryParams& base, std::size_t servers,
                       stats::Rng& rng) {
  AdversaryParams params = base;
  switch (rng.next_below(4)) {
    case 0: {
      // Scale the working set by a factor in [0.5, 2].
      const double factor = 0.5 + 1.5 * rng.next_double();
      const auto scaled = static_cast<std::size_t>(
          factor * static_cast<double>(params.working_set));
      params.working_set = std::clamp<std::size_t>(scaled, 1, servers);
      break;
    }
    case 1:
      params.churn =
          std::clamp(params.churn + 0.4 * (rng.next_double() - 0.5), 0.0, 1.0);
      break;
    case 2:
      params.churn_period = 1 + rng.next_below(8);
      break;
    default:
      params.shuffle = !params.shuffle;
      break;
  }
  return params;
}

}  // namespace

std::string describe(const AdversaryParams& params) {
  std::ostringstream oss;
  oss << "working_set=" << params.working_set << " churn=" << params.churn
      << "/" << params.churn_period << " order="
      << (params.shuffle ? "shuffled" : "fixed");
  return oss.str();
}

AdversarySearchResult evaluate_adversary(const AdversaryParams& params,
                                         const BalancerFactory& make_balancer,
                                         const AdversarySearchConfig& config) {
  const WorkloadFactory make_workload = [params](std::uint64_t seed) {
    return std::make_unique<workloads::PhasedChurnWorkload>(
        params.working_set, params.churn, params.churn_period,
        stats::derive_seed(seed, 0xAD), params.shuffle);
  };
  core::SimConfig sim;
  sim.steps = config.steps;
  sim.sample_backlogs = false;
  const TrialAggregate agg = run_trials(config.trials, config.seed,
                                        make_balancer, make_workload, sim);
  AdversarySearchResult result;
  result.best = params;
  result.best_rejection = agg.pooled_rejection_rate();
  result.best_latency = agg.average_latency.mean();
  result.evaluations = 1;
  return result;
}

AdversarySearchResult search_adversary(const BalancerFactory& make_balancer,
                                       const AdversarySearchConfig& config) {
  stats::Rng rng(stats::derive_seed(config.seed, 0x5EA));
  AdversarySearchResult best;
  bool have_best = false;
  std::size_t evaluations = 0;

  // Seed the search with the two shapes the theory predicts are extremal,
  // plus random restarts; each candidate gets a short mutation chain.
  std::vector<AdversaryParams> starts;
  {
    AdversaryParams repeated;  // the §1 / Lemma 5.3 shape
    repeated.working_set = config.servers;
    repeated.churn = 0.0;
    repeated.shuffle = false;
    starts.push_back(repeated);
    AdversaryParams fresh;  // the easy extreme, as a control
    fresh.working_set = config.servers;
    fresh.churn = 1.0;
    fresh.shuffle = true;
    starts.push_back(fresh);
  }
  while (starts.size() < std::max<std::size_t>(3, config.budget / 8)) {
    starts.push_back(random_params(config.servers, rng));
  }

  for (const AdversaryParams& start : starts) {
    if (evaluations >= config.budget) break;
    AdversarySearchResult current =
        evaluate_adversary(start, make_balancer, config);
    ++evaluations;
    if (!have_best || better(current, best)) {
      best = current;
      have_best = true;
    }
    // Greedy mutation chain from this start.
    while (evaluations < config.budget) {
      const AdversaryParams candidate =
          mutate(current.best, config.servers, rng);
      AdversarySearchResult scored =
          evaluate_adversary(candidate, make_balancer, config);
      ++evaluations;
      if (better(scored, current)) {
        current = scored;
        if (better(current, best)) best = current;
      } else if (rng.next_bernoulli(0.5)) {
        break;  // local plateau: spend remaining budget on other starts
      }
    }
  }
  best.evaluations = evaluations;
  return best;
}

}  // namespace rlb::harness
