#include "harness/experiment.hpp"

#include <iostream>

#include "harness/output.hpp"
#include "parallel/trial_runner.hpp"

namespace rlb::harness {

namespace {

TrialAggregate run_trials_impl(std::size_t trials, std::uint64_t master_seed,
                               const BalancerFactory& make_balancer,
                               const WorkloadFactory& make_workload,
                               const core::SimConfig& sim,
                               const FailureScheduleFactory* make_schedule) {
  struct TrialOutcome {
    core::SimResult result;
    std::uint64_t final_backlog = 0;
  };

  const std::function<TrialOutcome(std::uint64_t, std::size_t)> trial =
      [&](std::uint64_t seed, std::size_t /*index*/) {
        auto balancer = make_balancer(seed);
        auto workload = make_workload(seed);
        TrialOutcome outcome;
        if (make_schedule != nullptr) {
          // Each trial owns its schedule and a private SimConfig pointing
          // at it; the shared `sim` is never mutated.
          auto schedule = (*make_schedule)(seed);
          core::SimConfig trial_sim = sim;
          trial_sim.failure_schedule = schedule.get();
          outcome.result = core::simulate(*balancer, *workload, trial_sim);
        } else {
          outcome.result = core::simulate(*balancer, *workload, sim);
        }
        outcome.final_backlog = balancer->total_backlog();
        return outcome;
      };

  const auto outcomes = parallel::run_trials<TrialOutcome>(
      parallel::default_pool(), trials, master_seed, trial);

  TrialAggregate aggregate;
  aggregate.trials = trials;
  for (const TrialOutcome& outcome : outcomes) {
    const core::Metrics& metrics = outcome.result.metrics;
    aggregate.rejection_rate.add(metrics.rejection_rate());
    aggregate.average_latency.add(metrics.average_latency());
    aggregate.max_latency.add(static_cast<double>(metrics.max_latency()));
    aggregate.max_backlog.add(static_cast<double>(outcome.result.max_backlog));
    aggregate.mean_backlog.add(metrics.backlog_stats().mean());
    aggregate.worst_safety_ratio.add(outcome.result.worst_safety_ratio);
    aggregate.total_submitted += metrics.submitted();
    aggregate.total_rejected += metrics.rejected();
    aggregate.total_safety_checks += metrics.safety_checks();
    aggregate.total_safety_violations += metrics.safety_violations();
    aggregate.total_crashes += outcome.result.crashes;
    aggregate.total_recoveries += outcome.result.recoveries;
  }
  return aggregate;
}

}  // namespace

TrialAggregate run_trials(std::size_t trials, std::uint64_t master_seed,
                          const BalancerFactory& make_balancer,
                          const WorkloadFactory& make_workload,
                          const core::SimConfig& sim) {
  return run_trials_impl(trials, master_seed, make_balancer, make_workload,
                         sim, nullptr);
}

TrialAggregate run_trials(std::size_t trials, std::uint64_t master_seed,
                          const BalancerFactory& make_balancer,
                          const WorkloadFactory& make_workload,
                          const core::SimConfig& sim,
                          const FailureScheduleFactory& make_schedule) {
  return run_trials_impl(trials, master_seed, make_balancer, make_workload,
                         sim, &make_schedule);
}

void print_banner(const std::string& experiment_id, const std::string& claim,
                  const std::string& expectation) {
  set_json_experiment(experiment_id);
  std::cout << "\n################################################################\n"
            << "# " << experiment_id << "\n"
            << "# Paper claim : " << claim << "\n"
            << "# Expectation : " << expectation << "\n"
            << "################################################################\n";
}

}  // namespace rlb::harness
