// Randomized adversary search: hunt for the worst oblivious workload a
// policy admits.
//
// The paper's lower bounds are constructive in spirit: the bad workloads
// are structured (fixed repeated sets, fixed arrival orders).  This
// component searches the parameterized oblivious-workload space
//   (working-set size, churn fraction, churn period, order fixed/shuffled)
// by hill climbing with random restarts, scoring each candidate by the
// policy's pooled rejection rate (average latency breaks ties so the
// search has gradient even against policies that never reject).
//
// Expected outcome — and what the E18 bench verifies:
//   * against greedy-d1 / the isolated policies, the search rediscovers
//     the impossibility-proof shape (large fixed working set, no churn);
//   * against greedy and delayed cuckoo, no searched workload rejects
//     anything (Theorems 3.1 / 4.3 hold against ALL oblivious adversaries,
//     and in particular against this one).
//
// The search itself is oblivious: candidates are scored by rerunning fresh
// seeded simulations; the adversary never observes routing outcomes within
// a run, only the aggregate score across runs — i.e. it adapts across
// EXPERIMENTS, not within a request sequence, exactly what an oblivious
// adversary with knowledge of the algorithm (but not the random bits) may
// do.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/balancer.hpp"
#include "harness/experiment.hpp"

namespace rlb::harness {

/// A point in the oblivious-workload parameter space.
struct AdversaryParams {
  /// Working-set size (requests per step), in [1, servers].
  std::size_t working_set = 64;
  /// Fraction of the working set replaced every `churn_period` steps.
  double churn = 0.0;
  std::size_t churn_period = 1;
  /// Whether the within-step arrival order is reshuffled per step (an
  /// oblivious adversary may fix it instead).
  bool shuffle = false;
};

/// Search configuration.
struct AdversarySearchConfig {
  std::size_t servers = 512;
  /// Simulation shape per evaluation.
  std::size_t steps = 150;
  std::size_t trials = 3;
  /// Total candidate evaluations (restarts + mutations).
  std::size_t budget = 48;
  std::uint64_t seed = 1;
};

/// Outcome of a search.
struct AdversarySearchResult {
  AdversaryParams best;
  /// Pooled rejection rate of the best candidate.
  double best_rejection = 0.0;
  /// Mean average-latency of the best candidate (the tie-break signal).
  double best_latency = 0.0;
  std::size_t evaluations = 0;
};

/// Score one candidate: pooled rejection rate and mean latency across
/// seeded trials of `make_balancer` under the parameterized workload.
AdversarySearchResult evaluate_adversary(const AdversaryParams& params,
                                         const BalancerFactory& make_balancer,
                                         const AdversarySearchConfig& config);

/// Hill-climb with random restarts over the parameter space.
AdversarySearchResult search_adversary(const BalancerFactory& make_balancer,
                                       const AdversarySearchConfig& config);

/// Human-readable one-liner for a parameter point.
std::string describe(const AdversaryParams& params);

}  // namespace rlb::harness
