// The experiment harness: parallel seeded trials + cross-trial aggregation.
//
// Every experiment follows the same pattern: construct (balancer, workload)
// pairs from a derived seed, run R independent replicas on the shared
// thread pool, aggregate the SimResults.  Aggregation is deterministic in
// the master seed regardless of thread scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/balancer.hpp"
#include "core/simulator.hpp"
#include "core/workload.hpp"
#include "stats/summary.hpp"

namespace rlb::harness {

using BalancerFactory =
    std::function<std::unique_ptr<core::LoadBalancer>(std::uint64_t seed)>;
using WorkloadFactory =
    std::function<std::unique_ptr<core::Workload>(std::uint64_t seed)>;
/// Per-trial fault injector.  Each trial owns its own schedule (schedules
/// are stateful), so parallel trials stay deterministic in the master seed.
using FailureScheduleFactory =
    std::function<std::unique_ptr<core::FailureSchedule>(std::uint64_t seed)>;

/// Cross-trial aggregate of the metrics every experiment reports.
struct TrialAggregate {
  stats::OnlineStats rejection_rate;
  stats::OnlineStats average_latency;
  stats::OnlineStats max_latency;
  stats::OnlineStats max_backlog;
  stats::OnlineStats mean_backlog;
  stats::OnlineStats worst_safety_ratio;
  std::uint64_t total_submitted = 0;
  std::uint64_t total_rejected = 0;
  std::uint64_t total_safety_checks = 0;
  std::uint64_t total_safety_violations = 0;
  std::uint64_t total_crashes = 0;
  std::uint64_t total_recoveries = 0;
  std::size_t trials = 0;

  /// Pooled rejection rate over all trials' requests.
  double pooled_rejection_rate() const {
    return total_submitted ? static_cast<double>(total_rejected) /
                                 static_cast<double>(total_submitted)
                           : 0.0;
  }
};

/// Run `trials` seeded replicas of simulate(balancer, workload, sim) on the
/// shared thread pool and aggregate.  Trial i seeds both factories with
/// derive_seed(master_seed, i).
TrialAggregate run_trials(std::size_t trials, std::uint64_t master_seed,
                          const BalancerFactory& make_balancer,
                          const WorkloadFactory& make_workload,
                          const core::SimConfig& sim);

/// Fault-injection variant: trial i additionally builds its own
/// FailureSchedule from derive_seed(master_seed, i) and runs with it wired
/// into a per-trial copy of `sim` (SimConfig::failure_schedule is not
/// shared across threads).  `make_schedule` may return nullptr (no faults
/// for that trial).
TrialAggregate run_trials(std::size_t trials, std::uint64_t master_seed,
                          const BalancerFactory& make_balancer,
                          const WorkloadFactory& make_workload,
                          const core::SimConfig& sim,
                          const FailureScheduleFactory& make_schedule);

/// Standard experiment banner: id, paper claim, and what to look for.
void print_banner(const std::string& experiment_id, const std::string& claim,
                  const std::string& expectation);

}  // namespace rlb::harness
