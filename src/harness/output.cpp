#include "harness/output.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace rlb::harness {

namespace {

TableFormat g_format = TableFormat::kText;

// -- JSON capture state --------------------------------------------------

std::string g_json_path;
std::string g_json_experiment;
std::vector<std::pair<std::string, std::string>> g_json_values;  // pre-encoded
std::vector<report::Table> g_json_tables;
bool g_json_written = false;

/// JSON string escaping (control chars, quotes, backslash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Encode a table cell: numeric cells become JSON numbers, the rest quoted
/// strings (so downstream tooling gets real numbers without a parser).
std::string json_cell(const std::string& cell) {
  // Restrict to the JSON number alphabet first: strtod also accepts hex,
  // "inf", and leading-dot forms that are not valid JSON literals.
  const bool shape_ok =
      !cell.empty() && (std::isdigit(static_cast<unsigned char>(cell[0])) ||
                        (cell[0] == '-' && cell.size() > 1)) &&
      cell.find_first_not_of("0123456789+-.eE") == std::string::npos &&
      cell.find('.') != 0;
  if (shape_ok) {
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(cell.c_str(), &end);
    if (errno == 0 && end == cell.c_str() + cell.size() &&
        std::isfinite(value)) {
      return cell;  // a valid JSON number literal as-is
    }
  }
  return "\"" + json_escape(cell) + "\"";
}

void write_json_at_exit() { write_json(); }

void register_json_writer() {
  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit(&write_json_at_exit);
  }
}

bool parse_format(const std::string& value, TableFormat& out) {
  if (value == "text") {
    out = TableFormat::kText;
  } else if (value == "csv") {
    out = TableFormat::kCsv;
  } else if (value == "markdown" || value == "md") {
    out = TableFormat::kMarkdown;
  } else {
    return false;
  }
  return true;
}

void emit_probes_at_exit() { emit_probes(); }

void enable_probes() {
  static bool atexit_registered = false;
  obs::set_enabled(true);
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit(&emit_probes_at_exit);
  }
}

bool env_truthy(const char* value) {
  const std::string v = value;
  return !v.empty() && v != "0" && v != "false" && v != "off";
}

// The trace is only written at exit, so an unwritable path would otherwise
// fail silently after the whole run; probe it up front and fail loudly —
// a user who asked for a trace wants the run to stop rather than silently
// produce nothing (CI would green-light an empty artifact).
void set_trace_file_checked(const std::string& path) {
  {
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
      std::cerr << "rlb: cannot open trace file '" << path << "'\n";
      std::exit(2);
    }
  }
  obs::set_trace_file(path);
}

}  // namespace

void init_output(int argc, char** argv) {
  // Environment first, flags override.
  if (const char* env = std::getenv("RLB_TABLE_FORMAT")) {
    if (!parse_format(env, g_format)) {
      std::cerr << "rlb: ignoring unknown RLB_TABLE_FORMAT '" << env << "'\n";
    }
  }
  if (const char* env = std::getenv("RLB_TRACE")) {
    if (*env != '\0') set_trace_file_checked(env);
  }
  if (const char* env = std::getenv("RLB_TRACE_DETAIL")) {
    if (env_truthy(env)) obs::set_detail(true);
  }
  if (const char* env = std::getenv("RLB_PROBES")) {
    if (env_truthy(env)) enable_probes();
  }
  if (const char* env = std::getenv("RLB_JSON")) {
    if (*env != '\0') set_json_file(env);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json" && i + 1 < argc) {
      set_json_file(argv[++i]);
    } else if (flag == "--json") {
      std::cerr << "rlb: --json requires a file path\n";
    } else if (flag == "--format" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (!parse_format(value, g_format)) {
        std::cerr << "rlb: ignoring unknown --format '" << value
                  << "' (text|csv|markdown)\n";
      }
    } else if (flag == "--trace" && i + 1 < argc) {
      set_trace_file_checked(argv[++i]);
    } else if (flag == "--trace") {
      std::cerr << "rlb: --trace requires a file path\n";
    } else if (flag == "--trace-detail") {
      obs::set_detail(true);
    } else if (flag == "--probes") {
      enable_probes();
    }
  }
}

void set_table_format(TableFormat format) { g_format = format; }

TableFormat table_format() { return g_format; }

void set_json_file(const std::string& path) {
  if (!path.empty()) {
    // Probe writability up front, like the trace file: the document is
    // only written at exit and a bad path would fail after the whole run.
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
      std::cerr << "rlb: cannot open json file '" << path
                << "' — json output disabled\n";
      return;
    }
    register_json_writer();
  }
  g_json_path = path;
  g_json_written = false;
}

bool json_enabled() { return !g_json_path.empty(); }

void set_json_experiment(const std::string& id) { g_json_experiment = id; }

void json_value(const std::string& key, const std::string& value) {
  if (!json_enabled()) return;
  g_json_values.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void json_value(const std::string& key, double value) {
  if (!json_enabled()) return;
  std::ostringstream os;
  os << value;
  g_json_values.emplace_back(key, json_cell(os.str()));
}

void json_value(const std::string& key, std::uint64_t value) {
  if (!json_enabled()) return;
  g_json_values.emplace_back(key, std::to_string(value));
}

void write_json() {
  if (!json_enabled() || g_json_written) return;
  g_json_written = true;
  std::ofstream os(g_json_path, std::ios::trunc);
  if (!os) {
    std::cerr << "rlb: cannot write json file '" << g_json_path << "'\n";
    return;
  }
  os << "{\n  \"experiment\": \"" << json_escape(g_json_experiment) << "\",\n";
  os << "  \"values\": {";
  for (std::size_t i = 0; i < g_json_values.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(g_json_values[i].first)
       << "\": " << g_json_values[i].second;
  }
  os << "},\n  \"tables\": [\n";
  for (std::size_t t = 0; t < g_json_tables.size(); ++t) {
    const report::Table& table = g_json_tables[t];
    os << "    {\"headers\": [";
    for (std::size_t c = 0; c < table.headers().size(); ++c) {
      if (c) os << ", ";
      os << "\"" << json_escape(table.headers()[c]) << "\"";
    }
    os << "], \"rows\": [";
    for (std::size_t r = 0; r < table.rows().size(); ++r) {
      if (r) os << ", ";
      os << "[";
      const auto& row = table.rows()[r];
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c) os << ", ";
        os << json_cell(row[c]);
      }
      os << "]";
    }
    os << "]}" << (t + 1 < g_json_tables.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void emit(const report::Table& table, std::ostream& os) {
  if (json_enabled()) g_json_tables.push_back(table);
  switch (g_format) {
    case TableFormat::kText:
      table.print(os);
      break;
    case TableFormat::kCsv:
      table.print_csv(os);
      break;
    case TableFormat::kMarkdown:
      table.print_markdown(os);
      break;
  }
}

void emit(const report::Table& table) { emit(table, std::cout); }

void emit_probes(std::ostream& os) {
  const report::Table table = obs::ProbeRegistry::instance().to_table();
  if (table.row_count() == 0) return;
  os << "\n== probes ==\n";
  emit(table, os);
}

void emit_probes() { emit_probes(std::cout); }

}  // namespace rlb::harness
