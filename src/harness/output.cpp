#include "harness/output.hpp"

#include <cstdlib>
#include <iostream>
#include <string>

namespace rlb::harness {

namespace {

TableFormat g_format = TableFormat::kText;

bool parse_format(const std::string& value, TableFormat& out) {
  if (value == "text") {
    out = TableFormat::kText;
  } else if (value == "csv") {
    out = TableFormat::kCsv;
  } else if (value == "markdown" || value == "md") {
    out = TableFormat::kMarkdown;
  } else {
    return false;
  }
  return true;
}

}  // namespace

void init_output(int argc, char** argv) {
  // Environment first, flags override.
  if (const char* env = std::getenv("RLB_TABLE_FORMAT")) {
    if (!parse_format(env, g_format)) {
      std::cerr << "rlb: ignoring unknown RLB_TABLE_FORMAT '" << env << "'\n";
    }
  }
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--format" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (!parse_format(value, g_format)) {
        std::cerr << "rlb: ignoring unknown --format '" << value
                  << "' (text|csv|markdown)\n";
      }
    }
  }
}

void set_table_format(TableFormat format) { g_format = format; }

TableFormat table_format() { return g_format; }

void emit(const report::Table& table, std::ostream& os) {
  switch (g_format) {
    case TableFormat::kText:
      table.print(os);
      break;
    case TableFormat::kCsv:
      table.print_csv(os);
      break;
    case TableFormat::kMarkdown:
      table.print_markdown(os);
      break;
  }
}

void emit(const report::Table& table) { emit(table, std::cout); }

}  // namespace rlb::harness
