#include "harness/output.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.hpp"

namespace rlb::harness {

namespace {

TableFormat g_format = TableFormat::kText;

bool parse_format(const std::string& value, TableFormat& out) {
  if (value == "text") {
    out = TableFormat::kText;
  } else if (value == "csv") {
    out = TableFormat::kCsv;
  } else if (value == "markdown" || value == "md") {
    out = TableFormat::kMarkdown;
  } else {
    return false;
  }
  return true;
}

void emit_probes_at_exit() { emit_probes(); }

void enable_probes() {
  static bool atexit_registered = false;
  obs::set_enabled(true);
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit(&emit_probes_at_exit);
  }
}

bool env_truthy(const char* value) {
  const std::string v = value;
  return !v.empty() && v != "0" && v != "false" && v != "off";
}

// The trace is only written at exit, so an unwritable path would otherwise
// fail silently after the whole run; probe it up front.
void set_trace_file_checked(const std::string& path) {
  {
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
      std::cerr << "rlb: cannot open trace file '" << path
                << "' — tracing disabled\n";
      return;
    }
  }
  obs::set_trace_file(path);
}

}  // namespace

void init_output(int argc, char** argv) {
  // Environment first, flags override.
  if (const char* env = std::getenv("RLB_TABLE_FORMAT")) {
    if (!parse_format(env, g_format)) {
      std::cerr << "rlb: ignoring unknown RLB_TABLE_FORMAT '" << env << "'\n";
    }
  }
  if (const char* env = std::getenv("RLB_TRACE")) {
    if (*env != '\0') set_trace_file_checked(env);
  }
  if (const char* env = std::getenv("RLB_TRACE_DETAIL")) {
    if (env_truthy(env)) obs::set_detail(true);
  }
  if (const char* env = std::getenv("RLB_PROBES")) {
    if (env_truthy(env)) enable_probes();
  }
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--format" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (!parse_format(value, g_format)) {
        std::cerr << "rlb: ignoring unknown --format '" << value
                  << "' (text|csv|markdown)\n";
      }
    } else if (flag == "--trace" && i + 1 < argc) {
      set_trace_file_checked(argv[++i]);
    } else if (flag == "--trace") {
      std::cerr << "rlb: --trace requires a file path\n";
    } else if (flag == "--trace-detail") {
      obs::set_detail(true);
    } else if (flag == "--probes") {
      enable_probes();
    }
  }
}

void set_table_format(TableFormat format) { g_format = format; }

TableFormat table_format() { return g_format; }

void emit(const report::Table& table, std::ostream& os) {
  switch (g_format) {
    case TableFormat::kText:
      table.print(os);
      break;
    case TableFormat::kCsv:
      table.print_csv(os);
      break;
    case TableFormat::kMarkdown:
      table.print_markdown(os);
      break;
  }
}

void emit(const report::Table& table) { emit(table, std::cout); }

void emit_probes(std::ostream& os) {
  const report::Table table = obs::ProbeRegistry::instance().to_table();
  if (table.row_count() == 0) return;
  os << "\n== probes ==\n";
  emit(table, os);
}

void emit_probes() { emit_probes(std::cout); }

}  // namespace rlb::harness
