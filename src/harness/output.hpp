// Selectable table output for experiment binaries.
//
// Every bench binary emits its tables through emit(); the process-wide
// format defaults to aligned text and can be switched per run:
//   ./bench_xyz --format csv        (also: text | markdown)
//   RLB_TABLE_FORMAT=csv ./bench_xyz
// so results feed straight into plotting scripts without a parser.
#pragma once

#include <ostream>

#include "report/table.hpp"

namespace rlb::harness {

enum class TableFormat { kText, kCsv, kMarkdown };

/// Parse --format from argv (and the RLB_TABLE_FORMAT environment variable
/// as a fallback) and set the process-wide format.  Unknown values keep
/// text and print a warning to stderr.
void init_output(int argc, char** argv);

/// Explicitly set the process-wide format (tests).
void set_table_format(TableFormat format);
TableFormat table_format();

/// Print `table` to stdout in the configured format.
void emit(const report::Table& table);

/// Print `table` to `os` in the configured format.
void emit(const report::Table& table, std::ostream& os);

}  // namespace rlb::harness
