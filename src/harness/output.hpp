// Selectable table output for experiment binaries.
//
// Every bench binary emits its tables through emit(); the process-wide
// format defaults to aligned text and can be switched per run:
//   ./bench_xyz --format csv        (also: text | markdown)
//   RLB_TABLE_FORMAT=csv ./bench_xyz
// so results feed straight into plotting scripts without a parser.
//
// The same init also wires up the observability layer (src/obs/):
//   ./bench_xyz --trace /tmp/t.json   (or RLB_TRACE=/tmp/t.json)
//       enable tracing and write the event trace at exit — Chrome
//       trace-event JSON by default, JSON Lines when the path ends .jsonl.
//   ./bench_xyz --trace-detail        (or RLB_TRACE_DETAIL=1)
//       also trace per-request lifecycle events (very chatty).
//   ./bench_xyz --probes              (or RLB_PROBES=1)
//       enable probe recording and print the merged probe table at exit.
#pragma once

#include <ostream>

#include "report/table.hpp"

namespace rlb::harness {

enum class TableFormat { kText, kCsv, kMarkdown };

/// Parse --format/--trace/--probes/--json from argv (and the
/// RLB_TABLE_FORMAT, RLB_TRACE, RLB_PROBES, RLB_JSON environment variables
/// as fallbacks) and configure the process-wide output + observability
/// state.  Unknown values keep the defaults and print a warning to stderr.
void init_output(int argc, char** argv);

// -- Machine-readable results (--json <path>) ----------------------------
//
// When a JSON path is configured, every table passed to emit() is also
// captured, and at process exit (or on write_json()) the accumulated run —
// experiment id, free-form config/metric values, and all tables — is
// written as one JSON document:
//   {"experiment": ..., "values": {...},
//    "tables": [{"headers": [...], "rows": [[...], ...]}, ...]}
// Cells that parse as numbers are emitted as JSON numbers, so BENCH_*.json
// perf trajectories can be diffed across PRs without a table parser.

/// Route captured results to `path` ("" disables).  Registers the at-exit
/// writer; also called by init_output for --json/RLB_JSON.
void set_json_file(const std::string& path);
bool json_enabled();

/// Set the "experiment" field (print_banner calls this with its id).
void set_json_experiment(const std::string& id);

/// Record a scalar config/metric value into the "values" object.
void json_value(const std::string& key, const std::string& value);
void json_value(const std::string& key, double value);
void json_value(const std::string& key, std::uint64_t value);

/// Write the accumulated document now (also happens at exit).  No-op when
/// disabled.
void write_json();

/// Explicitly set the process-wide format (tests).
void set_table_format(TableFormat format);
TableFormat table_format();

/// Print `table` to stdout in the configured format.
void emit(const report::Table& table);

/// Print `table` to `os` in the configured format.
void emit(const report::Table& table, std::ostream& os);

/// Print the merged obs probe table (counters/gauges/histograms recorded
/// so far) through emit().  No-op when nothing has been recorded.
void emit_probes();
void emit_probes(std::ostream& os);

}  // namespace rlb::harness
