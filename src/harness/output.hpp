// Selectable table output for experiment binaries.
//
// Every bench binary emits its tables through emit(); the process-wide
// format defaults to aligned text and can be switched per run:
//   ./bench_xyz --format csv        (also: text | markdown)
//   RLB_TABLE_FORMAT=csv ./bench_xyz
// so results feed straight into plotting scripts without a parser.
//
// The same init also wires up the observability layer (src/obs/):
//   ./bench_xyz --trace /tmp/t.json   (or RLB_TRACE=/tmp/t.json)
//       enable tracing and write the event trace at exit — Chrome
//       trace-event JSON by default, JSON Lines when the path ends .jsonl.
//   ./bench_xyz --trace-detail        (or RLB_TRACE_DETAIL=1)
//       also trace per-request lifecycle events (very chatty).
//   ./bench_xyz --probes              (or RLB_PROBES=1)
//       enable probe recording and print the merged probe table at exit.
#pragma once

#include <ostream>

#include "report/table.hpp"

namespace rlb::harness {

enum class TableFormat { kText, kCsv, kMarkdown };

/// Parse --format/--trace/--probes from argv (and the RLB_TABLE_FORMAT,
/// RLB_TRACE, RLB_PROBES environment variables as fallbacks) and configure
/// the process-wide output + observability state.  Unknown values keep the
/// defaults and print a warning to stderr.
void init_output(int argc, char** argv);

/// Explicitly set the process-wide format (tests).
void set_table_format(TableFormat format);
TableFormat table_format();

/// Print `table` to stdout in the configured format.
void emit(const report::Table& table);

/// Print `table` to `os` in the configured format.
void emit(const report::Table& table, std::ostream& os);

/// Print the merged obs probe table (counters/gauges/histograms recorded
/// so far) through emit().  No-op when nothing has been recorded.
void emit_probes();
void emit_probes(std::ostream& os);

}  // namespace rlb::harness
