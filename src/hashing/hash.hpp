// Seeded 64-bit hash functions.
//
// The model's h_1(x), ..., h_d(x) are "fully random" hash functions mapping
// chunk ids to servers.  We realize them as strong seeded mixers: a distinct
// derived seed per replica index yields d independent-looking functions of
// the same chunk id.  For experiments that stress hash quality, the
// tabulation variant (tabulation.hpp) offers 3-independence with provable
// Chernoff-style concentration (Pătrașcu–Thorup).
#pragma once

#include <cstdint>

namespace rlb::hashing {

/// Strong 64 -> 64 bit mixer (xxHash3-style avalanche over splitmix
/// constants).  Bijective for fixed seed.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Seeded hash of a 64-bit key.
[[nodiscard]] constexpr std::uint64_t hash64(std::uint64_t key,
                                             std::uint64_t seed) noexcept {
  return mix64(key + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// Seeded hash reduced to a bucket in [0, buckets) via the multiply-shift
/// range reduction (unbiased for buckets << 2^64 in the statistical sense
/// used here; avoids the modulo's low-bit bias).
[[nodiscard]] inline std::uint64_t hash_to_bucket(std::uint64_t key,
                                                  std::uint64_t seed,
                                                  std::uint64_t buckets) noexcept {
  const std::uint64_t h = hash64(key, seed);
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(h) * static_cast<__uint128_t>(buckets)) >> 64);
}

}  // namespace rlb::hashing
