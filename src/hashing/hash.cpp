#include "hashing/hash.hpp"

// All functions are constexpr/inline in the header; this translation unit
// anchors the library target.
namespace rlb::hashing {}
