#include "hashing/tabulation.hpp"

namespace rlb::hashing {

TabulationHash::TabulationHash(std::uint64_t seed) {
  stats::Xoshiro256StarStar rng(seed);
  for (auto& table : tables_) {
    for (auto& entry : table) entry = rng.next();
  }
}

std::uint64_t TabulationHash::operator()(std::uint64_t key) const noexcept {
  std::uint64_t h = 0;
  for (std::size_t c = 0; c < kChars; ++c) {
    h ^= tables_[c][(key >> (8 * c)) & 0xff];
  }
  return h;
}

std::uint64_t TabulationHash::bucket(std::uint64_t key,
                                     std::uint64_t buckets) const noexcept {
  const std::uint64_t h = (*this)(key);
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(h) * static_cast<__uint128_t>(buckets)) >> 64);
}

}  // namespace rlb::hashing
