// Simple tabulation hashing (Zobrist / Pătrașcu–Thorup).
//
// Splits a 64-bit key into 8 bytes and XORs one random table entry per byte.
// Only 3-independent, yet provably gives Chernoff-type concentration for
// balls-into-bins-style applications — the theoretical justification for
// using it where the paper assumes fully random hash functions.
#pragma once

#include <array>
#include <cstdint>

#include "stats/rng.hpp"

namespace rlb::hashing {

/// A seeded tabulation hash function over 64-bit keys.
class TabulationHash {
 public:
  explicit TabulationHash(std::uint64_t seed);

  /// Hash of `key` to 64 bits.
  [[nodiscard]] std::uint64_t operator()(std::uint64_t key) const noexcept;

  /// Hash reduced to [0, buckets).
  [[nodiscard]] std::uint64_t bucket(std::uint64_t key,
                                     std::uint64_t buckets) const noexcept;

 private:
  static constexpr std::size_t kChars = 8;    // bytes per key
  static constexpr std::size_t kRange = 256;  // values per byte
  std::array<std::array<std::uint64_t, kRange>, kChars> tables_{};
};

}  // namespace rlb::hashing
