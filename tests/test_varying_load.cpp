// Fuzz: every policy under randomly varying step loads — empty steps,
// single requests, bursts up to the full m — interleaved with flushes.
// Asserts the conservation law and backlog bounds throughout.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace rlb {
namespace {

class VaryingLoadFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(VaryingLoadFuzz, ConservationUnderIrregularTraffic) {
  const std::string& policy_name = GetParam();
  constexpr std::size_t kServers = 128;
  policies::PolicyConfig config;
  config.servers = kServers;
  config.replication = 2;
  config.processing_rate = 16;  // keeps delayed-cuckoo constructible
  config.queue_capacity = 8;
  config.seed = 97;
  auto balancer = policies::make_policy(policy_name, config);

  stats::Rng rng(4242);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 80; ++t) {
    // Load pattern: 25% empty steps, 25% singletons, 50% random size up to
    // m — all distinct chunks from a small universe (reappearances).
    const std::uint64_t shape = rng.next_below(4);
    std::size_t count = 0;
    if (shape == 1) {
      count = 1;
    } else if (shape >= 2) {
      count = 1 + rng.next_below(kServers);
    }
    batch = count ? stats::sample_without_replacement(4 * kServers, count, rng)
                  : std::vector<core::ChunkId>{};
    balancer->step(t, batch, metrics);

    ASSERT_EQ(metrics.submitted(),
              metrics.completed() + metrics.rejected() +
                  balancer->total_backlog())
        << policy_name << " step " << t << " count " << count;

    if (t % 23 == 22) {
      const std::uint64_t queued = balancer->total_backlog();
      const std::uint64_t before = metrics.dropped_from_queue();
      balancer->flush(metrics);
      ASSERT_EQ(balancer->total_backlog(), 0u);
      ASSERT_EQ(metrics.dropped_from_queue() - before, queued);
    }
  }
  // Sanity: the run did submit real traffic.
  EXPECT_GT(metrics.submitted(), 100u);
}

TEST_P(VaryingLoadFuzz, EmptyStepsAreHarmless) {
  const std::string& policy_name = GetParam();
  policies::PolicyConfig config;
  config.servers = 32;
  config.processing_rate = 16;
  config.queue_capacity = 4;
  config.seed = 98;
  auto balancer = policies::make_policy(policy_name, config);
  core::Metrics metrics;
  const std::vector<core::ChunkId> empty;
  for (core::Time t = 0; t < 20; ++t) {
    balancer->step(t, empty, metrics);
  }
  EXPECT_EQ(metrics.submitted(), 0u);
  EXPECT_EQ(metrics.rejected(), 0u);
  EXPECT_EQ(balancer->total_backlog(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, VaryingLoadFuzz,
    ::testing::ValuesIn(policies::policy_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rlb
