// Relay-hop coverage for net::FrameDecoder (net/wire.hpp): the router sits
// between client and backend decoding byte streams on both sides, so the
// decoder must reassemble frames fed in arbitrary fragments, keep multiple
// independent upstream streams straight, re-encode relayed responses
// byte-identically, and refuse oversized frames at the boundary instead of
// buffering them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "net/wire.hpp"

namespace rlb::net {
namespace {

std::vector<std::uint8_t> encoded_response(std::uint64_t id, Status status,
                                           std::uint32_t server,
                                           std::uint32_t wait_steps) {
  std::vector<std::uint8_t> out;
  encode_response(ResponseMsg{id, status, server, wait_steps}, out);
  return out;
}

TEST(FrameRelay, ReassemblesFramesFedOneByteAtATime) {
  const std::vector<std::uint8_t> wire =
      encoded_response(42, Status::kOk, 7, 3);
  FrameDecoder decoder;
  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_FALSE(decoder.next(payload))
        << "frame completed early at byte " << i;
    ASSERT_TRUE(decoder.feed(&wire[i], 1));
  }
  ASSERT_TRUE(decoder.next(payload));
  EXPECT_FALSE(decoder.next(payload));  // exactly one frame

  RequestMsg request;
  ResponseMsg response;
  ASSERT_EQ(decode_payload(payload.data(), payload.size(), request, response),
            Decoded::kResponse);
  EXPECT_EQ(response.request_id, 42u);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.server, 7u);
  EXPECT_EQ(response.wait_steps, 3u);
}

TEST(FrameRelay, SplitAcrossTheLengthPrefixBoundary) {
  // The nastiest fragmentation for a length-prefixed protocol: the 4-byte
  // prefix itself arrives split, then the payload in two pieces.
  const std::vector<std::uint8_t> wire =
      encoded_response(1, Status::kReject, 0, 0);
  ASSERT_GT(wire.size(), 6u);
  FrameDecoder decoder;
  std::vector<std::uint8_t> payload;

  ASSERT_TRUE(decoder.feed(wire.data(), 2));          // half the prefix
  EXPECT_FALSE(decoder.next(payload));
  ASSERT_TRUE(decoder.feed(wire.data() + 2, 3));      // rest + 1 payload byte
  EXPECT_FALSE(decoder.next(payload));
  ASSERT_TRUE(decoder.feed(wire.data() + 5, wire.size() - 5));
  ASSERT_TRUE(decoder.next(payload));
  EXPECT_EQ(payload.size(), kResponsePayloadSize);
}

TEST(FrameRelay, InterleavedUpstreamStreamsStayIndependent) {
  // Two backends answer concurrently; the router owns one decoder per
  // upstream connection.  Chip both streams through in small alternating
  // slices and check every response surfaces exactly once, on the right
  // decoder, in per-stream order.
  std::vector<std::uint8_t> stream_a;
  std::vector<std::uint8_t> stream_b;
  for (std::uint64_t i = 0; i < 40; ++i) {
    std::vector<std::uint8_t> frame = encoded_response(
        /*id=*/100 + i, i % 3 ? Status::kOk : Status::kReject,
        /*server=*/static_cast<std::uint32_t>(i), /*wait_steps=*/0);
    stream_a.insert(stream_a.end(), frame.begin(), frame.end());
    frame = encoded_response(/*id=*/200 + i, Status::kOk,
                             /*server=*/static_cast<std::uint32_t>(i), 1);
    stream_b.insert(stream_b.end(), frame.begin(), frame.end());
  }

  FrameDecoder decoder_a;
  FrameDecoder decoder_b;
  std::map<std::uint64_t, int> seen;
  std::uint64_t next_a = 100;
  std::uint64_t next_b = 200;
  std::size_t offset_a = 0;
  std::size_t offset_b = 0;
  // Unequal slice sizes so fragment boundaries drift across frames.
  std::size_t slice = 1;
  while (offset_a < stream_a.size() || offset_b < stream_b.size()) {
    const std::size_t take_a =
        std::min(slice, stream_a.size() - offset_a);
    const std::size_t take_b =
        std::min(slice + 2, stream_b.size() - offset_b);
    if (take_a > 0) {
      ASSERT_TRUE(decoder_a.feed(stream_a.data() + offset_a, take_a));
      offset_a += take_a;
    }
    if (take_b > 0) {
      ASSERT_TRUE(decoder_b.feed(stream_b.data() + offset_b, take_b));
      offset_b += take_b;
    }
    slice = slice % 7 + 1;

    std::vector<std::uint8_t> payload;
    RequestMsg request;
    ResponseMsg response;
    while (decoder_a.next(payload)) {
      ASSERT_EQ(
          decode_payload(payload.data(), payload.size(), request, response),
          Decoded::kResponse);
      EXPECT_EQ(response.request_id, next_a++) << "stream A out of order";
      ++seen[response.request_id];
    }
    while (decoder_b.next(payload)) {
      ASSERT_EQ(
          decode_payload(payload.data(), payload.size(), request, response),
          Decoded::kResponse);
      EXPECT_EQ(response.request_id, next_b++) << "stream B out of order";
      ++seen[response.request_id];
    }
  }
  EXPECT_EQ(seen.size(), 80u);
  for (const auto& [id, count] : seen) {
    EXPECT_EQ(count, 1) << "response " << id << " surfaced " << count
                        << " times";
  }
  EXPECT_EQ(decoder_a.buffered(), 0u);
  EXPECT_EQ(decoder_b.buffered(), 0u);
}

TEST(FrameRelay, RelayedResponseReencodesByteIdentically) {
  // The router's relay path: decode an upstream response, remap the hop id
  // back to the client's id, re-encode.  Same id in must give the same
  // bytes out — the hop must not perturb status/server/wait_steps.
  const std::vector<std::uint8_t> wire =
      encoded_response(0x0123456789ABCDEFull, Status::kRejectUpstreamDown,
                       0xDEADBEEF, 0xFFFFFFFF);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire.data(), wire.size()));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(decoder.next(payload));
  RequestMsg request;
  ResponseMsg response;
  ASSERT_EQ(decode_payload(payload.data(), payload.size(), request, response),
            Decoded::kResponse);
  std::vector<std::uint8_t> rewired;
  encode_response(response, rewired);
  EXPECT_EQ(rewired, wire);
}

TEST(FrameRelay, HopLevelRejectStatusesDecodeAndClassify) {
  for (const Status status :
       {Status::kRejectUpstreamDown, Status::kRejectUpstreamTimeout}) {
    const std::vector<std::uint8_t> wire = encoded_response(9, status, 0, 0);
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.feed(wire.data(), wire.size()));
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(decoder.next(payload));
    RequestMsg request;
    ResponseMsg response;
    ASSERT_EQ(
        decode_payload(payload.data(), payload.size(), request, response),
        Decoded::kResponse);
    EXPECT_EQ(response.status, status);
    EXPECT_TRUE(is_reject(response.status));
  }
  // One past the last defined status is malformed, not a new reject.
  std::vector<std::uint8_t> wire = encoded_response(9, Status::kOk, 0, 0);
  wire[4 + 1 + 8] = static_cast<std::uint8_t>(Status::kRejectUpstreamTimeout) +
                    1;  // status byte: prefix + type + id
  RequestMsg request;
  ResponseMsg response;
  EXPECT_EQ(decode_payload(wire.data() + 4, wire.size() - 4, request,
                           response),
            Decoded::kMalformed);
}

TEST(FrameRelay, OversizedFrameHeaderPoisonsTheConnection) {
  FrameDecoder decoder;
  const std::uint32_t length = kMaxFramePayload + 1;
  const std::uint8_t header[4] = {
      static_cast<std::uint8_t>(length & 0xFF),
      static_cast<std::uint8_t>((length >> 8) & 0xFF),
      static_cast<std::uint8_t>((length >> 16) & 0xFF),
      static_cast<std::uint8_t>((length >> 24) & 0xFF),
  };
  EXPECT_FALSE(decoder.feed(header, sizeof(header)));
  EXPECT_TRUE(decoder.error());
  // Poisoned is permanent: further feeds are refused, nothing decodes.
  const std::uint8_t byte = 0;
  EXPECT_FALSE(decoder.feed(&byte, 1));
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(decoder.next(payload));
}

TEST(FrameRelay, MaxSizedFrameIsAcceptedAtTheBoundary) {
  // Exactly kMaxFramePayload must pass: the STATS_RESP path frames
  // snapshots right up to the cap.
  std::vector<std::uint8_t> wire;
  const std::uint32_t length = kMaxFramePayload;
  wire.push_back(static_cast<std::uint8_t>(length & 0xFF));
  wire.push_back(static_cast<std::uint8_t>((length >> 8) & 0xFF));
  wire.push_back(static_cast<std::uint8_t>((length >> 16) & 0xFF));
  wire.push_back(static_cast<std::uint8_t>((length >> 24) & 0xFF));
  wire.resize(wire.size() + kMaxFramePayload,
              static_cast<std::uint8_t>(MsgType::kStatsResponse));
  FrameDecoder decoder;
  // Feed in two unequal halves to cross the prefix/payload boundary.
  ASSERT_TRUE(decoder.feed(wire.data(), 1000));
  ASSERT_TRUE(decoder.feed(wire.data() + 1000, wire.size() - 1000));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(decoder.next(payload));
  EXPECT_EQ(payload.size(), kMaxFramePayload);
  EXPECT_FALSE(decoder.error());
}

TEST(FrameRelay, ZeroLengthFramePoisons) {
  FrameDecoder decoder;
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  EXPECT_FALSE(decoder.feed(zeros, sizeof(zeros)));
  EXPECT_TRUE(decoder.error());
}

}  // namespace
}  // namespace rlb::net
