// Unit tests for the online cuckoo table with stash (cuckoo/cuckoo_table.hpp).
#include "cuckoo/cuckoo_table.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "stats/rng.hpp"

namespace rlb::cuckoo {
namespace {

TEST(CuckooTable, RejectsZeroPositions) {
  EXPECT_THROW(CuckooTable(0, 2, 1), std::invalid_argument);
}

TEST(CuckooTable, InsertContainsErase) {
  CuckooTable table(64, 2, 1);
  EXPECT_FALSE(table.contains(42));
  EXPECT_TRUE(table.insert(42));
  EXPECT_TRUE(table.contains(42));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.erase(42));
  EXPECT_FALSE(table.contains(42));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.erase(42));
}

TEST(CuckooTable, DuplicateInsertIsIdempotent) {
  CuckooTable table(64, 2, 1);
  EXPECT_TRUE(table.insert(7));
  EXPECT_TRUE(table.insert(7));
  EXPECT_EQ(table.size(), 1u);
}

TEST(CuckooTable, PlacedKeysAreAtOneOfTheirHashes) {
  CuckooTable table(128, 4, 3);
  for (std::uint64_t key = 0; key < 40; ++key) {
    ASSERT_TRUE(table.insert(key));
  }
  for (std::uint64_t key = 0; key < 40; ++key) {
    const auto pos = table.position_of(key);
    if (!pos.has_value()) continue;  // stashed
    EXPECT_TRUE(*pos == table.hash1(key) || *pos == table.hash2(key))
        << "key " << key;
  }
}

TEST(CuckooTable, LoadThirdSucceedsWithSmallStash) {
  // m/3 keys into m positions with stash 4 — the Theorem 4.1 regime; at
  // this density failures should not occur for moderate m.
  constexpr std::size_t kPositions = 999;
  CuckooTable table(kPositions, 4, 17);
  for (std::uint64_t key = 0; key < kPositions / 3; ++key) {
    ASSERT_TRUE(table.insert(key)) << "key " << key;
  }
  EXPECT_EQ(table.size(), kPositions / 3);
  EXPECT_LE(table.stash_size(), 4u);
  for (std::uint64_t key = 0; key < kPositions / 3; ++key) {
    EXPECT_TRUE(table.contains(key));
  }
}

TEST(CuckooTable, OverfullTableEventuallyFailsButStaysConsistent) {
  // Push far past the 50% feasibility threshold; inserts must start
  // failing, and every key reported as contained must actually be findable.
  CuckooTable table(32, 2, 5);
  std::unordered_set<std::uint64_t> inserted;
  for (std::uint64_t key = 0; key < 64; ++key) {
    if (table.insert(key)) inserted.insert(key);
  }
  EXPECT_LT(inserted.size(), 64u);
  EXPECT_GE(inserted.size(), 16u);
  for (std::uint64_t key : inserted) {
    EXPECT_TRUE(table.contains(key)) << "lost key " << key;
  }
  EXPECT_EQ(table.size(), inserted.size());
}

TEST(CuckooTable, FailedInsertRollsBackCleanly) {
  CuckooTable table(8, 0, 7);  // no stash: failures come early
  std::unordered_set<std::uint64_t> inserted;
  for (std::uint64_t key = 0; key < 32; ++key) {
    if (table.insert(key)) inserted.insert(key);
  }
  // After any number of failures the resident set must be exactly the
  // successfully inserted keys.
  for (std::uint64_t key = 0; key < 32; ++key) {
    EXPECT_EQ(table.contains(key), inserted.count(key) > 0) << key;
  }
}

TEST(CuckooTable, EraseFromStashFreesSpace) {
  CuckooTable table(16, 1, 11);
  // Fill until something lands in the stash.
  std::uint64_t key = 0;
  while (table.stash_size() == 0 && key < 1000) {
    table.insert(key++);
  }
  ASSERT_EQ(table.stash_size(), 1u);
  // Find the stashed key by elimination: it is in the table but not at
  // either hash position.
  std::uint64_t stashed = 0;
  bool found = false;
  for (std::uint64_t k = 0; k < key; ++k) {
    if (table.contains(k) && !table.position_of(k).has_value()) {
      stashed = k;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_TRUE(table.erase(stashed));
  EXPECT_EQ(table.stash_size(), 0u);
  EXPECT_FALSE(table.contains(stashed));
}

}  // namespace
}  // namespace rlb::cuckoo
