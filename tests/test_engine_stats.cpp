// Tests for ServingEngine::snapshot() — the lock-free per-shard merge the
// STATS wire channel serves — under the engine's real thread model, plus
// the end-to-end STATS round-trip over a live NetServer.
//
// The concurrency tests run scrapers against worker threads that are
// mutating the shard atomics at full speed; they are meant to execute
// under the TSan CI job as-is.  Correctness here means: cumulative
// counters never move backwards between successive scrapes, and after a
// drain the totals obey exact conservation against what the submitters
// pushed in.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/stats.hpp"

namespace rlb {
namespace {

engine::EngineConfig small_config(std::size_t shards) {
  engine::EngineConfig config;
  config.policy = "greedy";
  config.servers = 32;
  config.replication = 2;
  config.processing_rate = 4;
  config.shards = shards;
  config.seed = 17;
  return config;
}

TEST(EngineStatsSnapshot, ConcurrentScrapeSeesMonotoneCounters) {
  std::atomic<std::uint64_t> responses{0};
  engine::ServingEngine engine(
      small_config(/*shards=*/4),
      [&responses](const engine::EngineResponse&) {
        responses.fetch_add(1, std::memory_order_relaxed);
      });
  engine.start();

  constexpr std::size_t kSubmitters = 3;
  constexpr std::uint64_t kPerSubmitter = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&engine, s] {
      for (std::uint64_t i = 0; i < kPerSubmitter; ++i) {
        const std::uint64_t id = (static_cast<std::uint64_t>(s) << 40) + i;
        engine.submit(/*conn_token=*/s, id, /*key=*/id * 2654435761u);
      }
    });
  }

  // Scrape continuously while the submitters and workers run.  Each
  // cumulative counter must be non-decreasing between successive
  // snapshots of the same shard.
  std::thread scraper([&engine, &done] {
    std::vector<net::ShardStats> last(engine.shard_count());
    std::uint64_t last_latency_count = 0;
    std::uint64_t scrapes = 0;
    while (!done.load(std::memory_order_acquire)) {
      const net::StatsSnapshot snapshot = engine.snapshot();
      ASSERT_EQ(snapshot.shards.size(), last.size());
      for (const net::ShardStats& shard : snapshot.shards) {
        const net::ShardStats& prev = last[shard.shard];
        EXPECT_GE(shard.submitted, prev.submitted);
        EXPECT_GE(shard.completed, prev.completed);
        EXPECT_GE(shard.rejected_queue_full, prev.rejected_queue_full);
        EXPECT_GE(shard.rejected_all_down, prev.rejected_all_down);
        EXPECT_GE(shard.rejected_admission, prev.rejected_admission);
        EXPECT_GE(shard.rejected_drop, prev.rejected_drop);
        EXPECT_GE(shard.ticks, prev.ticks);
        EXPECT_GE(shard.batches, prev.batches);
        EXPECT_GE(shard.batched_chunks, prev.batched_chunks);
        EXPECT_GE(shard.step_ns, prev.step_ns);
        EXPECT_GE(shard.max_batch, prev.max_batch);
        last[shard.shard] = shard;
      }
      EXPECT_GE(snapshot.latency.count, last_latency_count);
      last_latency_count = snapshot.latency.count;
      ++scrapes;
    }
    EXPECT_GT(scrapes, 0u);
  });

  for (auto& thread : submitters) thread.join();
  engine.stop();  // drain: everything submitted gets an answer
  done.store(true, std::memory_order_release);
  scraper.join();

  // Exact conservation after the drain, against the submitters' totals:
  // every submit is answered exactly once, and the snapshot's cause-split
  // accounts for every submitted request.
  const net::StatsSnapshot final_snapshot = engine.snapshot();
  const net::ShardStats totals = final_snapshot.totals();
  const std::uint64_t expected = kSubmitters * kPerSubmitter;
  EXPECT_EQ(totals.submitted, expected);
  EXPECT_EQ(responses.load(), expected);
  EXPECT_EQ(totals.completed + totals.rejected_total() + totals.errors,
            expected);
  // And the snapshot agrees with the coarse EngineStats view.
  const engine::EngineStats stats = engine.stats();
  EXPECT_EQ(totals.submitted, stats.submitted);
  EXPECT_EQ(totals.completed, stats.completed);
  // Latency was recorded for every answered request.
  EXPECT_EQ(final_snapshot.latency.count, expected);
}

TEST(EngineStatsSnapshot, ReportsConfigAndSafeSetShape) {
  engine::EngineConfig config = small_config(/*shards=*/2);
  config.queue_capacity = 6;
  engine::ServingEngine engine(config, [](const engine::EngineResponse&) {});
  engine.start();
  for (std::uint64_t i = 0; i < 5000; ++i) {
    engine.submit(0, i, i * 40503u);
  }
  engine.stop();

  const net::StatsSnapshot snapshot = engine.snapshot();
  EXPECT_EQ(snapshot.version, net::kStatsVersion);
  EXPECT_EQ(snapshot.policy, "greedy");
  EXPECT_EQ(snapshot.servers, 32u);
  EXPECT_EQ(snapshot.replication, 2u);
  EXPECT_EQ(snapshot.processing_rate, 4u);
  EXPECT_EQ(snapshot.queue_capacity, 6u);
  EXPECT_EQ(snapshot.shard_count, 2u);
  ASSERT_EQ(snapshot.shards.size(), 2u);
  // After a drain the balancers are empty: the safe-set monitor must
  // report a clean state.
  EXPECT_DOUBLE_EQ(snapshot.safe_worst_ratio, 0.0);
  EXPECT_EQ(snapshot.safe_violated_level, 0u);
  const net::ShardStats totals = snapshot.totals();
  EXPECT_EQ(totals.backlog, 0u);
  EXPECT_EQ(totals.inflight, 0u);
}

TEST(EngineStatsSnapshot, StatsOverLiveNetServer) {
  // Full wire round-trip: NetServer answers STATS frames from its event
  // loop with engine.snapshot(), a net::Client decodes the STATS_RESP —
  // exactly what rlbd + rlb_stat do.
  engine::ServingEngine* engine_raw = nullptr;
  net::ServerConfig net_config;  // ephemeral loopback port
  net::NetServer server(
      net_config, [&engine_raw, &server](std::uint64_t token,
                                         const net::RequestMsg& request) {
        if (!engine_raw->submit(token, request.request_id, request.key)) {
          net::ResponseMsg msg;
          msg.request_id = request.request_id;
          msg.status = net::Status::kError;
          server.send_response(token, msg);
        }
      });
  engine::ServingEngine engine(
      small_config(/*shards=*/2), [&server](const engine::EngineResponse& r) {
        net::ResponseMsg msg;
        msg.request_id = r.request_id;
        msg.status = static_cast<net::Status>(r.status);
        msg.server = static_cast<std::uint32_t>(r.server);
        msg.wait_steps = r.wait_steps;
        server.send_response(r.conn_token, msg);
      });
  engine_raw = &engine;
  server.set_stats_handler(
      [&engine, &server](std::uint64_t token, const net::StatsRequestMsg&) {
        server.send_stats(token, engine.snapshot());
      });
  engine.start();
  server.start();

  // Some request traffic on one connection...
  net::Client traffic;
  traffic.connect("127.0.0.1", server.port());
  constexpr std::uint64_t kRequests = 2000;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    traffic.send_request(i + 1, i * 7919u);
  }
  traffic.flush();
  net::ResponseMsg response;
  std::uint64_t answered = 0;
  while (answered < kRequests && traffic.read_response(response)) ++answered;
  EXPECT_EQ(answered, kRequests);

  // ...and STATS polls on a dedicated admin connection.
  net::Client admin;
  admin.connect("127.0.0.1", server.port());
  net::StatsSnapshot first;
  admin.send_stats_request();
  admin.flush();
  ASSERT_TRUE(admin.read_stats_response(first));
  EXPECT_EQ(first.version, net::kStatsVersion);
  EXPECT_EQ(first.policy, "greedy");
  EXPECT_EQ(first.totals().submitted, kRequests);

  // Repeat polls on the same connection keep working and stay monotone.
  net::StatsSnapshot second;
  admin.send_stats_request();
  admin.flush();
  ASSERT_TRUE(admin.read_stats_response(second));
  EXPECT_GE(second.totals().ticks, first.totals().ticks);
  EXPECT_GE(second.uptime_ms, first.uptime_ms);

  admin.close();
  traffic.close();
  engine.stop();
  server.stop();
  EXPECT_EQ(server.stats().stats_requests, 2u);
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(EngineStatsSnapshot, SafeSetMonitorSeesInjectedBacklog) {
  // Overload a tiny cluster so backlog actually accumulates, then check
  // the monitor's level rows are internally consistent: observed counts
  // decrease in j, and ratio == observed / (m / 2^j) at every level.
  engine::EngineConfig config;
  config.policy = "greedy";
  config.servers = 4;
  config.replication = 2;
  config.processing_rate = 1;
  config.queue_capacity = 64;
  config.shards = 1;
  config.tick_interval_us = 2000;  // slow drain clock: backlog builds up
  config.seed = 5;
  engine::ServingEngine engine(config, [](const engine::EngineResponse&) {});
  engine.start();
  for (std::uint64_t i = 0; i < 4000; ++i) {
    engine.submit(0, i, i * 2654435761u);
  }

  net::StatsSnapshot snapshot;
  bool saw_backlog = false;
  for (int attempt = 0; attempt < 200 && !saw_backlog; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    snapshot = engine.snapshot();
    saw_backlog = !snapshot.safe_set.empty();
  }
  engine.stop();
  ASSERT_TRUE(saw_backlog) << "no backlog > 1 ever observed";
  double worst = 0.0;
  std::uint64_t prev_observed = ~0ull;
  for (const net::SafeSetLevelStats& level : snapshot.safe_set) {
    EXPECT_LE(level.observed, prev_observed);  // tails shrink with j
    prev_observed = level.observed;
    EXPECT_DOUBLE_EQ(level.bound,
                     4.0 / static_cast<double>(1ull << level.level));
    EXPECT_DOUBLE_EQ(level.ratio,
                     static_cast<double>(level.observed) / level.bound);
    worst = std::max(worst, level.ratio);
  }
  EXPECT_DOUBLE_EQ(snapshot.safe_worst_ratio, worst);
}

}  // namespace
}  // namespace rlb
