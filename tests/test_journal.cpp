// Health-plane semantics: the control-plane event journal (ring wrap and
// dropped-count accounting, cursor resume across a wrap, concurrent
// writers vs a draining reader), the alerting watchdog's edge-triggering
// (raise once, clear once, no flapping on a steady signal), the windowed
// aggregator's trailing-window fold, and the flight-recorder dump.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.hpp"
#include "obs/journal.hpp"
#include "obs/window.hpp"

namespace rlb::obs {
namespace {

// The journal-semantics suite only exists where the journal does:
// under RLB_OBS_DISABLED append() compiles to a no-op by design, so
// every ring/cursor/accounting property trivially degenerates.
#if !defined(RLB_OBS_DISABLED)

TEST(Journal, AppendsAreSequencedAndTimestamped) {
  Journal journal(16);
  EXPECT_EQ(journal.next_seq(), 1u);
  journal.append(JournalType::kMemberDown, 3, 0);
  journal.append(JournalType::kEpochCommit, 7, 42, "note");
  ASSERT_EQ(journal.size(), 2u);

  std::vector<JournalEvent> events;
  const JournalReadResult r = journal.read_from(0, 100, events);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.remaining, 0u);
  EXPECT_EQ(r.next_cursor, 2u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].type, JournalType::kMemberDown);
  EXPECT_EQ(events[0].a0, 3u);
  EXPECT_GT(events[0].steady_ns, 0u);
  EXPECT_GT(events[0].wall_ns, 0u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].a0, 7u);
  EXPECT_EQ(events[1].a1, 42u);
  EXPECT_EQ(events[1].detail_view(), "note");
}

TEST(Journal, DetailIsTruncatedNotOverflowed) {
  Journal journal(4);
  const std::string longer(100, 'x');
  journal.append(JournalType::kAlertRaised, 0, 0, longer);
  std::vector<JournalEvent> events;
  journal.read_from(0, 10, events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail_view(), std::string(kJournalDetailMax, 'x'));
}

TEST(Journal, RingWrapReportsDroppedExactly) {
  Journal journal(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    journal.append(JournalType::kShed, i, 0);
  }
  // Only the last 8 events (seq 13..20) survive; a fresh reader must be
  // told about the 12 that wrapped out, never silently skipped.
  std::vector<JournalEvent> events;
  const JournalReadResult r = journal.read_from(0, 100, events);
  EXPECT_EQ(r.dropped, 12u);
  EXPECT_EQ(r.next_cursor, 20u);
  EXPECT_EQ(r.remaining, 0u);
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 13 + i);
    EXPECT_EQ(events[i].a0, 12 + i);  // payload rode along with its seq
  }
}

TEST(Journal, CursorResumesAcrossAWrap) {
  Journal journal(8);
  for (std::uint64_t i = 0; i < 6; ++i) {
    journal.append(JournalType::kShed, i, 0);
  }
  std::vector<JournalEvent> events;
  JournalReadResult r = journal.read_from(0, 100, events);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.next_cursor, 6u);

  // 14 more appends wrap the ring well past the cursor: seq 7..12 are
  // gone (6 lost), seq 13..20 retained.
  for (std::uint64_t i = 0; i < 14; ++i) {
    journal.append(JournalType::kShed, 100 + i, 0);
  }
  events.clear();
  r = journal.read_from(r.next_cursor, 100, events);
  EXPECT_EQ(r.dropped, 6u);
  EXPECT_EQ(r.next_cursor, 20u);
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().seq, 13u);
  EXPECT_EQ(events.back().seq, 20u);
}

TEST(Journal, BatchedReadsChainThroughNextCursor) {
  Journal journal(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    journal.append(JournalType::kMigrateDone, i, 0);
  }
  std::vector<JournalEvent> all;
  std::uint64_t cursor = 0;
  for (;;) {
    std::vector<JournalEvent> batch;
    const JournalReadResult r = journal.read_from(cursor, 3, batch);
    EXPECT_EQ(r.dropped, 0u);
    all.insert(all.end(), batch.begin(), batch.end());
    cursor = r.next_cursor;
    if (r.remaining == 0) break;
    EXPECT_EQ(batch.size(), 3u);  // full batches until the tail
  }
  ASSERT_EQ(all.size(), 10u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].seq, i + 1);
  }
}

TEST(Journal, ReadsAreNonDestructive) {
  Journal journal(16);
  journal.append(JournalType::kMemberUp, 1, 0);
  journal.append(JournalType::kMemberDown, 2, 0);
  // Two independent scrapers each see the full history.
  for (int reader = 0; reader < 2; ++reader) {
    std::vector<JournalEvent> events;
    const JournalReadResult r = journal.read_from(0, 100, events);
    EXPECT_EQ(events.size(), 2u);
    EXPECT_EQ(r.next_cursor, 2u);
  }
}

TEST(Journal, TailReturnsTheNewestEvents) {
  Journal journal(8);
  for (std::uint64_t i = 0; i < 12; ++i) {
    journal.append(JournalType::kShed, i, 0);
  }
  std::vector<JournalEvent> events;
  journal.tail(3, events);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 10u);
  EXPECT_EQ(events[2].seq, 12u);
}

TEST(Journal, ConcurrentWritersAndReaderStaySane) {
  // 4 writers x 2000 appends against a reader polling by cursor the whole
  // time.  Run under TSan this doubles as the data-race check for the
  // mutex-guarded ring; the invariant here is accounting: every event is
  // either delivered in seq order or counted as dropped.
  Journal journal(256);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 2000;

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&journal, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        journal.append(JournalType::kSlowConsumer,
                       static_cast<std::uint64_t>(w), i);
      }
    });
  }

  std::uint64_t cursor = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t last_seq = 0;
  const auto drain = [&] {
    for (;;) {
      std::vector<JournalEvent> batch;
      const JournalReadResult r = journal.read_from(cursor, 64, batch);
      dropped += r.dropped;
      for (const JournalEvent& ev : batch) {
        EXPECT_GT(ev.seq, last_seq);  // strictly increasing, no repeats
        last_seq = ev.seq;
      }
      delivered += batch.size();
      cursor = r.next_cursor;
      if (batch.empty() && r.remaining == 0) break;
    }
  };
  for (int spin = 0; spin < 50; ++spin) drain();
  for (std::thread& t : writers) t.join();
  drain();

  EXPECT_EQ(delivered + dropped, kWriters * kPerWriter);
  EXPECT_EQ(last_seq, kWriters * kPerWriter);
}

#endif  // !RLB_OBS_DISABLED

// ---------------------------------------------------------------------------
// HealthWatchdog

HealthSample safe_sample() { return HealthSample{}; }

TEST(HealthWatchdog, RaisesOnceAfterHysteresisAndClearsOnce) {
  Journal journal(64);
  HealthWatchdogConfig config;
  config.raise_after = 3;
  config.clear_after = 2;
  HealthWatchdog dog(config, &journal);

  HealthSample breach = safe_sample();
  breach.safe_worst_ratio = 1.5;

  // Two breaching ticks: below the raise threshold, nothing fires.
  dog.evaluate(breach);
  dog.evaluate(breach);
  EXPECT_TRUE(dog.active().empty());
  EXPECT_EQ(dog.raised_total(), 0u);

  // Third tick raises — and a long steady breach never re-raises.
  for (int i = 0; i < 20; ++i) dog.evaluate(breach);
  ASSERT_EQ(dog.active(), std::vector<std::string>{"safe_set"});
  EXPECT_EQ(dog.raised_total(), 1u);

  // Recovery: one healthy tick is not enough, the second clears — once.
  dog.evaluate(safe_sample());
  EXPECT_EQ(dog.active().size(), 1u);
  for (int i = 0; i < 20; ++i) dog.evaluate(safe_sample());
  EXPECT_TRUE(dog.active().empty());
  EXPECT_EQ(dog.raised_total(), 1u);

#if !defined(RLB_OBS_DISABLED)
  // The journal saw exactly one raise edge and one clear edge.
  std::vector<JournalEvent> events;
  journal.read_from(0, 100, events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, JournalType::kAlertRaised);
  EXPECT_EQ(events[0].detail_view(), "safe_set");
  EXPECT_EQ(events[1].type, JournalType::kAlertCleared);
  EXPECT_EQ(events[1].detail_view(), "safe_set");
#endif
}

TEST(HealthWatchdog, SteadySignalNeverFlaps) {
  Journal journal(64);
  HealthWatchdog dog({}, &journal);
  HealthSample breach = safe_sample();
  breach.down_count = 1;  // backend_down raises on the first tick
  for (int i = 0; i < 100; ++i) dog.evaluate(breach);
  EXPECT_EQ(dog.raised_total(), 1u);
  for (int i = 0; i < 100; ++i) dog.evaluate(safe_sample());
  EXPECT_TRUE(dog.active().empty());
#if !defined(RLB_OBS_DISABLED)
  std::vector<JournalEvent> events;
  journal.read_from(0, 200, events);
  EXPECT_EQ(events.size(), 2u);  // one raise + one clear, 200 ticks
#endif
}

TEST(HealthWatchdog, BackendDownIsFastRaiseFastClear) {
  Journal journal(64);
  HealthWatchdog dog({}, &journal);  // defaults: raise_after=3 for the rest
  HealthSample breach = safe_sample();
  breach.down_count = 2;
  dog.evaluate(breach);  // first tick already raises
  ASSERT_EQ(dog.active(), std::vector<std::string>{"backend_down"});
  dog.evaluate(safe_sample());  // first healthy tick already clears
  EXPECT_TRUE(dog.active().empty());
}

TEST(HealthWatchdog, P99JumpComparesAgainstFrozenBaseline) {
  Journal journal(64);
  HealthWatchdogConfig config;
  config.raise_after = 2;
  config.clear_after = 2;
  config.p99_jump_factor = 8.0;
  config.p99_min_us = 2000;
  HealthWatchdog dog(config, &journal);

  // Establish a ~500us baseline.
  HealthSample calm = safe_sample();
  calm.win_p99_us = 500;
  for (int i = 0; i < 10; ++i) dog.evaluate(calm);
  EXPECT_TRUE(dog.active().empty());

  // An 8x+ jump above both the baseline and the absolute floor raises
  // after the hysteresis; staying degraded does not launder the baseline.
  HealthSample spike = safe_sample();
  spike.win_p99_us = 20000;
  for (int i = 0; i < 10; ++i) dog.evaluate(spike);
  ASSERT_EQ(dog.active(), std::vector<std::string>{"p99_jump"});
  EXPECT_EQ(dog.raised_total(), 1u);

  // Recovery to the old regime clears.
  for (int i = 0; i < 10; ++i) dog.evaluate(calm);
  EXPECT_TRUE(dog.active().empty());
}

TEST(HealthWatchdog, HeartbeatFlapSumsTransitionDeltas) {
  Journal journal(64);
  HealthWatchdogConfig config;
  config.raise_after = 1;
  config.flap_threshold = 3;
  config.flap_window = 10;
  HealthWatchdog dog(config, &journal);

  HealthSample sample = safe_sample();
  dog.evaluate(sample);  // establish the cumulative-counter base
  // Three mark-downs land within the window: flap.
  sample.transitions_down = 1;
  dog.evaluate(sample);
  sample.transitions_down = 2;
  dog.evaluate(sample);
  EXPECT_TRUE(dog.active().empty());
  sample.transitions_down = 3;
  dog.evaluate(sample);
  ASSERT_EQ(dog.active(), std::vector<std::string>{"heartbeat_flap"});
}

TEST(HealthWatchdog, RepairStallNeedsPendingWithoutProgress) {
  Journal journal(64);
  HealthWatchdogConfig config;
  config.raise_after = 1;
  config.repair_stall_after = 3;
  HealthWatchdog dog(config, &journal);

  HealthSample sample = safe_sample();
  sample.repair_pending = 5;
  sample.repair_done = 10;
  dog.evaluate(sample);  // pending, but done just moved: streak resets
  for (int i = 0; i < 2; ++i) dog.evaluate(sample);
  EXPECT_TRUE(dog.active().empty());
  dog.evaluate(sample);  // third no-progress tick
  ASSERT_EQ(dog.active(), std::vector<std::string>{"repair_stall"});

  // Any completed migration clears the stall.
  sample.repair_done = 11;
  dog.evaluate(sample);
  for (int i = 0; i < 5; ++i) {
    sample.repair_done++;
    dog.evaluate(sample);
  }
  EXPECT_TRUE(dog.active().empty());
}

// ---------------------------------------------------------------------------
// WindowedAggregator (driven with explicit clocks: fully deterministic)

TEST(WindowedAggregator, FoldsTheTrailingWindowOnly) {
  WindowedAggregator win(/*windows=*/4, /*window_ns=*/1000);
  win.observe_us(100, 500);    // window 0
  win.observe_us(200, 1500);   // window 1
  win.add(0, 7, 1500);         // counter in window 1

  WindowedAggregator::Snapshot snap = win.read(1750);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum_us, 300u);
  EXPECT_EQ(snap.max_us, 200u);
  EXPECT_EQ(snap.counters[0], 7u);
  EXPECT_EQ(snap.windows, 2u);
  // Window 0 full (1000ns) + window 1 partial (750ns) = 1750ns span; the
  // aggregator reports milliseconds, so this tiny test clock floors to 0 —
  // assert through the ns math instead with a second, bigger clock below.

  // 4 windows later the old slots are dead history.
  snap = win.read(6500);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.windows, 0u);
  EXPECT_EQ(snap.span_ms, 0u);
}

TEST(WindowedAggregator, SpanSubtractsTheUnfilledPartialWindow) {
  WindowedAggregator win(/*windows=*/10, /*window_ns=*/1'000'000'000);
  const std::uint64_t t0 = 5'000'000'000;  // window 5 begins
  win.observe_us(10, t0);
  win.observe_us(20, t0 + 1'500'000'000);  // window 6, half filled
  const WindowedAggregator::Snapshot snap = win.read(t0 + 1'500'000'000);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.windows, 2u);
  // Window 5 fully counted + window 6 at 500ms elapsed.
  EXPECT_EQ(snap.span_ms, 1500u);
}

TEST(WindowedAggregator, SlotRecyclingZeroesOldData) {
  WindowedAggregator win(/*windows=*/2, /*window_ns=*/1000);
  win.observe_us(100, 500);   // window 0 -> slot 0
  win.observe_us(200, 2500);  // window 2 -> recycles slot 0
  const WindowedAggregator::Snapshot snap = win.read(2500);
  // Only the window-2 sample survives; the recycled slot was zeroed.
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum_us, 200u);
}

TEST(WindowedAggregator, BucketsMatchLatencyStatsLayout) {
  WindowedAggregator win(4, 1000);
  win.observe_us(1, 100);   // bucket 0
  win.observe_us(12, 100);  // 2^3 < 12 <= 2^4 -> bucket 3
  const WindowedAggregator::Snapshot snap = win.read(100);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorder, WritesParseableJsonAtomically) {
  Journal& journal = Journal::instance();
  journal.append(JournalType::kMemberDown, 4, 2);
  journal.append(JournalType::kAlertRaised, 0, 1, "backend_down");
  set_active_alerts({"backend_down"});

  const std::string path = "flight_test_out.json";
  ASSERT_TRUE(write_flight_record(path, "backend", 9,
                                  "{\"submitted\":123}"));
  set_active_alerts({});

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  std::remove(path.c_str());

  EXPECT_NE(doc.find("\"flight_record\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"role\":\"backend\""), std::string::npos);
  EXPECT_NE(doc.find("\"backend_id\":9"), std::string::npos);
  EXPECT_NE(doc.find("\"snapshot\":{\"submitted\":123}"), std::string::npos);
  EXPECT_NE(doc.find("\"alerts\":[\"backend_down\"]"), std::string::npos);
#if !defined(RLB_OBS_DISABLED)
  EXPECT_NE(doc.find("\"type\":\"MEMBER_DOWN\""), std::string::npos);
  EXPECT_NE(doc.find("\"type\":\"ALERT_RAISED\""), std::string::npos);
  EXPECT_NE(doc.find("\"detail\":\"backend_down\""), std::string::npos);
#endif
  // No tmp file left behind (atomic tmp + rename).
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.is_open());
}

}  // namespace
}  // namespace rlb::obs
