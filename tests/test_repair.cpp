// Tests for the self-healing repair plane: the TokenBucket byte throttle,
// the backend MigrationAgent streaming chunk state end to end over real
// sockets, the router-hosted RepairCoordinator re-replicating after a
// SIGKILL-shaped backend loss, and epoch-skew cutover (router ahead of
// backends and vice versa — requests are always served, never misdirected).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hpp"
#include "core/placement.hpp"
#include "core/placement_epoch.hpp"
#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "repair/migrate_agent.hpp"
#include "repair/throttle.hpp"
#include "stats/rng.hpp"

namespace rlb {
namespace {

using std::chrono::steady_clock;

double elapsed_ms(steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(steady_clock::now() - since)
      .count();
}

template <typename Pred>
bool wait_until(Pred pred, std::uint64_t deadline_ms = 15000) {
  const auto deadline =
      steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// ---- TokenBucket --------------------------------------------------------

TEST(RepairThrottle, UnthrottledAndZeroByteTakesAreImmediate) {
  repair::TokenBucket unthrottled(0);
  const auto start = steady_clock::now();
  EXPECT_TRUE(unthrottled.take(1 << 30));
  EXPECT_LT(elapsed_ms(start), 100.0);

  repair::TokenBucket throttled(100, 1);
  EXPECT_TRUE(throttled.take(0)) << "zero bytes never waits";
}

TEST(RepairThrottle, StartsWithAFullBurst) {
  repair::TokenBucket bucket(1 << 20, 4096);
  EXPECT_EQ(bucket.available(), 4096u);
  const auto start = steady_clock::now();
  EXPECT_TRUE(bucket.take(4096));
  EXPECT_LT(elapsed_ms(start), 100.0) << "the initial burst is free";
}

TEST(RepairThrottle, PacesToTheConfiguredRate) {
  // 256 KiB/s with a 1 KiB burst: after draining the burst, 16 KiB more
  // costs 16384/262144 s = 62.5 ms of refill.
  repair::TokenBucket bucket(256 * 1024, 1024);
  ASSERT_TRUE(bucket.take(1024));
  const auto start = steady_clock::now();
  EXPECT_TRUE(bucket.take(16 * 1024));
  EXPECT_GE(elapsed_ms(start), 40.0) << "repair bytes must be paced";
}

TEST(RepairThrottle, OversizedRequestStillConverges) {
  // A request 10x the burst cap can never see tokens_ >= bytes at once;
  // the deficit drain must still serve it in about bytes/rate seconds.
  repair::TokenBucket bucket(1 << 20, 1024);
  const auto start = steady_clock::now();
  EXPECT_TRUE(bucket.take(10 * 1024));
  const double ms = elapsed_ms(start);
  EXPECT_GE(ms, 4.0) << "the deficit beyond the burst is paced";
  EXPECT_LT(ms, 2000.0) << "an oversized take must not stall";
}

TEST(RepairThrottle, StopReleasesBlockedTakers) {
  repair::TokenBucket bucket(100, 1);  // ~1 byte per 10 ms: take(1e6) blocks
  std::atomic<int> result{-1};
  std::thread taker(
      [&] { result.store(bucket.take(1'000'000) ? 1 : 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  bucket.stop();
  taker.join();
  EXPECT_EQ(result.load(), 0) << "stop() fails the blocked take";
  EXPECT_FALSE(bucket.take(1)) << "a stopped bucket admits nothing";
  EXPECT_FALSE(bucket.take(0));
}

// ---- deterministic chunk payload ---------------------------------------

TEST(RepairPayload, DeterministicAndChunkDependent) {
  for (std::uint64_t offset = 0; offset < 64; ++offset) {
    EXPECT_EQ(repair::chunk_payload_byte(7, offset),
              repair::chunk_payload_byte(7, offset));
  }
  bool differs = false;
  for (std::uint64_t offset = 0; offset < 64 && !differs; ++offset) {
    differs = repair::chunk_payload_byte(1, offset) !=
              repair::chunk_payload_byte(2, offset);
  }
  EXPECT_TRUE(differs) << "payloads must depend on the chunk id";
}

// ---- MigrationAgent over real sockets ----------------------------------

/// A backend reduced to its repair role: NetServer + MigrationAgent, no
/// engine (REQUEST frames are ignored).
class AgentHost {
 public:
  explicit AgentHost(repair::MigrationAgentConfig config = {}) {
    net::ServerConfig net_config;  // ephemeral port
    server_ = std::make_unique<net::NetServer>(
        net_config, [](std::uint64_t, const net::RequestMsg&) {});
    agent_ = std::make_unique<repair::MigrationAgent>(*server_, config);
    agent_->install();
    server_->start();
    agent_->start();
  }

  ~AgentHost() {
    agent_->stop();
    server_->stop();
  }

  std::uint16_t port() const { return server_->port(); }
  repair::MigrationAgent& agent() { return *agent_; }

 private:
  std::unique_ptr<net::NetServer> server_;
  std::unique_ptr<repair::MigrationAgent> agent_;
};

net::MigrateMsg make_order(std::uint64_t id, std::uint64_t chunk,
                           std::uint64_t bytes, std::uint16_t target_port) {
  net::MigrateMsg msg;
  msg.migration_id = id;
  msg.chunk = chunk;
  msg.epoch = 1;
  msg.target_backend = 1;
  msg.bytes = bytes;
  msg.target_port = target_port;
  msg.target_host = "127.0.0.1";
  return msg;
}

TEST(MigrationAgentWire, StreamsMultiSliceChunkStateEndToEnd) {
  AgentHost source;
  AgentHost target;
  std::atomic<std::uint64_t> in_bytes{0};
  std::atomic<std::uint64_t> out_bytes{0};
  // The callbacks are installed post-start here, which is safe only
  // because no order is in flight yet.
  target.agent().set_on_migration_in(
      [&](std::uint64_t bytes) { in_bytes.fetch_add(bytes); });
  source.agent().set_on_migration_out(
      [&](std::uint64_t bytes) { out_bytes.fetch_add(bytes); });

  // 100000 bytes = three full 32 KiB slices + a 1696-byte tail.
  constexpr std::uint64_t kBytes = 100000;
  net::Client coordinator;
  coordinator.connect("127.0.0.1", source.port());
  coordinator.set_recv_timeout_ms(5000);
  coordinator.send_migrate(make_order(9, 42, kBytes, target.port()));
  coordinator.flush();

  net::MigrateAckMsg ack;
  ASSERT_EQ(coordinator.try_read_migrate_ack(ack), net::ReadOutcome::kFrame);
  EXPECT_EQ(ack.migration_id, 9u);
  EXPECT_EQ(ack.status, 0u) << "the target verified every byte";
  EXPECT_EQ(ack.bytes, kBytes);
  coordinator.close();

  EXPECT_EQ(source.agent().migrations_out(), 1u);
  EXPECT_EQ(source.agent().bytes_out(), kBytes);
  EXPECT_EQ(out_bytes.load(), kBytes);
  ASSERT_TRUE(wait_until([&] { return target.agent().migrations_in() == 1; },
                         2000));
  EXPECT_EQ(target.agent().bytes_in(), kBytes);
  EXPECT_EQ(in_bytes.load(), kBytes);
}

TEST(MigrationAgentWire, ZeroByteMigrationStillAcks) {
  AgentHost source;
  AgentHost target;
  net::Client coordinator;
  coordinator.connect("127.0.0.1", source.port());
  coordinator.set_recv_timeout_ms(5000);
  coordinator.send_migrate(make_order(3, 7, 0, target.port()));
  coordinator.flush();

  net::MigrateAckMsg ack;
  ASSERT_EQ(coordinator.try_read_migrate_ack(ack), net::ReadOutcome::kFrame);
  EXPECT_EQ(ack.migration_id, 3u);
  EXPECT_EQ(ack.status, 0u);
  EXPECT_EQ(ack.bytes, 0u);
  coordinator.close();
  EXPECT_EQ(source.agent().migrations_out(), 1u);
  ASSERT_TRUE(wait_until([&] { return target.agent().migrations_in() == 1; },
                         2000));
}

TEST(MigrationAgentWire, UnreachableTargetAcksFailureToCoordinator) {
  AgentHost source({/*ack_timeout_ms=*/500});
  // Grab a port with nothing behind it: bind ephemeral, then tear down.
  std::uint16_t dead_port = 0;
  {
    AgentHost ephemeral;
    dead_port = ephemeral.port();
  }

  net::Client coordinator;
  coordinator.connect("127.0.0.1", source.port());
  coordinator.set_recv_timeout_ms(5000);
  coordinator.send_migrate(make_order(5, 11, 4096, dead_port));
  coordinator.flush();

  net::MigrateAckMsg ack;
  ASSERT_EQ(coordinator.try_read_migrate_ack(ack), net::ReadOutcome::kFrame);
  EXPECT_EQ(ack.migration_id, 5u);
  EXPECT_NE(ack.status, 0u) << "a failed stream must not ack success";
  coordinator.close();
  EXPECT_EQ(source.agent().migrations_out(), 0u);
}

// ---- RepairCoordinator + Router end to end ------------------------------

/// One rlbd-shaped backend with the full repair plane installed: engine +
/// NetServer + MigrationAgent, epoch piggyback honoured like apps/rlbd.cpp.
class RepairBackend {
 public:
  explicit RepairBackend(std::uint16_t port, std::uint32_t backend_id) {
    engine::EngineConfig config;
    config.servers = 16;
    config.shards = 2;
    config.processing_rate = 4;
    config.seed = 100 + backend_id;
    config.backend_id = backend_id;
    net::ServerConfig net_config;
    net_config.port = port;
    server_ = std::make_unique<net::NetServer>(
        net_config,
        [this](std::uint64_t token, const net::RequestMsg& request) {
          if (!engine_->submit(token, request.request_id, request.key,
                               request.trace)) {
            net::ResponseMsg msg;
            msg.request_id = request.request_id;
            msg.status = net::Status::kError;
            server_->send_response(token, msg);
          }
        });
    engine_ = std::make_unique<engine::ServingEngine>(
        config, [this](const engine::EngineResponse& r) {
          net::ResponseMsg msg;
          msg.request_id = r.request_id;
          msg.status = static_cast<net::Status>(r.status);
          msg.server = static_cast<std::uint32_t>(r.server);
          msg.wait_steps = r.wait_steps;
          server_->send_response(r.conn_token, msg);
        });
    server_->set_stats_handler(
        [this](std::uint64_t token, const net::StatsRequestMsg& msg) {
          if (msg.epoch != 0) engine_->set_placement_epoch(msg.epoch);
          server_->send_stats(token, engine_->snapshot());
        });
    agent_ = std::make_unique<repair::MigrationAgent>(*server_);
    agent_->set_on_migration_in(
        [this](std::uint64_t bytes) { engine_->note_migration_in(bytes); });
    agent_->set_on_migration_out(
        [this](std::uint64_t bytes) { engine_->note_migration_out(bytes); });
    agent_->install();
    engine_->start();
    server_->start();
    agent_->start();
  }

  ~RepairBackend() { stop(); }

  void stop() {
    if (stopped_) return;
    stopped_ = true;
    agent_->stop();
    engine_->stop();
    server_->stop();
  }

  /// SIGKILL-shaped loss: sockets first (see test_router_loopback.cpp).
  void kill() {
    if (stopped_) return;
    stopped_ = true;
    server_->stop(/*flush_timeout_ms=*/0);
    agent_->stop();
    engine_->stop();
  }

  std::uint16_t port() const { return server_->port(); }
  engine::EngineStats stats() const { return engine_->stats(); }
  net::StatsSnapshot snapshot() const { return engine_->snapshot(); }
  repair::MigrationAgent& agent() { return *agent_; }

 private:
  std::unique_ptr<net::NetServer> server_;
  std::unique_ptr<engine::ServingEngine> engine_;
  std::unique_ptr<repair::MigrationAgent> agent_;
  bool stopped_ = false;
};

std::unique_ptr<RepairBackend> start_repair_backend(std::uint16_t port,
                                                    std::uint32_t backend_id) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    try {
      return std::make_unique<RepairBackend>(port, backend_id);
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return std::make_unique<RepairBackend>(port, backend_id);
}

cluster::RouterConfig repair_config(
    const std::vector<std::unique_ptr<RepairBackend>>& backends) {
  cluster::RouterConfig config;
  for (const auto& backend : backends) {
    config.backends.push_back({"127.0.0.1", backend->port()});
  }
  config.replication = 2;
  config.chunks = 256;
  config.heartbeat_interval_ms = 10;
  config.heartbeat_timeout_ms = 50;
  config.request_timeout_ms = 500;
  config.repair.enabled = true;
  config.repair.max_concurrent = 4;
  config.repair.bytes_per_sec = 0;  // loopback tests: unthrottled
  config.repair.bytes_per_chunk = 512;
  config.repair.down_grace_ms = 50;
  config.repair.scan_interval_ms = 20;
  return config;
}

bool wait_live(const cluster::Router& router, std::size_t want,
               std::uint64_t deadline_ms = 5000) {
  return wait_until(
      [&] { return router.membership().live_count() == want; }, deadline_ms);
}

struct ClientTally {
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t protocol_errors = 0;
  std::set<std::uint64_t> answered_ids;
};

void run_client(std::uint16_t port, std::uint64_t quota,
                std::size_t concurrency, std::uint64_t id_base,
                std::uint64_t seed, ClientTally& tally) {
  net::Client client;
  client.connect("127.0.0.1", port);
  stats::Rng rng(seed);
  std::uint64_t next_id = id_base;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  auto send_one = [&] {
    client.send_request(next_id++, rng.next());
    ++sent;
  };
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(concurrency, quota);
       ++i) {
    send_one();
  }
  client.flush();
  net::ResponseMsg response;
  while (completed < quota && client.read_response(response)) {
    if (response.request_id < id_base || response.request_id >= next_id ||
        !tally.answered_ids.insert(response.request_id).second) {
      ++tally.protocol_errors;
      break;
    }
    ++completed;
    if (response.status == net::Status::kOk) {
      ++tally.ok;
    } else if (net::is_reject(response.status)) {
      ++tally.rejected;
    } else {
      ++tally.errors;
    }
    if (sent < quota) {
      send_one();
      client.flush();
    }
  }
  client.close();
}

/// Chunks whose base choice set contains `backend` (the repair workload
/// after that backend dies).
std::uint64_t chunks_on(const core::Placement& base, std::uint64_t chunks,
                        std::uint32_t backend) {
  std::uint64_t count = 0;
  for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
    if (base.choices(chunk).contains(backend)) ++count;
  }
  return count;
}

TEST(RepairCluster, ReReplicatesAfterBackendLossWithoutPausingServing) {
  std::vector<std::unique_ptr<RepairBackend>> backends;
  for (std::uint32_t i = 0; i < 4; ++i) {
    backends.push_back(std::make_unique<RepairBackend>(/*port=*/0, i));
  }
  const cluster::RouterConfig config = repair_config(backends);
  const core::Placement base(config.backends.size(), config.replication,
                             config.seed);
  constexpr std::uint32_t kDead = 1;
  const std::uint64_t expected = chunks_on(base, config.chunks, kDead);
  ASSERT_GT(expected, 0u);

  cluster::Router router(config);
  router.start();
  ASSERT_TRUE(wait_live(router, 4));
  EXPECT_EQ(router.placement_epoch(), 0u);

  backends[kDead]->kill();

  // Serving continues through detection + repair: every request answered,
  // no errors (hop-level rejects are legal for in-flight losses).
  ClientTally during;
  run_client(router.port(), 3000, 32, /*id_base=*/1, /*seed=*/21, during);
  EXPECT_EQ(during.protocol_errors, 0u);
  EXPECT_EQ(during.errors, 0u);
  EXPECT_EQ(during.answered_ids.size(), 3000u);

  // Repair must fully re-replicate: one migration per lost-replica chunk.
  ASSERT_TRUE(wait_until([&] {
    const net::RepairStats r = router.repair_stats();
    return r.migrations_done >= expected && r.chunks_pending == 0;
  })) << "repair stalled: done="
      << router.repair_stats().migrations_done << "/" << expected
      << " pending=" << router.repair_stats().chunks_pending;

  const net::RepairStats repair = router.repair_stats();
  EXPECT_EQ(repair.migrations_done, expected);
  EXPECT_EQ(repair.migrations_failed, 0u);
  EXPECT_EQ(repair.bytes_sent, expected * config.repair.bytes_per_chunk);
  EXPECT_GE(router.placement_epoch(), 1u);

  // Replaying the committed history over the base placement must leave no
  // chunk on the dead backend, with every move landing on a live one.
  std::vector<std::set<core::ServerId>> sets(config.chunks);
  for (std::uint64_t chunk = 0; chunk < config.chunks; ++chunk) {
    const core::ChoiceList cl = base.choices(chunk);
    sets[chunk] = {cl.begin(), cl.end()};
  }
  const std::vector<core::PlacementDelta> history = router.placement_history();
  EXPECT_EQ(router.placement_epoch(), history.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i].epoch, i + 1) << "epochs advance by exactly one";
    for (const core::ChunkRemap& remap : history[i].remaps) {
      EXPECT_EQ(remap.from, kDead) << "repair only moves off the dead backend";
      EXPECT_NE(remap.to, kDead);
      EXPECT_LT(remap.to, backends.size());
      ASSERT_LT(remap.chunk, config.chunks);
      ASSERT_EQ(sets[remap.chunk].erase(remap.from), 1u);
      ASSERT_TRUE(sets[remap.chunk].insert(remap.to).second);
    }
  }
  for (std::uint64_t chunk = 0; chunk < config.chunks; ++chunk) {
    EXPECT_EQ(sets[chunk].count(kDead), 0u) << "chunk " << chunk;
    EXPECT_EQ(sets[chunk].size(), config.replication);
  }

  // The repair traffic really flowed through the surviving agents.
  std::uint64_t streamed_in = 0;
  for (std::uint32_t i = 0; i < backends.size(); ++i) {
    if (i != kDead) streamed_in += backends[i]->agent().bytes_in();
  }
  EXPECT_EQ(streamed_in, expected * config.repair.bytes_per_chunk);

  // Heartbeat piggyback: surviving backends converge on the new epoch.
  const std::uint64_t epoch = router.placement_epoch();
  ASSERT_TRUE(wait_until(
      [&] { return backends[0]->snapshot().placement_epoch == epoch; }, 2000))
      << "backend never learned the repair epoch";

  // Post-repair, the placement is whole again: traffic is clean.
  ClientTally after;
  run_client(router.port(), 2000, 16, /*id_base=*/1 << 20, /*seed=*/23, after);
  EXPECT_EQ(after.protocol_errors, 0u);
  EXPECT_EQ(after.errors, 0u);
  EXPECT_EQ(after.answered_ids.size(), 2000u);

  router.stop();
}

TEST(RepairCluster, RecoveryWithinGraceCancelsRepair) {
  std::vector<std::unique_ptr<RepairBackend>> backends;
  for (std::uint32_t i = 0; i < 3; ++i) {
    backends.push_back(std::make_unique<RepairBackend>(/*port=*/0, i));
  }
  cluster::RouterConfig config = repair_config(backends);
  config.repair.down_grace_ms = 1500;  // far longer than the flap below
  cluster::Router router(config);
  router.start();
  ASSERT_TRUE(wait_live(router, 3));

  // Flap: kill and immediately restart on the same port.  The backend is
  // back up (probation passed) well inside the grace window, so the
  // planner must never queue a migration and the epoch must not move.
  const std::uint16_t port = backends[2]->port();
  backends[2]->kill();
  ASSERT_TRUE(wait_live(router, 2));
  backends[2] = start_repair_backend(port, 2);
  ASSERT_TRUE(wait_live(router, 3));

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const net::RepairStats repair = router.repair_stats();
  EXPECT_EQ(repair.migrations_done, 0u) << "flap within grace repaired";
  EXPECT_EQ(repair.chunks_pending, 0u);
  EXPECT_EQ(router.placement_epoch(), 0u);
  router.stop();
}

// ---- epoch-skew cutover -------------------------------------------------

/// `count` single-remap deltas over the base placement, epochs 1..count:
/// chunk k's first replica moves to the (unique, for 3 backends at d=2)
/// backend outside its choice set.  Distinct chunks, so base-derived
/// remaps stay valid when applied in sequence.
std::vector<core::PlacementDelta> make_skew_deltas(const core::Placement& base,
                                                   std::size_t backends,
                                                   std::uint64_t count) {
  std::vector<core::PlacementDelta> deltas;
  for (std::uint64_t chunk = 0; chunk < count; ++chunk) {
    const core::ChoiceList cl = base.choices(chunk);
    core::ChunkRemap remap;
    remap.chunk = chunk;
    remap.from = cl[0];
    for (core::ServerId s = 0; s < backends; ++s) {
      if (!cl.contains(s)) {
        remap.to = s;
        break;
      }
    }
    core::PlacementDelta delta;
    delta.epoch = chunk + 1;
    delta.remaps.push_back(remap);
    deltas.push_back(delta);
  }
  return deltas;
}

TEST(RepairCluster, RouterAheadOfBackendsServesAndConverges) {
  // Router starts at epoch 8 (initial deltas); backends start at 0.  The
  // skew must be invisible to clients — backends serve any key, the
  // router's epoch only shapes candidate sets — and heartbeats must pull
  // the backends forward to the router's epoch.
  std::vector<std::unique_ptr<RepairBackend>> backends;
  for (std::uint32_t i = 0; i < 3; ++i) {
    backends.push_back(std::make_unique<RepairBackend>(/*port=*/0, i));
  }
  cluster::RouterConfig config = repair_config(backends);
  const core::Placement base(config.backends.size(), config.replication,
                             config.seed);
  config.initial_deltas = make_skew_deltas(base, backends.size(), 8);
  cluster::Router router(config);
  EXPECT_EQ(router.placement_epoch(), 8u);
  EXPECT_EQ(router.placement_history().size(), 8u);
  router.start();
  ASSERT_TRUE(wait_live(router, 3));

  constexpr std::uint64_t kQuota = 2000;
  ClientTally tally;
  run_client(router.port(), kQuota, 32, /*id_base=*/1, /*seed=*/31, tally);
  EXPECT_EQ(tally.protocol_errors, 0u);
  EXPECT_EQ(tally.errors, 0u);
  EXPECT_EQ(tally.answered_ids.size(), kQuota);
  EXPECT_EQ(tally.ok + tally.rejected, kQuota);
  EXPECT_EQ(router.stats().rejected_upstream_down, 0u)
      << "skew must never make a live backend unroutable";

  // Conservation across the skew: backends saw exactly the forwarded hops.
  const cluster::RouterStats stats = router.stats();
  std::uint64_t backend_submitted = 0;
  for (auto& backend : backends) {
    backend_submitted += backend->stats().submitted;
  }
  EXPECT_EQ(backend_submitted, stats.forwarded);

  ASSERT_TRUE(wait_until(
      [&] {
        for (auto& backend : backends) {
          if (backend->snapshot().placement_epoch != 8) return false;
        }
        return true;
      },
      2000))
      << "heartbeats must carry the router's epoch to every backend";
  router.stop();
}

TEST(RepairCluster, BackendAheadOfRouterServesAndNeverRegresses) {
  // Backends believe epoch 100; the router is at 0 (its heartbeats carry
  // no epoch).  Requests still route — the backend's epoch is advisory —
  // and the backends' epoch must never roll back to the router's.
  std::vector<std::unique_ptr<RepairBackend>> backends;
  for (std::uint32_t i = 0; i < 3; ++i) {
    backends.push_back(std::make_unique<RepairBackend>(/*port=*/0, i));
  }
  cluster::RouterConfig config = repair_config(backends);
  config.repair.enabled = false;
  cluster::Router router(config);
  router.start();
  ASSERT_TRUE(wait_live(router, 3));
  for (auto& backend : backends) {
    // Simulate a backend that outlived a previous router incarnation.
    net::Client c;
    c.connect("127.0.0.1", backend->port());
    c.set_recv_timeout_ms(1000);
    c.send_stats_request(0, /*epoch=*/100);
    c.flush();
    net::StatsSnapshot snap;
    ASSERT_TRUE(c.read_stats_response(snap));
    c.close();
  }

  ClientTally tally;
  run_client(router.port(), 2000, 32, /*id_base=*/1, /*seed=*/37, tally);
  EXPECT_EQ(tally.protocol_errors, 0u);
  EXPECT_EQ(tally.errors, 0u);
  EXPECT_EQ(tally.answered_ids.size(), 2000u);

  // Many epoch-0 heartbeats have passed by now; the backends must still
  // report 100 (set_placement_epoch is monotonic, 0 is never sent).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (auto& backend : backends) {
    EXPECT_EQ(backend->snapshot().placement_epoch, 100u);
  }
  EXPECT_EQ(router.placement_epoch(), 0u);
  router.stop();
}

TEST(RepairCluster, InapplicableInitialDeltaThrows) {
  std::vector<std::unique_ptr<RepairBackend>> backends;
  backends.push_back(std::make_unique<RepairBackend>(/*port=*/0, 0));
  backends.push_back(std::make_unique<RepairBackend>(/*port=*/0, 1));
  backends.push_back(std::make_unique<RepairBackend>(/*port=*/0, 2));
  cluster::RouterConfig config = repair_config(backends);
  core::PlacementDelta delta;
  delta.epoch = 2;  // must start at 1
  config.initial_deltas.push_back(delta);
  EXPECT_THROW(cluster::Router{config}, std::invalid_argument);
}

}  // namespace
}  // namespace rlb
