// Unit tests for d-ary bucketed cuckoo hashing (cuckoo/dary_table.hpp).
#include "cuckoo/dary_table.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace rlb::cuckoo {
namespace {

TEST(DAryCuckoo, RejectsBadArguments) {
  EXPECT_THROW(DAryCuckooTable(0, 1, 2, 2, 1), std::invalid_argument);
  EXPECT_THROW(DAryCuckooTable(8, 0, 2, 2, 1), std::invalid_argument);
  EXPECT_THROW(DAryCuckooTable(8, 1, 1, 2, 1), std::invalid_argument);
}

TEST(DAryCuckoo, InsertContainsErase) {
  DAryCuckooTable table(64, 1, 3, 2, 1);
  EXPECT_FALSE(table.contains(5));
  EXPECT_TRUE(table.insert(5));
  EXPECT_TRUE(table.contains(5));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.erase(5));
  EXPECT_FALSE(table.contains(5));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.erase(5));
}

TEST(DAryCuckoo, DuplicateInsertIdempotent) {
  DAryCuckooTable table(64, 2, 2, 2, 3);
  EXPECT_TRUE(table.insert(9));
  EXPECT_TRUE(table.insert(9));
  EXPECT_EQ(table.size(), 1u);
}

TEST(DAryCuckoo, ThreeChoicesSustainNinetyPercentLoad) {
  // d = 3, b = 1 cuckoo is feasible to ~91% load; fill to 88% and expect
  // no failures at this size.
  constexpr std::size_t kBuckets = 2048;
  DAryCuckooTable table(kBuckets, 1, 3, 4, 7);
  const auto target = static_cast<std::uint64_t>(kBuckets * 0.88);
  for (std::uint64_t key = 0; key < target; ++key) {
    ASSERT_TRUE(table.insert(key)) << "key " << key << " load "
                                   << table.load_factor();
  }
  EXPECT_GT(table.load_factor(), 0.87);
  for (std::uint64_t key = 0; key < target; ++key) {
    ASSERT_TRUE(table.contains(key));
  }
}

TEST(DAryCuckoo, BucketsOfFourSustainHighLoadAtTwoChoices) {
  // d = 2, b = 4 is feasible to ~98%; fill to 90%.
  constexpr std::size_t kBuckets = 512;  // capacity 2048
  DAryCuckooTable table(kBuckets, 4, 2, 4, 9);
  const auto target = static_cast<std::uint64_t>(kBuckets * 4 * 0.90);
  for (std::uint64_t key = 0; key < target; ++key) {
    ASSERT_TRUE(table.insert(key)) << "key " << key;
  }
  EXPECT_GT(table.load_factor(), 0.89);
}

TEST(DAryCuckoo, PlainTwoChoiceFailsWhereThreeSucceeds) {
  // At 70% load, (d = 2, b = 1) is beyond its 50% threshold and must shed
  // keys, while (d = 3, b = 1) sails through — the load-threshold
  // separation that motivates the generalized variants.
  constexpr std::size_t kBuckets = 1024;
  const auto target = static_cast<std::uint64_t>(kBuckets * 0.70);
  DAryCuckooTable two(kBuckets, 1, 2, 4, 11);
  std::size_t failures2 = 0;
  for (std::uint64_t key = 0; key < target; ++key) {
    if (!two.insert(key)) ++failures2;
  }
  DAryCuckooTable three(kBuckets, 1, 3, 4, 11);
  std::size_t failures3 = 0;
  for (std::uint64_t key = 0; key < target; ++key) {
    if (!three.insert(key)) ++failures3;
  }
  EXPECT_GT(failures2, 0u);
  EXPECT_EQ(failures3, 0u);
}

TEST(DAryCuckoo, ResidentKeysAlwaysAtOneOfTheirBuckets) {
  DAryCuckooTable table(128, 2, 3, 4, 13);
  for (std::uint64_t key = 0; key < 150; ++key) table.insert(key);
  // Every contained key must be findable via its hash buckets or stash —
  // contains() already checks exactly that; verify a sample explicitly.
  for (std::uint64_t key = 0; key < 150; ++key) {
    if (!table.contains(key)) continue;
    bool found_in_choices = false;
    for (unsigned c = 0; c < table.choice_count(); ++c) {
      (void)table.bucket_of(key, c);
      found_in_choices = true;  // bucket_of is total; containment verified
    }
    EXPECT_TRUE(found_in_choices);
  }
}

TEST(DAryCuckoo, EraseFromStashWorks) {
  // Overfill a tiny table so the stash is used, then erase until empty.
  DAryCuckooTable table(8, 1, 2, 4, 15);
  std::unordered_set<std::uint64_t> inserted;
  for (std::uint64_t key = 0; key < 12; ++key) {
    if (table.insert(key)) inserted.insert(key);
  }
  EXPECT_GT(table.stash_size(), 0u);
  std::size_t erased = 0;
  for (std::uint64_t key = 0; key < 12; ++key) {
    if (table.contains(key)) {
      EXPECT_TRUE(table.erase(key));
      ++erased;
    }
  }
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stash_size(), 0u);
  EXPECT_GE(erased, inserted.size() > 0 ? 1u : 0u);
}

}  // namespace
}  // namespace rlb::cuckoo
