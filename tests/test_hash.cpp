// Unit tests for seeded hashing (hashing/hash.hpp, hashing/tabulation.hpp).
#include "hashing/hash.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "hashing/tabulation.hpp"

namespace rlb::hashing {
namespace {

TEST(Mix64, IsDeterministic) { EXPECT_EQ(mix64(12345), mix64(12345)); }

TEST(Mix64, IsBijectiveOnSample) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 10000; ++x) outputs.insert(mix64(x));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flipped = 0;
  constexpr int kTrials = 64;
  for (int b = 0; b < kTrials; ++b) {
    const std::uint64_t base = mix64(0x123456789abcdefULL);
    const std::uint64_t flipped = mix64(0x123456789abcdefULL ^ (1ULL << b));
    total_flipped += std::popcount(base ^ flipped);
  }
  const double average = static_cast<double>(total_flipped) / kTrials;
  EXPECT_NEAR(average, 32.0, 6.0);
}

TEST(Hash64, SeedChangesOutput) {
  EXPECT_NE(hash64(42, 1), hash64(42, 2));
}

TEST(Hash64, KeyChangesOutput) {
  EXPECT_NE(hash64(42, 1), hash64(43, 1));
}

TEST(HashToBucket, StaysInRange) {
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_LT(hash_to_bucket(key, 7, 13), 13u);
  }
}

TEST(HashToBucket, IsRoughlyUniform) {
  constexpr std::uint64_t kBuckets = 16;
  constexpr int kKeys = 64000;
  std::vector<int> counts(kBuckets, 0);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    ++counts[hash_to_bucket(key, 99, kBuckets)];
  }
  const double expected = static_cast<double>(kKeys) / kBuckets;
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected));
  }
}

TEST(HashToBucket, SingleBucketAlwaysZero) {
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(hash_to_bucket(key, 3, 1), 0u);
  }
}

TEST(Tabulation, Deterministic) {
  TabulationHash h(5);
  EXPECT_EQ(h(777), h(777));
}

TEST(Tabulation, SeedsDiffer) {
  TabulationHash a(1), b(2);
  int agreements = 0;
  for (std::uint64_t key = 0; key < 100; ++key) {
    if (a(key) == b(key)) ++agreements;
  }
  EXPECT_EQ(agreements, 0);
}

TEST(Tabulation, BucketInRange) {
  TabulationHash h(3);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_LT(h.bucket(key, 7), 7u);
  }
}

TEST(Tabulation, RoughlyUniformOverBuckets) {
  TabulationHash h(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kKeys = 40000;
  std::vector<int> counts(kBuckets, 0);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    ++counts[h.bucket(key, kBuckets)];
  }
  const double expected = static_cast<double>(kKeys) / kBuckets;
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected));
  }
}

TEST(Tabulation, XorStructureOverBytes) {
  // Tabulation hashing is linear over byte tables:
  // h(k) = XOR of per-byte entries, so keys differing in one byte differ by
  // the XOR of two table entries — verify h(a) ^ h(b) depends only on the
  // differing byte values, not the rest of the key.
  TabulationHash h(13);
  const std::uint64_t k1 = 0x1111111111111100ULL;
  const std::uint64_t k2 = 0x11111111111111ffULL;
  const std::uint64_t k3 = 0x2222222222222200ULL;
  const std::uint64_t k4 = 0x22222222222222ffULL;
  EXPECT_EQ(h(k1) ^ h(k2), h(k3) ^ h(k4));
}

}  // namespace
}  // namespace rlb::hashing
