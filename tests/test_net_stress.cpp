// Loop-thread stress test for the NetServer data plane: small SO_SNDBUF
// (partial writes + writev continuation), byte-fragmented request streams
// (decoder reassembly under realistic arrival), responders on several
// threads (cross-thread staging + wake coalescing), and clients that
// disconnect mid-stream (EPIPE on the write path).  The invariant is
// exact conservation: every request from a well-behaved client is
// answered exactly once, with zero protocol errors.  Runs under TSan in
// CI like the rest of the suite.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"

namespace rlb::net {
namespace {

/// Responder pool: the loop thread enqueues, N workers answer.  This
/// drives send_response() from threads other than the loop concurrently,
/// which is exactly the staging/wake path the router exercises.
class ResponderPool {
 public:
  ResponderPool(NetServer& server, std::size_t threads) : server_(server) {
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { run(); });
    }
  }

  ~ResponderPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void enqueue(std::uint64_t token, std::uint64_t request_id) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back({token, request_id});
    }
    cv_.notify_one();
  }

 private:
  void run() {
    for (;;) {
      std::pair<std::uint64_t, std::uint64_t> item;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;
        item = queue_.front();
        queue_.pop_front();
      }
      ResponseMsg msg;
      msg.request_id = item.second;
      msg.status = Status::kOk;
      server_.send_response(item.first, msg);
    }
  }

  NetServer& server_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Well-behaved client: writes its pipelined request burst in tiny
/// fragments (so server-side reads land mid-frame), then drains all
/// responses and checks ids.
void good_client(std::uint16_t port, std::uint64_t id_base,
                 std::uint64_t quota, std::atomic<std::uint64_t>& answered,
                 std::atomic<bool>& failed) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    failed = true;
    ::close(fd);
    return;
  }
  std::vector<std::uint8_t> wire;
  for (std::uint64_t i = 0; i < quota; ++i) {
    encode_request(RequestMsg{id_base + i, i * 7}, wire);
  }
  // Writer thread feeds 3-byte fragments while this thread reads, so the
  // stream stays fragmented even once responses start flowing back.
  std::thread writer([&] {
    std::size_t offset = 0;
    while (offset < wire.size()) {
      const std::size_t n = std::min<std::size_t>(3, wire.size() - offset);
      const ssize_t sent = ::send(fd, wire.data() + offset, n, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        failed = true;
        return;
      }
      offset += static_cast<std::size_t>(sent);
    }
  });
  FrameDecoder decoder;
  std::vector<std::uint8_t> payload;
  std::set<std::uint64_t> seen;
  std::uint8_t buffer[4096];
  while (seen.size() < quota) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      failed = true;
      break;
    }
    if (!decoder.feed(buffer, static_cast<std::size_t>(n))) {
      failed = true;
      break;
    }
    while (decoder.next(payload)) {
      RequestMsg request;
      ResponseMsg response;
      if (decode_payload(payload.data(), payload.size(), request, response) !=
              Decoded::kResponse ||
          response.request_id < id_base ||
          response.request_id >= id_base + quota ||
          !seen.insert(response.request_id).second) {
        failed = true;
        break;
      }
    }
  }
  writer.join();
  answered += seen.size();
  ::close(fd);
}

/// Abortive client: fires a burst of requests and slams the connection
/// shut without reading, so the server hits EPIPE/RST mid-write.
void aborting_client(std::uint16_t port, std::uint64_t id_base,
                     std::uint64_t quota) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return;
  }
  std::vector<std::uint8_t> wire;
  for (std::uint64_t i = 0; i < quota; ++i) {
    encode_request(RequestMsg{id_base + i, i}, wire);
  }
  ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
  // RST instead of FIN: pending server writes fail abruptly.
  struct linger lg {1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
}

TEST(NetStress, ConservationUnderPartialWritesAndDisconnects) {
  ServerConfig config;
  config.sndbuf = 4096;  // force partial writes / writev continuation
  NetServer server(config, /*on_request=*/nullptr);
  ResponderPool pool(server, 4);
  server.set_request_batch_handler(
      [&pool](const ServerRequest* batch, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
          pool.enqueue(batch[i].conn_token, batch[i].msg.request_id);
        }
      });
  server.start();

  constexpr std::uint64_t kQuota = 2000;
  constexpr std::size_t kGoodClients = 4;
  constexpr std::size_t kAbortClients = 3;
  std::atomic<std::uint64_t> answered{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kGoodClients; ++c) {
    clients.emplace_back([&, c] {
      good_client(server.port(), 1'000'000 * (c + 1), kQuota, answered,
                  failed);
    });
  }
  for (std::size_t c = 0; c < kAbortClients; ++c) {
    clients.emplace_back([&, c] {
      aborting_client(server.port(), 100'000'000 * (c + 1), 500);
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_FALSE(failed.load());
  // Exact conservation for the well-behaved clients: every request
  // answered exactly once (the per-client id check above catches
  // duplicates and strays).
  EXPECT_EQ(answered.load(), kQuota * kGoodClients);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_GE(stats.requests_decoded, kQuota * kGoodClients);
  server.stop();
}

}  // namespace
}  // namespace rlb::net
