// Unit tests for the bounded FIFO (core/server_queue.hpp).
#include "core/server_queue.hpp"

#include <gtest/gtest.h>

namespace rlb::core {
namespace {

TEST(ServerQueue, RejectsZeroCapacity) {
  EXPECT_THROW(ServerQueue(0), std::invalid_argument);
}

TEST(ServerQueue, StartsEmpty) {
  ServerQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.full());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 4u);
}

TEST(ServerQueue, PushPopFifoOrder) {
  ServerQueue q(8);
  for (Time t = 0; t < 5; ++t) {
    ASSERT_TRUE(q.push(Request{static_cast<ChunkId>(t * 10), t}));
  }
  for (Time t = 0; t < 5; ++t) {
    const Request r = q.pop();
    EXPECT_EQ(r.chunk, static_cast<ChunkId>(t * 10));
    EXPECT_EQ(r.arrival, t);
  }
  EXPECT_TRUE(q.empty());
}

TEST(ServerQueue, PushFailsWhenFull) {
  ServerQueue q(2);
  EXPECT_TRUE(q.push(Request{1, 0}));
  EXPECT_TRUE(q.push(Request{2, 0}));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(Request{3, 0}));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front().chunk, 1u);  // unchanged
}

TEST(ServerQueue, WrapsAroundRingBuffer) {
  ServerQueue q(3);
  // Fill, drain partially, refill repeatedly to force wrap.
  for (int cycle = 0; cycle < 10; ++cycle) {
    ASSERT_TRUE(q.push(Request{static_cast<ChunkId>(cycle), 0}));
    ASSERT_TRUE(q.push(Request{static_cast<ChunkId>(cycle + 100), 0}));
    EXPECT_EQ(q.pop().chunk, static_cast<ChunkId>(cycle));
    EXPECT_EQ(q.pop().chunk, static_cast<ChunkId>(cycle + 100));
  }
  EXPECT_TRUE(q.empty());
}

TEST(ServerQueue, ClearReturnsDroppedCount) {
  ServerQueue q(5);
  q.push(Request{1, 0});
  q.push(Request{2, 0});
  q.push(Request{3, 0});
  EXPECT_EQ(q.clear(), 3u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.clear(), 0u);
}

TEST(ServerQueue, UsableAfterClear) {
  ServerQueue q(2);
  q.push(Request{1, 0});
  q.clear();
  EXPECT_TRUE(q.push(Request{7, 3}));
  EXPECT_EQ(q.front().chunk, 7u);
}

TEST(ServerQueue, CapacityOneBehaves) {
  ServerQueue q(1);
  EXPECT_TRUE(q.push(Request{5, 1}));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(Request{6, 1}));
  EXPECT_EQ(q.pop().chunk, 5u);
  EXPECT_TRUE(q.push(Request{6, 2}));
}

}  // namespace
}  // namespace rlb::core
