// Tests for trace serialization (workloads/trace.hpp save/load).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workloads/fresh_uniform.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/trace.hpp"

namespace rlb::workloads {
namespace {

TEST(TracePersistence, RoundTripsThroughStream) {
  FreshUniformWorkload source(5);
  const Trace original = Trace::record(source, 4);
  std::stringstream buffer;
  original.save(buffer);
  const Trace restored = Trace::load(buffer);
  EXPECT_EQ(restored, original);
  EXPECT_EQ(restored.step_count(), 4u);
  EXPECT_EQ(restored.total_requests(), 20u);
  EXPECT_EQ(restored.max_batch_size(), 5u);
}

TEST(TracePersistence, PreservesEmptySteps) {
  Trace trace;
  trace.append_step({1, 2, 3});
  trace.append_step({});
  trace.append_step({9});
  std::stringstream buffer;
  trace.save(buffer);
  const Trace restored = Trace::load(buffer);
  ASSERT_EQ(restored.step_count(), 3u);
  EXPECT_TRUE(restored.step(1).empty());
  EXPECT_EQ(restored.step(2), (std::vector<core::ChunkId>{9}));
}

TEST(TracePersistence, HandlesLargeChunkIds) {
  Trace trace;
  trace.append_step({0xffffffffffffffffULL, 0});
  std::stringstream buffer;
  trace.save(buffer);
  const Trace restored = Trace::load(buffer);
  EXPECT_EQ(restored.step(0)[0], 0xffffffffffffffffULL);
}

TEST(TracePersistence, FileRoundTrip) {
  RepeatedSetWorkload source(8, 1000, 3);
  const Trace original = Trace::record(source, 3);
  const std::string path = "/tmp/rlb_trace_test.txt";
  original.save_file(path);
  const Trace restored = Trace::load_file(path);
  EXPECT_EQ(restored, original);
  std::remove(path.c_str());
}

TEST(TracePersistence, MissingFileThrows) {
  EXPECT_THROW(Trace::load_file("/nonexistent/dir/trace.txt"),
               std::runtime_error);
  Trace trace;
  trace.append_step({1});
  EXPECT_THROW(trace.save_file("/nonexistent/dir/trace.txt"),
               std::runtime_error);
}

TEST(TracePersistence, LoadedTraceDrivesWorkload) {
  FreshUniformWorkload source(4);
  const Trace original = Trace::record(source, 2);
  std::stringstream buffer;
  original.save(buffer);
  const Trace restored = Trace::load(buffer);
  TraceWorkload replay(restored);
  std::vector<core::ChunkId> batch;
  replay.fill_step(0, batch);
  EXPECT_EQ(batch, original.step(0));
}

TEST(TraceBinary, RoundTripsExactly) {
  RepeatedSetWorkload source(16, 1 << 20, 11);
  const Trace original = Trace::record(source, 25);
  std::stringstream buffer;
  original.save_binary(buffer);
  const Trace restored = Trace::load_binary(buffer);
  EXPECT_EQ(restored, original);
  EXPECT_EQ(restored.step_count(), original.step_count());
  EXPECT_EQ(restored.total_requests(), original.total_requests());
  EXPECT_EQ(restored.max_batch_size(), original.max_batch_size());
}

TEST(TraceBinary, PreservesEmptyStepsAndExtremeIds) {
  Trace trace;
  trace.append_step({0xffffffffffffffffULL, 0, 1});
  trace.append_step({});
  trace.append_step({0x8000000000000000ULL});
  std::stringstream buffer;
  trace.save_binary(buffer);
  const Trace restored = Trace::load_binary(buffer);
  ASSERT_EQ(restored.step_count(), 3u);
  EXPECT_EQ(restored.step(0)[0], 0xffffffffffffffffULL);
  EXPECT_TRUE(restored.step(1).empty());
  EXPECT_EQ(restored.step(2), (std::vector<core::ChunkId>{0x8000000000000000ULL}));
}

TEST(TraceBinary, EmptyTraceRoundTrips) {
  Trace trace;
  std::stringstream buffer;
  trace.save_binary(buffer);
  EXPECT_EQ(Trace::load_binary(buffer).step_count(), 0u);
}

TEST(TraceBinary, HeaderIsMagicPlusVersion) {
  Trace trace;
  trace.append_step({42});
  std::stringstream buffer;
  trace.save_binary(buffer);
  const std::string bytes = buffer.str();
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 4), "RLBT");
  // Little-endian u32 version 1.
  EXPECT_EQ(bytes[4], 1);
  EXPECT_EQ(bytes[5], 0);
  // 4 magic + 4 version + 8 steps + 4 batch size + 8 chunk id.
  EXPECT_EQ(bytes.size(), 28u);
}

TEST(TraceBinary, RejectsBadMagicVersionAndTruncation) {
  Trace trace;
  trace.append_step({1, 2, 3});
  std::stringstream buffer;
  trace.save_binary(buffer);
  const std::string bytes = buffer.str();

  {
    std::stringstream bad("XXXX" + bytes.substr(4));
    EXPECT_THROW(Trace::load_binary(bad), std::runtime_error);
  }
  {
    std::string wrong_version = bytes;
    wrong_version[4] = 99;
    std::stringstream bad(wrong_version);
    EXPECT_THROW(Trace::load_binary(bad), std::runtime_error);
  }
  for (const std::size_t cut :
       std::vector<std::size_t>{5, 10, 20, bytes.size() - 1}) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(Trace::load_binary(truncated), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(TraceBinary, BinaryFileRoundTripAndAutoDetect) {
  FreshUniformWorkload source(7);
  const Trace original = Trace::record(source, 5);
  const std::string binary_path = "/tmp/rlb_trace_test.bin";
  const std::string text_path = "/tmp/rlb_trace_test_auto.txt";
  original.save_binary_file(binary_path);
  original.save_file(text_path);
  EXPECT_EQ(Trace::load_binary_file(binary_path), original);
  // load_auto_file sniffs the magic and handles both formats.
  EXPECT_EQ(Trace::load_auto_file(binary_path), original);
  EXPECT_EQ(Trace::load_auto_file(text_path), original);
  std::remove(binary_path.c_str());
  std::remove(text_path.c_str());
}

TEST(TraceBinary, BinaryIsSmallerThanTextForLargeIds) {
  Trace trace;
  std::vector<core::ChunkId> batch;
  for (std::uint64_t i = 0; i < 256; ++i) {
    batch.push_back(0xfff0000000000000ULL + i);  // 19-20 text digits each
  }
  trace.append_step(std::move(batch));
  std::stringstream text, binary;
  trace.save(text);
  trace.save_binary(binary);
  EXPECT_LT(binary.str().size(), text.str().size());
}

}  // namespace
}  // namespace rlb::workloads
