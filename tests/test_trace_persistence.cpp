// Tests for trace serialization (workloads/trace.hpp save/load).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workloads/fresh_uniform.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/trace.hpp"

namespace rlb::workloads {
namespace {

TEST(TracePersistence, RoundTripsThroughStream) {
  FreshUniformWorkload source(5);
  const Trace original = Trace::record(source, 4);
  std::stringstream buffer;
  original.save(buffer);
  const Trace restored = Trace::load(buffer);
  EXPECT_EQ(restored, original);
  EXPECT_EQ(restored.step_count(), 4u);
  EXPECT_EQ(restored.total_requests(), 20u);
  EXPECT_EQ(restored.max_batch_size(), 5u);
}

TEST(TracePersistence, PreservesEmptySteps) {
  Trace trace;
  trace.append_step({1, 2, 3});
  trace.append_step({});
  trace.append_step({9});
  std::stringstream buffer;
  trace.save(buffer);
  const Trace restored = Trace::load(buffer);
  ASSERT_EQ(restored.step_count(), 3u);
  EXPECT_TRUE(restored.step(1).empty());
  EXPECT_EQ(restored.step(2), (std::vector<core::ChunkId>{9}));
}

TEST(TracePersistence, HandlesLargeChunkIds) {
  Trace trace;
  trace.append_step({0xffffffffffffffffULL, 0});
  std::stringstream buffer;
  trace.save(buffer);
  const Trace restored = Trace::load(buffer);
  EXPECT_EQ(restored.step(0)[0], 0xffffffffffffffffULL);
}

TEST(TracePersistence, FileRoundTrip) {
  RepeatedSetWorkload source(8, 1000, 3);
  const Trace original = Trace::record(source, 3);
  const std::string path = "/tmp/rlb_trace_test.txt";
  original.save_file(path);
  const Trace restored = Trace::load_file(path);
  EXPECT_EQ(restored, original);
  std::remove(path.c_str());
}

TEST(TracePersistence, MissingFileThrows) {
  EXPECT_THROW(Trace::load_file("/nonexistent/dir/trace.txt"),
               std::runtime_error);
  Trace trace;
  trace.append_step({1});
  EXPECT_THROW(trace.save_file("/nonexistent/dir/trace.txt"),
               std::runtime_error);
}

TEST(TracePersistence, LoadedTraceDrivesWorkload) {
  FreshUniformWorkload source(4);
  const Trace original = Trace::record(source, 2);
  std::stringstream buffer;
  original.save(buffer);
  const Trace restored = Trace::load(buffer);
  TraceWorkload replay(restored);
  std::vector<core::ChunkId> batch;
  replay.fill_step(0, batch);
  EXPECT_EQ(batch, original.step(0));
}

}  // namespace
}  // namespace rlb::workloads
