// Tests for the serving engine (engine/engine.hpp): per-request response
// accounting across shards, admission control, failure specs, and the
// KeyMapper -> chunk -> replica routing path the engine rides on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "core/metrics.hpp"
#include "engine/engine.hpp"
#include "policies/greedy.hpp"
#include "store/key_mapper.hpp"

namespace rlb::engine {
namespace {

/// Thread-safe response collector for engine tests.
class Collector {
 public:
  void operator()(const EngineResponse& response) {
    std::lock_guard lock(mutex_);
    responses_.push_back(response);
  }

  ResponseFn fn() {
    return [this](const EngineResponse& r) { (*this)(r); };
  }

  std::vector<EngineResponse> take() {
    std::lock_guard lock(mutex_);
    return responses_;
  }

 private:
  std::mutex mutex_;
  std::vector<EngineResponse> responses_;
};

TEST(ServingEngine, AnswersEveryRequestExactlyOnce) {
  Collector collector;
  EngineConfig config;
  config.servers = 32;
  config.shards = 4;
  config.processing_rate = 4;
  config.chunks = 1 << 16;
  ServingEngine engine(config, collector.fn());
  engine.start();
  const std::uint64_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(engine.submit(/*conn_token=*/i % 7, /*request_id=*/i,
                              /*key=*/i * 977));
  }
  engine.stop();

  const std::vector<EngineResponse> responses = collector.take();
  ASSERT_EQ(responses.size(), n);
  std::set<std::uint64_t> ids;
  for (const EngineResponse& r : responses) {
    EXPECT_TRUE(ids.insert(r.request_id).second)
        << "request " << r.request_id << " answered twice";
    EXPECT_EQ(r.conn_token, r.request_id % 7);
    if (r.status == kEngineOk) {
      EXPECT_LT(r.server, config.servers);
    }
  }
  EXPECT_EQ(ids.size(), n);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, n);
  EXPECT_EQ(stats.completed + stats.rejected + stats.overload_rejected, n);
  EXPECT_EQ(stats.backlog, 0u);
}

TEST(ServingEngine, LightLoadIsAllServed) {
  // Well under capacity: nothing should be rejected.
  Collector collector;
  EngineConfig config;
  config.servers = 64;
  config.shards = 2;
  config.processing_rate = 8;
  config.waiting_limit = 1 << 20;
  ServingEngine engine(config, collector.fn());
  engine.start();
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(engine.submit(0, i, i));
  }
  engine.stop();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 1000u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.overload_rejected, 0u);
}

TEST(ServingEngine, SubmitAfterStopIsRefused) {
  Collector collector;
  EngineConfig config;
  config.servers = 8;
  ServingEngine engine(config, collector.fn());
  engine.start();
  EXPECT_TRUE(engine.submit(0, 1, 1));
  engine.stop();
  EXPECT_FALSE(engine.submit(0, 2, 2));
}

TEST(ServingEngine, ShardingIsConsistentAndTotal) {
  Collector collector;
  EngineConfig config;
  config.servers = 30;  // does not divide evenly by 4
  config.shards = 4;
  config.mapper = "range";
  config.chunks = 1000;
  ServingEngine engine(config, collector.fn());
  EXPECT_EQ(engine.shard_count(), 4u);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const core::ChunkId chunk = engine.chunk_of(key);
    EXPECT_EQ(chunk, key);  // range mapper with key_space == chunks
    EXPECT_LT(engine.shard_of_chunk(chunk), 4u);
    // Deterministic.
    EXPECT_EQ(engine.shard_of_chunk(chunk), engine.shard_of_chunk(chunk));
  }
}

TEST(ServingEngine, RejectsInvalidConfigs) {
  Collector collector;
  EngineConfig config;
  config.policy = "no-such-policy";
  EXPECT_THROW(ServingEngine(config, collector.fn()), std::invalid_argument);

  config = EngineConfig{};
  config.shards = 100;
  config.servers = 8;
  EXPECT_THROW(ServingEngine(config, collector.fn()), std::invalid_argument);

  config = EngineConfig{};
  config.mapper = "geo";
  EXPECT_THROW(ServingEngine(config, collector.fn()), std::invalid_argument);

  config = EngineConfig{};
  config.failure_spec = "script:nonsense";
  EXPECT_THROW(ServingEngine(config, collector.fn()), std::invalid_argument);

  // migrating-d1 has no RequestSink support — must be refused for serving.
  config = EngineConfig{};
  config.policy = "migrating-d1";
  EXPECT_THROW(ServingEngine(config, collector.fn()), std::invalid_argument);

  EXPECT_THROW(ServingEngine(EngineConfig{}, nullptr), std::invalid_argument);
}

TEST(ServingEngine, ScriptedCrashDegradesWithoutDeadlock) {
  Collector collector;
  EngineConfig config;
  config.servers = 16;
  config.shards = 2;
  config.processing_rate = 2;
  config.queue_capacity = 4;
  // Crash servers 0..5 almost immediately, never recover.
  config.failure_spec =
      "script:1,0,down;1,1,down;1,2,down;1,3,down;1,4,down;1,5,down";
  config.dump_queue_on_crash = true;
  ServingEngine engine(config, collector.fn());
  engine.start();
  const std::uint64_t n = 20000;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(engine.submit(0, i, i * 31));
  }
  engine.stop();  // must not deadlock even with queues frozen on down servers

  const std::vector<EngineResponse> responses = collector.take();
  EXPECT_EQ(responses.size(), n);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.crashes, 6u);
  EXPECT_EQ(stats.servers_down, 6u);
  for (const EngineResponse& r : responses) {
    if (r.status == kEngineOk) {
      // Nothing may be served by a crashed server after its crash tick;
      // since crashes land at tick 1, effectively all serves must come
      // from up servers (a tick-0 serve on 0..5 is possible but the
      // steady state must route around them).
      EXPECT_LT(r.server, config.servers);
    }
  }
}

TEST(ServingEngine, RecoveryRestoresServers) {
  Collector collector;
  EngineConfig config;
  config.servers = 8;
  config.shards = 1;
  config.failure_spec = "script:1,3,down;5,3,up";
  ServingEngine engine(config, collector.fn());
  engine.start();
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(engine.submit(0, i, i));
  }
  engine.stop();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.servers_down, 0u);
}

// -- parse_failure_spec ---------------------------------------------------

TEST(FailureSpec, ParsesAllKinds) {
  EXPECT_EQ(parse_failure_spec("", 8, 1), nullptr);
  EXPECT_NE(parse_failure_spec("script:10,3,down;20,3,up", 8, 1), nullptr);
  EXPECT_NE(parse_failure_spec("bernoulli:0.01,50", 8, 1), nullptr);
  EXPECT_NE(parse_failure_spec("rack:4,0.05,100", 8, 1), nullptr);
}

TEST(FailureSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "script",              // no colon
      "script:",             // no events
      "script:1,2",          // missing state
      "script:1,2,sideways", // bad state
      "script:1,99,down",    // server out of range (8 servers)
      "script:x,2,down",     // bad tick
      "bernoulli:0.5",       // missing mttr
      "bernoulli:1.5,10",    // rate > 1
      "bernoulli:-0.1,10",   // rate < 0
      "rack:0,0.1,10",       // zero racks
      "meteor:1,2,3",        // unknown kind
  };
  for (const char* spec : bad) {
    EXPECT_THROW(parse_failure_spec(spec, 8, 1), std::invalid_argument)
        << "spec '" << spec << "' should be rejected";
  }
}

TEST(FailureSpec, ScriptedScheduleFiresAtTheRightTick) {
  auto schedule = parse_failure_spec("script:3,2,down", 8, 1);
  ASSERT_NE(schedule, nullptr);
  std::vector<std::uint8_t> up(8, 1);
  std::vector<core::FailureTransition> out;
  schedule->transitions(0, up, out);
  EXPECT_TRUE(out.empty());
  schedule->transitions(3, up, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].server, 2u);
  EXPECT_FALSE(out[0].up);
}

// -- KeyMapper -> chunk -> replica path (as the engine uses it) ----------

TEST(EnginePath, HashMapperIsTotalAndStableForHighReplication) {
  const store::HashShardMapper mapper(4096, 42);
  policies::SingleQueueConfig config;
  config.servers = 64;
  config.replication = 5;  // d > 2
  config.seed = 42;
  const policies::GreedyBalancer balancer(config);
  for (std::uint64_t key = 0; key < 20000; key += 7) {
    const core::ChunkId chunk = mapper.chunk_of(key);
    ASSERT_LT(chunk, 4096u);
    ASSERT_EQ(chunk, mapper.chunk_of(key));  // stable
    const core::ChoiceList choices = balancer.placement().choices(chunk);
    ASSERT_EQ(choices.size(), 5u);
    std::set<core::ServerId> distinct(choices.begin(), choices.end());
    EXPECT_EQ(distinct.size(), 5u) << "replicas must be distinct";
    for (const core::ServerId s : choices) EXPECT_LT(s, 64u);
  }
}

TEST(EnginePath, CollidingKeysShareChunkAndReplicaSet) {
  // Collision-heavy key set: with only 8 chunks, every 8th key collides
  // under the range mapper, and hash-mapper collisions are guaranteed by
  // pigeonhole.  Colliding keys MUST see the identical replica set — this
  // is the reappearance dependency the paper is about.
  const store::RangeShardMapper mapper(8, 8000);
  policies::SingleQueueConfig config;
  config.servers = 32;
  config.replication = 3;
  config.seed = 9;
  const policies::GreedyBalancer balancer(config);
  std::map<core::ChunkId, std::vector<core::ServerId>> seen;
  for (std::uint64_t key = 0; key < 8000; key += 13) {
    const core::ChunkId chunk = mapper.chunk_of(key);
    const core::ChoiceList choices = balancer.placement().choices(chunk);
    const std::vector<core::ServerId> replicas(choices.begin(), choices.end());
    const auto it = seen.find(chunk);
    if (it == seen.end()) {
      seen.emplace(chunk, replicas);
    } else {
      EXPECT_EQ(it->second, replicas)
          << "same chunk must always map to the same replicas";
    }
  }
  EXPECT_EQ(seen.size(), 8u);  // every chunk hit
}

TEST(EnginePath, DownReplicaIsFilteredAfterCrash) {
  // A crash must push routing onto surviving replicas; all-replicas-down
  // must reject.  This is the engine's live-failover path in miniature.
  policies::SingleQueueConfig config;
  config.servers = 16;
  config.replication = 3;
  config.processing_rate = 4;
  config.queue_capacity = 8;
  config.seed = 5;
  policies::GreedyBalancer balancer(config);

  struct Sink final : core::RequestSink {
    std::vector<std::pair<core::ChunkId, core::ServerId>> served;
    std::vector<core::ChunkId> rejected;
    void on_served(core::ChunkId x, core::ServerId server,
                   std::uint64_t) override {
      served.emplace_back(x, server);
    }
    void on_rejected(core::ChunkId x) override { rejected.push_back(x); }
  } sink;
  ASSERT_TRUE(balancer.set_request_sink(&sink));

  const core::ChunkId chunk = 12345;
  const core::ChoiceList replicas = balancer.placement().choices(chunk);
  ASSERT_EQ(replicas.size(), 3u);

  core::Metrics metrics;
  // Crash the first replica: requests must land on the other two.
  balancer.set_server_up(replicas[0], false, false, metrics);
  for (core::Time t = 0; t < 4; ++t) {
    const core::ChunkId batch[] = {chunk};
    balancer.step(t, batch, metrics);
  }
  ASSERT_GE(sink.served.size(), 1u);
  for (const auto& [x, server] : sink.served) {
    EXPECT_EQ(x, chunk);
    EXPECT_NE(server, replicas[0]) << "routed to a crashed replica";
    EXPECT_TRUE(server == replicas[1] || server == replicas[2]);
  }

  // Crash the rest: now every request for this chunk must be rejected.
  balancer.set_server_up(replicas[1], false, false, metrics);
  balancer.set_server_up(replicas[2], false, false, metrics);
  const std::size_t rejected_before = sink.rejected.size();
  const core::ChunkId batch[] = {chunk};
  balancer.step(10, batch, metrics);
  ASSERT_EQ(sink.rejected.size(), rejected_before + 1);
  EXPECT_EQ(sink.rejected.back(), chunk);

  // Recovery restores the replica as a routing target.
  balancer.set_server_up(replicas[0], true, false, metrics);
  const std::size_t served_before = sink.served.size();
  balancer.step(11, batch, metrics);
  // Drain remaining sub-steps so the request completes.
  for (core::Time t = 12; t < 16; ++t) {
    balancer.step(t, {}, metrics);
  }
  ASSERT_GT(sink.served.size(), served_before);
  EXPECT_EQ(sink.served.back().second, replicas[0]);
}

}  // namespace
}  // namespace rlb::engine
