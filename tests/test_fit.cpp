// Unit tests for least-squares fits (stats/fit.hpp).
#include "stats/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rlb::stats {
namespace {

TEST(FitLinear, PerfectLine) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x + 2.0);
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 5u);
}

TEST(FitLinear, DegenerateInputs) {
  EXPECT_EQ(fit_linear({}, {}).n, 0u);
  EXPECT_EQ(fit_linear({1.0}, {2.0}).slope, 0.0);
  // All-equal x: no slope derivable.
  const LinearFit fit = fit_linear({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(fit.slope, 0.0);
}

TEST(FitLinear, NoisyLineHasHighRSquared) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 1.0 + 0.01 * std::sin(i * 12.9898));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(FitLinear, ConstantYHasRSquaredOne) {
  const LinearFit fit = fit_linear({1, 2, 3}, {5, 5, 5});
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_EQ(fit.intercept, 5.0);
  EXPECT_EQ(fit.r_squared, 1.0);
}

TEST(FitAgainstLog2, RecoversLogGrowth) {
  std::vector<double> xs, ys;
  for (int k = 4; k <= 20; ++k) {
    const double m = std::pow(2.0, k);
    xs.push_back(m);
    ys.push_back(1.5 * k + 4.0);  // y = 1.5·log2(m) + 4
  }
  const LinearFit fit = fit_against_log2(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-9);
  EXPECT_GT(fit.r_squared, 0.9999);
}

TEST(FitAgainstLogLog2, RecoversLogLogGrowth) {
  std::vector<double> xs, ys;
  for (int k = 4; k <= 24; ++k) {
    const double m = std::pow(2.0, k);
    xs.push_back(m);
    ys.push_back(2.0 * std::log2(std::log2(m)) + 1.0);
  }
  const LinearFit fit = fit_against_loglog2(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
}

TEST(FitAgainstLog2, SkipsNonPositiveX) {
  const LinearFit fit =
      fit_against_log2({-1.0, 0.0, 2.0, 4.0}, {9.0, 9.0, 1.0, 2.0});
  EXPECT_EQ(fit.n, 2u);
  EXPECT_NEAR(fit.slope, 1.0, 1e-12);  // y = log2(x) over the kept points
}

TEST(FitAgainstLogLog2, LogGrowthFitsWorseThanLogLog) {
  // If y truly grows like log2(m), the log-log fit should show a visibly
  // larger slope spread — sanity that the two transforms distinguish the
  // hypotheses the experiments compare.
  std::vector<double> xs, ys;
  for (int k = 3; k <= 24; ++k) {
    xs.push_back(std::pow(2.0, k));
    ys.push_back(static_cast<double>(k));  // y = log2(m)
  }
  const LinearFit log_fit = fit_against_log2(xs, ys);
  const LinearFit loglog_fit = fit_against_loglog2(xs, ys);
  EXPECT_GT(log_fit.r_squared, 0.9999);
  EXPECT_LT(loglog_fit.r_squared, log_fit.r_squared);
}

}  // namespace
}  // namespace rlb::stats
