// Differential test: DelayedCuckooBalancer vs an independent, deliberately
// naive re-implementation of the Section 4.1 algorithm.
//
// The reference uses plain std::deques, no ring buffers, no backlog caches,
// and recomputes everything from the algorithm's prose: phases of L steps,
// four queues per server draining g/4 each, first-access-per-phase → lesser
// Q, reappearance → P at the previous step's offline cuckoo assignment,
// leftovers moved to carry-over queues at phase boundaries.  Both
// implementations share only core::Placement and cuckoo::assign_offline
// (deterministic pure functions), so any disagreement in per-step
// submitted/rejected/completed counts or per-server backlogs is a routing
// or queueing bug in one of them.
#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>

#include "core/placement.hpp"
#include "cuckoo/offline_assignment.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace rlb {
namespace {

struct ReferenceDelayedCuckoo {
  std::size_t m;
  unsigned g;
  std::size_t q;
  std::size_t phase_length;
  std::size_t stash;
  core::Placement placement;

  struct Server {
    std::deque<core::ChunkId> queue_q, queue_p, prev_q, prev_p;
  };
  std::vector<Server> servers;
  static constexpr std::uint32_t kFailed = 0xffffffffu;
  std::unordered_map<core::ChunkId, std::uint32_t> assignment;
  std::size_t steps_into_phase = 0;

  std::uint64_t submitted = 0, rejected = 0, completed = 0;

  ReferenceDelayedCuckoo(std::size_t m_, unsigned g_, std::size_t q_,
                         std::size_t phase_, std::size_t stash_,
                         std::uint64_t seed)
      : m(m_),
        g(g_),
        q(q_),
        phase_length(phase_),
        stash(stash_),
        placement(m_, 2, seed),
        servers(m_) {}

  void step(const std::vector<core::ChunkId>& requests) {
    if (steps_into_phase == phase_length) {
      for (Server& server : servers) {
        // Prev queues are guaranteed empty by the drain inequality.
        server.prev_q = std::move(server.queue_q);
        server.queue_q.clear();
        server.prev_p = std::move(server.queue_p);
        server.queue_p.clear();
      }
      assignment.clear();
      steps_into_phase = 0;
    }

    // Deliver.
    for (const core::ChunkId x : requests) {
      ++submitted;
      const auto it = assignment.find(x);
      if (it != assignment.end()) {
        if (it->second == kFailed) {
          ++rejected;
          continue;
        }
        Server& target = servers[it->second];
        if (target.queue_p.size() >= q) {
          ++rejected;
        } else {
          target.queue_p.push_back(x);
        }
        continue;
      }
      const core::ChoiceList choices = placement.choices(x);
      Server& a = servers[choices[0]];
      Server& b = servers[choices[1]];
      Server& target = a.queue_q.size() <= b.queue_q.size() ? a : b;
      if (target.queue_q.size() >= q) {
        ++rejected;
      } else {
        target.queue_q.push_back(x);
      }
    }

    // Process g/4 from each queue.
    const unsigned per_queue = g / 4;
    for (Server& server : servers) {
      for (auto* queue :
           {&server.queue_q, &server.queue_p, &server.prev_q,
            &server.prev_p}) {
        for (unsigned i = 0; i < per_queue && !queue->empty(); ++i) {
          queue->pop_front();
          ++completed;
        }
      }
    }

    // Offline assignment for this step's set.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> choices;
    choices.reserve(requests.size());
    for (const core::ChunkId x : requests) {
      const core::ChoiceList list = placement.choices(x);
      choices.emplace_back(list[0], list[1]);
    }
    const cuckoo::OfflineAssignment result =
        cuckoo::assign_offline(choices, m, stash);
    if (result.success) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        assignment[requests[i]] = result.assignment[i];
      }
    } else {
      for (const core::ChunkId x : requests) assignment[x] = kFailed;
    }
    ++steps_into_phase;
  }

  std::uint32_t backlog(std::size_t s) const {
    const Server& server = servers[s];
    return static_cast<std::uint32_t>(
        server.queue_q.size() + server.queue_p.size() +
        server.prev_q.size() + server.prev_p.size());
  }
};

class DelayedCuckooDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelayedCuckooDifferential, MatchesNaiveReference) {
  const std::uint64_t seed = GetParam();
  constexpr std::size_t kM = 64;
  constexpr unsigned kG = 8;
  constexpr std::size_t kQ = 6;
  constexpr std::size_t kPhase = 3;
  constexpr std::size_t kStash = 4;

  policies::DelayedCuckooConfig config;
  config.servers = kM;
  config.processing_rate = kG;
  config.queue_capacity = kQ;
  config.phase_length = kPhase;
  config.stash_per_group = kStash;
  config.seed = seed;
  policies::DelayedCuckooBalancer balancer(config);
  ReferenceDelayedCuckoo reference(kM, kG, kQ, kPhase, kStash, seed);

  stats::Rng workload_rng(stats::derive_seed(seed, 50));
  core::Metrics metrics;
  for (core::Time t = 0; t < 50; ++t) {
    // Varying batch sizes from a small universe → heavy reappearance, and
    // phases see partially-overlapping sets.
    const std::size_t count = 1 + workload_rng.next_below(kM);
    const std::vector<core::ChunkId> batch =
        stats::sample_without_replacement(2 * kM, count, workload_rng);

    balancer.step(t, batch, metrics);
    reference.step(batch);

    ASSERT_EQ(metrics.submitted(), reference.submitted) << "step " << t;
    ASSERT_EQ(metrics.rejected(), reference.rejected) << "step " << t;
    ASSERT_EQ(metrics.completed(), reference.completed) << "step " << t;
    for (std::size_t s = 0; s < kM; ++s) {
      ASSERT_EQ(balancer.backlog(static_cast<core::ServerId>(s)),
                reference.backlog(s))
          << "server " << s << " step " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelayedCuckooDifferential,
                         ::testing::Range<std::uint64_t>(40, 52));

}  // namespace
}  // namespace rlb
