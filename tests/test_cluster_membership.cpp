// Unit tests for the router's backend membership table
// (cluster/membership.hpp): the fast-down / slow-up health state machine,
// load estimation from stale gauges plus local in-flight deltas, and the
// least-loaded pick used by the forwarding path.
#include "cluster/membership.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

namespace rlb::cluster {
namespace {

HeartbeatSample sample(std::uint64_t backlog) {
  HeartbeatSample s;
  s.backlog = backlog;
  s.completed = 1;
  s.servers = 4;
  return s;
}

/// Drive a backend from the initial kDown to kUp with the default config
/// (probation_successes = 2).
void bring_up(Membership& membership, std::uint32_t id,
              std::uint64_t backlog = 0) {
  membership.record_success(id, sample(backlog));
  membership.record_success(id, sample(backlog));
}

TEST(Membership, StartsDownAndRequiresProbationToComeUp) {
  Membership membership(1, MembershipConfig{});
  EXPECT_FALSE(membership.is_live(0));
  EXPECT_EQ(membership.view(0).health, BackendHealth::kDown);

  // First success: probation, still not routable.
  membership.record_success(0, sample(3));
  EXPECT_FALSE(membership.is_live(0));
  EXPECT_EQ(membership.view(0).health, BackendHealth::kProbation);

  // Second consecutive success: up.
  membership.record_success(0, sample(3));
  EXPECT_TRUE(membership.is_live(0));
  EXPECT_EQ(membership.view(0).health, BackendHealth::kUp);
  EXPECT_EQ(membership.live_count(), 1u);
}

TEST(Membership, UpSurvivesMissesBelowThreshold) {
  MembershipConfig config;
  config.miss_threshold = 3;
  Membership membership(1, config);
  bring_up(membership, 0);

  membership.record_miss(0);
  membership.record_miss(0);
  EXPECT_TRUE(membership.is_live(0)) << "two of three misses must not kill";

  // A success resets the miss streak: two more misses still below threshold.
  membership.record_success(0, sample(0));
  membership.record_miss(0);
  membership.record_miss(0);
  EXPECT_TRUE(membership.is_live(0));

  membership.record_miss(0);
  EXPECT_FALSE(membership.is_live(0));
  EXPECT_EQ(membership.view(0).transitions_down, 1u);
}

TEST(Membership, AnyProbationMissDropsBackToDown) {
  Membership membership(1, MembershipConfig{});
  membership.record_success(0, sample(0));  // kProbation
  membership.record_miss(0);                // flapping: straight back down
  EXPECT_EQ(membership.view(0).health, BackendHealth::kDown);

  // The success streak restarts from scratch.
  membership.record_success(0, sample(0));
  EXPECT_EQ(membership.view(0).health, BackendHealth::kProbation);
  membership.record_success(0, sample(0));
  EXPECT_TRUE(membership.is_live(0));
}

TEST(Membership, ForceDownIsImmediateEvenWhenHealthy) {
  Membership membership(2, MembershipConfig{});
  bring_up(membership, 0);
  bring_up(membership, 1);
  EXPECT_EQ(membership.live_count(), 2u);

  membership.force_down(0);
  EXPECT_FALSE(membership.is_live(0));
  EXPECT_TRUE(membership.is_live(1));
  EXPECT_EQ(membership.view(0).transitions_down, 1u);

  // Reappearance is damped: one heartbeat success is not enough.
  membership.record_success(0, sample(0));
  EXPECT_FALSE(membership.is_live(0));
  membership.record_success(0, sample(0));
  EXPECT_TRUE(membership.is_live(0));
}

TEST(Membership, LoadEstimateIsGaugePlusLocalInflight) {
  Membership membership(1, MembershipConfig{});
  bring_up(membership, 0, /*backlog=*/10);
  EXPECT_EQ(membership.load_estimate(0), 10u);

  // Hops forwarded since the last heartbeat raise the estimate...
  membership.note_forwarded(0);
  membership.note_forwarded(0);
  EXPECT_EQ(membership.load_estimate(0), 12u);
  // ...and answered hops lower it again.
  membership.note_answered(0);
  EXPECT_EQ(membership.load_estimate(0), 11u);

  // A fresh heartbeat replaces the gauge but keeps the in-flight delta.
  membership.record_success(0, sample(5));
  EXPECT_EQ(membership.load_estimate(0), 6u);
}

TEST(Membership, PickChoosesLeastLoadedLiveCandidate) {
  Membership membership(4, MembershipConfig{});
  bring_up(membership, 0, 9);
  bring_up(membership, 1, 4);
  bring_up(membership, 2, 7);
  // Backend 3 stays down.

  const std::uint32_t candidates[] = {0, 1, 2, 3};
  EXPECT_EQ(membership.pick(candidates, 4), 1);

  // Excluding the winner (a retry) falls through to the next-least-loaded.
  EXPECT_EQ(membership.pick(candidates, 4, /*exclude_mask=*/1ull << 1), 2);

  // Down candidates never win even at zero load.
  const std::uint32_t only_down[] = {3};
  EXPECT_EQ(membership.pick(only_down, 1), -1);

  // All candidates excluded -> no pick.
  EXPECT_EQ(membership.pick(candidates, 4, 0xF), -1);
}

TEST(Membership, PickBreaksTiesTowardLowestId) {
  Membership membership(3, MembershipConfig{});
  bring_up(membership, 0, 5);
  bring_up(membership, 1, 5);
  bring_up(membership, 2, 5);
  const std::uint32_t candidates[] = {2, 1, 0};
  EXPECT_EQ(membership.pick(candidates, 3), 0);
}

TEST(Membership, ViewReportsHeartbeatCountersAndSample) {
  Membership membership(1, MembershipConfig{});
  membership.record_miss(0);
  HeartbeatSample s;
  s.backlog = 2;
  s.completed = 42;
  s.servers = 8;
  s.servers_down = 1;
  membership.record_success(0, s);
  membership.record_success(0, s);

  const BackendView view = membership.view(0);
  EXPECT_EQ(view.id, 0u);
  EXPECT_EQ(view.heartbeats_ok, 2u);
  EXPECT_EQ(view.heartbeats_missed, 1u);
  EXPECT_EQ(view.completed, 42u);
  EXPECT_EQ(view.servers, 8u);
  EXPECT_EQ(view.servers_down, 1u);
  EXPECT_EQ(view.backlog_gauge, 2u);
  EXPECT_EQ(view.load_estimate, 2u);
}

// ---- transition subscription (repair-plane feed) ----------------------

using Transition = std::tuple<std::uint32_t, BackendHealth, BackendHealth>;

/// Subscribe a recording sink; the shared_ptr keeps the log alive inside
/// the std::function for the membership's lifetime.
std::shared_ptr<std::vector<Transition>> watch(Membership& membership) {
  auto log = std::make_shared<std::vector<Transition>>();
  membership.subscribe([log](std::uint32_t id, BackendHealth from,
                             BackendHealth to) {
    log->emplace_back(id, from, to);
  });
  return log;
}

TEST(MembershipSubscribe, FiresOncePerStateChangeWithBothEnds) {
  Membership membership(2, MembershipConfig{});
  auto log_ptr = watch(membership);
  std::vector<Transition>& log = *log_ptr;

  bring_up(membership, 0);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], Transition(0, BackendHealth::kDown,
                               BackendHealth::kProbation));
  EXPECT_EQ(log[1], Transition(0, BackendHealth::kProbation,
                               BackendHealth::kUp));

  // Steady-state successes are not transitions.
  membership.record_success(0, sample(1));
  membership.record_success(0, sample(2));
  EXPECT_EQ(log.size(), 2u);

  membership.force_down(0);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[2], Transition(0, BackendHealth::kUp, BackendHealth::kDown));

  // Repeated force_down on an already-down backend stays silent.
  membership.force_down(0);
  EXPECT_EQ(log.size(), 3u);
}

TEST(MembershipSubscribe, MissesBelowThresholdDoNotNotify) {
  MembershipConfig config;
  config.miss_threshold = 3;
  Membership membership(1, config);
  auto log_ptr = watch(membership);
  std::vector<Transition>& log = *log_ptr;
  bring_up(membership, 0);
  log.clear();

  membership.record_miss(0);
  membership.record_miss(0);
  EXPECT_TRUE(log.empty()) << "sub-threshold misses are not transitions";
  membership.record_miss(0);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], Transition(0, BackendHealth::kUp, BackendHealth::kDown));
}

// The probation flap the repair plane must survive: down -> probation ->
// down again before probation_successes accumulate.  Each leg notifies
// exactly once and the subscriber never sees a spurious kUp — so a
// repair coordinator fed by this stream never cancels repair for a
// backend that merely flapped.
TEST(MembershipSubscribe, ProbationFlapNeverReportsUp) {
  MembershipConfig config;
  config.probation_successes = 2;
  Membership membership(1, config);
  auto log_ptr = watch(membership);
  std::vector<Transition>& log = *log_ptr;

  bring_up(membership, 0);
  membership.force_down(0);
  log.clear();

  // Flap twice: one success (probation), one miss (straight back down).
  for (int flap = 0; flap < 2; ++flap) {
    membership.record_success(0, sample(0));
    membership.record_miss(0);
  }
  ASSERT_EQ(log.size(), 4u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_NE(std::get<2>(log[i]), BackendHealth::kUp)
        << "transition " << i << " must not report a flapping backend up";
  }
  EXPECT_EQ(log[0], Transition(0, BackendHealth::kDown,
                               BackendHealth::kProbation));
  EXPECT_EQ(log[1], Transition(0, BackendHealth::kProbation,
                               BackendHealth::kDown));
  EXPECT_FALSE(membership.is_live(0));

  // Only a full probation walk reports kUp.
  log.clear();
  bring_up(membership, 0);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(std::get<2>(log[1]), BackendHealth::kUp);
}

TEST(MembershipSubscribe, SubscriberMayCallBackIntoAccessors) {
  Membership membership(1, MembershipConfig{});
  std::vector<BackendHealth> seen;
  membership.subscribe([&membership, &seen](std::uint32_t id, BackendHealth,
                                            BackendHealth) {
    // view() takes the membership lock: this deadlocks unless notify()
    // really fires after the lock is released.
    seen.push_back(membership.view(id).health);
  });
  bring_up(membership, 0);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], BackendHealth::kUp);
}

}  // namespace
}  // namespace rlb::cluster
