// Unit tests for the router's backend membership table
// (cluster/membership.hpp): the fast-down / slow-up health state machine,
// load estimation from stale gauges plus local in-flight deltas, and the
// least-loaded pick used by the forwarding path.
#include "cluster/membership.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace rlb::cluster {
namespace {

HeartbeatSample sample(std::uint64_t backlog) {
  HeartbeatSample s;
  s.backlog = backlog;
  s.completed = 1;
  s.servers = 4;
  return s;
}

/// Drive a backend from the initial kDown to kUp with the default config
/// (probation_successes = 2).
void bring_up(Membership& membership, std::uint32_t id,
              std::uint64_t backlog = 0) {
  membership.record_success(id, sample(backlog));
  membership.record_success(id, sample(backlog));
}

TEST(Membership, StartsDownAndRequiresProbationToComeUp) {
  Membership membership(1, MembershipConfig{});
  EXPECT_FALSE(membership.is_live(0));
  EXPECT_EQ(membership.view(0).health, BackendHealth::kDown);

  // First success: probation, still not routable.
  membership.record_success(0, sample(3));
  EXPECT_FALSE(membership.is_live(0));
  EXPECT_EQ(membership.view(0).health, BackendHealth::kProbation);

  // Second consecutive success: up.
  membership.record_success(0, sample(3));
  EXPECT_TRUE(membership.is_live(0));
  EXPECT_EQ(membership.view(0).health, BackendHealth::kUp);
  EXPECT_EQ(membership.live_count(), 1u);
}

TEST(Membership, UpSurvivesMissesBelowThreshold) {
  MembershipConfig config;
  config.miss_threshold = 3;
  Membership membership(1, config);
  bring_up(membership, 0);

  membership.record_miss(0);
  membership.record_miss(0);
  EXPECT_TRUE(membership.is_live(0)) << "two of three misses must not kill";

  // A success resets the miss streak: two more misses still below threshold.
  membership.record_success(0, sample(0));
  membership.record_miss(0);
  membership.record_miss(0);
  EXPECT_TRUE(membership.is_live(0));

  membership.record_miss(0);
  EXPECT_FALSE(membership.is_live(0));
  EXPECT_EQ(membership.view(0).transitions_down, 1u);
}

TEST(Membership, AnyProbationMissDropsBackToDown) {
  Membership membership(1, MembershipConfig{});
  membership.record_success(0, sample(0));  // kProbation
  membership.record_miss(0);                // flapping: straight back down
  EXPECT_EQ(membership.view(0).health, BackendHealth::kDown);

  // The success streak restarts from scratch.
  membership.record_success(0, sample(0));
  EXPECT_EQ(membership.view(0).health, BackendHealth::kProbation);
  membership.record_success(0, sample(0));
  EXPECT_TRUE(membership.is_live(0));
}

TEST(Membership, ForceDownIsImmediateEvenWhenHealthy) {
  Membership membership(2, MembershipConfig{});
  bring_up(membership, 0);
  bring_up(membership, 1);
  EXPECT_EQ(membership.live_count(), 2u);

  membership.force_down(0);
  EXPECT_FALSE(membership.is_live(0));
  EXPECT_TRUE(membership.is_live(1));
  EXPECT_EQ(membership.view(0).transitions_down, 1u);

  // Reappearance is damped: one heartbeat success is not enough.
  membership.record_success(0, sample(0));
  EXPECT_FALSE(membership.is_live(0));
  membership.record_success(0, sample(0));
  EXPECT_TRUE(membership.is_live(0));
}

TEST(Membership, LoadEstimateIsGaugePlusLocalInflight) {
  Membership membership(1, MembershipConfig{});
  bring_up(membership, 0, /*backlog=*/10);
  EXPECT_EQ(membership.load_estimate(0), 10u);

  // Hops forwarded since the last heartbeat raise the estimate...
  membership.note_forwarded(0);
  membership.note_forwarded(0);
  EXPECT_EQ(membership.load_estimate(0), 12u);
  // ...and answered hops lower it again.
  membership.note_answered(0);
  EXPECT_EQ(membership.load_estimate(0), 11u);

  // A fresh heartbeat replaces the gauge but keeps the in-flight delta.
  membership.record_success(0, sample(5));
  EXPECT_EQ(membership.load_estimate(0), 6u);
}

TEST(Membership, PickChoosesLeastLoadedLiveCandidate) {
  Membership membership(4, MembershipConfig{});
  bring_up(membership, 0, 9);
  bring_up(membership, 1, 4);
  bring_up(membership, 2, 7);
  // Backend 3 stays down.

  const std::uint32_t candidates[] = {0, 1, 2, 3};
  EXPECT_EQ(membership.pick(candidates, 4), 1);

  // Excluding the winner (a retry) falls through to the next-least-loaded.
  EXPECT_EQ(membership.pick(candidates, 4, /*exclude_mask=*/1ull << 1), 2);

  // Down candidates never win even at zero load.
  const std::uint32_t only_down[] = {3};
  EXPECT_EQ(membership.pick(only_down, 1), -1);

  // All candidates excluded -> no pick.
  EXPECT_EQ(membership.pick(candidates, 4, 0xF), -1);
}

TEST(Membership, PickBreaksTiesTowardLowestId) {
  Membership membership(3, MembershipConfig{});
  bring_up(membership, 0, 5);
  bring_up(membership, 1, 5);
  bring_up(membership, 2, 5);
  const std::uint32_t candidates[] = {2, 1, 0};
  EXPECT_EQ(membership.pick(candidates, 3), 0);
}

TEST(Membership, ViewReportsHeartbeatCountersAndSample) {
  Membership membership(1, MembershipConfig{});
  membership.record_miss(0);
  HeartbeatSample s;
  s.backlog = 2;
  s.completed = 42;
  s.servers = 8;
  s.servers_down = 1;
  membership.record_success(0, s);
  membership.record_success(0, s);

  const BackendView view = membership.view(0);
  EXPECT_EQ(view.id, 0u);
  EXPECT_EQ(view.heartbeats_ok, 2u);
  EXPECT_EQ(view.heartbeats_missed, 1u);
  EXPECT_EQ(view.completed, 42u);
  EXPECT_EQ(view.servers, 8u);
  EXPECT_EQ(view.servers_down, 1u);
  EXPECT_EQ(view.backlog_gauge, 2u);
  EXPECT_EQ(view.load_estimate, 2u);
}

}  // namespace
}  // namespace rlb::cluster
