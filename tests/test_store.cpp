// Unit tests for the key→chunk sharding layer (store/*).
#include <gtest/gtest.h>

#include <unordered_set>

#include "store/key_mapper.hpp"
#include "store/key_workload_adapter.hpp"
#include "workloads/reappearance_profile.hpp"

namespace rlb::store {
namespace {

// ----------------------------------------------------------------- mappers
TEST(HashShardMapper, RejectsZeroChunks) {
  EXPECT_THROW(HashShardMapper(0, 1), std::invalid_argument);
}

TEST(HashShardMapper, DeterministicAndInRange) {
  HashShardMapper mapper(32, 7);
  for (KeyId key = 0; key < 500; ++key) {
    const core::ChunkId chunk = mapper.chunk_of(key);
    EXPECT_LT(chunk, 32u);
    EXPECT_EQ(chunk, mapper.chunk_of(key));
  }
}

TEST(HashShardMapper, RoughlyUniform) {
  HashShardMapper mapper(16, 11);
  std::vector<int> counts(16, 0);
  for (KeyId key = 0; key < 32000; ++key) ++counts[mapper.chunk_of(key)];
  for (const int c : counts) {
    EXPECT_GT(c, 1500);
    EXPECT_LT(c, 2500);
  }
}

TEST(RangeShardMapper, RejectsBadArguments) {
  EXPECT_THROW(RangeShardMapper(0, 100), std::invalid_argument);
  EXPECT_THROW(RangeShardMapper(10, 5), std::invalid_argument);
}

TEST(RangeShardMapper, ContiguousRanges) {
  RangeShardMapper mapper(4, 100);  // width 25
  EXPECT_EQ(mapper.chunk_of(0), 0u);
  EXPECT_EQ(mapper.chunk_of(24), 0u);
  EXPECT_EQ(mapper.chunk_of(25), 1u);
  EXPECT_EQ(mapper.chunk_of(99), 3u);
}

TEST(RangeShardMapper, RemainderGoesToLastChunk) {
  RangeShardMapper mapper(3, 10);  // width 3, keys 9 in the remainder
  EXPECT_EQ(mapper.chunk_of(9), 2u);
  // Out-of-space keys wrap.
  EXPECT_EQ(mapper.chunk_of(10), mapper.chunk_of(0));
}

// ----------------------------------------------------------------- adapter
TEST(KeyWorkloadAdapter, ValidatesArguments) {
  HashShardMapper mapper(8, 1);
  EXPECT_THROW(KeyWorkloadAdapter(nullptr, mapper, 8), std::invalid_argument);
  EXPECT_THROW(KeyWorkloadAdapter([](core::Time, std::vector<KeyId>&) {},
                                  mapper, 0),
               std::invalid_argument);
}

TEST(KeyWorkloadAdapter, DeduplicatesChunksWithinStep) {
  RangeShardMapper mapper(4, 100);
  // Keys 0, 1, 2 share chunk 0; keys 30, 55 are chunks 1, 2.
  KeyWorkloadAdapter adapter(
      [](core::Time, std::vector<KeyId>& keys) {
        keys = {0, 1, 2, 30, 55};
      },
      mapper, 5);
  std::vector<core::ChunkId> batch;
  adapter.fill_step(0, batch);
  EXPECT_EQ(batch, (std::vector<core::ChunkId>{0, 1, 2}));
  EXPECT_EQ(adapter.keys_seen(), 5u);
  EXPECT_EQ(adapter.chunk_requests_emitted(), 3u);
  EXPECT_NEAR(adapter.compression(), 5.0 / 3.0, 1e-12);
}

TEST(KeyWorkloadAdapter, OutputAlwaysDistinct) {
  HashShardMapper mapper(16, 3);
  KeyGenerator generator =
      make_zipf_key_generator(200, 10000, 1.1, true, 5);
  KeyWorkloadAdapter adapter(generator, mapper, 200);
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 20; ++t) {
    adapter.fill_step(t, batch);
    std::unordered_set<core::ChunkId> unique(batch.begin(), batch.end());
    EXPECT_EQ(unique.size(), batch.size()) << "step " << t;
    EXPECT_LE(batch.size(), 16u);  // at most one per chunk
  }
}

TEST(ShardingComparison, RangeShardingConcentratesZipfHeads) {
  // Zipf keys with CONTIGUOUS popularity (scramble = false): range
  // sharding folds the whole head into few chunks (high compression);
  // hash sharding spreads it (compression near 1 per hot chunk ... lower).
  constexpr std::size_t kChunks = 64;
  constexpr KeyId kKeySpace = 64000;
  constexpr std::size_t kKeysPerStep = 512;

  RangeShardMapper range(kChunks, kKeySpace);
  HashShardMapper hash(kChunks, 9);
  KeyGenerator gen_a =
      make_zipf_key_generator(kKeysPerStep, kKeySpace, 1.1, false, 7);
  KeyGenerator gen_b =
      make_zipf_key_generator(kKeysPerStep, kKeySpace, 1.1, false, 7);

  KeyWorkloadAdapter range_adapter(gen_a, range, kKeysPerStep);
  KeyWorkloadAdapter hash_adapter(gen_b, hash, kKeysPerStep);
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 30; ++t) {
    range_adapter.fill_step(t, batch);
    hash_adapter.fill_step(t, batch);
  }
  // Range sharding folds many more keys per chunk request.
  EXPECT_GT(range_adapter.compression(), hash_adapter.compression() * 1.5);
}

TEST(ShardingComparison, ChunkLevelReappearanceDiffers) {
  // The downstream consequence: range sharding's few hot chunks reappear
  // every step (reappearance fraction ~1 on the emitted stream).
  constexpr std::size_t kChunks = 64;
  RangeShardMapper range(kChunks, 64000);
  KeyGenerator generator =
      make_zipf_key_generator(512, 64000, 1.1, false, 11);
  KeyWorkloadAdapter adapter(generator, range, 512);
  const workloads::ReappearanceProfile profile =
      workloads::profile_workload(adapter, 40);
  EXPECT_GT(profile.reappearance_fraction(), 0.8);
  EXPECT_LE(profile.reuse_distance.quantile(0.5), 1u);
}

}  // namespace
}  // namespace rlb::store
