// End-to-end loopback test for the serving stack: net::NetServer +
// engine::ServingEngine + net::Client over real sockets, in one process.
// This is the in-tree version of the CI smoke run: every request must be
// answered exactly once with a well-formed response and zero protocol
// errors.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "stats/rng.hpp"

namespace rlb {
namespace {

struct ClientTally {
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t protocol_errors = 0;
  std::set<std::uint64_t> answered_ids;
};

/// Closed-loop worker: keeps `concurrency` requests outstanding until
/// `quota` are answered, recording every response id.
void run_client(std::uint16_t port, std::uint64_t quota,
                std::size_t concurrency, std::uint64_t id_base,
                std::uint64_t seed, ClientTally& tally) {
  net::Client client;
  client.connect("127.0.0.1", port);
  stats::Rng rng(seed);
  std::uint64_t next_id = id_base;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  auto send_one = [&] {
    client.send_request(next_id++, rng.next());
    ++sent;
  };
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(concurrency, quota);
       ++i) {
    send_one();
  }
  client.flush();
  net::ResponseMsg response;
  while (completed < quota && client.read_response(response)) {
    if (response.request_id < id_base || response.request_id >= next_id ||
        !tally.answered_ids.insert(response.request_id).second) {
      ++tally.protocol_errors;
      break;
    }
    ++completed;
    switch (response.status) {
      case net::Status::kOk:
        ++tally.ok;
        break;
      case net::Status::kReject:
        ++tally.rejected;
        break;
      default:
        ++tally.errors;
        break;
    }
    if (sent < quota) {
      send_one();
      client.flush();
    }
  }
  client.close();
}

class ServingStack {
 public:
  explicit ServingStack(engine::EngineConfig config,
                        std::size_t max_connections = 16) {
    net::ServerConfig net_config;  // ephemeral loopback port
    net_config.max_connections = max_connections;
    server_ = std::make_unique<net::NetServer>(
        net_config,
        [this](std::uint64_t token, const net::RequestMsg& request) {
          if (!engine_->submit(token, request.request_id, request.key)) {
            net::ResponseMsg msg;
            msg.request_id = request.request_id;
            msg.status = net::Status::kError;
            server_->send_response(token, msg);
          }
        });
    engine_ = std::make_unique<engine::ServingEngine>(
        config, [this](const engine::EngineResponse& r) {
          net::ResponseMsg msg;
          msg.request_id = r.request_id;
          msg.status = static_cast<net::Status>(r.status);
          msg.server = static_cast<std::uint32_t>(r.server);
          msg.wait_steps = r.wait_steps;
          server_->send_response(r.conn_token, msg);
        });
    engine_->start();
    server_->start();
  }

  ~ServingStack() { stop(); }

  void stop() {
    if (stopped_) return;
    stopped_ = true;
    engine_->stop();
    server_->stop();
  }

  std::uint16_t port() const { return server_->port(); }
  const engine::ServingEngine& engine() const { return *engine_; }

 private:
  std::unique_ptr<net::NetServer> server_;
  std::unique_ptr<engine::ServingEngine> engine_;
  bool stopped_ = false;
};

TEST(ServingLoopback, SingleClientAllAnswered) {
  engine::EngineConfig config;
  config.servers = 32;
  config.shards = 2;
  config.processing_rate = 4;
  config.seed = 11;
  ServingStack stack(config);

  ClientTally tally;
  run_client(stack.port(), /*quota=*/5000, /*concurrency=*/32,
             /*id_base=*/1, /*seed=*/3, tally);
  EXPECT_EQ(tally.protocol_errors, 0u);
  EXPECT_EQ(tally.errors, 0u);
  EXPECT_EQ(tally.ok + tally.rejected, 5000u);
  EXPECT_EQ(tally.answered_ids.size(), 5000u);

  stack.stop();
  const engine::EngineStats stats = stack.engine().stats();
  EXPECT_EQ(stats.submitted, 5000u);
  EXPECT_EQ(stats.completed + stats.rejected + stats.overload_rejected, 5000u);
}

TEST(ServingLoopback, ConcurrentClientsNoCrossTalk) {
  engine::EngineConfig config;
  config.servers = 64;
  config.shards = 4;
  config.processing_rate = 4;
  config.seed = 23;
  ServingStack stack(config);

  constexpr std::size_t kClients = 4;
  constexpr std::uint64_t kQuota = 2500;
  std::vector<ClientTally> tallies(kClients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      run_client(stack.port(), kQuota, /*concurrency=*/16,
                 /*id_base=*/(static_cast<std::uint64_t>(c) << 40) + 1,
                 /*seed=*/100 + c, tallies[c]);
    });
  }
  for (auto& thread : threads) thread.join();

  std::uint64_t answered = 0;
  for (const ClientTally& tally : tallies) {
    EXPECT_EQ(tally.protocol_errors, 0u);
    EXPECT_EQ(tally.errors, 0u);
    answered += tally.answered_ids.size();
  }
  EXPECT_EQ(answered, kClients * kQuota);

  stack.stop();
  EXPECT_EQ(stack.engine().stats().submitted, kClients * kQuota);
}

TEST(ServingLoopback, ServesThroughScriptedCrash) {
  // 10% of servers die mid-run: traffic must keep flowing (possibly with
  // rejections) and the drain must still answer everything.
  engine::EngineConfig config;
  config.servers = 20;
  config.shards = 2;
  config.processing_rate = 2;
  config.queue_capacity = 4;
  config.failure_spec = "script:20,0,down;20,10,down";
  config.seed = 31;
  ServingStack stack(config);

  ClientTally tally;
  run_client(stack.port(), /*quota=*/20000, /*concurrency=*/64,
             /*id_base=*/1, /*seed=*/9, tally);
  EXPECT_EQ(tally.protocol_errors, 0u);
  EXPECT_EQ(tally.errors, 0u);
  EXPECT_EQ(tally.answered_ids.size(), 20000u);

  stack.stop();
  const engine::EngineStats stats = stack.engine().stats();
  EXPECT_EQ(stats.crashes, 2u);
  EXPECT_EQ(stats.servers_down, 2u);
}

TEST(ServingLoopback, MalformedFramePoisonsOnlyThatConnection) {
  engine::EngineConfig config;
  config.servers = 8;
  config.seed = 41;
  ServingStack stack(config);

  // A raw connection that sends a zero-length frame gets dropped...
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(stack.port());
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const std::uint8_t zeros[4] = {0, 0, 0, 0};
    ASSERT_EQ(::send(fd, zeros, sizeof(zeros), 0),
              static_cast<ssize_t>(sizeof(zeros)));
    // The server must close the connection: read() drains to EOF (or a
    // reset, which is an equally acceptable way to be hung up on).
    std::uint8_t sink[64];
    ssize_t n;
    do {
      n = ::recv(fd, sink, sizeof(sink), 0);
    } while (n > 0);
    EXPECT_LE(n, 0);
    ::close(fd);
  }

  // ...while a well-behaved connection keeps working.
  ClientTally tally;
  run_client(stack.port(), /*quota=*/100, /*concurrency=*/8, /*id_base=*/1,
             /*seed=*/5, tally);
  EXPECT_EQ(tally.protocol_errors, 0u);
  EXPECT_EQ(tally.answered_ids.size(), 100u);
}

}  // namespace
}  // namespace rlb
