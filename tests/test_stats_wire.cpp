// Unit tests for the STATS wire channel (net/stats.hpp + the kStats /
// kStatsResponse opcodes in net/wire.hpp): snapshot codec round-trip,
// malformed-payload and version-mismatch rejection, frame classification,
// and the Prometheus / JSON renderings.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/stats.hpp"
#include "net/wire.hpp"

namespace rlb::net {
namespace {

/// A snapshot with every field populated, so the round-trip test covers
/// the full layout (including the vectors and the histogram array).
StatsSnapshot make_full_snapshot() {
  StatsSnapshot snapshot;
  snapshot.uptime_ms = 123456;
  snapshot.role = NodeRole::kRouter;
  snapshot.backend_id = 7;
  snapshot.policy = "greedy";
  snapshot.servers = 64;
  snapshot.replication = 4;
  snapshot.processing_rate = 4;
  snapshot.queue_capacity = 7;
  snapshot.shard_count = 2;
  for (std::uint32_t i = 0; i < 2; ++i) {
    ShardStats shard;
    shard.shard = i;
    shard.submitted = 1000 + i;
    shard.completed = 900 + i;
    shard.rejected_queue_full = 40;
    shard.rejected_all_down = 5;
    shard.rejected_admission = 30;
    shard.rejected_drop = 25 + i;
    shard.errors = i;
    shard.ticks = 5000;
    shard.batches = 4000;
    shard.batched_chunks = 12000;
    shard.max_batch = 32;
    shard.inbound_depth = 3;
    shard.waiting_depth = 2;
    shard.inflight = 1;
    shard.backlog = 17;
    shard.servers_down = i;
    shard.step_ns = 987654321;
    snapshot.shards.push_back(shard);
  }
  snapshot.latency.count = 1000;
  snapshot.latency.sum_us = 500000;
  snapshot.latency.max_us = 9000;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    snapshot.latency.buckets[i] = i * 10;
  }
  // v3 per-hop histograms: distinct values per field so a swapped decode
  // (hop_rtt read into queue_wait or vice versa) fails the round trip.
  snapshot.hop_rtt.count = 77;
  snapshot.hop_rtt.sum_us = 35000;
  snapshot.hop_rtt.max_us = 4200;
  snapshot.hop_rtt.buckets[5] = 77;
  snapshot.queue_wait.count = 333;
  snapshot.queue_wait.sum_us = 9999;
  snapshot.queue_wait.max_us = 512;
  snapshot.queue_wait.buckets[3] = 333;
  snapshot.safe_set.push_back({1, 30, 32.0, 0.9375});
  snapshot.safe_set.push_back({2, 20, 16.0, 1.25});
  snapshot.safe_worst_ratio = 1.25;
  snapshot.safe_violated_level = 2;
  // v4 repair tier: distinct values per field so any decode transposition
  // fails the round trip.
  snapshot.placement_epoch = 11;
  snapshot.repair.migrations_done = 21;
  snapshot.repair.migrations_failed = 2;
  snapshot.repair.migrations_inflight = 1;
  snapshot.repair.chunks_pending = 5;
  snapshot.repair.bytes_sent = 86016;
  snapshot.repair.migrations_in = 13;
  snapshot.repair.migrations_out = 8;
  snapshot.repair.migration_bytes_in = 53248;
  snapshot.repair.migration_bytes_out = 32768;
  // v5 health plane: windowed deltas + alerts, distinct values per
  // histogram so a transposed decode fails the round trip.
  snapshot.window_span_ms = 9500;
  snapshot.win_submitted = 4200;
  snapshot.win_completed = 4100;
  snapshot.win_rejected = 100;
  snapshot.win_latency.count = 41;
  snapshot.win_latency.sum_us = 8200;
  snapshot.win_latency.max_us = 900;
  snapshot.win_latency.buckets[4] = 41;
  snapshot.win_hop_rtt.count = 7;
  snapshot.win_hop_rtt.sum_us = 1400;
  snapshot.win_hop_rtt.max_us = 300;
  snapshot.win_hop_rtt.buckets[6] = 7;
  snapshot.win_queue_wait.count = 19;
  snapshot.win_queue_wait.sum_us = 380;
  snapshot.win_queue_wait.max_us = 40;
  snapshot.win_queue_wait.buckets[2] = 19;
  snapshot.active_alerts = {"safe_set", "p99_jump"};
  return snapshot;
}

TEST(StatsCodec, RoundTripPreservesEveryField) {
  const StatsSnapshot original = make_full_snapshot();
  std::vector<std::uint8_t> payload;
  encode_stats_payload(original, payload);
  ASSERT_FALSE(payload.empty());
  EXPECT_EQ(payload[0], static_cast<std::uint8_t>(MsgType::kStatsResponse));

  StatsSnapshot decoded;
  ASSERT_TRUE(decode_stats_payload(payload.data(), payload.size(), decoded));
  EXPECT_EQ(decoded.version, kStatsVersion);
  EXPECT_EQ(decoded.uptime_ms, original.uptime_ms);
  EXPECT_EQ(decoded.role, original.role);
  EXPECT_EQ(decoded.backend_id, original.backend_id);
  EXPECT_EQ(decoded.policy, original.policy);
  EXPECT_EQ(decoded.servers, original.servers);
  EXPECT_EQ(decoded.replication, original.replication);
  EXPECT_EQ(decoded.processing_rate, original.processing_rate);
  EXPECT_EQ(decoded.queue_capacity, original.queue_capacity);
  EXPECT_EQ(decoded.shard_count, original.shard_count);
  ASSERT_EQ(decoded.shards.size(), original.shards.size());
  for (std::size_t i = 0; i < original.shards.size(); ++i) {
    const ShardStats& a = original.shards[i];
    const ShardStats& b = decoded.shards[i];
    EXPECT_EQ(b.shard, a.shard);
    EXPECT_EQ(b.submitted, a.submitted);
    EXPECT_EQ(b.completed, a.completed);
    EXPECT_EQ(b.rejected_queue_full, a.rejected_queue_full);
    EXPECT_EQ(b.rejected_all_down, a.rejected_all_down);
    EXPECT_EQ(b.rejected_admission, a.rejected_admission);
    EXPECT_EQ(b.rejected_drop, a.rejected_drop);
    EXPECT_EQ(b.errors, a.errors);
    EXPECT_EQ(b.ticks, a.ticks);
    EXPECT_EQ(b.batches, a.batches);
    EXPECT_EQ(b.batched_chunks, a.batched_chunks);
    EXPECT_EQ(b.max_batch, a.max_batch);
    EXPECT_EQ(b.inbound_depth, a.inbound_depth);
    EXPECT_EQ(b.waiting_depth, a.waiting_depth);
    EXPECT_EQ(b.inflight, a.inflight);
    EXPECT_EQ(b.backlog, a.backlog);
    EXPECT_EQ(b.servers_down, a.servers_down);
    EXPECT_EQ(b.step_ns, a.step_ns);
  }
  EXPECT_EQ(decoded.latency.count, original.latency.count);
  EXPECT_EQ(decoded.latency.sum_us, original.latency.sum_us);
  EXPECT_EQ(decoded.latency.max_us, original.latency.max_us);
  EXPECT_EQ(decoded.latency.buckets, original.latency.buckets);
  EXPECT_EQ(decoded.hop_rtt.count, original.hop_rtt.count);
  EXPECT_EQ(decoded.hop_rtt.sum_us, original.hop_rtt.sum_us);
  EXPECT_EQ(decoded.hop_rtt.max_us, original.hop_rtt.max_us);
  EXPECT_EQ(decoded.hop_rtt.buckets, original.hop_rtt.buckets);
  EXPECT_EQ(decoded.queue_wait.count, original.queue_wait.count);
  EXPECT_EQ(decoded.queue_wait.sum_us, original.queue_wait.sum_us);
  EXPECT_EQ(decoded.queue_wait.max_us, original.queue_wait.max_us);
  EXPECT_EQ(decoded.queue_wait.buckets, original.queue_wait.buckets);
  ASSERT_EQ(decoded.safe_set.size(), original.safe_set.size());
  for (std::size_t i = 0; i < original.safe_set.size(); ++i) {
    EXPECT_EQ(decoded.safe_set[i].level, original.safe_set[i].level);
    EXPECT_EQ(decoded.safe_set[i].observed, original.safe_set[i].observed);
    EXPECT_DOUBLE_EQ(decoded.safe_set[i].bound, original.safe_set[i].bound);
    EXPECT_DOUBLE_EQ(decoded.safe_set[i].ratio, original.safe_set[i].ratio);
  }
  EXPECT_DOUBLE_EQ(decoded.safe_worst_ratio, original.safe_worst_ratio);
  EXPECT_EQ(decoded.safe_violated_level, original.safe_violated_level);
  EXPECT_EQ(decoded.placement_epoch, original.placement_epoch);
  EXPECT_EQ(decoded.repair.migrations_done, original.repair.migrations_done);
  EXPECT_EQ(decoded.repair.migrations_failed,
            original.repair.migrations_failed);
  EXPECT_EQ(decoded.repair.migrations_inflight,
            original.repair.migrations_inflight);
  EXPECT_EQ(decoded.repair.chunks_pending, original.repair.chunks_pending);
  EXPECT_EQ(decoded.repair.bytes_sent, original.repair.bytes_sent);
  EXPECT_EQ(decoded.repair.migrations_in, original.repair.migrations_in);
  EXPECT_EQ(decoded.repair.migrations_out, original.repair.migrations_out);
  EXPECT_EQ(decoded.repair.migration_bytes_in,
            original.repair.migration_bytes_in);
  EXPECT_EQ(decoded.repair.migration_bytes_out,
            original.repair.migration_bytes_out);
  EXPECT_EQ(decoded.window_span_ms, original.window_span_ms);
  EXPECT_EQ(decoded.win_submitted, original.win_submitted);
  EXPECT_EQ(decoded.win_completed, original.win_completed);
  EXPECT_EQ(decoded.win_rejected, original.win_rejected);
  EXPECT_EQ(decoded.win_latency.count, original.win_latency.count);
  EXPECT_EQ(decoded.win_latency.buckets, original.win_latency.buckets);
  EXPECT_EQ(decoded.win_hop_rtt.count, original.win_hop_rtt.count);
  EXPECT_EQ(decoded.win_hop_rtt.buckets, original.win_hop_rtt.buckets);
  EXPECT_EQ(decoded.win_queue_wait.count, original.win_queue_wait.count);
  EXPECT_EQ(decoded.win_queue_wait.buckets, original.win_queue_wait.buckets);
  EXPECT_EQ(decoded.active_alerts, original.active_alerts);
}

TEST(StatsCodec, EmptySnapshotRoundTrips) {
  StatsSnapshot original;  // default-constructed: no shards, no safe set
  std::vector<std::uint8_t> payload;
  encode_stats_payload(original, payload);
  StatsSnapshot decoded;
  ASSERT_TRUE(decode_stats_payload(payload.data(), payload.size(), decoded));
  EXPECT_TRUE(decoded.shards.empty());
  EXPECT_TRUE(decoded.safe_set.empty());
  EXPECT_EQ(decoded.policy, "");
}

TEST(StatsCodec, TruncationAtEveryPrefixIsRejected) {
  std::vector<std::uint8_t> payload;
  encode_stats_payload(make_full_snapshot(), payload);
  StatsSnapshot decoded;
  // Every strict prefix must fail cleanly: either a cursor bounds check
  // or the final exhaustion check catches it.
  for (std::size_t size = 0; size < payload.size(); ++size) {
    EXPECT_FALSE(decode_stats_payload(payload.data(), size, decoded))
        << "prefix of " << size << " bytes decoded";
  }
}

TEST(StatsCodec, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> payload;
  encode_stats_payload(make_full_snapshot(), payload);
  payload.push_back(0xAB);
  StatsSnapshot decoded;
  EXPECT_FALSE(decode_stats_payload(payload.data(), payload.size(), decoded));
}

TEST(StatsCodec, VersionMismatchIsRejected) {
  std::vector<std::uint8_t> payload;
  encode_stats_payload(make_full_snapshot(), payload);
  // version is the u32 right after the type byte (little-endian)
  payload[1] = static_cast<std::uint8_t>(kStatsVersion + 1);
  StatsSnapshot decoded;
  EXPECT_FALSE(decode_stats_payload(payload.data(), payload.size(), decoded));
}

TEST(StatsCodec, VersionSkewIsRejectedNotMisparsed) {
  // A v5 node scraped by a v4-only decoder (or vice versa) must fail the
  // version check up front — never read v5 bytes as v4 fields.  The codec
  // checks the version word before touching any other field, so ANY other
  // version value is rejected no matter what follows.
  std::vector<std::uint8_t> payload;
  encode_stats_payload(make_full_snapshot(), payload);
  for (const std::uint8_t skewed :
       {static_cast<std::uint8_t>(kStatsVersion - 1),
        static_cast<std::uint8_t>(kStatsVersion + 1)}) {
    std::vector<std::uint8_t> patched = payload;
    patched[1] = skewed;
    StatsSnapshot decoded;
    decoded.placement_epoch = 0xDEAD;
    EXPECT_FALSE(
        decode_stats_payload(patched.data(), patched.size(), decoded));
  }
}

TEST(StatsCodec, PeekVersionReadsTheVersionWordOnly) {
  std::vector<std::uint8_t> payload;
  encode_stats_payload(make_full_snapshot(), payload);
  std::uint32_t version = 0;
  ASSERT_TRUE(peek_stats_version(payload.data(), payload.size(), version));
  EXPECT_EQ(version, kStatsVersion);

  // The peek works on a version-skewed (undecodable) payload — that is
  // its whole point: classifying the failure for StatsVersionMismatch.
  payload[1] = 4;
  payload[2] = 0;
  ASSERT_TRUE(peek_stats_version(payload.data(), payload.size(), version));
  EXPECT_EQ(version, 4u);

  // Too-short buffers and non-STATS_RESP type bytes don't peek.
  EXPECT_FALSE(peek_stats_version(payload.data(), 4, version));
  payload[0] = static_cast<std::uint8_t>(MsgType::kResponse);
  EXPECT_FALSE(peek_stats_version(payload.data(), payload.size(), version));
}

TEST(StatsCodec, UnknownRoleByteIsRejected) {
  std::vector<std::uint8_t> payload;
  encode_stats_payload(make_full_snapshot(), payload);
  // Layout: type u8, version u32, uptime u64 -> role byte at offset 13.
  ASSERT_GT(payload.size(), 13u);
  ASSERT_EQ(payload[13], static_cast<std::uint8_t>(NodeRole::kRouter));
  payload[13] = static_cast<std::uint8_t>(NodeRole::kRouter) + 1;
  StatsSnapshot decoded;
  EXPECT_FALSE(decode_stats_payload(payload.data(), payload.size(), decoded));
}

TEST(StatsCodec, WrongTypeByteIsRejected) {
  std::vector<std::uint8_t> payload;
  encode_stats_payload(make_full_snapshot(), payload);
  payload[0] = static_cast<std::uint8_t>(MsgType::kResponse);
  StatsSnapshot decoded;
  EXPECT_FALSE(decode_stats_payload(payload.data(), payload.size(), decoded));
}

TEST(StatsWire, StatsRequestRoundTripsThroughDecodePayload) {
  std::vector<std::uint8_t> frame;
  encode_stats_request(StatsRequestMsg{0xDEADBEEF}, frame);
  // Frame = u32 length prefix + payload.
  ASSERT_EQ(frame.size(), 4 + kStatsPayloadSize);
  RequestMsg request;
  ResponseMsg response;
  StatsRequestMsg stats;
  EXPECT_EQ(decode_payload(frame.data() + 4, frame.size() - 4, request,
                           response, stats),
            Decoded::kStats);
  EXPECT_EQ(stats.flags, 0xDEADBEEFu);
}

TEST(StatsWire, EpochedStatsRequestCarriesEpoch) {
  // A nonzero sender epoch switches to the extended 13-byte payload...
  std::vector<std::uint8_t> frame;
  encode_stats_request(StatsRequestMsg{7, 42}, frame);
  ASSERT_EQ(frame.size(), 4 + kStatsEpochPayloadSize);
  RequestMsg request;
  ResponseMsg response;
  StatsRequestMsg stats;
  EXPECT_EQ(decode_payload(frame.data() + 4, frame.size() - 4, request,
                           response, stats),
            Decoded::kStats);
  EXPECT_EQ(stats.flags, 7u);
  EXPECT_EQ(stats.epoch, 42u);

  // ...while epoch 0 keeps the legacy 5-byte form, so pre-repair peers
  // never see the extension.
  frame.clear();
  encode_stats_request(StatsRequestMsg{7, 0}, frame);
  ASSERT_EQ(frame.size(), 4 + kStatsPayloadSize);
  EXPECT_EQ(decode_payload(frame.data() + 4, frame.size() - 4, request,
                           response, stats),
            Decoded::kStats);
  EXPECT_EQ(stats.epoch, 0u);
}

TEST(StatsWire, StatsRequestWithWrongSizeIsMalformed) {
  std::vector<std::uint8_t> frame;
  encode_stats_request(StatsRequestMsg{1}, frame);
  RequestMsg request;
  ResponseMsg response;
  StatsRequestMsg stats;
  EXPECT_EQ(decode_payload(frame.data() + 4, frame.size() - 4 - 1, request,
                           response, stats),
            Decoded::kMalformed);
}

TEST(StatsWire, ResponseFrameWrapsPayloadAndRejectsOversize) {
  std::vector<std::uint8_t> payload;
  encode_stats_payload(make_full_snapshot(), payload);
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(encode_stats_response_frame(payload, frame));
  ASSERT_EQ(frame.size(), payload.size() + 4);

  // The framed payload classifies as kStatsResponse...
  RequestMsg request;
  ResponseMsg response;
  StatsRequestMsg stats;
  EXPECT_EQ(decode_payload(frame.data() + 4, frame.size() - 4, request,
                           response, stats),
            Decoded::kStatsResponse);
  // ...and still decodes to the snapshot.
  StatsSnapshot decoded;
  EXPECT_TRUE(decode_stats_payload(frame.data() + 4, frame.size() - 4,
                                   decoded));

  // A payload over the frame cap must be refused, not truncated.
  std::vector<std::uint8_t> oversize(kMaxFramePayload + 1,
                                     static_cast<std::uint8_t>(
                                         MsgType::kStatsResponse));
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(encode_stats_response_frame(oversize, out));
}

TEST(LatencyStats, QuantilesTrackTheLog2Buckets) {
  LatencyStats latency;
  // 90 samples in bucket 3 (us in (8, 16]), 10 in bucket 10.
  latency.buckets[3] = 90;
  latency.buckets[10] = 10;
  latency.count = 100;
  latency.max_us = 1500;
  EXPECT_DOUBLE_EQ(latency.quantile_us(0.5), 16.0);   // 2^(3+1)
  EXPECT_DOUBLE_EQ(latency.quantile_us(0.99), 2048.0);  // 2^(10+1)
  EXPECT_EQ(LatencyStats{}.quantile_us(0.5), 0.0);
}

TEST(StatsRender, PrometheusExpositionIsWellFormed) {
  const std::string text = render_prometheus(make_full_snapshot());
  EXPECT_NE(text.find("rlb_up 1\n"), std::string::npos);
  EXPECT_NE(text.find("rlb_engine_submitted_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("rlb_engine_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("rlb_router_hop_rtt_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("rlb_engine_queue_wait_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("rlb_safe_set_ratio{level=\"2\"}"), std::string::npos);
  EXPECT_NE(text.find("rlb_safe_set_worst_ratio"), std::string::npos);
  EXPECT_NE(text.find("rlb_placement_epoch 11\n"), std::string::npos);
  EXPECT_NE(text.find("rlb_repair_migrations_done_total 21\n"),
            std::string::npos);
  EXPECT_NE(text.find("rlb_repair_chunks_pending 5\n"), std::string::npos);
  EXPECT_NE(text.find("rlb_win_span_ms 9500\n"), std::string::npos);
  EXPECT_NE(text.find("rlb_win_completed 4100\n"), std::string::npos);
  EXPECT_NE(text.find("rlb_win_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("rlb_alert_active{rule=\"safe_set\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rlb_alert_active{rule=\"p99_jump\"} 1\n"),
            std::string::npos);
  // Every non-comment line splits into `body value` with a numeric value.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string value = line.substr(space + 1);
    std::size_t pos = 0;
    EXPECT_NO_THROW({
      (void)std::stod(value, &pos);
      EXPECT_EQ(pos, value.size()) << line;
    }) << line;
  }
}

TEST(StatsRender, JsonCarriesTotalsAndSafeSet) {
  const std::string json = render_json(make_full_snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Totals sum the two shard rows (1000 + 1001 submitted).
  EXPECT_NE(json.find("\"submitted\":2001"), std::string::npos);
  EXPECT_NE(json.find("\"hop_rtt_count\":77"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_count\":333"), std::string::npos);
  EXPECT_NE(json.find("\"safe_worst_ratio\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"safe_violated_level\":2"), std::string::npos);
  EXPECT_NE(json.find("\"placement_epoch\":11"), std::string::npos);
  EXPECT_NE(json.find("\"migrations_done\":21"), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"greedy\""), std::string::npos);
  // v5 additions are strictly additive keys (existing consumers keep
  // parsing): the windowed block and the active-alert list.
  EXPECT_NE(json.find("\"window\":{\"span_ms\":9500"), std::string::npos);
  EXPECT_NE(json.find("\"alerts\":[\"safe_set\",\"p99_jump\"]"),
            std::string::npos);
}

TEST(StatsRender, RoleAndBackendIdAppearInBothRenderings) {
  const StatsSnapshot snapshot = make_full_snapshot();
  const std::string prom = render_prometheus(snapshot);
  EXPECT_NE(prom.find("role=\"router\""), std::string::npos);
  EXPECT_NE(prom.find("backend_id=\"7\""), std::string::npos);
  const std::string json = render_json(snapshot);
  EXPECT_NE(json.find("\"role\":\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"backend_id\":7"), std::string::npos);
}

}  // namespace
}  // namespace rlb::net
