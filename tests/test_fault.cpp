// Tests for the fault-injection subsystem: cluster up/down state, failure
// schedules, simulator wiring, and per-policy failover semantics.
#include "core/failure.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "core/metrics.hpp"
#include "core/simulator.hpp"
#include "harness/experiment.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/trial_runner.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "policies/factory.hpp"
#include "policies/greedy.hpp"
#include "workloads/repeated_set.hpp"

namespace rlb {
namespace {

using core::FailureTransition;

// ---------------------------------------------------------------- cluster

TEST(ClusterFaultState, StartsAllUp) {
  core::Cluster cluster(4, 8);
  for (core::ServerId s = 0; s < 4; ++s) EXPECT_TRUE(cluster.is_up(s));
  EXPECT_TRUE(cluster.all_up());
  EXPECT_EQ(cluster.down_count(), 0u);
}

TEST(ClusterFaultState, SetUpTogglesAndCounts) {
  core::Cluster cluster(4, 8);
  cluster.set_up(1, false);
  cluster.set_up(3, false);
  EXPECT_FALSE(cluster.is_up(1));
  EXPECT_TRUE(cluster.is_up(2));
  EXPECT_EQ(cluster.down_count(), 2u);
  EXPECT_FALSE(cluster.all_up());
  cluster.set_up(1, true);
  EXPECT_EQ(cluster.down_count(), 1u);
}

TEST(ClusterFaultState, RepeatedSetIsNoOp) {
  core::Cluster cluster(2, 8);
  cluster.set_up(0, false);
  cluster.set_up(0, false);  // must not double-count
  EXPECT_EQ(cluster.down_count(), 1u);
  cluster.set_up(0, true);
  cluster.set_up(0, true);
  EXPECT_EQ(cluster.down_count(), 0u);
}

// -------------------------------------------------------------- schedules

TEST(ScriptedFailureSchedule, AppliesEventsAtTheirStep) {
  core::ScriptedFailureSchedule schedule({
      {/*step=*/5, /*server=*/1, /*up=*/false},
      {/*step=*/2, /*server=*/0, /*up=*/false},  // out of order on purpose
      {/*step=*/5, /*server=*/0, /*up=*/true},
  });
  std::vector<std::uint8_t> up(3, 1);
  std::vector<FailureTransition> out;

  schedule.transitions(2, up, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].server, 0u);
  EXPECT_FALSE(out[0].up);

  out.clear();
  schedule.transitions(3, up, out);
  EXPECT_TRUE(out.empty());

  schedule.transitions(5, up, out);  // appends, does not clear
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].server, 1u);
  EXPECT_FALSE(out[0].up);
  EXPECT_EQ(out[1].server, 0u);
  EXPECT_TRUE(out[1].up);
}

TEST(ScriptedFailureSchedule, IgnoresOutOfRangeServers) {
  core::ScriptedFailureSchedule schedule({{0, /*server=*/9, false}});
  std::vector<std::uint8_t> up(2, 1);
  std::vector<FailureTransition> out;
  schedule.transitions(0, up, out);
  EXPECT_TRUE(out.empty());
}

TEST(BernoulliFailureSchedule, ValidatesArguments) {
  EXPECT_THROW(core::BernoulliFailureSchedule(-0.1, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(core::BernoulliFailureSchedule(1.5, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(core::BernoulliFailureSchedule(0.1, -1, 1),
               std::invalid_argument);
  EXPECT_THROW(core::RackFailureSchedule(0, 0.1, 10, 1),
               std::invalid_argument);
}

TEST(BernoulliFailureSchedule, DeterministicInSeed) {
  auto drive = [](core::FailureSchedule& schedule) {
    std::vector<std::uint8_t> up(32, 1);
    std::vector<std::pair<core::ServerId, bool>> seen;
    std::vector<FailureTransition> out;
    for (core::Time t = 0; t < 200; ++t) {
      out.clear();
      schedule.transitions(t, up, out);
      for (const auto& tr : out) {
        up[tr.server] = tr.up ? 1 : 0;
        seen.emplace_back(tr.server, tr.up);
      }
    }
    return seen;
  };
  core::BernoulliFailureSchedule a(0.05, 5.0, 99);
  core::BernoulliFailureSchedule b(0.05, 5.0, 99);
  core::BernoulliFailureSchedule c(0.05, 5.0, 100);
  const auto ta = drive(a);
  EXPECT_EQ(ta, drive(b));
  EXPECT_NE(ta, drive(c));
  EXPECT_FALSE(ta.empty());  // 32 servers x 200 steps at 5% must fire
}

TEST(BernoulliFailureSchedule, ZeroRateNeverFires) {
  core::BernoulliFailureSchedule schedule(0.0, 10.0, 7);
  std::vector<std::uint8_t> up(16, 1);
  std::vector<FailureTransition> out;
  for (core::Time t = 0; t < 100; ++t) schedule.transitions(t, up, out);
  EXPECT_TRUE(out.empty());
}

TEST(BernoulliFailureSchedule, MttrZeroMeansNoRecovery) {
  core::BernoulliFailureSchedule schedule(0.2, 0.0, 11);
  std::vector<std::uint8_t> up(16, 1);
  std::vector<FailureTransition> out;
  for (core::Time t = 0; t < 300; ++t) {
    out.clear();
    schedule.transitions(t, up, out);
    for (const auto& tr : out) {
      EXPECT_FALSE(tr.up);  // only crashes, never recoveries
      up[tr.server] = 0;
    }
  }
  // At 20% per step over 300 steps every server must have crashed.
  for (const auto flag : up) EXPECT_EQ(flag, 0);
}

TEST(RackFailureSchedule, RacksTransitionAsAUnit) {
  core::RackFailureSchedule schedule(/*racks=*/4, /*rate=*/0.3, /*mttr=*/3.0,
                                     13);
  std::vector<std::uint8_t> up(16, 1);
  std::vector<FailureTransition> out;
  bool fired = false;
  for (core::Time t = 0; t < 100; ++t) {
    out.clear();
    schedule.transitions(t, up, out);
    // Transitions arrive in whole racks of 4 contiguous servers.
    ASSERT_EQ(out.size() % 4, 0u);
    for (std::size_t i = 0; i < out.size(); i += 4) {
      const std::size_t rack = out[i].server / 4;
      for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_EQ(out[i + j].server, rack * 4 + j);
        EXPECT_EQ(out[i + j].up, out[i].up);
      }
    }
    for (const auto& tr : out) up[tr.server] = tr.up ? 1 : 0;
    fired = fired || !out.empty();
    // Invariant: each rack is uniformly up or uniformly down.
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t j = 1; j < 4; ++j) {
        EXPECT_EQ(up[r * 4 + j], up[r * 4]);
      }
    }
  }
  EXPECT_TRUE(fired);
}

// -------------------------------------------------- single-queue failover

policies::SingleQueueConfig tiny_config() {
  policies::SingleQueueConfig config;
  config.servers = 2;  // d = 2 over m = 2: every chunk's choices are {0, 1}
  config.replication = 2;
  config.processing_rate = 1;
  config.queue_capacity = 8;
  config.seed = 42;
  return config;
}

TEST(GreedyFailover, RoutesAroundDownReplica) {
  policies::GreedyBalancer greedy(tiny_config());
  core::Metrics metrics;
  greedy.set_server_up(0, false, /*dump_queue=*/true, metrics);
  EXPECT_FALSE(greedy.server_up(0));
  EXPECT_TRUE(greedy.server_up(1));

  const std::vector<core::ChunkId> requests{101, 202, 303};
  greedy.step(0, requests, metrics);
  EXPECT_EQ(greedy.backlog(0), 0u);  // nothing routed to the corpse
  EXPECT_EQ(metrics.rejected(), 0u);  // the live replica absorbed all 3
  EXPECT_EQ(metrics.submitted(), 3u);
}

TEST(GreedyFailover, RejectsWhenAllReplicasDown) {
  policies::GreedyBalancer greedy(tiny_config());
  core::Metrics metrics;
  greedy.set_server_up(0, false, true, metrics);
  greedy.set_server_up(1, false, true, metrics);

  const std::vector<core::ChunkId> requests{101, 202, 303};
  greedy.step(0, requests, metrics);
  EXPECT_EQ(metrics.rejected(), 3u);
  EXPECT_EQ(greedy.total_backlog(), 0u);

  // Recovery restores service.
  greedy.set_server_up(1, true, true, metrics);
  greedy.step(1, requests, metrics);
  EXPECT_EQ(metrics.rejected(), 3u);  // no new rejections
  EXPECT_EQ(greedy.backlog(0), 0u);
}

TEST(GreedyFailover, DownServerStopsProcessing) {
  auto config = tiny_config();
  config.processing_rate = 2;
  policies::GreedyBalancer greedy(config);
  core::Metrics metrics;
  const std::vector<core::ChunkId> requests{101, 202, 303, 404};
  greedy.step(0, requests, metrics);
  // Crash WITHOUT dumping: the queue must freeze, not drain.
  greedy.set_server_up(0, false, /*dump_queue=*/false, metrics);
  const auto frozen = greedy.backlog(0);
  const std::vector<core::ChunkId> none;
  greedy.step(1, none, metrics);
  greedy.step(2, none, metrics);
  EXPECT_EQ(greedy.backlog(0), frozen);
  // Recovery resumes draining.
  greedy.set_server_up(0, true, false, metrics);
  greedy.step(3, none, metrics);
  EXPECT_LE(greedy.backlog(0), frozen);
}

TEST(GreedyFailover, QueueDumpAccountsDroppedRequests) {
  auto config = tiny_config();
  config.per_server_rate = {0, 0};  // nothing ever drains
  policies::GreedyBalancer greedy(config);
  core::Metrics metrics;
  const std::vector<core::ChunkId> requests{101, 202, 303, 404, 505};
  greedy.step(0, requests, metrics);
  ASSERT_EQ(greedy.total_backlog(), 5u);

  const auto on_victim = greedy.backlog(0);
  greedy.set_server_up(0, false, /*dump_queue=*/true, metrics);
  EXPECT_EQ(greedy.backlog(0), 0u);
  EXPECT_EQ(metrics.dropped_from_queue(), on_victim);
  EXPECT_EQ(metrics.rejected(), on_victim);  // dumps count as rejections
  // Dumping an empty queue on a second crash of the other server is exact.
  greedy.set_server_up(1, false, true, metrics);
  EXPECT_EQ(metrics.dropped_from_queue(), 5u);
}

TEST(PolicyFailover, AllSingleQueuePoliciesSkipDownReplicas) {
  for (const std::string name :
       {"greedy", "threshold", "sticky", "random-of-d", "round-robin",
        "per-step-greedy"}) {
    policies::PolicyConfig config;
    config.servers = 2;
    config.replication = 2;
    config.processing_rate = 1;
    config.queue_capacity = 8;
    config.threshold = 2;
    config.seed = 5;
    auto balancer = policies::make_policy(name, config);
    core::Metrics metrics;
    balancer->set_server_up(0, false, true, metrics);

    const std::vector<core::ChunkId> requests{7, 8, 9};
    balancer->step(0, requests, metrics);
    EXPECT_EQ(balancer->backlog(0), 0u) << name;
    EXPECT_EQ(metrics.rejected(), 0u) << name;
  }
}

TEST(StickyFailover, CachedReplicaGoingDownForcesReassessment) {
  policies::PolicyConfig config;
  config.servers = 2;
  config.replication = 2;
  config.processing_rate = 1;
  config.queue_capacity = 8;
  config.threshold = 8;  // high trigger: sticky would never reassess
  config.seed = 5;
  auto balancer = policies::make_policy("sticky", config);
  core::Metrics metrics;

  // Let the sticky cache latch an assignment for every chunk...
  const std::vector<core::ChunkId> requests{7, 8, 9};
  balancer->step(0, requests, metrics);
  // ...then kill both servers, recover only server 1, and re-request: any
  // chunk whose cached pick was server 0 must fail over, not route blind.
  balancer->set_server_up(0, false, true, metrics);
  balancer->step(1, requests, metrics);
  EXPECT_EQ(balancer->backlog(0), 0u);
  EXPECT_EQ(metrics.rejected(), 0u);
}

// ---------------------------------------------------- delayed cuckoo

policies::DelayedCuckooConfig tiny_cuckoo_config() {
  policies::DelayedCuckooConfig config;
  config.servers = 2;
  config.processing_rate = 16;
  config.seed = 42;
  return config;
}

TEST(DelayedCuckooFailover, RoutesAroundDownReplica) {
  policies::DelayedCuckooBalancer cuckoo(tiny_cuckoo_config());
  core::Metrics metrics;
  cuckoo.set_server_up(0, false, true, metrics);

  const std::vector<core::ChunkId> requests{101, 202, 303};
  for (core::Time t = 0; t < 8; ++t) {
    cuckoo.step(t, requests, metrics);
    EXPECT_EQ(cuckoo.backlog(0), 0u);
  }
  EXPECT_EQ(metrics.rejected(), 0u);
  EXPECT_GT(metrics.completed(), 0u);
}

TEST(DelayedCuckooFailover, RejectsWhenAllReplicasDownThenRecovers) {
  policies::DelayedCuckooBalancer cuckoo(tiny_cuckoo_config());
  core::Metrics metrics;
  cuckoo.set_server_up(0, false, true, metrics);
  cuckoo.set_server_up(1, false, true, metrics);

  const std::vector<core::ChunkId> requests{101, 202, 303};
  cuckoo.step(0, requests, metrics);
  EXPECT_EQ(metrics.rejected(), 3u);
  EXPECT_EQ(cuckoo.total_backlog(), 0u);

  cuckoo.set_server_up(0, true, true, metrics);
  cuckoo.step(1, requests, metrics);
  EXPECT_EQ(metrics.rejected(), 3u);  // no new rejections after recovery
  EXPECT_EQ(cuckoo.backlog(1), 0u);
}

TEST(DelayedCuckooFailover, QueueDumpClearsAllFourQueues) {
  auto config = tiny_cuckoo_config();
  config.processing_rate = 4;  // slow drain so a backlog can build
  policies::DelayedCuckooBalancer cuckoo(config);
  core::Metrics metrics;
  std::vector<core::ChunkId> requests;
  for (core::ChunkId x = 0; x < 12; ++x) requests.push_back(1000 + x);
  cuckoo.step(0, requests, metrics);
  cuckoo.step(1, requests, metrics);
  ASSERT_GT(cuckoo.total_backlog(), 0u);

  const auto before = metrics.dropped_from_queue();
  const auto victim_backlog = cuckoo.backlog(0);
  cuckoo.set_server_up(0, false, /*dump_queue=*/true, metrics);
  EXPECT_EQ(cuckoo.backlog(0), 0u);
  EXPECT_EQ(metrics.dropped_from_queue() - before, victim_backlog);
}

// ------------------------------------------------------------- simulator

TEST(SimulatorFaults, AppliesScheduleAndCountsTransitions) {
  policies::GreedyBalancer greedy(tiny_config());
  workloads::RepeatedSetWorkload workload(2, 1ULL << 20, 3);
  core::ScriptedFailureSchedule schedule({
      {/*step=*/2, /*server=*/0, /*up=*/false},
      {/*step=*/5, /*server=*/0, /*up=*/true},
      {/*step=*/7, /*server=*/1, /*up=*/false},
  });
  core::SimConfig sim;
  sim.steps = 10;
  sim.failure_schedule = &schedule;
  const core::SimResult result = core::simulate(greedy, workload, sim);
  EXPECT_EQ(result.crashes, 2u);
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(result.down_at_end, 1u);
  EXPECT_FALSE(greedy.server_up(1));
}

TEST(SimulatorFaults, NoOpTransitionsAreIgnored) {
  policies::GreedyBalancer greedy(tiny_config());
  workloads::RepeatedSetWorkload workload(2, 1ULL << 20, 3);
  core::ScriptedFailureSchedule schedule({
      {1, 0, false},
      {2, 0, false},  // already down: must not double-count
      {3, 9, false},  // out of range: ignored
  });
  core::SimConfig sim;
  sim.steps = 5;
  sim.failure_schedule = &schedule;
  const core::SimResult result = core::simulate(greedy, workload, sim);
  EXPECT_EQ(result.crashes, 1u);
  EXPECT_EQ(result.down_at_end, 1u);
}

TEST(SimulatorFaults, DeterministicAcrossThreadCounts) {
  // The full fault pipeline must aggregate identically no matter how many
  // worker threads run the trials: every stochastic component (workload,
  // placement, failure schedule) is rebuilt per trial from the derived
  // seed.
  struct Outcome {
    std::uint64_t rejected = 0;
    std::uint64_t submitted = 0;
    std::uint64_t crashes = 0;
    std::uint64_t recoveries = 0;
    bool operator==(const Outcome&) const = default;
  };
  const std::function<Outcome(std::uint64_t, std::size_t)> trial =
      [](std::uint64_t seed, std::size_t) {
        policies::SingleQueueConfig config;
        config.servers = 32;
        config.replication = 2;
        config.processing_rate = 2;
        config.queue_capacity = 6;
        config.seed = seed;
        policies::GreedyBalancer greedy(config);
        workloads::RepeatedSetWorkload workload(
            32, 1ULL << 30, stats::derive_seed(seed, 1));
        core::BernoulliFailureSchedule schedule(
            0.02, 10.0, stats::derive_seed(seed, 2));
        core::SimConfig sim;
        sim.steps = 60;
        sim.failure_schedule = &schedule;
        const core::SimResult r = core::simulate(greedy, workload, sim);
        return Outcome{r.metrics.rejected(), r.metrics.submitted(), r.crashes,
                       r.recoveries};
      };

  parallel::ThreadPool serial(1);
  parallel::ThreadPool wide(4);
  const auto a = parallel::run_trials<Outcome>(serial, 12, 77, trial);
  const auto b = parallel::run_trials<Outcome>(wide, 12, 77, trial);
  EXPECT_EQ(a, b);
  std::uint64_t crashes = 0;
  for (const auto& o : a) crashes += o.crashes;
  EXPECT_GT(crashes, 0u);  // the schedule actually fired
}

TEST(SimulatorFaults, HarnessFaultOverloadIsDeterministic) {
  const harness::BalancerFactory make_balancer = [](std::uint64_t seed) {
    policies::SingleQueueConfig config;
    config.servers = 32;
    config.replication = 2;
    config.processing_rate = 2;
    config.queue_capacity = 6;
    config.seed = seed;
    return std::make_unique<policies::GreedyBalancer>(config);
  };
  const harness::WorkloadFactory make_workload = [](std::uint64_t seed) {
    return std::make_unique<workloads::RepeatedSetWorkload>(
        32, 1ULL << 30, stats::derive_seed(seed, 1));
  };
  const harness::FailureScheduleFactory make_schedule =
      [](std::uint64_t seed) {
        return std::make_unique<core::BernoulliFailureSchedule>(
            0.02, 10.0, stats::derive_seed(seed, 2));
      };
  core::SimConfig sim;
  sim.steps = 60;
  const auto a = harness::run_trials(8, 123, make_balancer, make_workload,
                                     sim, make_schedule);
  const auto b = harness::run_trials(8, 123, make_balancer, make_workload,
                                     sim, make_schedule);
  EXPECT_EQ(a.total_rejected, b.total_rejected);
  EXPECT_EQ(a.total_crashes, b.total_crashes);
  EXPECT_EQ(a.total_recoveries, b.total_recoveries);
  EXPECT_GT(a.total_crashes, 0u);
}

}  // namespace
}  // namespace rlb
