// Unit tests for chunk placement (core/placement.hpp).
//
// The stability property tested here IS the paper's reappearance
// dependency: a chunk's d candidate servers never change across accesses.
#include "core/placement.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rlb::core {
namespace {

TEST(Placement, RejectsInvalidArguments) {
  EXPECT_THROW(Placement(0, 2, 1), std::invalid_argument);
  EXPECT_THROW(Placement(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(Placement(10, 9, 1), std::invalid_argument);   // > kMax
  EXPECT_THROW(Placement(3, 4, 1), std::invalid_argument);    // d > m
}

TEST(Placement, ChoicesAreStableAcrossCalls) {
  const Placement placement(128, 3, 42);
  for (ChunkId x = 0; x < 200; ++x) {
    const ChoiceList first = placement.choices(x);
    const ChoiceList second = placement.choices(x);
    ASSERT_EQ(first.size(), second.size());
    for (unsigned i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i], second[i]) << "chunk " << x << " replica " << i;
    }
  }
}

TEST(Placement, ChoicesAreDistinctServers) {
  const Placement placement(16, 4, 7);
  for (ChunkId x = 0; x < 500; ++x) {
    const ChoiceList choices = placement.choices(x);
    ASSERT_EQ(choices.size(), 4u);
    std::set<ServerId> unique(choices.begin(), choices.end());
    EXPECT_EQ(unique.size(), 4u) << "chunk " << x;
  }
}

TEST(Placement, ChoicesInRange) {
  const Placement placement(10, 2, 3);
  for (ChunkId x = 0; x < 300; ++x) {
    for (ServerId s : placement.choices(x)) EXPECT_LT(s, 10u);
  }
}

TEST(Placement, DifferentSeedsGiveDifferentPlacements) {
  const Placement a(1024, 2, 1), b(1024, 2, 2);
  int agreements = 0;
  for (ChunkId x = 0; x < 100; ++x) {
    if (a.choices(x)[0] == b.choices(x)[0]) ++agreements;
  }
  EXPECT_LT(agreements, 10);  // ~100/1024 expected by chance
}

TEST(Placement, FirstReplicaIsRoughlyUniform) {
  constexpr std::size_t kServers = 16;
  const Placement placement(kServers, 2, 99);
  std::vector<int> counts(kServers, 0);
  constexpr int kChunks = 48000;
  for (ChunkId x = 0; x < kChunks; ++x) ++counts[placement.choices(x)[0]];
  const double expected = static_cast<double>(kChunks) / kServers;
  for (std::size_t s = 0; s < kServers; ++s) {
    EXPECT_NEAR(counts[s], expected, 5 * std::sqrt(expected)) << "server " << s;
  }
}

TEST(Placement, ReplicationEqualsServerCountCoversAll) {
  // Extreme case d == m: each chunk must hit every server exactly once.
  const Placement placement(4, 4, 5);
  for (ChunkId x = 0; x < 50; ++x) {
    const ChoiceList choices = placement.choices(x);
    std::set<ServerId> unique(choices.begin(), choices.end());
    EXPECT_EQ(unique.size(), 4u);
  }
}

TEST(Placement, PairDistributionHitsAllPairs) {
  // With d = 2 over 6 servers, all 15 unordered pairs should appear among
  // enough chunks.
  const Placement placement(6, 2, 11);
  std::set<std::pair<ServerId, ServerId>> pairs;
  for (ChunkId x = 0; x < 2000; ++x) {
    const ChoiceList choices = placement.choices(x);
    ServerId a = choices[0], b = choices[1];
    if (a > b) std::swap(a, b);
    pairs.emplace(a, b);
  }
  EXPECT_EQ(pairs.size(), 15u);
}

TEST(ChoiceList, ContainsAndIteration) {
  ChoiceList list;
  list.push_back(3);
  list.push_back(9);
  EXPECT_TRUE(list.contains(3));
  EXPECT_TRUE(list.contains(9));
  EXPECT_FALSE(list.contains(4));
  EXPECT_EQ(list.size(), 2u);
  unsigned visited = 0;
  for (ServerId s : list) {
    EXPECT_TRUE(s == 3 || s == 9);
    ++visited;
  }
  EXPECT_EQ(visited, 2u);
}

}  // namespace
}  // namespace rlb::core
