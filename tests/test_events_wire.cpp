// EVENTS wire-format tests: EVENTS_RESP payload round-trip, rejection of
// truncated / version-skewed / oversized / trailing-garbage payloads,
// make_events_snapshot cursor semantics against the process journal, the
// end-to-end NetServer/Client EVENTS exchange, and the client-side
// StatsVersionMismatch raised against a peer speaking a different
// snapshot version.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/events_wire.hpp"
#include "net/server.hpp"
#include "net/stats.hpp"
#include "net/wire.hpp"
#include "obs/journal.hpp"

namespace rlb::net {
namespace {

EventsSnapshot make_full_snapshot() {
  EventsSnapshot snap;
  snap.role = NodeRole::kRouter;
  snap.backend_id = 42;
  snap.steady_ns = 111'222'333;
  snap.wall_ns = 1'700'000'000'000'000'000ull;
  snap.dropped = 12;
  snap.next_cursor = 20;
  snap.remaining = 3;
  EventRecord down;
  down.seq = 18;
  down.steady_ns = 100;
  down.wall_ns = 200;
  down.type = 2;  // MEMBER_DOWN
  down.a0 = 4;
  down.a1 = 1;
  snap.events.push_back(down);
  EventRecord alert;
  alert.seq = 19;
  alert.steady_ns = 150;
  alert.wall_ns = 250;
  alert.type = 12;  // ALERT_RAISED
  alert.a0 = 0;
  alert.a1 = 1;
  alert.detail = "backend_down";
  snap.events.push_back(alert);
  EventRecord epoch;
  epoch.seq = 20;
  epoch.type = 4;  // EPOCH_COMMIT
  epoch.a0 = 7;
  epoch.a1 = 64;
  snap.events.push_back(epoch);
  return snap;
}

TEST(EventsCodec, RoundTripPreservesEverything) {
  const EventsSnapshot original = make_full_snapshot();
  std::vector<std::uint8_t> payload;
  encode_events_payload(original, payload);

  EventsSnapshot decoded;
  ASSERT_TRUE(decode_events_payload(payload.data(), payload.size(), decoded));
  EXPECT_EQ(decoded.version, kEventsVersion);
  EXPECT_EQ(decoded.role, NodeRole::kRouter);
  EXPECT_EQ(decoded.backend_id, 42u);
  EXPECT_EQ(decoded.steady_ns, original.steady_ns);
  EXPECT_EQ(decoded.wall_ns, original.wall_ns);
  EXPECT_EQ(decoded.dropped, 12u);
  EXPECT_EQ(decoded.next_cursor, 20u);
  EXPECT_EQ(decoded.remaining, 3u);
  ASSERT_EQ(decoded.events.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.events[i].seq, original.events[i].seq);
    EXPECT_EQ(decoded.events[i].steady_ns, original.events[i].steady_ns);
    EXPECT_EQ(decoded.events[i].wall_ns, original.events[i].wall_ns);
    EXPECT_EQ(decoded.events[i].type, original.events[i].type);
    EXPECT_EQ(decoded.events[i].a0, original.events[i].a0);
    EXPECT_EQ(decoded.events[i].a1, original.events[i].a1);
    EXPECT_EQ(decoded.events[i].detail, original.events[i].detail);
  }
}

TEST(EventsCodec, TruncationAtEveryPrefixIsRejected) {
  std::vector<std::uint8_t> payload;
  encode_events_payload(make_full_snapshot(), payload);
  EventsSnapshot out;
  for (std::size_t size = 0; size < payload.size(); ++size) {
    EXPECT_FALSE(decode_events_payload(payload.data(), size, out))
        << "prefix of " << size << " bytes must not decode";
  }
}

TEST(EventsCodec, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> payload;
  encode_events_payload(make_full_snapshot(), payload);
  payload.push_back(0);
  EventsSnapshot out;
  EXPECT_FALSE(decode_events_payload(payload.data(), payload.size(), out));
}

TEST(EventsCodec, VersionSkewIsRejected) {
  std::vector<std::uint8_t> payload;
  encode_events_payload(make_full_snapshot(), payload);
  EventsSnapshot out;
  payload[1] = static_cast<std::uint8_t>(kEventsVersion + 1);  // LE low byte
  EXPECT_FALSE(decode_events_payload(payload.data(), payload.size(), out));
  payload[1] = static_cast<std::uint8_t>(kEventsVersion - 1);
  EXPECT_FALSE(decode_events_payload(payload.data(), payload.size(), out));
}

TEST(EventsCodec, BogusRoleAndOversizedCountAreRejected) {
  EventsSnapshot empty;
  std::vector<std::uint8_t> payload;
  encode_events_payload(empty, payload);
  // Layout: type(1) version(4) role(1) id(4) steady(8) wall(8) dropped(8)
  // next_cursor(8) remaining(8) count(4).
  EventsSnapshot out;
  std::vector<std::uint8_t> bad_role = payload;
  bad_role[5] = 7;
  EXPECT_FALSE(decode_events_payload(bad_role.data(), bad_role.size(), out));

  std::vector<std::uint8_t> bad_count = payload;
  const std::uint32_t count =
      static_cast<std::uint32_t>(kMaxEventsPerResponse + 1);
  for (int i = 0; i < 4; ++i) {
    bad_count[50 + i] = static_cast<std::uint8_t>(count >> (8 * i));
  }
  EXPECT_FALSE(
      decode_events_payload(bad_count.data(), bad_count.size(), out));
}

TEST(EventsCodec, EncoderCapsTheBatchAtTheFrameCeiling) {
  EventsSnapshot snap;
  for (std::size_t i = 0; i < kMaxEventsPerResponse + 10; ++i) {
    EventRecord e;
    e.seq = i + 1;
    snap.events.push_back(e);
  }
  std::vector<std::uint8_t> payload;
  encode_events_payload(snap, payload);
  EventsSnapshot out;
  ASSERT_TRUE(decode_events_payload(payload.data(), payload.size(), out));
  EXPECT_EQ(out.events.size(), kMaxEventsPerResponse);
}

#if !defined(RLB_OBS_DISABLED)
TEST(EventsSnapshotBuilder, ResumesFromTheCursorAndStampsTheAnchor) {
  obs::Journal& journal = obs::Journal::instance();
  const std::uint64_t cursor = journal.next_seq() - 1;  // skip older tests
  journal.append(obs::JournalType::kMemberDown, 4, 0);
  journal.append(obs::JournalType::kMigrateDone, 17, 2);
  journal.append(obs::JournalType::kEpochCommit, 9, 3, "repair");

  EventsSnapshot snap =
      make_events_snapshot(NodeRole::kBackend, 6, cursor);
  EXPECT_EQ(snap.role, NodeRole::kBackend);
  EXPECT_EQ(snap.backend_id, 6u);
  EXPECT_GT(snap.steady_ns, 0u);
  EXPECT_GT(snap.wall_ns, 0u);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_EQ(snap.remaining, 0u);
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.events[0].type,
            static_cast<std::uint8_t>(obs::JournalType::kMemberDown));
  EXPECT_EQ(snap.events[0].seq, cursor + 1);
  EXPECT_EQ(snap.events[2].detail, "repair");
  EXPECT_EQ(snap.next_cursor, cursor + 3);

  // Resuming from the returned cursor finds nothing new and holds still.
  const EventsSnapshot again =
      make_events_snapshot(NodeRole::kBackend, 6, snap.next_cursor);
  EXPECT_TRUE(again.events.empty());
  EXPECT_EQ(again.next_cursor, snap.next_cursor);
  EXPECT_GT(again.steady_ns, 0u);  // anchor present even with no events
}
#endif

TEST(EventsEndToEnd, ClientDrainsAServersCannedBatch) {
  ServerConfig config;  // ephemeral loopback port
  NetServer server(config, /*on_request=*/nullptr);
  std::atomic<std::uint64_t> seen_cursor{~0ull};
  server.set_events_handler(
      [&server, &seen_cursor](std::uint64_t conn_token,
                              const EventsRequestMsg& msg) {
        seen_cursor.store(msg.cursor);
        EventsSnapshot snap = make_full_snapshot();
        snap.next_cursor = msg.cursor + snap.events.size();
        server.send_events(conn_token, snap);
      });
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  client.send_events_request(/*cursor=*/7);
  client.flush();
  EventsSnapshot snap;
  ASSERT_TRUE(client.read_events_response(snap));
  EXPECT_EQ(seen_cursor.load(), 7u);
  EXPECT_EQ(snap.role, NodeRole::kRouter);
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.events[1].detail, "backend_down");
  EXPECT_EQ(snap.next_cursor, 10u);
  client.close();
  server.stop();
}

// A one-shot canned-response listener: accepts a single connection, reads
// (and discards) whatever the client sent, writes `frame`, and closes.
class CannedServer {
 public:
  explicit CannedServer(std::vector<std::uint8_t> frame)
      : frame_(std::move(frame)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      std::uint8_t scratch[256];
      (void)::recv(fd, scratch, sizeof(scratch), 0);
      (void)::send(fd, frame_.data(), frame_.size(), MSG_NOSIGNAL);
      ::close(fd);
    });
  }

  ~CannedServer() {
    thread_.join();
    ::close(listen_fd_);
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  std::vector<std::uint8_t> frame_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

TEST(ClientVersionSkew, StatsMismatchThrowsWithThePeersVersion) {
  // A future/old daemon answering STATS with a different snapshot version
  // must surface as StatsVersionMismatch carrying that version — not as a
  // garbled snapshot or a generic framing error.
  StatsSnapshot snap;
  snap.role = NodeRole::kBackend;
  std::vector<std::uint8_t> payload;
  encode_stats_payload(snap, payload);
  payload[1] = static_cast<std::uint8_t>(kStatsVersion + 3);  // LE low byte
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(encode_stats_response_frame(payload, frame));

  CannedServer peer(frame);
  Client client;
  client.connect("127.0.0.1", peer.port());
  client.send_stats_request();
  client.flush();
  StatsSnapshot out;
  try {
    client.read_stats_response(out);
    FAIL() << "expected StatsVersionMismatch";
  } catch (const StatsVersionMismatch& e) {
    EXPECT_EQ(e.peer_version(), kStatsVersion + 3);
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  client.close();
}

}  // namespace
}  // namespace rlb::net
