// Unit tests for samplers (stats/distributions.hpp).
#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

namespace rlb::stats {
namespace {

TEST(Shuffle, PreservesMultiset) {
  Rng rng(1);
  std::vector<std::uint64_t> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = values;
  shuffle(copy, rng);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, values);
}

TEST(Shuffle, EmptyAndSingletonAreNoOps) {
  Rng rng(2);
  std::vector<std::uint64_t> empty;
  shuffle(empty, rng);
  EXPECT_TRUE(empty.empty());
  std::vector<std::uint64_t> one = {42};
  shuffle(one, rng);
  EXPECT_EQ(one, std::vector<std::uint64_t>{42});
}

TEST(Shuffle, ProducesDifferentOrders) {
  Rng rng(3);
  std::vector<std::uint64_t> values(50);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = i;
  const auto original = values;
  shuffle(values, rng);
  EXPECT_NE(values, original);  // probability 1/50! of flaking
}

TEST(Shuffle, AllPermutationsOfThreeAppear) {
  Rng rng(5);
  std::set<std::vector<std::uint64_t>> seen;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint64_t> values = {0, 1, 2};
    shuffle(values, rng);
    seen.insert(values);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(SampleWithoutReplacement, CorrectSizeAndDistinct) {
  Rng rng(7);
  const auto sample = sample_without_replacement(1000, 100, rng);
  EXPECT_EQ(sample.size(), 100u);
  std::unordered_set<std::uint64_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set.size(), 100u);
  for (std::uint64_t v : sample) EXPECT_LT(v, 1000u);
}

TEST(SampleWithoutReplacement, FullUniverse) {
  Rng rng(9);
  auto sample = sample_without_replacement(20, 20, rng);
  std::sort(sample.begin(), sample.end());
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleWithoutReplacement, RejectsOversizedRequest) {
  Rng rng(11);
  EXPECT_THROW(sample_without_replacement(5, 6, rng), std::invalid_argument);
}

TEST(SampleWithoutReplacement, HugeUniverseWorks) {
  Rng rng(13);
  const auto sample = sample_without_replacement(1ULL << 60, 1000, rng);
  std::unordered_set<std::uint64_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set.size(), 1000u);
}

TEST(RandomPermutation, IsAPermutation) {
  Rng rng(15);
  const auto perm = random_permutation(64, rng);
  std::vector<bool> seen(64, false);
  for (std::uint64_t v : perm) {
    ASSERT_LT(v, 64u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(ZipfSampler, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(ZipfSampler, SingletonUniverse) {
  Rng rng(17);
  ZipfSampler sampler(1, 1.0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

TEST(ZipfSampler, StaysInRange) {
  Rng rng(19);
  ZipfSampler sampler(100, 0.99);
  for (int i = 0; i < 10000; ++i) {
    const auto v = sampler.sample(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100u);
  }
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  Rng rng(21);
  ZipfSampler sampler(10, 0.0);
  std::vector<int> counts(11, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample(rng)];
  for (int r = 1; r <= 10; ++r) {
    EXPECT_NEAR(counts[r], kDraws / 10.0, 5 * std::sqrt(kDraws / 10.0));
  }
}

TEST(ZipfSampler, HeadHeavierThanTail) {
  Rng rng(23);
  ZipfSampler sampler(1000, 1.0);
  int head = 0, tail = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = sampler.sample(rng);
    if (v <= 10) ++head;
    if (v > 500) ++tail;
  }
  EXPECT_GT(head, tail * 2);
}

TEST(ZipfSampler, MatchesTheoreticalHeadProbability) {
  // For Zipf(1) over n=100: P(rank 1) = 1/H_100 ≈ 0.1928.
  Rng rng(25);
  ZipfSampler sampler(100, 1.0);
  constexpr int kDraws = 100000;
  int rank1 = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (sampler.sample(rng) == 1) ++rank1;
  }
  double h100 = 0;
  for (int k = 1; k <= 100; ++k) h100 += 1.0 / k;
  EXPECT_NEAR(static_cast<double>(rank1) / kDraws, 1.0 / h100, 0.01);
}

}  // namespace
}  // namespace rlb::stats
