// Unit tests for the workload generators (workloads/*).
//
// Shared invariant across all workloads: within a step all chunks are
// distinct (the model's Section 2 requirement).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "workloads/fresh_uniform.hpp"
#include "workloads/mixed.hpp"
#include "workloads/phased_churn.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/trace.hpp"
#include "workloads/zipf_workload.hpp"

namespace rlb::workloads {
namespace {

bool all_distinct(const std::vector<core::ChunkId>& batch) {
  std::unordered_set<core::ChunkId> seen(batch.begin(), batch.end());
  return seen.size() == batch.size();
}

TEST(RepeatedSet, RejectsEmpty) {
  EXPECT_THROW(RepeatedSetWorkload(0, 100, 1), std::invalid_argument);
}

TEST(RepeatedSet, SameSetEveryStep) {
  RepeatedSetWorkload workload(32, 1000, 7);
  std::vector<core::ChunkId> a, b;
  workload.fill_step(0, a);
  workload.fill_step(1, b);
  EXPECT_TRUE(all_distinct(a));
  auto sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
}

TEST(RepeatedSet, ShuffleChangesOrderButNotSet) {
  RepeatedSetWorkload workload(64, 10000, 9, /*shuffle_each_step=*/true);
  std::vector<core::ChunkId> a, b;
  workload.fill_step(0, a);
  workload.fill_step(1, b);
  EXPECT_NE(a, b);  // order differs (prob. ~1/64!)
}

TEST(RepeatedSet, NoShuffleKeepsOrder) {
  RepeatedSetWorkload workload(16, 100, 11, /*shuffle_each_step=*/false);
  std::vector<core::ChunkId> a, b;
  workload.fill_step(0, a);
  workload.fill_step(5, b);
  EXPECT_EQ(a, b);
}

TEST(RepeatedSet, ExplicitChunkConstructor) {
  RepeatedSetWorkload workload({10, 20, 30}, 1, false);
  std::vector<core::ChunkId> batch;
  workload.fill_step(0, batch);
  EXPECT_EQ(batch, (std::vector<core::ChunkId>{10, 20, 30}));
  EXPECT_EQ(workload.max_requests_per_step(), 3u);
}

TEST(FreshUniform, NeverRepeatsAcrossSteps) {
  FreshUniformWorkload workload(16);
  std::unordered_set<core::ChunkId> all;
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 10; ++t) {
    workload.fill_step(t, batch);
    EXPECT_EQ(batch.size(), 16u);
    for (const core::ChunkId x : batch) {
      EXPECT_TRUE(all.insert(x).second) << "repeated chunk " << x;
    }
  }
}

TEST(FreshUniform, OffsetSeparatesInstances) {
  FreshUniformWorkload a(8, 0), b(8, 1'000'000);
  std::vector<core::ChunkId> ba, bb;
  a.fill_step(0, ba);
  b.fill_step(0, bb);
  for (const core::ChunkId x : ba) {
    EXPECT_EQ(std::find(bb.begin(), bb.end(), x), bb.end());
  }
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfWorkload(0, 100, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(ZipfWorkload(60, 100, 1.0, 1), std::invalid_argument);
}

TEST(Zipf, DistinctWithinStep) {
  ZipfWorkload workload(50, 200, 0.99, 3);
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 20; ++t) {
    workload.fill_step(t, batch);
    EXPECT_EQ(batch.size(), 50u);
    EXPECT_TRUE(all_distinct(batch));
  }
}

TEST(Zipf, HotChunksReappearAcrossSteps) {
  ZipfWorkload workload(20, 10000, 1.1, 5);
  std::vector<core::ChunkId> batch;
  int rank1_appearances = 0;
  for (core::Time t = 0; t < 50; ++t) {
    workload.fill_step(t, batch);
    if (std::find(batch.begin(), batch.end(), 1u) != batch.end()) {
      ++rank1_appearances;
    }
  }
  EXPECT_GT(rank1_appearances, 25);  // the head is requested most steps
}

TEST(Zipf, ExtremeSkewStillCompletesBatch) {
  ZipfWorkload workload(100, 1000, 3.0, 7);
  std::vector<core::ChunkId> batch;
  workload.fill_step(0, batch);
  EXPECT_EQ(batch.size(), 100u);
  EXPECT_TRUE(all_distinct(batch));
}

TEST(PhasedChurn, NoChurnEqualsRepeatedSet) {
  PhasedChurnWorkload workload(32, 0.0, 4, 9);
  std::vector<core::ChunkId> a, b;
  workload.fill_step(0, a);
  workload.fill_step(8, b);  // across a rotation boundary
  auto sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
}

TEST(PhasedChurn, FullChurnReplacesEverything) {
  PhasedChurnWorkload workload(16, 1.0, 1, 11);
  std::vector<core::ChunkId> a, b;
  workload.fill_step(0, a);
  workload.fill_step(1, b);
  std::unordered_set<core::ChunkId> sa(a.begin(), a.end());
  for (const core::ChunkId x : b) EXPECT_EQ(sa.count(x), 0u);
}

TEST(PhasedChurn, PartialChurnKeepsSomeChunks) {
  PhasedChurnWorkload workload(100, 0.25, 1, 13);
  std::vector<core::ChunkId> a, b;
  workload.fill_step(0, a);
  workload.fill_step(1, b);
  std::unordered_set<core::ChunkId> sa(a.begin(), a.end());
  std::size_t kept = 0;
  for (const core::ChunkId x : b) kept += sa.count(x);
  EXPECT_EQ(kept, 75u);
  EXPECT_TRUE(all_distinct(b));
}

TEST(PhasedChurn, RotationOnlyAtPeriodBoundaries) {
  PhasedChurnWorkload workload(50, 0.5, 10, 15);
  std::vector<core::ChunkId> a, b;
  workload.fill_step(3, a);
  workload.fill_step(7, b);  // same period: identical set
  auto sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
}

TEST(Mixed, HotAndColdSplit) {
  MixedWorkload workload(40, 0.5, 17);
  EXPECT_EQ(workload.hot_per_step(), 20u);
  std::vector<core::ChunkId> a, b;
  workload.fill_step(0, a);
  workload.fill_step(1, b);
  EXPECT_TRUE(all_distinct(a));
  std::unordered_set<core::ChunkId> sa(a.begin(), a.end());
  std::size_t shared = 0;
  for (const core::ChunkId x : b) shared += sa.count(x);
  EXPECT_EQ(shared, 20u);  // exactly the hot set reappears
}

TEST(Mixed, ZeroHotFractionIsAllFresh) {
  MixedWorkload workload(10, 0.0, 19);
  std::vector<core::ChunkId> a, b;
  workload.fill_step(0, a);
  workload.fill_step(1, b);
  std::unordered_set<core::ChunkId> sa(a.begin(), a.end());
  for (const core::ChunkId x : b) EXPECT_EQ(sa.count(x), 0u);
}

TEST(Trace, RecordAndReplayExactly) {
  FreshUniformWorkload source(8);
  const Trace trace = Trace::record(source, 5);
  EXPECT_EQ(trace.step_count(), 5u);
  EXPECT_EQ(trace.total_requests(), 40u);
  EXPECT_EQ(trace.max_batch_size(), 8u);

  TraceWorkload replay(trace);
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 5; ++t) {
    replay.fill_step(t, batch);
    EXPECT_EQ(batch, trace.step(static_cast<std::size_t>(t)));
  }
}

TEST(Trace, ReplayCyclesPastEnd) {
  FreshUniformWorkload source(4);
  const Trace trace = Trace::record(source, 3);
  TraceWorkload replay(trace);
  std::vector<core::ChunkId> early, late;
  replay.fill_step(1, early);
  replay.fill_step(4, late);  // 4 % 3 == 1
  EXPECT_EQ(early, late);
}

TEST(Trace, EmptyTraceRejected) {
  const Trace trace;
  EXPECT_THROW(TraceWorkload{trace}, std::invalid_argument);
}

}  // namespace
}  // namespace rlb::workloads
