// Unit tests for the reappearance analyzer
// (workloads/reappearance_profile.hpp).
#include "workloads/reappearance_profile.hpp"

#include <gtest/gtest.h>

#include "workloads/fresh_uniform.hpp"
#include "workloads/mixed.hpp"
#include "workloads/phased_churn.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/zipf_workload.hpp"

namespace rlb::workloads {
namespace {

TEST(ReappearanceProfile, EmptyProfile) {
  ReappearanceAnalyzer analyzer;
  EXPECT_EQ(analyzer.profile().total_requests, 0u);
  EXPECT_EQ(analyzer.profile().reappearance_fraction(), 0.0);
  EXPECT_EQ(analyzer.profile().working_set_ratio(), 0.0);
}

TEST(ReappearanceProfile, HandComputedSequence) {
  ReappearanceAnalyzer analyzer;
  analyzer.observe_step(0, {1, 2, 3});
  analyzer.observe_step(1, {1, 4});
  analyzer.observe_step(3, {1, 2});
  const ReappearanceProfile& profile = analyzer.profile();
  EXPECT_EQ(profile.total_requests, 7u);
  EXPECT_EQ(profile.distinct_chunks, 4u);
  EXPECT_EQ(profile.reappearances, 3u);  // 1@t1, 1@t3, 2@t3
  // Reuse distances: chunk 1 at t=1 (dist 1), chunk 1 at t=3 (dist 2),
  // chunk 2 at t=3 (dist 3).
  EXPECT_EQ(profile.reuse_distance.count_at(1), 1u);
  EXPECT_EQ(profile.reuse_distance.count_at(2), 1u);
  EXPECT_EQ(profile.reuse_distance.count_at(3), 1u);
}

TEST(ReappearanceProfile, RepeatedSetIsMaximallyDependent) {
  RepeatedSetWorkload workload(64, 1u << 20, 3);
  const ReappearanceProfile profile = profile_workload(workload, 20);
  EXPECT_EQ(profile.total_requests, 64u * 20);
  EXPECT_EQ(profile.distinct_chunks, 64u);
  // Everything after step 0 is a reappearance at distance exactly 1.
  EXPECT_DOUBLE_EQ(profile.reappearance_fraction(), 19.0 / 20.0);
  EXPECT_EQ(profile.reuse_distance.count_at(1), 64u * 19);
}

TEST(ReappearanceProfile, FreshUniformHasNoReappearances) {
  FreshUniformWorkload workload(64);
  const ReappearanceProfile profile = profile_workload(workload, 20);
  EXPECT_EQ(profile.reappearances, 0u);
  EXPECT_DOUBLE_EQ(profile.working_set_ratio(), 1.0);
}

TEST(ReappearanceProfile, MixedMatchesItsHotFraction) {
  MixedWorkload workload(100, 0.4, 5);
  const ReappearanceProfile profile = profile_workload(workload, 30);
  // 40 hot chunks reappear every step after the first; 60 fresh never do.
  EXPECT_NEAR(profile.reappearance_fraction(), 0.4 * 29.0 / 30.0, 1e-9);
}

TEST(ReappearanceProfile, ChurnReducesDependenceMonotonically) {
  auto fraction_for = [](double churn) {
    PhasedChurnWorkload workload(128, churn, 1, 7);
    return profile_workload(workload, 40).reappearance_fraction();
  };
  const double none = fraction_for(0.0);
  const double some = fraction_for(0.3);
  const double all = fraction_for(1.0);
  EXPECT_GT(none, some);
  EXPECT_GT(some, all);
  EXPECT_NEAR(all, 0.0, 1e-9);
}

TEST(ReappearanceProfile, ZipfHeadDrivesShortReuseDistances) {
  ZipfWorkload workload(64, 1024, 1.1, 9);
  const ReappearanceProfile profile = profile_workload(workload, 50);
  EXPECT_GT(profile.reappearance_fraction(), 0.3);
  // The hot head reappears within a couple of steps: the median reuse
  // distance is small.
  EXPECT_LE(profile.reuse_distance.quantile(0.5), 4u);
}

}  // namespace
}  // namespace rlb::workloads
