// Unit tests for the insert/delete/reinsert process
// (ballsbins/heavily_loaded.hpp).
#include "ballsbins/heavily_loaded.hpp"

#include <gtest/gtest.h>

namespace rlb::ballsbins {
namespace {

TEST(HeavilyLoaded, RejectsInvalidArguments) {
  EXPECT_THROW(HeavilyLoadedProcess(0, 2, 1), std::invalid_argument);
  EXPECT_THROW(HeavilyLoadedProcess(8, 0, 1), std::invalid_argument);
}

TEST(HeavilyLoaded, InsertRemoveRoundTrip) {
  HeavilyLoadedProcess process(16, 2, 1);
  EXPECT_TRUE(process.insert(5));
  EXPECT_TRUE(process.contains(5));
  EXPECT_EQ(process.ball_count(), 1u);
  EXPECT_EQ(process.max_load(), 1u);
  EXPECT_TRUE(process.remove(5));
  EXPECT_FALSE(process.contains(5));
  EXPECT_EQ(process.ball_count(), 0u);
  EXPECT_EQ(process.max_load(), 0u);
}

TEST(HeavilyLoaded, DuplicateInsertAndMissingRemove) {
  HeavilyLoadedProcess process(16, 2, 2);
  EXPECT_TRUE(process.insert(1));
  EXPECT_FALSE(process.insert(1));
  EXPECT_EQ(process.ball_count(), 1u);
  EXPECT_FALSE(process.remove(99));
}

TEST(HeavilyLoaded, ChoicesAreStableAcrossReinsertion) {
  // THE reappearance dependency: deleting and reinserting a ball gives it
  // the same two candidate bins.
  HeavilyLoadedProcess process(64, 2, 3);
  const auto before = process.choices(42);
  process.insert(42);
  process.remove(42);
  process.insert(42);
  EXPECT_EQ(process.choices(42), before);
  // And the ball actually sits at one of them.
  ASSERT_EQ(before.size(), 2u);
}

TEST(HeavilyLoaded, BallAlwaysPlacedAtAChoice) {
  HeavilyLoadedProcess process(32, 3, 4);
  for (std::uint64_t id = 0; id < 100; ++id) process.insert(id);
  // Remove half, reinsert, loads must stay consistent.
  for (std::uint64_t id = 0; id < 50; ++id) process.remove(id);
  for (std::uint64_t id = 0; id < 50; ++id) process.insert(id);
  EXPECT_EQ(process.ball_count(), 100u);
  std::uint64_t total = 0;
  for (const std::uint32_t load : process.loads()) total += load;
  EXPECT_EQ(total, 100u);
}

TEST(HeavilyLoaded, GapMatchesDefinition) {
  HeavilyLoadedProcess process(4, 2, 5);
  for (std::uint64_t id = 0; id < 8; ++id) process.insert(id);
  // gap = max - avg, avg = 2.
  EXPECT_DOUBLE_EQ(process.gap(),
                   static_cast<double>(process.max_load()) - 2.0);
}

TEST(HeavilyLoaded, FixedIdChurnKeepsBallCount) {
  HeavilyLoadedProcess process(64, 2, 6);
  stats::Rng rng(7);
  const auto gaps = fixed_id_churn_gaps(process, 256, 64, 10, rng);
  EXPECT_EQ(gaps.size(), 10u);
  EXPECT_EQ(process.ball_count(), 256u);
}

TEST(HeavilyLoaded, FreshChurnKeepsBallCount) {
  HeavilyLoadedProcess process(64, 2, 8);
  stats::Rng rng(9);
  const auto gaps = fresh_id_churn_gaps(process, 256, 64, 10, rng);
  EXPECT_EQ(gaps.size(), 10u);
  EXPECT_EQ(process.ball_count(), 256u);
}

TEST(HeavilyLoaded, TwoChoiceChurnGapStaysBounded) {
  // Stochastic churn (not the Bansal–Kuszmaul adversary) keeps the
  // two-choice gap small even heavily loaded: k = 8m.
  HeavilyLoadedProcess process(256, 2, 10);
  stats::Rng rng(11);
  const auto gaps = fixed_id_churn_gaps(process, 8 * 256, 256, 20, rng);
  for (const double gap : gaps) EXPECT_LE(gap, 10.0);
}

}  // namespace
}  // namespace rlb::ballsbins
