// Unit tests for metrics accounting (core/metrics.hpp).
#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace rlb::core {
namespace {

TEST(Metrics, EmptyState) {
  Metrics m;
  EXPECT_EQ(m.submitted(), 0u);
  EXPECT_EQ(m.rejected(), 0u);
  EXPECT_EQ(m.completed(), 0u);
  EXPECT_EQ(m.rejection_rate(), 0.0);
  EXPECT_EQ(m.average_latency(), 0.0);
  EXPECT_EQ(m.max_latency(), 0u);
}

TEST(Metrics, RejectionRateDefinition21) {
  Metrics m;
  m.on_submitted(10);
  m.on_rejected(3);
  EXPECT_DOUBLE_EQ(m.rejection_rate(), 0.3);
  EXPECT_EQ(m.accepted(), 7u);
}

TEST(Metrics, QueueDropsCountAsRejections) {
  // Definition 2.1: T_A counts ultimately accepted requests, so a queued
  // request dropped by a flush/dump is a rejection.
  Metrics m;
  m.on_submitted(5);
  m.on_dropped_from_queue(2);
  EXPECT_EQ(m.rejected(), 2u);
  EXPECT_EQ(m.dropped_from_queue(), 2u);
  EXPECT_DOUBLE_EQ(m.rejection_rate(), 0.4);
}

TEST(Metrics, LatencyStatistics) {
  Metrics m;
  m.on_completed(0);
  m.on_completed(2);
  m.on_completed(10);
  EXPECT_EQ(m.completed(), 3u);
  EXPECT_DOUBLE_EQ(m.average_latency(), 4.0);
  EXPECT_EQ(m.max_latency(), 10u);
  EXPECT_LE(m.latency_quantile(0.5), 2u);
}

TEST(Metrics, BacklogSamples) {
  Metrics m;
  m.on_backlog_sample(0);
  m.on_backlog_sample(4);
  EXPECT_EQ(m.backlog_stats().count(), 2u);
  EXPECT_DOUBLE_EQ(m.backlog_stats().mean(), 2.0);
  EXPECT_EQ(m.backlog_stats().max(), 4.0);
}

TEST(Metrics, SafetyCheckCounting) {
  Metrics m;
  m.on_safety_check(true);
  m.on_safety_check(false);
  m.on_safety_check(true);
  EXPECT_EQ(m.safety_checks(), 3u);
  EXPECT_EQ(m.safety_violations(), 1u);
}

TEST(Metrics, MergeAddsEverything) {
  Metrics a, b;
  a.on_submitted(4);
  a.on_rejected(1);
  a.on_completed(3);
  b.on_submitted(6);
  b.on_dropped_from_queue(2);
  b.on_completed(5);
  b.on_safety_check(false);
  a.merge(b);
  EXPECT_EQ(a.submitted(), 10u);
  EXPECT_EQ(a.rejected(), 3u);
  EXPECT_EQ(a.completed(), 2u);
  EXPECT_DOUBLE_EQ(a.average_latency(), 4.0);
  EXPECT_EQ(a.safety_violations(), 1u);
}

TEST(Metrics, LatencyHistogramOverflowStillCounted) {
  Metrics m(8);
  m.on_completed(100);  // beyond histogram limit
  EXPECT_EQ(m.completed(), 1u);
  EXPECT_EQ(m.latency_histogram().overflow_count(), 1u);
  EXPECT_GE(m.max_latency(), 9u);  // attributed to overflow bucket
}

}  // namespace
}  // namespace rlb::core
