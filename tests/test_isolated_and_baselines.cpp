// Unit tests for the time-step-isolated policies and round-robin baseline.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/greedy.hpp"
#include "policies/round_robin.hpp"
#include "policies/time_step_isolated.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/trace.hpp"

namespace rlb::policies {
namespace {

SingleQueueConfig base_config() {
  SingleQueueConfig config;
  config.servers = 256;
  config.replication = 2;
  config.processing_rate = 4;
  config.queue_capacity = 8;
  config.seed = 5;
  return config;
}

TEST(RandomOfD, Names) {
  RandomOfDBalancer balancer(base_config());
  EXPECT_EQ(balancer.name(), "random-of-d");
}

TEST(PerStepGreedy, Names) {
  PerStepGreedyBalancer balancer(base_config());
  EXPECT_EQ(balancer.name(), "per-step-greedy");
}

TEST(RoundRobin, Names) {
  RoundRobinBalancer balancer(base_config());
  EXPECT_EQ(balancer.name(), "round-robin");
}

TEST(RandomOfD, RoutesOnlyToPlacementChoices) {
  // With m = 2 and d = 1 there is exactly one choice; the random policy
  // must still respect placement.
  SingleQueueConfig config = base_config();
  config.servers = 4;
  config.replication = 1;
  config.queue_capacity = 64;
  RandomOfDBalancer balancer(config);
  core::Metrics metrics;
  const std::vector<core::ChunkId> batch = {9};
  balancer.step(0, batch, metrics);
  // The request either completed on or is queued at the unique choice.
  const core::ServerId expected = balancer.placement().choices(9)[0];
  std::uint64_t elsewhere = 0;
  for (core::ServerId s = 0; s < 4; ++s) {
    if (s != expected) elsewhere += balancer.backlog(s);
  }
  EXPECT_EQ(elsewhere, 0u);
}

TEST(RoundRobin, CyclesThroughReplicas) {
  // m = d = 4: a chunk's choices are all four servers in a fixed order;
  // round-robin must cycle deterministically.
  SingleQueueConfig config = base_config();
  config.servers = 4;
  config.replication = 4;
  config.processing_rate = 1;
  config.queue_capacity = 100;
  RoundRobinBalancer balancer(config);
  core::Metrics metrics;
  const std::vector<core::ChunkId> batch = {7};
  const core::ChoiceList choices = balancer.placement().choices(7);
  // Step many times; arrival i goes to choices[i % 4].  With g = 1 each
  // step also completes one request, so backlogs stay small and even.
  for (core::Time t = 0; t < 8; ++t) balancer.step(t, batch, metrics);
  EXPECT_EQ(metrics.submitted(), 8u);
  EXPECT_EQ(metrics.rejected(), 0u);
  // Each of the four replicas received exactly 2 of the 8 arrivals;
  // everything processed the step it arrived.
  EXPECT_EQ(metrics.completed(), 8u);
  (void)choices;
}

TEST(IsolatedPolicies, BacklogGrowsOnRepeatedSetUnlikeGreedy) {
  // Lemma 5.3's consequence at small scale: on the fixed repeated set with
  // matched parameters, isolated strategies leave some server with a
  // persistently growing/full queue, producing rejections, while greedy
  // stays clean.  All policies see the identical trace.
  SingleQueueConfig config = base_config();
  config.processing_rate = 2;
  config.queue_capacity = 8;

  // Unshuffled: the oblivious adversary may fix the within-step arrival
  // order, which makes per-step-greedy's overload pattern persistent.
  workloads::RepeatedSetWorkload source(256, 1u << 20, 17,
                                        /*shuffle_each_step=*/false);
  const workloads::Trace trace = workloads::Trace::record(source, 120);

  auto run = [&](SingleQueueBalancer& balancer) {
    workloads::TraceWorkload workload(trace);
    core::SimConfig sim;
    sim.steps = 120;
    return core::simulate(balancer, workload, sim);
  };

  GreedyBalancer greedy(config);
  RandomOfDBalancer random_of_d(config);
  PerStepGreedyBalancer per_step(config);

  const auto greedy_result = run(greedy);
  const auto random_result = run(random_of_d);
  const auto per_step_result = run(per_step);

  EXPECT_EQ(greedy_result.metrics.rejected(), 0u);
  EXPECT_GT(random_result.metrics.rejection_rate(),
            greedy_result.metrics.rejection_rate());
  EXPECT_GT(per_step_result.metrics.rejection_rate(),
            greedy_result.metrics.rejection_rate());
  // The isolated policies' rejection rates are Ω(1)-ish here, not merely
  // nonzero (per-step-greedy balances better within a step than random, so
  // its constant is smaller at this scale).
  EXPECT_GT(random_result.metrics.rejection_rate(), 0.01);
  EXPECT_GT(per_step_result.metrics.rejection_rate(), 0.003);
}

TEST(IsolatedPolicies, ConservationInvariant) {
  SingleQueueConfig config = base_config();
  workloads::RepeatedSetWorkload workload(256, 1u << 18, 19);
  std::vector<core::ChunkId> batch;

  RandomOfDBalancer random_of_d(config);
  PerStepGreedyBalancer per_step(config);
  RoundRobinBalancer round_robin(config);
  core::Metrics m1, m2, m3;
  for (core::Time t = 0; t < 50; ++t) {
    workload.fill_step(t, batch);
    random_of_d.step(t, batch, m1);
    per_step.step(t, batch, m2);
    round_robin.step(t, batch, m3);
  }
  EXPECT_EQ(m1.submitted(),
            m1.completed() + m1.rejected() + random_of_d.total_backlog());
  EXPECT_EQ(m2.submitted(),
            m2.completed() + m2.rejected() + per_step.total_backlog());
  EXPECT_EQ(m3.submitted(),
            m3.completed() + m3.rejected() + round_robin.total_backlog());
}

TEST(RandomOfD, DeterministicGivenSeed) {
  auto run = [] {
    RandomOfDBalancer balancer(base_config());
    workloads::RepeatedSetWorkload workload(256, 4096, 23);
    core::SimConfig sim;
    sim.steps = 40;
    return core::simulate(balancer, workload, sim);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.metrics.rejected(), b.metrics.rejected());
  EXPECT_EQ(a.max_backlog, b.max_backlog);
}

}  // namespace
}  // namespace rlb::policies
