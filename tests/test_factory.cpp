// Unit tests for policy construction (policies/factory.hpp).
#include "policies/factory.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "workloads/fresh_uniform.hpp"

namespace rlb::policies {
namespace {

TEST(Factory, AllNamedPoliciesConstruct) {
  PolicyConfig config;
  config.servers = 64;
  config.seed = 3;
  for (const std::string& name : policy_names()) {
    const auto policy = make_policy(name, config);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->server_count(), 64u) << name;
  }
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_policy("nope", PolicyConfig{}), std::invalid_argument);
}

TEST(Factory, GreedyD1ForcesSingleReplica) {
  PolicyConfig config;
  config.servers = 32;
  config.replication = 4;
  const auto policy = make_policy("greedy-d1", config);
  // Indirect check: run a step and confirm it behaves (placement internals
  // are not exposed through LoadBalancer; the name records the intent).
  EXPECT_EQ(policy->name(), "greedy");
  core::Metrics metrics;
  const std::vector<core::ChunkId> batch = {1, 2, 3};
  policy->step(0, batch, metrics);
  EXPECT_EQ(metrics.submitted(), 3u);
}

TEST(Factory, QueueCapacityZeroDerivesDefault) {
  PolicyConfig config;
  config.servers = 1024;
  config.queue_capacity = 0;
  const auto greedy = make_policy("greedy", config);
  // Derived default is log2(m)+1 = 11; verify indirectly by flooding one
  // step and checking nothing catastrophic happens.
  EXPECT_NE(greedy, nullptr);
  const auto cuckoo = make_policy("delayed-cuckoo", config);
  EXPECT_NE(cuckoo, nullptr);
}

TEST(Factory, ProcessingRateRoundedForCuckoo) {
  PolicyConfig config;
  config.servers = 64;
  config.processing_rate = 5;  // not a multiple of 4
  // Factory rounds up to 8 rather than letting construction throw.
  EXPECT_NO_THROW(make_policy("delayed-cuckoo", config));
}

TEST(Factory, EveryPolicyRunsACleanFreshStep) {
  PolicyConfig config;
  config.servers = 128;
  config.processing_rate = 16;
  config.seed = 7;
  for (const std::string& name : policy_names()) {
    auto policy = make_policy(name, config);
    workloads::FreshUniformWorkload workload(128);
    core::SimConfig sim;
    sim.steps = 20;
    const core::SimResult result = core::simulate(*policy, workload, sim);
    EXPECT_EQ(result.metrics.submitted(), 128u * 20) << name;
    // Fresh uniform traffic at g = 16 is easy: nobody should reject.
    EXPECT_EQ(result.metrics.rejected(), 0u) << name;
  }
}

}  // namespace
}  // namespace rlb::policies
